#include "abr/bola.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expects.hpp"

namespace veritas::abr {

Bola::Bola(BolaConfig config) : config_(config) {
  VERITAS_EXPECTS(config_.gp_utility_multiple > 0.0);
  VERITAS_EXPECTS(config_.min_buffer_chunks >= 0.0);
}

std::size_t Bola::choose_quality(const AbrContext& context) {
  VERITAS_EXPECTS(context.video != nullptr);
  const video::Video& video = *context.video;
  const std::size_t levels = video.num_qualities();
  const double chunk_s = video.chunk_duration_s();
  const double buffer_chunks = context.buffer_s / chunk_s;
  const double max_buffer_chunks = context.buffer_capacity_s / chunk_s;

  if (buffer_chunks <= config_.min_buffer_chunks || levels == 1) return 0;

  // Utilities from the *nominal* per-quality sizes of the next chunk.
  const std::size_t chunk = context.next_chunk;
  const double s_min = video.chunk_size_bytes(chunk, 0);
  std::vector<double> utility(levels);
  for (std::size_t m = 0; m < levels; ++m) {
    utility[m] = std::log(video.chunk_size_bytes(chunk, m) / s_min);
  }
  const double gp = config_.gp_utility_multiple * utility.back();
  // V scaled so the top rung's objective crosses zero one chunk below the
  // buffer cap: the algorithm reaches for the top only with a full-ish
  // buffer (BOLA paper, Sec. IV).
  const double v =
      std::max(max_buffer_chunks - 1.0, 0.5) / (utility.back() + gp);

  double best_objective = -std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  for (std::size_t m = 0; m < levels; ++m) {
    const double size = video.chunk_size_bytes(chunk, m);
    const double objective =
        (v * (utility[m] + gp) - buffer_chunks) / size;
    if (objective > best_objective) {
      best_objective = objective;
      best = m;
    }
  }
  return best;
}

}  // namespace veritas::abr
