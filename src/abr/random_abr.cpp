#include "abr/random_abr.hpp"

#include "util/expects.hpp"

namespace veritas::abr {

RandomAbr::RandomAbr(std::uint64_t seed) : seed_(seed), rng_(seed) {}

void RandomAbr::reset() { rng_ = util::Rng(seed_); }

std::size_t RandomAbr::choose_quality(const AbrContext& context) {
  VERITAS_EXPECTS(context.video != nullptr);
  const auto levels =
      static_cast<std::int64_t>(context.video->num_qualities());
  return static_cast<std::size_t>(rng_.uniform_int(0, levels - 1));
}

}  // namespace veritas::abr
