#include "abr/bba.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"

namespace veritas::abr {

Bba::Bba(BbaConfig config) : config_(config) {
  VERITAS_EXPECTS(config_.reservoir_s >= 0.0);
  VERITAS_EXPECTS(config_.upper_fraction > 0.0 && config_.upper_fraction <= 1.0);
}

std::size_t Bba::choose_quality(const AbrContext& context) {
  VERITAS_EXPECTS(context.video != nullptr);
  const std::size_t levels = context.video->num_qualities();
  const double reservoir =
      std::min(config_.reservoir_s, 0.5 * context.buffer_capacity_s);
  const double upper = config_.upper_fraction * context.buffer_capacity_s;
  VERITAS_EXPECTS(upper > reservoir);

  if (context.buffer_s <= reservoir) return 0;
  if (context.buffer_s >= upper) return levels - 1;
  // Linear map of the cushion region onto intermediate rungs.
  const double fraction =
      (context.buffer_s - reservoir) / (upper - reservoir);
  const auto level = static_cast<std::size_t>(
      std::floor(fraction * static_cast<double>(levels)));
  return std::min(level, levels - 1);
}

}  // namespace veritas::abr
