// BOLA-Basic v1: Lyapunov-based bitrate adaptation (Spiteri et al.,
// INFOCOM'16), in the variant implemented by the Puffer project that the
// paper's appendix evaluates (Fig. 13).
//
// Chooses the quality maximizing (V * (v_m + gp) - Q) / S_m, where Q is
// the buffer level in chunks, S_m the chunk size, v_m = ln(S_m / S_min)
// the utility, and (V, gp) are derived from the buffer bounds so that the
// lowest rung is picked near-empty and the highest near-full.
#pragma once

#include "abr/abr.hpp"

namespace veritas::abr {

struct BolaConfig {
  /// Utility weight multiplier gp = gamma * p; expressed as a multiple of
  /// the top-rung utility (1.0 reproduces Puffer's BOLA-BASIC v1 scaling).
  double gp_utility_multiple = 1.0;
  /// Buffer level (in chunks) below which the lowest quality is forced.
  double min_buffer_chunks = 0.5;
};

class Bola final : public AbrAlgorithm {
 public:
  explicit Bola(BolaConfig config = {});

  std::size_t choose_quality(const AbrContext& context) override;
  std::string name() const override { return "bola"; }

 private:
  BolaConfig config_;
};

}  // namespace veritas::abr
