#include "abr/mpc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expects.hpp"

namespace veritas::abr {

namespace {

/// Buffer/QoE rollout state for the exhaustive horizon search.
struct Rollout {
  double buffer_s = 0.0;
  double qoe = 0.0;
  double prev_bitrate = -1.0;  ///< < 0 means "no previous chunk"
};

}  // namespace

Mpc::Mpc(MpcConfig config) : config_(config) {
  VERITAS_EXPECTS(config_.horizon >= 1);
  VERITAS_EXPECTS(config_.throughput_window >= 1);
  VERITAS_EXPECTS(config_.safety_fallback_mbps > 0.0);
}

void Mpc::reset() {
  last_quality_ = 0;
  has_last_quality_ = false;
  past_prediction_errors_.clear();
  last_prediction_mbps_ = 0.0;
  has_last_prediction_ = false;
}

double Mpc::predict_throughput(const AbrContext& context) {
  // Track the realized error of the previous prediction (RobustMPC
  // discounts the harmonic mean by the recent maximum relative error).
  if (has_last_prediction_ && !context.history.empty()) {
    const double actual = context.history.back().throughput_mbps();
    if (actual > 0.0) {
      past_prediction_errors_.push_back(
          std::abs(last_prediction_mbps_ - actual) / actual);
      if (past_prediction_errors_.size() > config_.throughput_window) {
        past_prediction_errors_.erase(past_prediction_errors_.begin());
      }
    }
  }
  const double hm = harmonic_mean_throughput(
      context.history, config_.throughput_window, config_.safety_fallback_mbps);
  last_prediction_mbps_ = hm;
  has_last_prediction_ = true;
  if (!config_.robust || past_prediction_errors_.empty()) return hm;
  const double max_err = *std::max_element(past_prediction_errors_.begin(),
                                           past_prediction_errors_.end());
  return hm / (1.0 + max_err);
}

std::size_t Mpc::choose_quality(const AbrContext& context) {
  VERITAS_EXPECTS(context.video != nullptr);
  VERITAS_EXPECTS(context.next_chunk < context.video->num_chunks());
  const video::Video& video = *context.video;
  const std::size_t levels = video.num_qualities();
  const double predicted_mbps =
      std::max(predict_throughput(context), 1e-6);
  const double chunk_s = video.chunk_duration_s();
  const std::size_t remaining = video.num_chunks() - context.next_chunk;
  const std::size_t horizon = std::min(config_.horizon, remaining);

  double best_qoe = -std::numeric_limits<double>::infinity();
  std::size_t best_first = 0;

  // Exhaustive search over quality sequences (levels^horizon <= 5^5):
  // simulate buffer dynamics under the predicted throughput and score
  // QoE = bitrate - rebuffer_penalty * stall - switch_penalty * |Δbitrate|.
  auto rollout = [&](auto&& self, std::size_t depth, Rollout state,
                     std::size_t first) -> void {
    if (depth == horizon) {
      if (state.qoe > best_qoe) {
        best_qoe = state.qoe;
        best_first = first;
      }
      return;
    }
    const std::size_t chunk = context.next_chunk + depth;
    for (std::size_t quality = 0; quality < levels; ++quality) {
      const double size_bytes = video.chunk_size_bytes(chunk, quality);
      const double bitrate = video.bitrate_mbps(quality);
      const double download_s = size_bytes * 8.0 / 1e6 / predicted_mbps;
      const double stall = std::max(0.0, download_s - state.buffer_s);
      double buffer = std::max(0.0, state.buffer_s - download_s) + chunk_s;
      buffer = std::min(buffer, context.buffer_capacity_s);
      double qoe = state.qoe + bitrate - config_.rebuffer_penalty * stall;
      if (state.prev_bitrate >= 0.0) {
        qoe -= config_.switch_penalty * std::abs(bitrate - state.prev_bitrate);
      }
      self(self, depth + 1, Rollout{buffer, qoe, bitrate},
           depth == 0 ? quality : first);
    }
  };

  Rollout initial;
  initial.buffer_s = context.buffer_s;
  initial.prev_bitrate =
      has_last_quality_ ? video.bitrate_mbps(last_quality_) : -1.0;
  rollout(rollout, 0, initial, 0);

  last_quality_ = best_first;
  has_last_quality_ = true;
  return best_first;
}

}  // namespace veritas::abr
