#include "abr/oracle_abr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expects.hpp"

namespace veritas::abr {

OracleAbr::OracleAbr(const trace::BandwidthTrace* gtbw,
                     OracleAbrConfig config)
    : gtbw_(gtbw), config_(config) {
  VERITAS_EXPECTS(gtbw != nullptr);
  VERITAS_EXPECTS(config_.horizon >= 1);
  VERITAS_EXPECTS(config_.efficiency > 0.0 && config_.efficiency <= 1.0);
}

void OracleAbr::reset() {
  last_quality_ = 0;
  has_last_quality_ = false;
  clock_s_ = 0.0;
}

std::size_t OracleAbr::choose_quality(const AbrContext& context) {
  VERITAS_EXPECTS(context.video != nullptr);
  const video::Video& video = *context.video;
  const std::size_t levels = video.num_qualities();
  const double chunk_s = video.chunk_duration_s();
  const std::size_t remaining = video.num_chunks() - context.next_chunk;
  const std::size_t horizon = std::min(config_.horizon, remaining);

  // Estimate "now" from played content: the download clock trails the
  // session clock by at most a buffer, which is good enough for reading
  // the future bandwidth windows.
  const double now =
      clock_s_ > 0.0
          ? clock_s_
          : double(context.next_chunk) * chunk_s;

  double best_qoe = -std::numeric_limits<double>::infinity();
  std::size_t best_first = 0;

  struct Rollout {
    double t, buffer, qoe, prev_bitrate;
  };
  auto rollout = [&](auto&& self, std::size_t depth, Rollout state,
                     std::size_t first) -> void {
    if (depth == horizon) {
      if (state.qoe > best_qoe) {
        best_qoe = state.qoe;
        best_first = first;
      }
      return;
    }
    const std::size_t chunk = context.next_chunk + depth;
    for (std::size_t quality = 0; quality < levels; ++quality) {
      const double size_bytes = video.chunk_size_bytes(chunk, quality);
      const double bitrate = video.bitrate_mbps(quality);
      // Perfect-foresight download time from the actual trace.
      const double mbits = size_bytes * 8.0 / 1e6 / config_.efficiency;
      double download_s = gtbw_->time_to_transfer_s(mbits, state.t);
      if (!std::isfinite(download_s)) download_s = 1e6;
      const double stall = std::max(0.0, download_s - state.buffer);
      double buffer =
          std::max(0.0, state.buffer - download_s) + chunk_s;
      buffer = std::min(buffer, context.buffer_capacity_s);
      double qoe = state.qoe + bitrate - config_.rebuffer_penalty * stall;
      if (state.prev_bitrate >= 0.0) {
        qoe -= config_.switch_penalty * std::abs(bitrate - state.prev_bitrate);
      }
      self(self, depth + 1,
           Rollout{state.t + download_s + stall, buffer, qoe, bitrate},
           depth == 0 ? quality : first);
    }
  };

  Rollout initial{now, context.buffer_s, 0.0,
                  has_last_quality_
                      ? video.bitrate_mbps(last_quality_)
                      : -1.0};
  rollout(rollout, 0, initial, 0);

  // Advance the planning clock by the chosen chunk's foreseen download.
  const double chosen_mbits =
      video.chunk_size_bytes(context.next_chunk, best_first) * 8.0 / 1e6 /
      config_.efficiency;
  const double chosen_time = gtbw_->time_to_transfer_s(chosen_mbits, now);
  clock_s_ = now + (std::isfinite(chosen_time) ? chosen_time : chunk_s);

  last_quality_ = best_first;
  has_last_quality_ = true;
  return best_first;
}

}  // namespace veritas::abr
