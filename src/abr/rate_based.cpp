#include "abr/rate_based.hpp"

#include "util/expects.hpp"

namespace veritas::abr {

RateBased::RateBased(RateBasedConfig config) : config_(config) {
  VERITAS_EXPECTS(config_.throughput_window >= 1);
  VERITAS_EXPECTS(config_.safety_factor > 0.0 && config_.safety_factor <= 1.0);
  VERITAS_EXPECTS(config_.fallback_mbps > 0.0);
}

std::size_t RateBased::choose_quality(const AbrContext& context) {
  VERITAS_EXPECTS(context.video != nullptr);
  const double estimate =
      config_.safety_factor *
      harmonic_mean_throughput(context.history, config_.throughput_window,
                               config_.fallback_mbps);
  const video::Video& video = *context.video;
  std::size_t best = 0;
  for (std::size_t m = 0; m < video.num_qualities(); ++m) {
    if (video.bitrate_mbps(m) <= estimate) best = m;
  }
  return best;
}

}  // namespace veritas::abr
