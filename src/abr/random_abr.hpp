// Random quality picker. Used to create interventional test sets (paper
// §4.4): sessions whose chunk-size sequences do not follow any deployed
// ABR's policy, so predictors are evaluated off the training distribution.
#pragma once

#include "abr/abr.hpp"
#include "util/rng.hpp"

namespace veritas::abr {

class RandomAbr final : public AbrAlgorithm {
 public:
  explicit RandomAbr(std::uint64_t seed);

  std::size_t choose_quality(const AbrContext& context) override;
  void reset() override;
  std::string name() const override { return "random"; }

 private:
  std::uint64_t seed_;
  util::Rng rng_;
};

}  // namespace veritas::abr
