// MPC: model-predictive-control bitrate adaptation (Yin et al.,
// SIGCOMM'15), the paper's default deployed algorithm (Setting A).
//
// RobustMPC variant: predicts throughput as the harmonic mean of recent
// observations discounted by the recent maximum relative prediction
// error, then exhaustively searches quality sequences over a lookahead
// horizon maximizing a QoE objective (bitrate reward, rebuffering
// penalty, switching penalty) under simulated buffer dynamics.
#pragma once

#include <vector>

#include "abr/abr.hpp"

namespace veritas::abr {

struct MpcConfig {
  std::size_t horizon = 5;            ///< lookahead chunks
  std::size_t throughput_window = 5;  ///< harmonic-mean window
  double rebuffer_penalty = 8.0;      ///< QoE units per stalled second
  double switch_penalty = 1.0;        ///< per Mbps of bitrate change
  double safety_fallback_mbps = 1.0;  ///< predictor fallback with no history
  bool robust = true;                 ///< discount by max recent error
};

class Mpc final : public AbrAlgorithm {
 public:
  explicit Mpc(MpcConfig config = {});

  std::size_t choose_quality(const AbrContext& context) override;
  void reset() override;
  std::string name() const override { return config_.robust ? "mpc" : "mpc_fast"; }

 private:
  double predict_throughput(const AbrContext& context);

  MpcConfig config_;
  std::size_t last_quality_ = 0;
  bool has_last_quality_ = false;
  std::vector<double> past_prediction_errors_;
  double last_prediction_mbps_ = 0.0;
  bool has_last_prediction_ = false;
};

}  // namespace veritas::abr
