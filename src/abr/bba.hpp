// BBA: buffer-based rate adaptation (Huang et al., SIGCOMM'14).
//
// Maps the current buffer level linearly onto the bitrate ladder between
// a reservoir and a cushion; ignores throughput estimates entirely.
#pragma once

#include "abr/abr.hpp"

namespace veritas::abr {

struct BbaConfig {
  double reservoir_s = 0.5;       ///< below this: always lowest quality
  double upper_fraction = 0.7;    ///< at >= fraction*capacity: highest quality
};

class Bba final : public AbrAlgorithm {
 public:
  explicit Bba(BbaConfig config = {});

  std::size_t choose_quality(const AbrContext& context) override;
  std::string name() const override { return "bba"; }

 private:
  BbaConfig config_;
};

}  // namespace veritas::abr
