#include "abr/fixed_abr.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace veritas::abr {

FixedAbr::FixedAbr(std::size_t quality) : quality_(quality) {}

std::size_t FixedAbr::choose_quality(const AbrContext& context) {
  VERITAS_EXPECTS(context.video != nullptr);
  return std::min(quality_, context.video->num_qualities() - 1);
}

}  // namespace veritas::abr
