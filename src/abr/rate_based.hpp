// Rate-based ABR: picks the highest rung whose bitrate fits within a
// safety-discounted harmonic-mean throughput estimate. The classic
// throughput-rule baseline.
#pragma once

#include "abr/abr.hpp"

namespace veritas::abr {

struct RateBasedConfig {
  std::size_t throughput_window = 5;
  double safety_factor = 0.9;         ///< use 90% of the estimate
  double fallback_mbps = 1.0;         ///< with no history
};

class RateBased final : public AbrAlgorithm {
 public:
  explicit RateBased(RateBasedConfig config = {});

  std::size_t choose_quality(const AbrContext& context) override;
  std::string name() const override { return "rate_based"; }

 private:
  RateBasedConfig config_;
};

}  // namespace veritas::abr
