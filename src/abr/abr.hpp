// Adaptive bitrate (ABR) algorithm interface.
//
// An ABR sees the video, the current buffer level and the history of
// completed chunk downloads, and picks the quality of the next chunk.
// Implementations: MPC (the paper's default deployed algorithm), BBA,
// BOLA-Basic, a rate-based picker, a fixed picker, and a random picker
// (used to create interventional test sets, paper §4.4).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "video/video.hpp"

namespace veritas::abr {

/// One completed chunk download, as visible to the client player.
struct DownloadedChunk {
  std::size_t chunk_index = 0;
  std::size_t quality = 0;
  double size_bytes = 0.0;
  double duration_s = 0.0;  ///< download time D_n

  /// Observed throughput Y_n = S_n / D_n in Mbps.
  double throughput_mbps() const noexcept {
    return size_bytes * 8.0 / 1e6 / duration_s;
  }
};

/// Everything an ABR may condition on when choosing the next quality.
struct AbrContext {
  const video::Video* video = nullptr;       ///< never null
  std::size_t next_chunk = 0;                ///< chunk to pick quality for
  double buffer_s = 0.0;                     ///< buffer level at request time
  double buffer_capacity_s = 5.0;
  std::span<const DownloadedChunk> history;  ///< completed downloads so far
};

/// Stateless-per-session ABR decision procedure. reset() is called at the
/// start of every session; implementations may keep per-session state.
class AbrAlgorithm {
 public:
  virtual ~AbrAlgorithm() = default;

  /// Picks a quality index in [0, video->num_qualities()).
  virtual std::size_t choose_quality(const AbrContext& context) = 0;

  /// Clears per-session state.
  virtual void reset() {}

  /// Stable identifier (used in logs and bench output).
  virtual std::string name() const = 0;
};

/// Harmonic mean of the last `window` observed throughputs (Mbps); falls
/// back to `fallback_mbps` with no history. Shared by MPC and rate-based.
double harmonic_mean_throughput(std::span<const DownloadedChunk> history,
                                std::size_t window, double fallback_mbps);

}  // namespace veritas::abr
