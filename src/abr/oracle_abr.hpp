// Oracle ABR: cheats by reading the future ground-truth bandwidth, then
// runs an MPC-style horizon search with *perfect* throughput knowledge.
// Not deployable (GTBW is latent in production) — used as the upper
// bound in algorithm comparisons, the role "omniscient" baselines play
// in the ABR literature. Not registered in the factory because it needs
// the trace; construct it directly.
#pragma once

#include "abr/abr.hpp"
#include "trace/bandwidth_trace.hpp"

namespace veritas::abr {

struct OracleAbrConfig {
  std::size_t horizon = 5;        ///< lookahead chunks
  double rebuffer_penalty = 8.0;  ///< QoE units per stalled second
  double switch_penalty = 1.0;    ///< per Mbps of bitrate change
  /// Throughput efficiency: the oracle knows GTBW but the download still
  /// pays slow-start/RTT overheads; plan with this fraction of GTBW.
  double efficiency = 0.85;
};

class OracleAbr final : public AbrAlgorithm {
 public:
  /// `gtbw` must outlive the OracleAbr.
  OracleAbr(const trace::BandwidthTrace* gtbw, OracleAbrConfig config = {});

  std::size_t choose_quality(const AbrContext& context) override;
  void reset() override;
  std::string name() const override { return "oracle"; }

 private:
  const trace::BandwidthTrace* gtbw_;
  OracleAbrConfig config_;
  std::size_t last_quality_ = 0;
  bool has_last_quality_ = false;
  double clock_s_ = 0.0;  ///< advances with planned downloads
};

}  // namespace veritas::abr
