// Fixed-quality picker: always requests the same rung. Used by the
// Fig. 2(b) bias demonstration (forced low/high next chunk) and by tests.
#pragma once

#include "abr/abr.hpp"

namespace veritas::abr {

class FixedAbr final : public AbrAlgorithm {
 public:
  explicit FixedAbr(std::size_t quality);

  std::size_t choose_quality(const AbrContext& context) override;
  std::string name() const override { return "fixed"; }

 private:
  std::size_t quality_;
};

}  // namespace veritas::abr
