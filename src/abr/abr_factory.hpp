// Factory for ABR algorithms by name, so experiment settings can be
// described as data (query::Setting) and round-tripped through logs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "abr/abr.hpp"

namespace veritas::abr {

/// Creates an ABR by name: "mpc", "bba", "bola", "rate_based", "random",
/// "fixed:<level>". Throws ContractViolation for unknown names.
/// `seed` is used by stochastic algorithms (random).
std::unique_ptr<AbrAlgorithm> make_abr(const std::string& name,
                                       std::uint64_t seed = 0);

}  // namespace veritas::abr
