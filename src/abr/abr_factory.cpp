#include "abr/abr_factory.hpp"

#include <charconv>

#include "abr/bba.hpp"
#include "abr/bola.hpp"
#include "abr/fixed_abr.hpp"
#include "abr/mpc.hpp"
#include "abr/random_abr.hpp"
#include "abr/rate_based.hpp"
#include "util/expects.hpp"

namespace veritas::abr {

// Shared helper declared in abr.hpp.
double harmonic_mean_throughput(std::span<const DownloadedChunk> history,
                                std::size_t window, double fallback_mbps) {
  VERITAS_EXPECTS(window >= 1);
  VERITAS_EXPECTS(fallback_mbps > 0.0);
  if (history.empty()) return fallback_mbps;
  const std::size_t n = std::min(window, history.size());
  double inv_sum = 0.0;
  std::size_t used = 0;
  for (std::size_t k = history.size() - n; k < history.size(); ++k) {
    const double y = history[k].throughput_mbps();
    if (y > 0.0) {
      inv_sum += 1.0 / y;
      ++used;
    }
  }
  if (used == 0) return fallback_mbps;
  return static_cast<double>(used) / inv_sum;
}

std::unique_ptr<AbrAlgorithm> make_abr(const std::string& name,
                                       std::uint64_t seed) {
  if (name == "mpc") return std::make_unique<Mpc>();
  if (name == "bba") return std::make_unique<Bba>();
  if (name == "bola") return std::make_unique<Bola>();
  if (name == "rate_based") return std::make_unique<RateBased>();
  if (name == "random") return std::make_unique<RandomAbr>(seed);
  if (name.rfind("fixed:", 0) == 0) {
    const std::string level_text = name.substr(6);
    std::size_t level = 0;
    const auto* begin = level_text.data();
    const auto* end = level_text.data() + level_text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, level);
    VERITAS_EXPECTS(ec == std::errc{} && ptr == end);
    return std::make_unique<FixedAbr>(level);
  }
  throw ContractViolation("unknown ABR algorithm: " + name);
}

}  // namespace veritas::abr
