// Runtime-dispatched kernel table for the EHMM hot loops.
//
// Three implementations of the same KernelOps interface ship in every
// binary:
//
//   * scalar_ops() — the reference loops, compiled with baseline flags in
//     math/simd_kernels_scalar.cpp. Bit-identical to the pre-SIMD
//     implementations: per-element operation order is preserved exactly.
//   * simd_ops()  — vectorized over the *state* (output) dimension with
//     the lane layer in math/simd.hpp, compiled in
//     math/simd_kernels_simd.cpp with the best *bit-exact* ISA the
//     compiler supports (-mavx2 on x86 when available, NEON on AArch64).
//     nullptr when the build disabled SIMD (-DVERITAS_SIMD=OFF) or the
//     running CPU lacks the compiled ISA (checked once via cpuid).
//   * avx512_ops() — the same shared kernel body compiled with
//     -mavx512f -mavx512dq in math/simd_kernels_avx512.cpp: 8 lanes and
//     a true fused multiply-add in the forward/backward/pair
//     accumulations and the vexp/vlog polynomials. FMA's single
//     rounding breaks the bit-identity contract below, so this tier is
//     strictly OPT-IN (VERITAS_SIMD=avx512 or Mode::kForceAvx512 —
//     never selected by plain kAuto) and is gated by the
//     kernel-equivalence suite's explicit tolerances (posteriors within
//     1e-12 of scalar) rather than bitwise equality. Viterbi, the
//     emission log-pdf row, and estimate_batch avoid FMA and stay
//     bit-identical even on this tier. nullptr when the toolchain lacks
//     the flags, the build disabled SIMD, or the CPU lacks AVX-512F+DQ.
//
// Because the SIMD recursions vectorize across outputs and broadcast the
// sequential input, each output's accumulation order matches the scalar
// loop and the viterbi/forward/backward kernels are bit-identical to
// scalar_ops() on the default tier. Only exp_rows/log_rows (polynomial
// approximations, ~2 ulp) and pair_total (lane-reassociated global sum)
// differ, within the tolerances tested in
// tests/core/kernel_equivalence_test.cpp.
//
// Dispatch: active_ops() resolves simd_ops() when available, unless the
// process-global mode (set_mode / ScopedMode, used by tests and benches)
// or the VERITAS_SIMD environment variable ("off" / "scalar" / "0")
// forces the scalar table, or VERITAS_SIMD=avx512 requests the AVX-512
// tier (falling back to simd, then scalar, when it is unavailable).
#pragma once

#include <cstddef>
#include <cstdint>

namespace veritas::math::simd_kernels {

/// CPU feature bits a kernel table needs at run time.
inline constexpr unsigned kCpuBaseline = 0;
inline constexpr unsigned kCpuAvx2 = 1u << 0;
inline constexpr unsigned kCpuAvx512 = 1u << 1;  ///< AVX-512 F + DQ

/// Padded row-major views of one transition power A^Δ (see
/// core/transition_model.hpp). All four tables share `stride`, a multiple
/// of math::kRowPadDoubles; pad columns hold 0 in p/t and -inf in the log
/// tables, so full-lane loads read neutral elements.
struct DeltaTables {
  const double* p = nullptr;      ///< row j: A^Δ(j, ·)
  const double* t = nullptr;      ///< row i: A^Δ(·, i) (transposed)
  const double* log_p = nullptr;  ///< elementwise log of p
  const double* log_t = nullptr;  ///< elementwise log of t
  std::size_t stride = 0;
};

/// Inputs of one batched TCP-estimator call (paper Algorithm 4, the
/// emission kernel f): the post-slow-start-restart connection snapshot
/// plus the TcpConfig fields the window-growth law reads, flattened to
/// plain doubles so the kernel layer stays free of net types. Filled by
/// net::estimate_throughput_batch, which owns the SSR application and
/// the candidate-independent precomputation.
struct TcpBatchParams {
  double cwnd0 = 0.0;      ///< post-SSR congestion window (segments)
  double ssthresh = 0.0;   ///< post-SSR slow-start threshold (segments)
  double min_rtt_s = 0.0;  ///< path minimum RTT
  double mss_bytes = 0.0;
  double rwnd_segments = 0.0;      ///< receive-window clamp on cwnd
  double init_cwnd = 0.0;          ///< BBR growth-law floor
  double hystart_bdp_fraction = 0.0;
  double data_segments = 0.0;      ///< ceil(size_bytes / mss_bytes)
  double size_bytes = 0.0;
  bool bbr = false;      ///< kBbrLike growth law (else cubic-like)
  bool hystart = false;  ///< delay-based slow-start exit enabled
};

/// One table of kernel entry points. All row pointers refer to padded
/// rows (stride multiple of math::kRowPadDoubles) unless noted.
struct KernelOps {
  const char* name = "";  ///< "scalar", "avx512", "avx2", "sse2", "neon"
  unsigned cpu_features = kCpuBaseline;

  /// Batched emission log-density: out[i] = log Normal(y; means[i], σ)
  /// for i < k, computed as -0.5 z² - log σ - 0.5 log 2π with z =
  /// (y - means[i]) / σ — the exact operation order of
  /// math::log_normal_pdf, so scalar and SIMD agree bitwise. Pads
  /// out[k..stride) with -inf. `means` only needs k readable entries.
  void (*emission_log_pdf_row)(double y, const double* means, std::size_t k,
                               std::size_t stride, double sigma,
                               double log_sigma, double half_log_2pi,
                               double* out);

  /// out[i] = exp(in[i] - shift) for i < n (any n; the hot path passes a
  /// full padded stride). SIMD uses the vexp approximation.
  void (*exp_rows)(const double* in, double shift, std::size_t n,
                   double* out);

  /// out[i] = log(in[i]) for i < n, std::log semantics (0 → -inf,
  /// negative → NaN). SIMD uses the vlog approximation.
  void (*log_rows)(const double* in, std::size_t n, double* out);

  /// One max-plus Viterbi step: for each state i < k,
  ///   curr[i] = max_j (prev[j] + log A^Δ(j, i)) + e_n[i]
  /// with back[i] = the smallest argmax j (first-strictly-greater update
  /// rule). prev/e_n/curr/back are padded rows; pads of curr end up -inf.
  /// Bit-identical between scalar and SIMD tables.
  void (*viterbi_step)(const double* prev, const DeltaTables& a,
                       std::size_t k, const double* e_n, double* curr,
                       std::uint32_t* back);

  /// One sum-product forward step: row[i] = (Σ_j prev[j] A^Δ(j, i)) ·
  /// em_n[i], accumulated in ascending j per output. Bit-identical
  /// between scalar and SIMD tables. Pads of row end up 0.
  void (*forward_step)(const double* prev, const DeltaTables& a,
                       std::size_t k, const double* em_n, double* row);

  /// One backward step: beta_n[i] = (Σ_j A^Δ(i, j) em_next[j]
  /// beta_next[j]) / scale, per-term order ((a·em)·beta), ascending j.
  /// Bit-identical between scalar and SIMD tables. Pads end up 0.
  /// When pair_total is non-null, additionally accumulates the pair
  /// posterior normalizer Σ_{i,j} alpha_n[i] A^Δ(i,j) em_next[j]
  /// beta_next[j] into *pair_total in the same sweep (the unscaled
  /// backward dot reused — one stream over A^Δ instead of two). The
  /// scalar table keeps the historical i-major j-minor term order
  /// (bit-identical to a separate pass); the SIMD table reassociates the
  /// sum across lanes (ulp-level difference).
  void (*backward_step)(const DeltaTables& a, std::size_t k,
                        const double* em_next, const double* beta_next,
                        double scale, double* beta_n, const double* alpha_n,
                        double* pair_total);

  /// Pair-posterior normalizer Σ_{i,j} alpha[i] A^Δ(i,j) em_next[j]
  /// beta_next[j]. The SIMD table reassociates the global sum across
  /// lanes (ulp-level difference from scalar).
  double (*pair_total)(const double* alpha_n, const DeltaTables& a,
                       std::size_t k, const double* em_next,
                       const double* beta_next);

  /// Batched TCP throughput estimator f across the candidate dimension:
  /// out[i] = f(candidates[i], W, S) for i < k, *bit-identical* to k
  /// scalar net::estimate_throughput_mbps calls on the pre-SSR state —
  /// the vector table evolves the TCP window in struct-of-arrays form
  /// across candidate lanes, replaying each lane's scalar operation
  /// order exactly (IEEE-exact lane arithmetic; the round count is an
  /// integer, so jumped phases only need the same count, enforced by the
  /// same rounding-slack guards as net::detail::count_rounds).
  ///
  /// Null in the scalar table: the scalar reference for a batch *is* the
  /// per-candidate composition, and net::estimate_throughput_batch runs
  /// that loop itself whenever this entry is null — so a forced-scalar
  /// or VERITAS_SIMD=OFF run takes literally the historical code path.
  /// `candidates` and `out` need only k valid entries (no padding).
  void (*estimate_batch)(const double* candidates, std::size_t k,
                         const TcpBatchParams& p, double* out);
};

/// The reference table (always available).
const KernelOps& scalar_ops();

/// The vectorized table, or nullptr when SIMD is compiled out or the CPU
/// lacks the compiled ISA. Stable for the process lifetime.
const KernelOps* simd_ops();

/// The opt-in AVX-512/FMA table, or nullptr when the toolchain could not
/// compile it, SIMD is compiled out, or the CPU lacks AVX-512F+DQ.
/// Stable for the process lifetime. Never selected by plain kAuto.
const KernelOps* avx512_ops();

/// The table the EHMM should use right now (mode / env / CPU resolved).
const KernelOps& active_ops();

/// Name of the table active_ops() currently returns — the *resolved*
/// kernel tier ("scalar" / "sse2" / "neon" / "avx2" / "avx512"), not the
/// compile switch; serve/bench output records this.
const char* backend_name();

enum class Mode {
  kAuto,          ///< simd when available (default; env var may veto or
                  ///< opt into avx512)
  kForceScalar,   ///< reference loops regardless of CPU
  kForceSimd,     ///< simd_ops() even if env said off (no-op when null)
  kForceAvx512,   ///< avx512_ops(), falling back to simd then scalar
};
Mode mode() noexcept;
void set_mode(Mode m) noexcept;

/// RAII mode override for tests and benchmarks.
class ScopedMode {
 public:
  explicit ScopedMode(Mode m) : saved_(mode()) { set_mode(m); }
  ~ScopedMode() { set_mode(saved_); }
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode saved_;
};

namespace detail {
/// Defined in math/simd_kernels_simd.cpp: the compiled vector table, or
/// nullptr when VERITAS_SIMD_DISABLED. Constant-initialized data — safe
/// to read on any CPU (the dispatcher checks cpu_features before use).
extern const KernelOps* const compiled_simd_table;
/// Defined in math/simd_kernels_avx512.cpp: the compiled AVX-512 table,
/// or nullptr when the toolchain lacks -mavx512f/-mavx512dq or
/// VERITAS_SIMD_DISABLED. Same constant-initialized safety contract.
extern const KernelOps* const compiled_avx512_table;
}  // namespace detail

}  // namespace veritas::math::simd_kernels
