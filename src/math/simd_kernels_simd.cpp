// Vectorized kernel table. This TU is compiled with the strongest SIMD
// flags the toolchain offers (CMake adds -mavx2 -ffp-contract=off on x86
// when available; AArch64 gets NEON by default), so math/simd.hpp picks
// the widest backend here. The dispatcher (simd_kernels_scalar.cpp) only
// routes calls into this TU after checking the table's cpu_features
// against the running CPU, and this TU exposes nothing but
// constant-initialized data, so merely linking it is safe on older CPUs.
//
// Vectorization strategy: the recursions vectorize across the *output*
// state dimension i in blocks of whole lanes, broadcasting the
// sequential j input. Each output's accumulation order therefore matches
// the scalar reference exactly, making viterbi/forward/backward steps
// bit-identical to scalar_ops(); only exp/log (polynomial approximation)
// and pair_total (lane-reassociated reduction) differ by ulps. Rows are
// padded to math::kRowPadDoubles with neutral elements (0 / -inf), so
// the lane loops never need tail masks.
#include "math/simd_kernels.hpp"

#ifndef VERITAS_SIMD_DISABLED

#include <cstddef>
#include <limits>

#include "math/simd.hpp"

namespace veritas::math::simd_kernels {
namespace {

namespace s = veritas::math::simd;

constexpr std::size_t kW = s::kLanes;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// --------------------------------------------------------------- emission

void emission_log_pdf_row_simd(double y, const double* means, std::size_t k,
                               std::size_t stride, double sigma,
                               double log_sigma, double half_log_2pi,
                               double* out) {
  const s::VecD vy = s::vset1(y);
  const s::VecD vsigma = s::vset1(sigma);
  const s::VecD vneg_half = s::vset1(-0.5);
  const s::VecD vlog_sigma = s::vset1(log_sigma);
  const s::VecD vhalf_log_2pi = s::vset1(half_log_2pi);
  // `means` may be an unpadded caller row: only read k entries.
  const std::size_t full = k - k % kW;
  for (std::size_t i = 0; i < full; i += kW) {
    const s::VecD z = s::vdiv(s::vsub(vy, s::vload(means + i)), vsigma);
    const s::VecD v = s::vsub(
        s::vsub(s::vmul(s::vmul(vneg_half, z), z), vlog_sigma),
        vhalf_log_2pi);
    s::vstore(out + i, v);
  }
  for (std::size_t i = full; i < k; ++i) {
    const double z = (y - means[i]) / sigma;
    out[i] = -0.5 * z * z - log_sigma - half_log_2pi;
  }
  for (std::size_t i = k; i < stride; ++i) out[i] = kNegInf;
}

// ---------------------------------------------------------------- exp/log

void exp_rows_simd(const double* in, double shift, std::size_t n,
                   double* out) {
  const s::VecD vshift = s::vset1(shift);
  const std::size_t full = n - n % kW;
  for (std::size_t i = 0; i < full; i += kW) {
    s::vstore(out + i, s::vexp(s::vsub(s::vload(in + i), vshift)));
  }
  if (full < n) {
    // Tail through a lane-wide buffer so every element goes through the
    // same approximation as the vector body.
    double buf[kW];
    for (std::size_t i = full; i < n; ++i) buf[i - full] = in[i] - shift;
    for (std::size_t i = n - full; i < kW; ++i) buf[i] = 0.0;
    s::VecD v = s::vexp(s::vload(buf));
    s::vstore(buf, v);
    for (std::size_t i = full; i < n; ++i) out[i] = buf[i - full];
  }
}

void log_rows_simd(const double* in, std::size_t n, double* out) {
  const std::size_t full = n - n % kW;
  for (std::size_t i = 0; i < full; i += kW) {
    s::vstore(out + i, s::vlog(s::vload(in + i)));
  }
  if (full < n) {
    double buf[kW];
    for (std::size_t i = full; i < n; ++i) buf[i - full] = in[i];
    for (std::size_t i = n - full; i < kW; ++i) buf[i] = 1.0;
    s::VecD v = s::vlog(s::vload(buf));
    s::vstore(buf, v);
    for (std::size_t i = full; i < n; ++i) out[i] = buf[i - full];
  }
}

// -------------------------------------------------------------- recursions

/// NV lanes-worth of Viterbi outputs starting at column `col`: per output
/// lane, iterate j ascending and keep the first strictly-greater
/// candidate — exactly the scalar argmax rule, so scores and backpointers
/// match the reference bitwise.
template <int NV>
void viterbi_cols(const double* prev, const double* log_p,
                  std::size_t stride, std::size_t k, const double* e_n,
                  double* curr, std::uint32_t* back, std::size_t col) {
  s::VecD best[NV];
  s::VecD idx[NV];
  for (int v = 0; v < NV; ++v) {
    best[v] = s::vset1(kNegInf);
    idx[v] = s::vzero();
  }
  const double* row_j = log_p + col;
  for (std::size_t j = 0; j < k; ++j, row_j += stride) {
    const s::VecD pj = s::vset1(prev[j]);
    const s::VecD vj = s::vset1(static_cast<double>(j));
    for (int v = 0; v < NV; ++v) {
      const s::VecD cand = s::vadd(pj, s::vload(row_j + v * kW));
      const s::VecD mask = s::vgt(cand, best[v]);
      best[v] = s::vblend(best[v], cand, mask);
      idx[v] = s::vblend(idx[v], vj, mask);
    }
  }
  for (int v = 0; v < NV; ++v) {
    s::vstore(curr + col + v * kW,
              s::vadd(best[v], s::vload(e_n + col + v * kW)));
    double lanes[kW];
    s::vstore(lanes, idx[v]);
    for (std::size_t l = 0; l < kW; ++l) {
      back[col + v * kW + l] = static_cast<std::uint32_t>(lanes[l]);
    }
  }
}

void viterbi_step_simd(const double* prev, const DeltaTables& a,
                       std::size_t k, const double* e_n, double* curr,
                       std::uint32_t* back) {
  const std::size_t stride = a.stride;
  std::size_t col = 0;
  while (col < stride) {
    const std::size_t nv = (stride - col) / kW < 4 ? (stride - col) / kW : 4;
    switch (nv) {
      case 1:
        viterbi_cols<1>(prev, a.log_p, stride, k, e_n, curr, back, col);
        break;
      case 2:
        viterbi_cols<2>(prev, a.log_p, stride, k, e_n, curr, back, col);
        break;
      case 3:
        viterbi_cols<3>(prev, a.log_p, stride, k, e_n, curr, back, col);
        break;
      default:
        viterbi_cols<4>(prev, a.log_p, stride, k, e_n, curr, back, col);
        break;
    }
    col += nv * kW;
  }
}

/// NV lanes-worth of forward outputs: acc[i] accumulates prev[j] ·
/// A^Δ(j, i) in ascending j — scalar order per output — then scales by
/// the emission row.
template <int NV>
void forward_cols(const double* prev, const double* p, std::size_t stride,
                  std::size_t k, const double* em_n, double* row,
                  std::size_t col) {
  s::VecD acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = s::vzero();
  const double* row_j = p + col;
  for (std::size_t j = 0; j < k; ++j, row_j += stride) {
    const s::VecD pj = s::vset1(prev[j]);
    for (int v = 0; v < NV; ++v) {
      acc[v] = s::vadd(acc[v], s::vmul(pj, s::vload(row_j + v * kW)));
    }
  }
  for (int v = 0; v < NV; ++v) {
    s::vstore(row + col + v * kW,
              s::vmul(acc[v], s::vload(em_n + col + v * kW)));
  }
}

void forward_step_simd(const double* prev, const DeltaTables& a,
                       std::size_t k, const double* em_n, double* row) {
  const std::size_t stride = a.stride;
  std::size_t col = 0;
  while (col < stride) {
    const std::size_t nv = (stride - col) / kW < 8 ? (stride - col) / kW : 8;
    switch (nv) {
      case 1:
        forward_cols<1>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 2:
        forward_cols<2>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 3:
        forward_cols<3>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 4:
        forward_cols<4>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 5:
        forward_cols<5>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 6:
        forward_cols<6>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 7:
        forward_cols<7>(prev, a.p, stride, k, em_n, row, col);
        break;
      default:
        forward_cols<8>(prev, a.p, stride, k, em_n, row, col);
        break;
    }
    col += nv * kW;
  }
}

/// NV lanes-worth of backward outputs over the transposed table: the
/// per-term order ((a · em) · beta) and ascending-j accumulation match
/// the scalar loop, so beta results are bit-identical. When WithPair,
/// the unscaled dots are additionally folded into *pair_acc against the
/// alpha row (pad lanes contribute exactly 0: alpha pads and
/// transposed-table pads are 0) — the pair normalizer reuses the sweep
/// instead of re-streaming A^Δ.
template <int NV, bool WithPair>
void backward_cols(const double* t, std::size_t stride, std::size_t k,
                   const double* em_next, const double* beta_next,
                   double scale, double* beta_n, const double* alpha_n,
                   s::VecD* pair_acc, std::size_t col) {
  s::VecD acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = s::vzero();
  const double* row_j = t + col;
  for (std::size_t j = 0; j < k; ++j, row_j += stride) {
    const s::VecD em_j = s::vset1(em_next[j]);
    const s::VecD beta_j = s::vset1(beta_next[j]);
    for (int v = 0; v < NV; ++v) {
      acc[v] = s::vadd(
          acc[v],
          s::vmul(s::vmul(s::vload(row_j + v * kW), em_j), beta_j));
    }
  }
  const s::VecD vscale = s::vset1(scale);
  for (int v = 0; v < NV; ++v) {
    if (WithPair) {
      *pair_acc = s::vadd(
          *pair_acc, s::vmul(s::vload(alpha_n + col + v * kW), acc[v]));
    }
    s::vstore(beta_n + col + v * kW, s::vdiv(acc[v], vscale));
  }
}

template <bool WithPair>
void backward_sweep(const DeltaTables& a, std::size_t k,
                    const double* em_next, const double* beta_next,
                    double scale, double* beta_n, const double* alpha_n,
                    double* pair_total) {
  const std::size_t stride = a.stride;
  s::VecD pair_acc = s::vzero();
  std::size_t col = 0;
  while (col < stride) {
    const std::size_t nv = (stride - col) / kW < 8 ? (stride - col) / kW : 8;
    switch (nv) {
      case 1:
        backward_cols<1, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 2:
        backward_cols<2, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 3:
        backward_cols<3, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 4:
        backward_cols<4, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 5:
        backward_cols<5, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 6:
        backward_cols<6, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 7:
        backward_cols<7, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      default:
        backward_cols<8, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
    }
    col += nv * kW;
  }
  if (WithPair) {
    double lanes[kW];
    s::vstore(lanes, pair_acc);
    double sum = 0.0;
    for (std::size_t l = 0; l < kW; ++l) sum += lanes[l];
    *pair_total = sum;
  }
}

void backward_step_simd(const DeltaTables& a, std::size_t k,
                        const double* em_next, const double* beta_next,
                        double scale, double* beta_n, const double* alpha_n,
                        double* pair_total) {
  if (alpha_n != nullptr && pair_total != nullptr) {
    backward_sweep<true>(a, k, em_next, beta_next, scale, beta_n, alpha_n,
                         pair_total);
  } else {
    backward_sweep<false>(a, k, em_next, beta_next, scale, beta_n, nullptr,
                          nullptr);
  }
}

double pair_total_simd(const double* alpha_n, const DeltaTables& a,
                       std::size_t k, const double* em_next,
                       const double* beta_next) {
  // Standalone pair normalizer (used when the backward sweep could not
  // fuse it): per i-lane dot over j, multiplied by alpha and reduced in
  // fixed lane order.
  const std::size_t stride = a.stride;
  s::VecD total = s::vzero();
  for (std::size_t col = 0; col < stride; col += kW) {
    s::VecD acc = s::vzero();
    const double* row_j = a.t + col;
    for (std::size_t j = 0; j < k; ++j, row_j += stride) {
      acc = s::vadd(acc, s::vmul(s::vmul(s::vload(row_j), s::vset1(em_next[j])),
                                 s::vset1(beta_next[j])));
    }
    total = s::vadd(total, s::vmul(s::vload(alpha_n + col), acc));
  }
  double lanes[kW];
  s::vstore(lanes, total);
  double sum = 0.0;
  for (std::size_t l = 0; l < kW; ++l) sum += lanes[l];
  return sum;
}

constexpr KernelOps kSimdOps = {
    VERITAS_SIMD_BACKEND_NAME,
#ifdef VERITAS_SIMD_BACKEND_AVX2
    kCpuAvx2,
#else
    kCpuBaseline,
#endif
    &emission_log_pdf_row_simd,
    &exp_rows_simd,
    &log_rows_simd,
    &viterbi_step_simd,
    &forward_step_simd,
    &backward_step_simd,
    &pair_total_simd,
};

}  // namespace

namespace detail {
const KernelOps* const compiled_simd_table = &kSimdOps;
}  // namespace detail

}  // namespace veritas::math::simd_kernels

#else  // VERITAS_SIMD_DISABLED

namespace veritas::math::simd_kernels::detail {
const KernelOps* const compiled_simd_table = nullptr;
}  // namespace veritas::math::simd_kernels::detail

#endif
