// Vectorized kernel table. This TU is compiled with the strongest SIMD
// flags the toolchain offers (CMake adds -mavx2 -ffp-contract=off on x86
// when available; AArch64 gets NEON by default), so math/simd.hpp picks
// the widest backend here. The dispatcher (simd_kernels_scalar.cpp) only
// routes calls into this TU after checking the table's cpu_features
// against the running CPU, and this TU exposes nothing but
// constant-initialized data, so merely linking it is safe on older CPUs.
//
// Vectorization strategy: the recursions vectorize across the *output*
// state dimension i in blocks of whole lanes, broadcasting the
// sequential j input. Each output's accumulation order therefore matches
// the scalar reference exactly, making viterbi/forward/backward steps
// bit-identical to scalar_ops(); only exp/log (polynomial approximation)
// and pair_total (lane-reassociated reduction) differ by ulps. Rows are
// padded to math::kRowPadDoubles with neutral elements (0 / -inf), so
// the lane loops never need tail masks.
#include "math/simd_kernels.hpp"

#ifndef VERITAS_SIMD_DISABLED

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "math/simd.hpp"

namespace veritas::math::simd_kernels {
namespace {

namespace s = veritas::math::simd;

constexpr std::size_t kW = s::kLanes;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// --------------------------------------------------------------- emission

void emission_log_pdf_row_simd(double y, const double* means, std::size_t k,
                               std::size_t stride, double sigma,
                               double log_sigma, double half_log_2pi,
                               double* out) {
  const s::VecD vy = s::vset1(y);
  const s::VecD vsigma = s::vset1(sigma);
  const s::VecD vneg_half = s::vset1(-0.5);
  const s::VecD vlog_sigma = s::vset1(log_sigma);
  const s::VecD vhalf_log_2pi = s::vset1(half_log_2pi);
  // `means` may be an unpadded caller row: only read k entries.
  const std::size_t full = k - k % kW;
  for (std::size_t i = 0; i < full; i += kW) {
    const s::VecD z = s::vdiv(s::vsub(vy, s::vload(means + i)), vsigma);
    const s::VecD v = s::vsub(
        s::vsub(s::vmul(s::vmul(vneg_half, z), z), vlog_sigma),
        vhalf_log_2pi);
    s::vstore(out + i, v);
  }
  for (std::size_t i = full; i < k; ++i) {
    const double z = (y - means[i]) / sigma;
    out[i] = -0.5 * z * z - log_sigma - half_log_2pi;
  }
  for (std::size_t i = k; i < stride; ++i) out[i] = kNegInf;
}

// ---------------------------------------------------------------- exp/log

void exp_rows_simd(const double* in, double shift, std::size_t n,
                   double* out) {
  const s::VecD vshift = s::vset1(shift);
  const std::size_t full = n - n % kW;
  for (std::size_t i = 0; i < full; i += kW) {
    s::vstore(out + i, s::vexp(s::vsub(s::vload(in + i), vshift)));
  }
  if (full < n) {
    // Tail through a lane-wide buffer so every element goes through the
    // same approximation as the vector body.
    double buf[kW];
    for (std::size_t i = full; i < n; ++i) buf[i - full] = in[i] - shift;
    for (std::size_t i = n - full; i < kW; ++i) buf[i] = 0.0;
    s::VecD v = s::vexp(s::vload(buf));
    s::vstore(buf, v);
    for (std::size_t i = full; i < n; ++i) out[i] = buf[i - full];
  }
}

void log_rows_simd(const double* in, std::size_t n, double* out) {
  const std::size_t full = n - n % kW;
  for (std::size_t i = 0; i < full; i += kW) {
    s::vstore(out + i, s::vlog(s::vload(in + i)));
  }
  if (full < n) {
    double buf[kW];
    for (std::size_t i = full; i < n; ++i) buf[i - full] = in[i];
    for (std::size_t i = n - full; i < kW; ++i) buf[i] = 1.0;
    s::VecD v = s::vlog(s::vload(buf));
    s::vstore(buf, v);
    for (std::size_t i = full; i < n; ++i) out[i] = buf[i - full];
  }
}

// -------------------------------------------------------------- recursions

/// NV lanes-worth of Viterbi outputs starting at column `col`. The j
/// inputs are consumed four at a time through an unrolled compare tree:
/// the four candidates reduce pairwise (strictly-greater picks the later
/// j, so ties keep the earlier one) and only the tree winner meets the
/// running best — the same first-strictly-greater argmax the scalar loop
/// computes, but the serial blend chain through (best, idx) shrinks from
/// one link per j to one per four, unclogging the dependency-bound
/// argmax (ROADMAP: the blend-heavy form was only 1.8x vectorized).
/// Scores and backpointers match the scalar reference bitwise.
template <int NV>
void viterbi_cols(const double* prev, const double* log_p,
                  std::size_t stride, std::size_t k, const double* e_n,
                  double* curr, std::uint32_t* back, std::size_t col) {
  s::VecD best[NV];
  s::VecD idx[NV];
  for (int v = 0; v < NV; ++v) {
    best[v] = s::vset1(kNegInf);
    idx[v] = s::vzero();
  }
  const double* row_j = log_p + col;
  std::size_t j = 0;
  for (const std::size_t j4 = k - k % 4; j < j4;
       j += 4, row_j += 4 * stride) {
    const s::VecD p0 = s::vset1(prev[j]);
    const s::VecD p1 = s::vset1(prev[j + 1]);
    const s::VecD p2 = s::vset1(prev[j + 2]);
    const s::VecD p3 = s::vset1(prev[j + 3]);
    const s::VecD i0 = s::vset1(static_cast<double>(j));
    const s::VecD i1 = s::vset1(static_cast<double>(j + 1));
    const s::VecD i2 = s::vset1(static_cast<double>(j + 2));
    const s::VecD i3 = s::vset1(static_cast<double>(j + 3));
    for (int v = 0; v < NV; ++v) {
      const s::VecD c0 = s::vadd(p0, s::vload(row_j + v * kW));
      const s::VecD c1 = s::vadd(p1, s::vload(row_j + stride + v * kW));
      const s::VecD c2 = s::vadd(p2, s::vload(row_j + 2 * stride + v * kW));
      const s::VecD c3 = s::vadd(p3, s::vload(row_j + 3 * stride + v * kW));
      const s::VecD m01 = s::vgt(c1, c0);
      const s::VecD v01 = s::vblend(c0, c1, m01);
      const s::VecD x01 = s::vblend(i0, i1, m01);
      const s::VecD m23 = s::vgt(c3, c2);
      const s::VecD v23 = s::vblend(c2, c3, m23);
      const s::VecD x23 = s::vblend(i2, i3, m23);
      const s::VecD m = s::vgt(v23, v01);
      const s::VecD vb = s::vblend(v01, v23, m);
      const s::VecD xb = s::vblend(x01, x23, m);
      const s::VecD upd = s::vgt(vb, best[v]);
      best[v] = s::vblend(best[v], vb, upd);
      idx[v] = s::vblend(idx[v], xb, upd);
    }
  }
  for (; j < k; ++j, row_j += stride) {
    const s::VecD pj = s::vset1(prev[j]);
    const s::VecD vj = s::vset1(static_cast<double>(j));
    for (int v = 0; v < NV; ++v) {
      const s::VecD cand = s::vadd(pj, s::vload(row_j + v * kW));
      const s::VecD mask = s::vgt(cand, best[v]);
      best[v] = s::vblend(best[v], cand, mask);
      idx[v] = s::vblend(idx[v], vj, mask);
    }
  }
  for (int v = 0; v < NV; ++v) {
    s::vstore(curr + col + v * kW,
              s::vadd(best[v], s::vload(e_n + col + v * kW)));
    double lanes[kW];
    s::vstore(lanes, idx[v]);
    for (std::size_t l = 0; l < kW; ++l) {
      back[col + v * kW + l] = static_cast<std::uint32_t>(lanes[l]);
    }
  }
}

void viterbi_step_simd(const double* prev, const DeltaTables& a,
                       std::size_t k, const double* e_n, double* curr,
                       std::uint32_t* back) {
  const std::size_t stride = a.stride;
  std::size_t col = 0;
  while (col < stride) {
    const std::size_t nv = (stride - col) / kW < 4 ? (stride - col) / kW : 4;
    switch (nv) {
      case 1:
        viterbi_cols<1>(prev, a.log_p, stride, k, e_n, curr, back, col);
        break;
      case 2:
        viterbi_cols<2>(prev, a.log_p, stride, k, e_n, curr, back, col);
        break;
      case 3:
        viterbi_cols<3>(prev, a.log_p, stride, k, e_n, curr, back, col);
        break;
      default:
        viterbi_cols<4>(prev, a.log_p, stride, k, e_n, curr, back, col);
        break;
    }
    col += nv * kW;
  }
}

/// NV lanes-worth of forward outputs: acc[i] accumulates prev[j] ·
/// A^Δ(j, i) in ascending j — scalar order per output — then scales by
/// the emission row.
template <int NV>
void forward_cols(const double* prev, const double* p, std::size_t stride,
                  std::size_t k, const double* em_n, double* row,
                  std::size_t col) {
  s::VecD acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = s::vzero();
  const double* row_j = p + col;
  for (std::size_t j = 0; j < k; ++j, row_j += stride) {
    const s::VecD pj = s::vset1(prev[j]);
    for (int v = 0; v < NV; ++v) {
      acc[v] = s::vadd(acc[v], s::vmul(pj, s::vload(row_j + v * kW)));
    }
  }
  for (int v = 0; v < NV; ++v) {
    s::vstore(row + col + v * kW,
              s::vmul(acc[v], s::vload(em_n + col + v * kW)));
  }
}

void forward_step_simd(const double* prev, const DeltaTables& a,
                       std::size_t k, const double* em_n, double* row) {
  const std::size_t stride = a.stride;
  std::size_t col = 0;
  while (col < stride) {
    const std::size_t nv = (stride - col) / kW < 8 ? (stride - col) / kW : 8;
    switch (nv) {
      case 1:
        forward_cols<1>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 2:
        forward_cols<2>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 3:
        forward_cols<3>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 4:
        forward_cols<4>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 5:
        forward_cols<5>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 6:
        forward_cols<6>(prev, a.p, stride, k, em_n, row, col);
        break;
      case 7:
        forward_cols<7>(prev, a.p, stride, k, em_n, row, col);
        break;
      default:
        forward_cols<8>(prev, a.p, stride, k, em_n, row, col);
        break;
    }
    col += nv * kW;
  }
}

/// NV lanes-worth of backward outputs over the transposed table: the
/// per-term order ((a · em) · beta) and ascending-j accumulation match
/// the scalar loop, so beta results are bit-identical. When WithPair,
/// the unscaled dots are additionally folded into *pair_acc against the
/// alpha row (pad lanes contribute exactly 0: alpha pads and
/// transposed-table pads are 0) — the pair normalizer reuses the sweep
/// instead of re-streaming A^Δ.
template <int NV, bool WithPair>
void backward_cols(const double* t, std::size_t stride, std::size_t k,
                   const double* em_next, const double* beta_next,
                   double scale, double* beta_n, const double* alpha_n,
                   s::VecD* pair_acc, std::size_t col) {
  s::VecD acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = s::vzero();
  const double* row_j = t + col;
  for (std::size_t j = 0; j < k; ++j, row_j += stride) {
    const s::VecD em_j = s::vset1(em_next[j]);
    const s::VecD beta_j = s::vset1(beta_next[j]);
    for (int v = 0; v < NV; ++v) {
      acc[v] = s::vadd(
          acc[v],
          s::vmul(s::vmul(s::vload(row_j + v * kW), em_j), beta_j));
    }
  }
  const s::VecD vscale = s::vset1(scale);
  for (int v = 0; v < NV; ++v) {
    if (WithPair) {
      *pair_acc = s::vadd(
          *pair_acc, s::vmul(s::vload(alpha_n + col + v * kW), acc[v]));
    }
    s::vstore(beta_n + col + v * kW, s::vdiv(acc[v], vscale));
  }
}

template <bool WithPair>
void backward_sweep(const DeltaTables& a, std::size_t k,
                    const double* em_next, const double* beta_next,
                    double scale, double* beta_n, const double* alpha_n,
                    double* pair_total) {
  const std::size_t stride = a.stride;
  s::VecD pair_acc = s::vzero();
  std::size_t col = 0;
  while (col < stride) {
    const std::size_t nv = (stride - col) / kW < 8 ? (stride - col) / kW : 8;
    switch (nv) {
      case 1:
        backward_cols<1, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 2:
        backward_cols<2, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 3:
        backward_cols<3, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 4:
        backward_cols<4, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 5:
        backward_cols<5, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 6:
        backward_cols<6, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      case 7:
        backward_cols<7, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
      default:
        backward_cols<8, WithPair>(a.t, stride, k, em_next, beta_next, scale,
                                   beta_n, alpha_n, &pair_acc, col);
        break;
    }
    col += nv * kW;
  }
  if (WithPair) {
    double lanes[kW];
    s::vstore(lanes, pair_acc);
    double sum = 0.0;
    for (std::size_t l = 0; l < kW; ++l) sum += lanes[l];
    *pair_total = sum;
  }
}

void backward_step_simd(const DeltaTables& a, std::size_t k,
                        const double* em_next, const double* beta_next,
                        double scale, double* beta_n, const double* alpha_n,
                        double* pair_total) {
  if (alpha_n != nullptr && pair_total != nullptr) {
    backward_sweep<true>(a, k, em_next, beta_next, scale, beta_n, alpha_n,
                         pair_total);
  } else {
    backward_sweep<false>(a, k, em_next, beta_next, scale, beta_n, nullptr,
                          nullptr);
  }
}

double pair_total_simd(const double* alpha_n, const DeltaTables& a,
                       std::size_t k, const double* em_next,
                       const double* beta_next) {
  // Standalone pair normalizer (used when the backward sweep could not
  // fuse it): per i-lane dot over j, multiplied by alpha and reduced in
  // fixed lane order.
  const std::size_t stride = a.stride;
  s::VecD total = s::vzero();
  for (std::size_t col = 0; col < stride; col += kW) {
    s::VecD acc = s::vzero();
    const double* row_j = a.t + col;
    for (std::size_t j = 0; j < k; ++j, row_j += stride) {
      acc = s::vadd(acc, s::vmul(s::vmul(s::vload(row_j), s::vset1(em_next[j])),
                                 s::vset1(beta_next[j])));
    }
    total = s::vadd(total, s::vmul(s::vload(alpha_n + col), acc));
  }
  double lanes[kW];
  s::vstore(lanes, total);
  double sum = 0.0;
  for (std::size_t l = 0; l < kW; ++l) sum += lanes[l];
  return sum;
}

// ------------------------------------------------ batched TCP estimator
//
// net::estimate_throughput_mbps evaluated for a whole candidate row in
// struct-of-arrays form: each lane holds one candidate GTBW, and the TCP
// window evolves branch-free across the lane group (slow-start / BBR
// doublings and clamp transients stay vectorized; masks freeze finished
// lanes). A lane leaves the vector loop as soon as it reaches a phase
// the scalar closed form can jump — the constant-send tail or a cubic
// congestion-avoidance run — and finishes through finish_rounds(), a
// per-lane continuation of net::detail::count_rounds from the lane's
// mid-stream state. Lane arithmetic is IEEE-exact and replays the scalar
// operation order, the jumps carry the same rounding-slack guards as the
// net closed form, and the round count is an integer — so the batch is
// bit-identical to k scalar estimator calls for Cubic and BBR states
// alike (pinned by tests/net/throughput_batch_test.cpp).
//
// The window-growth law below is a deliberate double-precision replica
// of net::grow_window / net::in_slow_start over the flattened
// TcpBatchParams; the equivalence suite is what keeps the two in sync.

/// Scalar replica of net::grow_window for one lane.
double grow_window_lane(double cwnd, double bdp, const TcpBatchParams& p) {
  if (p.bbr) {
    const double target = 2.0 * bdp;
    const double grown =
        cwnd < target ? std::min(2.0 * cwnd, target) : target;
    return std::min(std::max(grown, p.init_cwnd), p.rwnd_segments);
  }
  const bool delay_exit =
      p.hystart && cwnd >= p.hystart_bdp_fraction * bdp;
  const bool in_ss = cwnd < p.ssthresh && !delay_exit;
  const double grown = in_ss ? 2.0 * cwnd : cwnd + 1.0;
  return std::min(grown, p.rwnd_segments);
}

/// See net::detail::on_coarse_grid — multiples of 2^-20 below 2^26, the
/// grid on which the congestion-avoidance series is exact.
bool on_coarse_grid_lane(double w) {
  if (!(w >= 0.0) || w >= 67108864.0) return false;
  const double scaled = w * 1048576.0;
  return scaled == std::floor(scaled);
}

double ca_sum_lane(double c, double r) {
  return r * c + r * (r - 1.0) * 0.5;
}

/// Continues the round count from a mid-stream lane state (cwnd, sent,
/// rounds). Returns the same integer the per-round reference loop
/// (net::detail::count_rounds_iterative) reaches from the original
/// inputs: the literal steps taken so far replayed its accumulator
/// bit-exactly, and every jump below is either exact on the coarse
/// window grid or guarded by the same rounding-slack checks as
/// net::detail::count_rounds — a tripped guard resumes bit-exact literal
/// stepping instead of jumping.
long finish_rounds(double cwnd, double sent, long rounds, double bdp,
                   const TcpBatchParams& p) {
  const double data = p.data_segments;
  const double slack = 1e-9 * (data + 1.0);
  const bool cubic = !p.bbr;
  for (int steps = 0; steps < 512; ++steps) {
    if (sent >= data) return rounds;
    const double send = std::min(cwnd, bdp);
    const double next = grow_window_lane(cwnd, bdp, p);
    const bool fixed_point = next == cwnd;
    const bool saturated = send == bdp && next >= cwnd;
    if (fixed_point || saturated) {
      const double per = fixed_point ? send : bdp;
      if (!(per > 0.0)) break;
      const double remaining = data - sent;
      const double ratio = remaining / per;
      if (!(ratio < 4e6)) break;
      long n = static_cast<long>(std::ceil(ratio));
      if (n < 1) n = 1;
      while (n > 1 && static_cast<double>(n - 1) * per >= remaining) --n;
      while (static_cast<double>(n) * per < remaining) ++n;
      const double lo = remaining - static_cast<double>(n - 1) * per;
      const double hi = static_cast<double>(n) * per - remaining;
      if (lo < slack || hi < slack) break;
      return rounds + n;
    }
    if (cubic && next == cwnd + 1.0) {
      const bool delay_exit =
          p.hystart && cwnd >= p.hystart_bdp_fraction * bdp;
      if (!(cwnd < p.ssthresh && !delay_exit)) {
        if (!on_coarse_grid_lane(cwnd) || !on_coarse_grid_lane(sent) ||
            data >= 1073741824.0) {
          break;
        }
        const double bound = std::min(bdp, p.rwnd_segments);
        long t_max = static_cast<long>(std::floor(bound - cwnd));
        while (cwnd + static_cast<double>(t_max + 1) <= bound) ++t_max;
        while (t_max > 0 && cwnd + static_cast<double>(t_max) > bound)
          --t_max;
        if (t_max < 0) t_max = 0;
        const long run = t_max + 1;
        if (cwnd + static_cast<double>(run) >= 67108864.0) break;
        const double need = data - sent;
        const double c2 = 2.0 * cwnd - 1.0;
        long r = static_cast<long>(
            std::ceil((std::sqrt(c2 * c2 + 8.0 * need) - c2) * 0.5));
        r = std::clamp(r, 1L, run);
        while (r > 1 && ca_sum_lane(cwnd, static_cast<double>(r - 1)) >= need)
          --r;
        while (r < run && ca_sum_lane(cwnd, static_cast<double>(r)) < need)
          ++r;
        if (ca_sum_lane(cwnd, static_cast<double>(r)) >= need) {
          return rounds + r;
        }
        sent += ca_sum_lane(cwnd, static_cast<double>(run));
        rounds += run;
        cwnd = std::min(cwnd + static_cast<double>(run), p.rwnd_segments);
        continue;
      }
    }
    sent += send;
    cwnd = next;
    ++rounds;
  }
  // A guard tripped: literal reference stepping from the current state —
  // a bit-exact continuation of the per-round loop.
  while (sent < data) {
    sent += std::min(cwnd, bdp);
    cwnd = grow_window_lane(cwnd, bdp, p);
    ++rounds;
  }
  return rounds;
}

void estimate_batch_simd(const double* candidates, std::size_t k,
                         const TcpBatchParams& p, double* out) {
  // Candidate-independent shared terms, in the scalar path's operation
  // order (computed once instead of once per candidate).
  const double one_rtt_mbps = p.size_bytes * 8.0 / 1e6 / p.min_rtt_s;
  const double s8 = p.size_bytes * 8.0 / 1e6;
  const s::VecD vcwnd0 = s::vset1(p.cwnd0);
  const s::VecD vdata = s::vset1(p.data_segments);
  const s::VecD vtrue = s::veq(s::vzero(), s::vzero());

  for (std::size_t col = 0; col < k; col += kW) {
    const std::size_t lanes = k - col < kW ? k - col : kW;
    double cbuf[kW];
    for (std::size_t l = 0; l < lanes; ++l) cbuf[l] = candidates[col + l];
    for (std::size_t l = lanes; l < kW; ++l) cbuf[l] = 0.0;  // idle pads
    const s::VecD c = s::vload(cbuf);

    // Per-lane BDP, replaying net::bdp_segments' operation order.
    const s::VecD bdp =
        s::vdiv(s::vmul(s::vdiv(s::vmul(c, s::vset1(1e6)), s::vset1(8.0)),
                        s::vset1(p.min_rtt_s)),
                s::vset1(p.mss_bytes));

    // Zero candidates and branch 1 (the window already covers the
    // pipe: link- or one-RTT-limited), resolved branch-free.
    const s::VecD zero_mask = s::veq(c, s::vzero());
    const s::VecD covered = s::vgt(vcwnd0, bdp);
    const s::VecD b1 =
        s::vblend(s::vset1(one_rtt_mbps), c, s::vgt(vdata, bdp));
    s::VecD res = s::vblend(s::vzero(), b1, covered);
    res = s::vblend(res, s::vzero(), zero_mask);
    const s::VecD branch2 = s::vandnot(s::vor(zero_mask, covered), vtrue);

    double b2flag[kW];
    s::vstore(b2flag, branch2);
    double rounds_arr[kW] = {0.0};
    bool have_rounds[kW] = {false};

    if (s::vany(branch2)) {
      s::VecD cwnd = vcwnd0;
      s::VecD sent = s::vzero();
      s::VecD rounds = s::vzero();
      s::VecD active = branch2;

      // Drains `mask` lanes into finish_rounds from their mid-stream
      // state, recording the final per-lane round counts.
      const auto drain = [&](s::VecD mask) {
        double lv[kW], cw[kW], st[kW], rd[kW], bd[kW];
        s::vstore(lv, mask);
        s::vstore(cw, cwnd);
        s::vstore(st, sent);
        s::vstore(rd, rounds);
        s::vstore(bd, bdp);
        for (std::size_t l = 0; l < kW; ++l) {
          if (lv[l] == 0.0) continue;
          rounds_arr[l] = static_cast<double>(finish_rounds(
              cw[l], st[l], static_cast<long>(rd[l]), bd[l], p));
          have_rounds[l] = true;
        }
      };

      // Lockstep literal rounds: only exponential-growth steps stay in
      // the loop (a lane leaves the moment the closed form can take
      // over), so it terminates within ~60 iterations for any sane
      // state; the cap is a belt-and-braces bound.
      for (int iter = 0; iter < 2048 && s::vany(active); ++iter) {
        const s::VecD send = s::vmin(cwnd, bdp);
        s::VecD next;
        s::VecD ca_mask = s::vzero();  // all-false
        if (p.bbr) {
          const s::VecD target = s::vmul(s::vset1(2.0), bdp);
          const s::VecD grown =
              s::vblend(target, s::vmin(s::vmul(s::vset1(2.0), cwnd), target),
                        s::vlt(cwnd, target));
          next = s::vmin(s::vmax(grown, s::vset1(p.init_cwnd)),
                         s::vset1(p.rwnd_segments));
        } else {
          const s::VecD delay_exit =
              p.hystart
                  ? s::vge(cwnd,
                           s::vmul(s::vset1(p.hystart_bdp_fraction), bdp))
                  : s::vzero();
          const s::VecD in_ss =
              s::vandnot(delay_exit, s::vlt(cwnd, s::vset1(p.ssthresh)));
          const s::VecD grown =
              s::vblend(s::vadd(cwnd, s::vset1(1.0)),
                        s::vmul(s::vset1(2.0), cwnd), in_ss);
          next = s::vmin(grown, s::vset1(p.rwnd_segments));
          // A +1 step outside slow start opens a congestion-avoidance
          // run the closed form jumps as an arithmetic series.
          ca_mask = s::vandnot(
              in_ss, s::veq(next, s::vadd(cwnd, s::vset1(1.0))));
        }
        const s::VecD fixed = s::veq(next, cwnd);
        const s::VecD saturated =
            s::vand(s::veq(send, bdp), s::vge(next, cwnd));
        const s::VecD leave =
            s::vand(active, s::vor(s::vor(fixed, saturated), ca_mask));
        if (s::vany(leave)) {
          drain(leave);
          active = s::vandnot(leave, active);
          if (!s::vany(active)) break;
        }
        // One literal round for the lanes still growing — a bit-exact
        // replay of the reference loop's per-lane accumulator.
        sent = s::vblend(sent, s::vadd(sent, send), active);
        cwnd = s::vblend(cwnd, next, active);
        rounds = s::vblend(rounds, s::vadd(rounds, s::vset1(1.0)), active);
        active = s::vandnot(s::vge(sent, vdata), active);
      }
      if (s::vany(active)) drain(active);  // cap survivors finish scalar

      // Lanes that completed inside the loop carry their count in the
      // register.
      double rd[kW];
      s::vstore(rd, rounds);
      for (std::size_t l = 0; l < kW; ++l) {
        if (b2flag[l] != 0.0 && !have_rounds[l]) rounds_arr[l] = rd[l];
      }
    }

    // Fold the row: branch-2 lanes through the scalar path's exact final
    // expression, the rest from the branch-free result.
    double res_arr[kW];
    s::vstore(res_arr, res);
    for (std::size_t l = 0; l < lanes; ++l) {
      if (b2flag[l] != 0.0) {
        const double estimated = s8 / (rounds_arr[l] * p.min_rtt_s);
        out[col + l] = std::min(estimated, cbuf[l]);
      } else {
        out[col + l] = res_arr[l];
      }
    }
  }
}

constexpr KernelOps kSimdOps = {
    VERITAS_SIMD_BACKEND_NAME,
#ifdef VERITAS_SIMD_BACKEND_AVX2
    kCpuAvx2,
#else
    kCpuBaseline,
#endif
    &emission_log_pdf_row_simd,
    &exp_rows_simd,
    &log_rows_simd,
    &viterbi_step_simd,
    &forward_step_simd,
    &backward_step_simd,
    &pair_total_simd,
    &estimate_batch_simd,
};

}  // namespace

namespace detail {
const KernelOps* const compiled_simd_table = &kSimdOps;
}  // namespace detail

}  // namespace veritas::math::simd_kernels

#else  // VERITAS_SIMD_DISABLED

namespace veritas::math::simd_kernels::detail {
const KernelOps* const compiled_simd_table = nullptr;
}  // namespace veritas::math::simd_kernels::detail

#endif
