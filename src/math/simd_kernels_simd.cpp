// Default-tier vectorized kernel table. This TU is compiled with the
// strongest *bit-exact* SIMD flags the toolchain offers (CMake adds
// -mavx2 -ffp-contract=off on x86 when available; AArch64 gets NEON by
// default), so math/simd.hpp picks the widest non-FMA backend here and
// the shared kernel body (math/simd_kernels_body.inc) stays
// bit-identical to the scalar reference for the recursions. The opt-in
// AVX-512/FMA tier compiles the same body in
// math/simd_kernels_avx512.cpp. The dispatcher
// (simd_kernels_scalar.cpp) only routes calls into this TU after
// checking the table's cpu_features against the running CPU, and this
// TU exposes nothing but constant-initialized data, so merely linking
// it is safe on older CPUs.
#include "math/simd_kernels.hpp"

#ifndef VERITAS_SIMD_DISABLED

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "math/simd.hpp"

namespace veritas::math::simd_kernels {
namespace {
#include "math/simd_kernels_body.inc"
}  // namespace

namespace detail {
const KernelOps* const compiled_simd_table = &kVectorOps;
}  // namespace detail

}  // namespace veritas::math::simd_kernels

#else  // VERITAS_SIMD_DISABLED

namespace veritas::math::simd_kernels::detail {
const KernelOps* const compiled_simd_table = nullptr;
}  // namespace veritas::math::simd_kernels::detail

#endif
