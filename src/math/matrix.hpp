// Small dense matrix used for HMM transition matrices (tens of states).
// Row-major storage; the only non-trivial operation the EHMM needs is the
// integer matrix power A^Δ (exponentiation by squaring).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace veritas::math {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer-like data; each inner vector is a row
  /// and all rows must have equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Read-only view of row r.
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Raw pointer to row r (contiguous, cols() entries) for hot loops.
  double* row_data(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const double* row_data(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  /// Reshapes to rows x cols and refills every entry, reusing the
  /// existing allocation when capacity suffices. Requires rows, cols > 0.
  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Matrix product; requires this->cols() == rhs.rows().
  Matrix operator*(const Matrix& rhs) const;

  /// out = (*this) * rhs, reusing out's storage (no allocation when out
  /// already holds rows() x rhs.cols()). out must not alias an operand.
  void multiply_into(const Matrix& rhs, Matrix& out) const;

  /// Matrix-vector product; requires v.size() == cols().
  std::vector<double> operator*(std::span<const double> v) const;

  /// Transpose.
  Matrix transposed() const;

  /// Element-wise maximum absolute difference; requires equal shapes.
  double max_abs_diff(const Matrix& rhs) const;

  /// True when square, entries >= -tol and every row sums to 1 +- tol.
  bool is_row_stochastic(double tol = 1e-9) const;

  /// Underlying storage (row-major), e.g. for serialization.
  std::span<const double> data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// A^power for a square matrix via exponentiation by squaring.
/// power == 0 yields the identity.
Matrix matrix_power(const Matrix& a, std::size_t power);

}  // namespace veritas::math
