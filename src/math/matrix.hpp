// Small dense matrix used for HMM transition matrices (tens of states).
// Row-major storage; the only non-trivial operation the EHMM needs is the
// integer matrix power A^Δ (exponentiation by squaring).
//
// Rows can optionally be *padded*: resize_padded() rounds the physical
// row stride up to kRowPadDoubles and fills the pad entries, so SIMD
// kernels can load full lanes past column k without masking and without
// reading out of bounds. Logical shape (rows()/cols()) and every indexed
// accessor are unaffected by padding; only data() exposes the pad words.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace veritas::math {

/// Row stride quantum (in doubles) for padded matrices. A multiple of
/// every supported SIMD lane width (scalar 1, SSE2/NEON 2, AVX2 4,
/// AVX-512 8), so padded rows always hold a whole number of lanes.
inline constexpr std::size_t kRowPadDoubles = 8;

/// `cols` rounded up to the row-pad quantum.
constexpr std::size_t padded_cols(std::size_t cols) {
  return (cols + kRowPadDoubles - 1) / kRowPadDoubles * kRowPadDoubles;
}

/// Minimal aligned allocator so padded matrix rows start on a cache/SIMD
/// friendly boundary (vector loads stay unmasked *and* aligned when the
/// stride is a lane multiple).
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;
  // The non-type Alignment parameter defeats allocator_traits' default
  // rebind; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// Dense row-major matrix of doubles (optionally with padded rows).
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill` (unpadded: stride == cols).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer-like data; each inner vector is a row
  /// and all rows must have equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  /// Physical distance (in doubles) between consecutive rows. Equals
  /// cols() for unpadded matrices, padded_cols(cols()) after
  /// resize_padded().
  std::size_t col_stride() const noexcept { return stride_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * stride_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * stride_ + c];
  }

  /// Read-only view of row r (logical entries only, pads excluded).
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * stride_, cols_};
  }

  /// Raw pointer to row r (contiguous, cols() logical entries followed by
  /// col_stride() - cols() pad entries) for hot loops.
  double* row_data(std::size_t r) noexcept {
    return data_.data() + r * stride_;
  }
  const double* row_data(std::size_t r) const noexcept {
    return data_.data() + r * stride_;
  }

  /// Reshapes to rows x cols and refills every entry, reusing the
  /// existing allocation when capacity suffices. Requires rows, cols > 0.
  /// Rows become unpadded (stride == cols).
  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Like resize, but rounds the row stride up to kRowPadDoubles and
  /// fills pad entries with `fill` too. Kernel loads past column k then
  /// stay in bounds, so inner loops need no tail masking.
  void resize_padded(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Matrix product; requires this->cols() == rhs.rows().
  Matrix operator*(const Matrix& rhs) const;

  /// out = (*this) * rhs, reusing out's storage (no allocation when out
  /// already holds rows() x rhs.cols()). out must not alias an operand.
  void multiply_into(const Matrix& rhs, Matrix& out) const;

  /// Matrix-vector product; requires v.size() == cols().
  std::vector<double> operator*(std::span<const double> v) const;

  /// Transpose (of the logical entries; result is unpadded).
  Matrix transposed() const;

  /// Element-wise maximum absolute difference over the logical entries;
  /// requires equal logical shapes (strides may differ).
  double max_abs_diff(const Matrix& rhs) const;

  /// True when square, entries >= -tol and every row sums to 1 +- tol.
  bool is_row_stochastic(double tol = 1e-9) const;

  /// Underlying storage (row-major, *including* pad entries when the
  /// matrix is padded), e.g. for serialization of unpadded matrices.
  std::span<const double> data() const noexcept { return data_; }

 private:
  void reshape(std::size_t rows, std::size_t cols, std::size_t stride,
               double fill);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::vector<double, AlignedAllocator<double, 64>> data_;
};

/// A^power for a square matrix via exponentiation by squaring.
/// power == 0 yields the identity.
Matrix matrix_power(const Matrix& a, std::size_t power);

}  // namespace veritas::math
