// Opt-in AVX-512/FMA kernel tier: the same shared kernel body as the
// default vector TU (math/simd_kernels_body.inc), compiled with
// -mavx512f -mavx512dq so math/simd.hpp picks the 8-lane AVX-512
// backend, whose vmuladd is a true fused multiply-add. Consequences:
//
//   * forward/backward/pair accumulations and the vexp/vlog polynomials
//     fuse their mul+add pairs — results differ from the scalar
//     reference by ulps, which is why this tier is opt-in
//     (VERITAS_SIMD=avx512 / Mode::kForceAvx512) and tolerance-gated by
//     tests/core/kernel_equivalence_test.cpp instead of bit-exact.
//   * the viterbi recursion (max-plus, nothing to fuse), the emission
//     log-pdf row, and the batched TCP estimator are written without
//     vmuladd and stay bit-identical to the scalar reference even here.
//
// When the toolchain lacks the flags (or the build disabled SIMD) the
// table collapses to nullptr and the dispatcher never offers the tier;
// a host without the ISA is rejected at run time via cpu_features. Like
// the default vector TU, this one exposes only constant-initialized
// data, so linking it is always safe.
#include "math/simd_kernels.hpp"

#if !defined(VERITAS_SIMD_DISABLED) && defined(__AVX512F__) && \
    defined(__AVX512DQ__)

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "math/simd.hpp"

static_assert(veritas::math::simd::kLanes == 8,
              "the AVX-512 TU must select the 8-lane backend");

namespace veritas::math::simd_kernels {
namespace {
#include "math/simd_kernels_body.inc"
}  // namespace

namespace detail {
const KernelOps* const compiled_avx512_table = &kVectorOps;
}  // namespace detail

}  // namespace veritas::math::simd_kernels

#else  // !AVX-512 toolchain or VERITAS_SIMD_DISABLED

namespace veritas::math::simd_kernels::detail {
const KernelOps* const compiled_avx512_table = nullptr;
}  // namespace veritas::math::simd_kernels::detail

#endif
