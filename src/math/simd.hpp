// Portable SIMD lane layer for the EHMM hot kernels.
//
// One backend is selected *per translation unit* at compile time:
//
//   AVX-512 (8 x double) when the TU is compiled with -mavx512f -mavx512dq
//   AVX2 (4 x double)  when the TU is compiled with -mavx2 (__AVX2__)
//   SSE2 (2 x double)  on x86-64 baseline (__SSE2__)
//   NEON (2 x double)  on AArch64 (__ARM_NEON with 64-bit FP lanes)
//   scalar (1 lane)    everywhere else, or under VERITAS_SIMD_FORCE_SCALAR
//
// Every function here is `static inline`: the definitions legitimately
// differ between TUs compiled with different ISA flags, so they must have
// internal linkage (an `inline` function with divergent definitions would
// be an ODR violation). Do not take their address across TU boundaries;
// export a table of wrapper functions instead (see math/simd_kernels.*).
//
// Arithmetic lane ops (vadd/vsub/vmul/vdiv/vmax) are IEEE-754 exact per
// lane — a vectorized loop that preserves the scalar per-element
// operation order is bit-identical to the scalar loop. The one deliberate
// exception is vmuladd(a, b, c) = a*b + c: on every backend except
// AVX-512 it is the exact two-rounding mul-then-add (so AVX2/SSE2/NEON
// kernels stay bit-identical to scalar), while the AVX-512 backend emits
// a fused multiply-add with a single rounding — which is why the AVX-512
// kernel tier is opt-in and tolerance-gated rather than bit-exact (see
// math/simd_kernels.hpp). The transcendental approximations vexp/vlog
// are Cephes-style rational polynomials accurate to a couple of ulp;
// they are property-tested against libm in tests/math/simd_test.cpp and
// their consumers are covered by the SIMD/scalar equivalence suites.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstddef>
#include <limits>

#if !defined(VERITAS_SIMD_FORCE_SCALAR) && \
    (defined(__AVX2__) || defined(__SSE2__) || defined(__x86_64__))
#include <immintrin.h>
#endif
#if !defined(VERITAS_SIMD_FORCE_SCALAR) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace veritas::math::simd {

// -------------------------------------------------------------- AVX-512
// Gated on F+DQ: DQ supplies the mask<->vector moves (movm_epi64 /
// movepi64_mask) and the 64-bit integer converts (cvtpd_epi64 /
// cvtepu64_pd) the mask-as-vector interface and vpow2i/vfrexp lean on.
// Every AVX-512 server core since Skylake-SP ships both.
#if !defined(VERITAS_SIMD_FORCE_SCALAR) && defined(__AVX512F__) && \
    defined(__AVX512DQ__)
#define VERITAS_SIMD_BACKEND_NAME "avx512"
#define VERITAS_SIMD_BACKEND_AVX512 1

using VecD = __m512d;
constexpr std::size_t kLanes = 8;

namespace detail {
/// Compare results travel as all-ones / all-zero vector lanes here like
/// on every other backend (the kernels blend and combine them freely);
/// these two hops convert to/from the native __mmask8 at the use sites.
static inline VecD mask_to_vec(__mmask8 m) {
  return _mm512_castsi512_pd(_mm512_movm_epi64(m));
}
static inline __mmask8 vec_to_mask(VecD v) {
  return _mm512_movepi64_mask(_mm512_castpd_si512(v));
}
}  // namespace detail

static inline VecD vload(const double* p) { return _mm512_loadu_pd(p); }
static inline void vstore(double* p, VecD v) { _mm512_storeu_pd(p, v); }
static inline VecD vset1(double x) { return _mm512_set1_pd(x); }
static inline VecD vzero() { return _mm512_setzero_pd(); }
static inline VecD vadd(VecD a, VecD b) { return _mm512_add_pd(a, b); }
static inline VecD vsub(VecD a, VecD b) { return _mm512_sub_pd(a, b); }
static inline VecD vmul(VecD a, VecD b) { return _mm512_mul_pd(a, b); }
static inline VecD vdiv(VecD a, VecD b) { return _mm512_div_pd(a, b); }
static inline VecD vmax(VecD a, VecD b) { return _mm512_max_pd(a, b); }
static inline VecD vmin(VecD a, VecD b) { return _mm512_min_pd(a, b); }
static inline VecD vgt(VecD a, VecD b) {
  return detail::mask_to_vec(_mm512_cmp_pd_mask(a, b, _CMP_GT_OQ));
}
static inline VecD vlt(VecD a, VecD b) {
  return detail::mask_to_vec(_mm512_cmp_pd_mask(a, b, _CMP_LT_OQ));
}
static inline VecD veq(VecD a, VecD b) {
  return detail::mask_to_vec(_mm512_cmp_pd_mask(a, b, _CMP_EQ_OQ));
}
static inline VecD vge(VecD a, VecD b) {
  return detail::mask_to_vec(_mm512_cmp_pd_mask(a, b, _CMP_GE_OQ));
}
static inline VecD visnan(VecD a) {
  return detail::mask_to_vec(_mm512_cmp_pd_mask(a, a, _CMP_NEQ_UQ));
}
static inline VecD vand(VecD a, VecD b) { return _mm512_and_pd(a, b); }
static inline VecD vor(VecD a, VecD b) { return _mm512_or_pd(a, b); }
static inline VecD vandnot(VecD a, VecD b) {
  return _mm512_andnot_pd(a, b);
}
static inline bool vany(VecD mask) {
  return detail::vec_to_mask(mask) != 0;
}
static inline VecD vblend(VecD a, VecD b, VecD mask) {
  return _mm512_mask_blend_pd(detail::vec_to_mask(mask), a, b);
}
static inline VecD vnearbyint(VecD x) {
  return _mm512_roundscale_pd(x,
                              _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
}
static inline VecD vpow2i(VecD n) {
  const __m512i n64 = _mm512_cvtpd_epi64(n);
  const __m512i bits = _mm512_slli_epi64(
      _mm512_add_epi64(n64, _mm512_set1_epi64(1023)), 52);
  return _mm512_castsi512_pd(bits);
}
static inline VecD vfrexp(VecD x, VecD* e) {
  const __m512i u = _mm512_castpd_si512(x);
  const __m512i biased =
      _mm512_and_si512(_mm512_srli_epi64(u, 52), _mm512_set1_epi64(0x7ff));
  *e = _mm512_sub_pd(_mm512_cvtepu64_pd(biased), _mm512_set1_pd(1022.0));
  const __m512i mant = _mm512_or_si512(
      _mm512_and_si512(u, _mm512_set1_epi64(0x000FFFFFFFFFFFFFll)),
      _mm512_castpd_si512(_mm512_set1_pd(0.5)));
  return _mm512_castsi512_pd(mant);
}
/// a*b + c with a single rounding — the only lane op that is not
/// bit-identical to the scalar two-rounding expression (see the header
/// comment; every other backend computes the exact mul-then-add).
static inline VecD vmuladd(VecD a, VecD b, VecD c) {
  return _mm512_fmadd_pd(a, b, c);
}
static inline VecD vfloor(VecD x) {
  return _mm512_roundscale_pd(x, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
}
static inline VecD vceil(VecD x) {
  return _mm512_roundscale_pd(x, _MM_FROUND_TO_POS_INF | _MM_FROUND_NO_EXC);
}
static inline VecD vsqrt(VecD x) { return _mm512_sqrt_pd(x); }
/// Masked load of the first n lanes (n in [1, kLanes]); the rest read 0.
/// Never touches memory past p[n-1].
static inline VecD vloadn(const double* p, std::size_t n) {
  const __mmask8 m = static_cast<__mmask8>((1u << n) - 1u);
  return _mm512_maskz_loadu_pd(m, p);
}
/// Masked store of the first n lanes; memory past p[n-1] is untouched.
static inline void vstoren(double* p, VecD v, std::size_t n) {
  const __mmask8 m = static_cast<__mmask8>((1u << n) - 1u);
  _mm512_mask_storeu_pd(p, m, v);
}

// ----------------------------------------------------------------- AVX2
#elif !defined(VERITAS_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#define VERITAS_SIMD_BACKEND_NAME "avx2"
#define VERITAS_SIMD_BACKEND_AVX2 1

using VecD = __m256d;
constexpr std::size_t kLanes = 4;

static inline VecD vload(const double* p) { return _mm256_loadu_pd(p); }
static inline void vstore(double* p, VecD v) { _mm256_storeu_pd(p, v); }
static inline VecD vset1(double x) { return _mm256_set1_pd(x); }
static inline VecD vzero() { return _mm256_setzero_pd(); }
static inline VecD vadd(VecD a, VecD b) { return _mm256_add_pd(a, b); }
static inline VecD vsub(VecD a, VecD b) { return _mm256_sub_pd(a, b); }
static inline VecD vmul(VecD a, VecD b) { return _mm256_mul_pd(a, b); }
static inline VecD vdiv(VecD a, VecD b) { return _mm256_div_pd(a, b); }
static inline VecD vmax(VecD a, VecD b) { return _mm256_max_pd(a, b); }
/// min per lane. For equal-valued non-zero operands both choices carry
/// the same bits; which ±0 is returned is unspecified (no caller feeds
/// signed zeros).
static inline VecD vmin(VecD a, VecD b) { return _mm256_min_pd(a, b); }
/// Ordered quiet compares: NaN operands compare false, matching scalar
/// `<` / `>`.
static inline VecD vgt(VecD a, VecD b) {
  return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
}
static inline VecD vlt(VecD a, VecD b) {
  return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
}
static inline VecD veq(VecD a, VecD b) {
  return _mm256_cmp_pd(a, b, _CMP_EQ_OQ);
}
static inline VecD vge(VecD a, VecD b) {
  return _mm256_cmp_pd(a, b, _CMP_GE_OQ);
}
/// Mask combinators. Defined on compare results (all-ones / all-zero
/// lanes in the vector backends, 1.0 / 0.0 in the scalar backend); do
/// not feed arithmetic values.
static inline VecD vand(VecD a, VecD b) { return _mm256_and_pd(a, b); }
static inline VecD vor(VecD a, VecD b) { return _mm256_or_pd(a, b); }
/// (~a) & b — clears b's lanes where mask a is set.
static inline VecD vandnot(VecD a, VecD b) { return _mm256_andnot_pd(a, b); }
/// True when any lane of a mask is set.
static inline bool vany(VecD mask) {
  return _mm256_movemask_pd(mask) != 0;
}
/// True (all-ones) where a is NaN.
static inline VecD visnan(VecD a) {
  return _mm256_cmp_pd(a, a, _CMP_NEQ_UQ);
}
/// b where mask is set, else a.
static inline VecD vblend(VecD a, VecD b, VecD mask) {
  return _mm256_blendv_pd(a, b, mask);
}
/// Round to nearest integer-valued double (ties to even).
static inline VecD vnearbyint(VecD x) {
  return _mm256_round_pd(x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
}
/// 2^n for integer-valued n in [-1074, 1024); out of range yields
/// unspecified bits (callers blend the result away).
static inline VecD vpow2i(VecD n) {
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i bits = _mm256_slli_epi64(
      _mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_castsi256_pd(bits);
}
/// frexp for positive normal x: returns mantissa in [0.5, 1), writes the
/// exponent (as integer-valued doubles) to *e. Non-normal inputs produce
/// unspecified values that callers must blend away.
static inline VecD vfrexp(VecD x, VecD* e) {
  const __m256i u = _mm256_castpd_si256(x);
  const __m256i biased =
      _mm256_and_si256(_mm256_srli_epi64(u, 52), _mm256_set1_epi64x(0x7ff));
  // u64 < 2^52 -> double via the 2^52 bit trick.
  const __m256d magic = _mm256_set1_pd(0x1p52);
  const __m256d biased_d = _mm256_sub_pd(
      _mm256_castsi256_pd(
          _mm256_or_si256(biased, _mm256_castpd_si256(magic))),
      magic);
  *e = _mm256_sub_pd(biased_d, _mm256_set1_pd(1022.0));
  const __m256i mant = _mm256_or_si256(
      _mm256_and_si256(u, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFll)),
      _mm256_castpd_si256(_mm256_set1_pd(0.5)));
  return _mm256_castsi256_pd(mant);
}
static inline VecD vfloor(VecD x) { return _mm256_floor_pd(x); }
static inline VecD vceil(VecD x) { return _mm256_ceil_pd(x); }
static inline VecD vsqrt(VecD x) { return _mm256_sqrt_pd(x); }

// ----------------------------------------------------------------- SSE2
#elif !defined(VERITAS_SIMD_FORCE_SCALAR) && \
    (defined(__SSE2__) || defined(__x86_64__))
#define VERITAS_SIMD_BACKEND_NAME "sse2"

using VecD = __m128d;
constexpr std::size_t kLanes = 2;

static inline VecD vload(const double* p) { return _mm_loadu_pd(p); }
static inline void vstore(double* p, VecD v) { _mm_storeu_pd(p, v); }
static inline VecD vset1(double x) { return _mm_set1_pd(x); }
static inline VecD vzero() { return _mm_setzero_pd(); }
static inline VecD vadd(VecD a, VecD b) { return _mm_add_pd(a, b); }
static inline VecD vsub(VecD a, VecD b) { return _mm_sub_pd(a, b); }
static inline VecD vmul(VecD a, VecD b) { return _mm_mul_pd(a, b); }
static inline VecD vdiv(VecD a, VecD b) { return _mm_div_pd(a, b); }
static inline VecD vmax(VecD a, VecD b) { return _mm_max_pd(a, b); }
static inline VecD vmin(VecD a, VecD b) { return _mm_min_pd(a, b); }
static inline VecD vgt(VecD a, VecD b) { return _mm_cmpgt_pd(a, b); }
static inline VecD vlt(VecD a, VecD b) { return _mm_cmplt_pd(a, b); }
static inline VecD veq(VecD a, VecD b) { return _mm_cmpeq_pd(a, b); }
static inline VecD vge(VecD a, VecD b) { return _mm_cmpge_pd(a, b); }
static inline VecD visnan(VecD a) { return _mm_cmpneq_pd(a, a); }
static inline VecD vand(VecD a, VecD b) { return _mm_and_pd(a, b); }
static inline VecD vor(VecD a, VecD b) { return _mm_or_pd(a, b); }
static inline VecD vandnot(VecD a, VecD b) { return _mm_andnot_pd(a, b); }
static inline bool vany(VecD mask) { return _mm_movemask_pd(mask) != 0; }
static inline VecD vblend(VecD a, VecD b, VecD mask) {
  // SSE2 has no blendv: masks from cmp are all-ones/all-zero lanes.
  return _mm_or_pd(_mm_and_pd(mask, b), _mm_andnot_pd(mask, a));
}
static inline VecD vnearbyint(VecD x) {
  // cvtpd_epi32 rounds to nearest (even); |x| stays far below 2^31 in
  // every caller (exp exponents).
  return _mm_cvtepi32_pd(_mm_cvtpd_epi32(x));
}
static inline VecD vpow2i(VecD n) {
  const __m128i n32 = _mm_cvtpd_epi32(n);  // [n0, n1, 0, 0]
  const __m128i sign = _mm_srai_epi32(n32, 31);
  const __m128i n64 = _mm_unpacklo_epi32(n32, sign);  // sign-extended
  const __m128i bits =
      _mm_slli_epi64(_mm_add_epi64(n64, _mm_set1_epi64x(1023)), 52);
  return _mm_castsi128_pd(bits);
}
static inline VecD vfrexp(VecD x, VecD* e) {
  const __m128i u = _mm_castpd_si128(x);
  const __m128i biased =
      _mm_and_si128(_mm_srli_epi64(u, 52), _mm_set1_epi64x(0x7ff));
  const __m128d magic = _mm_set1_pd(0x1p52);
  const __m128d biased_d = _mm_sub_pd(
      _mm_castsi128_pd(_mm_or_si128(biased, _mm_castpd_si128(magic))),
      magic);
  *e = _mm_sub_pd(biased_d, _mm_set1_pd(1022.0));
  const __m128i mant = _mm_or_si128(
      _mm_and_si128(u, _mm_set1_epi64x(0x000FFFFFFFFFFFFFll)),
      _mm_castpd_si128(_mm_set1_pd(0.5)));
  return _mm_castsi128_pd(mant);
}
/// floor/ceil via the round-to-nearest convert plus a ±1 correction
/// (SSE2 has no roundpd). Valid for |x| < 2^31 — every caller is either
/// exponent-sized (vexp) or pre-guarded below 2^26 by the estimator's
/// coarse-grid checks; out-of-domain lanes yield unspecified values that
/// callers blend away.
static inline VecD vfloor(VecD x) {
  const VecD r = _mm_cvtepi32_pd(_mm_cvtpd_epi32(x));
  return _mm_sub_pd(r, _mm_and_pd(_mm_cmpgt_pd(r, x), _mm_set1_pd(1.0)));
}
static inline VecD vceil(VecD x) {
  const VecD r = _mm_cvtepi32_pd(_mm_cvtpd_epi32(x));
  return _mm_add_pd(r, _mm_and_pd(_mm_cmplt_pd(r, x), _mm_set1_pd(1.0)));
}
static inline VecD vsqrt(VecD x) { return _mm_sqrt_pd(x); }

// ----------------------------------------------------------------- NEON
#elif !defined(VERITAS_SIMD_FORCE_SCALAR) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define VERITAS_SIMD_BACKEND_NAME "neon"

using VecD = float64x2_t;
constexpr std::size_t kLanes = 2;

static inline VecD vload(const double* p) { return vld1q_f64(p); }
static inline void vstore(double* p, VecD v) { vst1q_f64(p, v); }
static inline VecD vset1(double x) { return vdupq_n_f64(x); }
static inline VecD vzero() { return vdupq_n_f64(0.0); }
static inline VecD vadd(VecD a, VecD b) { return vaddq_f64(a, b); }
static inline VecD vsub(VecD a, VecD b) { return vsubq_f64(a, b); }
static inline VecD vmul(VecD a, VecD b) { return vmulq_f64(a, b); }
static inline VecD vdiv(VecD a, VecD b) { return vdivq_f64(a, b); }
static inline VecD vmax(VecD a, VecD b) { return vmaxnmq_f64(a, b); }
static inline VecD vmin(VecD a, VecD b) { return vminnmq_f64(a, b); }
static inline VecD vgt(VecD a, VecD b) {
  return vreinterpretq_f64_u64(vcgtq_f64(a, b));
}
static inline VecD vlt(VecD a, VecD b) {
  return vreinterpretq_f64_u64(vcltq_f64(a, b));
}
static inline VecD veq(VecD a, VecD b) {
  return vreinterpretq_f64_u64(vceqq_f64(a, b));
}
static inline VecD vge(VecD a, VecD b) {
  return vreinterpretq_f64_u64(vcgeq_f64(a, b));
}
static inline VecD visnan(VecD a) {
  return vreinterpretq_f64_u64(
      veorq_u64(vceqq_f64(a, a), vdupq_n_u64(~0ull)));
}
static inline VecD vand(VecD a, VecD b) {
  return vreinterpretq_f64_u64(
      vandq_u64(vreinterpretq_u64_f64(a), vreinterpretq_u64_f64(b)));
}
static inline VecD vor(VecD a, VecD b) {
  return vreinterpretq_f64_u64(
      vorrq_u64(vreinterpretq_u64_f64(a), vreinterpretq_u64_f64(b)));
}
static inline VecD vandnot(VecD a, VecD b) {
  return vreinterpretq_f64_u64(
      vbicq_u64(vreinterpretq_u64_f64(b), vreinterpretq_u64_f64(a)));
}
static inline bool vany(VecD mask) {
  const uint64x2_t u = vreinterpretq_u64_f64(mask);
  return (vgetq_lane_u64(u, 0) | vgetq_lane_u64(u, 1)) != 0;
}
static inline VecD vblend(VecD a, VecD b, VecD mask) {
  return vbslq_f64(vreinterpretq_u64_f64(mask), b, a);
}
static inline VecD vnearbyint(VecD x) { return vrndnq_f64(x); }
static inline VecD vpow2i(VecD n) {
  const int64x2_t n64 = vcvtq_s64_f64(n);  // n is integer-valued
  const uint64x2_t bits = vshlq_n_u64(
      vreinterpretq_u64_s64(vaddq_s64(n64, vdupq_n_s64(1023))), 52);
  return vreinterpretq_f64_u64(bits);
}
static inline VecD vfrexp(VecD x, VecD* e) {
  const uint64x2_t u = vreinterpretq_u64_f64(x);
  const uint64x2_t biased =
      vandq_u64(vshrq_n_u64(u, 52), vdupq_n_u64(0x7ff));
  *e = vsubq_f64(vcvtq_f64_u64(biased), vdupq_n_f64(1022.0));
  const uint64x2_t mant =
      vorrq_u64(vandq_u64(u, vdupq_n_u64(0x000FFFFFFFFFFFFFull)),
                vreinterpretq_u64_f64(vdupq_n_f64(0.5)));
  return vreinterpretq_f64_u64(mant);
}
static inline VecD vfloor(VecD x) { return vrndmq_f64(x); }
static inline VecD vceil(VecD x) { return vrndpq_f64(x); }
static inline VecD vsqrt(VecD x) { return vsqrtq_f64(x); }

// --------------------------------------------------------------- scalar
#else
#define VERITAS_SIMD_BACKEND_NAME "scalar"

using VecD = double;
constexpr std::size_t kLanes = 1;

static inline VecD vload(const double* p) { return *p; }
static inline void vstore(double* p, VecD v) { *p = v; }
static inline VecD vset1(double x) { return x; }
static inline VecD vzero() { return 0.0; }
static inline VecD vadd(VecD a, VecD b) { return a + b; }
static inline VecD vsub(VecD a, VecD b) { return a - b; }
static inline VecD vmul(VecD a, VecD b) { return a * b; }
static inline VecD vdiv(VecD a, VecD b) { return a / b; }
static inline VecD vmax(VecD a, VecD b) { return a > b ? a : b; }
static inline VecD vmin(VecD a, VecD b) { return b < a ? b : a; }
// Masks are 1.0 (true) / 0.0 (false) in the scalar backend.
static inline VecD vgt(VecD a, VecD b) { return a > b ? 1.0 : 0.0; }
static inline VecD vlt(VecD a, VecD b) { return a < b ? 1.0 : 0.0; }
static inline VecD veq(VecD a, VecD b) { return a == b ? 1.0 : 0.0; }
static inline VecD vge(VecD a, VecD b) { return a >= b ? 1.0 : 0.0; }
static inline VecD visnan(VecD a) { return a != a ? 1.0 : 0.0; }
static inline VecD vand(VecD a, VecD b) {
  return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
}
static inline VecD vor(VecD a, VecD b) {
  return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
}
static inline VecD vandnot(VecD a, VecD b) {
  return (a == 0.0 && b != 0.0) ? 1.0 : 0.0;
}
static inline bool vany(VecD mask) { return mask != 0.0; }
static inline VecD vblend(VecD a, VecD b, VecD mask) {
  return mask != 0.0 ? b : a;
}
static inline VecD vnearbyint(VecD x) { return std::nearbyint(x); }
static inline VecD vpow2i(VecD n) {
  return std::ldexp(1.0, static_cast<int>(n));
}
static inline VecD vfrexp(VecD x, VecD* e) {
  int exp = 0;
  const double m = std::frexp(x, &exp);
  *e = static_cast<double>(exp);
  return m;
}
static inline VecD vfloor(VecD x) { return std::floor(x); }
static inline VecD vceil(VecD x) { return std::ceil(x); }
static inline VecD vsqrt(VecD x) { return std::sqrt(x); }
#endif

// ----------------------------------------------- backend-generic pieces

#ifndef VERITAS_SIMD_BACKEND_AVX512
/// a*b + c as the exact two-rounding mul-then-add: on every backend but
/// AVX-512 this is literally vadd(vmul(a, b), c) — intrinsic mul/add
/// pairs are never contracted by the compiler, and the kernel TUs pin
/// -ffp-contract=off for their scalar tails — so kernels written with
/// vmuladd stay bit-identical to the scalar reference here. The AVX-512
/// backend (above) overrides this with a true fused multiply-add.
static inline VecD vmuladd(VecD a, VecD b, VecD c) {
  return vadd(vmul(a, b), c);
}
/// Partial-lane load/store for row tails that are not a multiple of the
/// lane width (only reachable when kLanes exceeds math::kRowPadDoubles,
/// i.e. on AVX-512, which uses native masked moves instead). Lanes past
/// n read 0 / are not written; memory past p[n-1] is never touched.
static inline VecD vloadn(const double* p, std::size_t n) {
  double buf[kLanes];
  for (std::size_t i = 0; i < kLanes; ++i) buf[i] = i < n ? p[i] : 0.0;
  return vload(buf);
}
static inline void vstoren(double* p, VecD v, std::size_t n) {
  double buf[kLanes];
  vstore(buf, v);
  for (std::size_t i = 0; i < n; ++i) p[i] = buf[i];
}
#endif

// ------------------------------------------------------- transcendentals

/// exp(x), Cephes-style: x = n ln2 + r with |r| <= ln2 / 2, exp(r) via a
/// degree-2/3 rational in r^2, scaled by 2^n. Accuracy ~2 ulp on finite
/// inputs; exact at 0. x < -708 flushes to zero (libm returns subnormals
/// down to ~-745); x > 709.7 yields +inf; NaN propagates.
static inline VecD vexp(VecD x) {
  const VecD log2e = vset1(1.4426950408889634073599);
  // Cody-Waite split of ln 2.
  const VecD c1 = vset1(6.93145751953125e-1);
  const VecD c2 = vset1(1.42860682030941723212e-6);

  const VecD n = vnearbyint(vmul(x, log2e));
  VecD r = vsub(x, vmul(n, c1));
  r = vsub(r, vmul(n, c2));
  const VecD rr = vmul(r, r);

  // polevl(rr, P) and polevl(rr, Q) from Cephes exp.c. (vmuladd keeps
  // the two-rounding order everywhere except AVX-512, where the fused
  // form shifts the approximation by sub-ulp amounts — still inside the
  // suite's exp tolerance.)
  VecD p = vset1(1.26177193074810590878e-4);
  p = vmuladd(p, rr, vset1(3.02994407707441961300e-2));
  p = vmuladd(p, rr, vset1(9.99999999999999999910e-1));
  p = vmul(r, p);

  VecD q = vset1(3.00198505138664455042e-6);
  q = vmuladd(q, rr, vset1(2.52448340349684104192e-3));
  q = vmuladd(q, rr, vset1(2.27265548208155028766e-1));
  q = vmuladd(q, rr, vset1(2.00000000000000000005e0));

  VecD y = vdiv(p, vsub(q, p));
  y = vadd(vset1(1.0), vadd(y, y));
  y = vmul(y, vpow2i(n));

  y = vblend(y, vzero(), vlt(x, vset1(-708.0)));
  y = vblend(y, vset1(std::numeric_limits<double>::infinity()),
             vgt(x, vset1(709.7)));
  y = vblend(y, x, visnan(x));
  return y;
}

/// log(x), Cephes-style: x = m 2^e with m in [sqrt(1/2), sqrt(2)), then a
/// degree-5/5 rational in m - 1. Accuracy ~1 ulp for positive finite x;
/// exact at 1. log(0) = -inf, log(negative) = NaN, log(inf) = inf,
/// subnormals are pre-scaled by 2^54. Matches std::log semantics.
static inline VecD vlog(VecD x) {
  const VecD zero = vzero();
  const VecD min_normal = vset1(2.2250738585072014e-308);

  // Pre-scale subnormals into the normal range: log(x) = log(x*2^54) -
  // 54 ln 2 where needed.
  const VecD sub_mask = vlt(x, min_normal);  // includes x <= 0; blended out
  const VecD x_scaled = vblend(x, vmul(x, vset1(0x1p54)), sub_mask);

  VecD e = vzero();
  VecD m = vfrexp(x_scaled, &e);
  const VecD half_mask = vlt(m, vset1(0.70710678118654752440));
  m = vblend(m, vadd(m, m), half_mask);
  e = vblend(e, vsub(e, vset1(1.0)), half_mask);
  const VecD z = vsub(m, vset1(1.0));
  const VecD zz = vmul(z, z);

  // polevl(z, P) / p1evl(z, Q) from Cephes log.c.
  VecD p = vset1(1.01875663804580931796e-4);
  p = vmuladd(p, z, vset1(4.97494994976747001425e-1));
  p = vmuladd(p, z, vset1(4.70579119878881725854e0));
  p = vmuladd(p, z, vset1(1.44989225341610930846e1));
  p = vmuladd(p, z, vset1(1.79368678507819816313e1));
  p = vmuladd(p, z, vset1(7.70838733755885391666e0));

  VecD q = vadd(z, vset1(1.12873587189167450590e1));
  q = vmuladd(q, z, vset1(4.52279145837532221105e1));
  q = vmuladd(q, z, vset1(8.29875266912776603211e1));
  q = vmuladd(q, z, vset1(7.11544750618563894466e1));
  q = vmuladd(q, z, vset1(2.31251620126765340583e1));

  VecD y = vmul(z, vdiv(vmul(zz, p), q));
  y = vsub(y, vmul(e, vset1(2.121944400546905827679e-4)));
  y = vsub(y, vmul(vset1(0.5), zz));
  VecD out = vadd(z, y);
  out = vadd(out, vmul(e, vset1(0.693359375)));
  // Undo the subnormal pre-scale: subtract 54 ln 2.
  out = vblend(out, vsub(out, vset1(37.429947750237047935)), sub_mask);

  const VecD inf = vset1(std::numeric_limits<double>::infinity());
  out = vblend(out, vsub(zero, inf), veq(x, zero));  // log(0) = -inf
  out = vblend(out, vset1(std::numeric_limits<double>::quiet_NaN()),
               vlt(x, zero));
  out = vblend(out, inf, veq(x, inf));
  out = vblend(out, x, visnan(x));
  return out;
}

}  // namespace veritas::math::simd
