#include "math/matrix.hpp"

#include <cmath>

#include "util/expects.hpp"

namespace veritas::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), stride_(cols), data_(rows * cols, fill) {
  VERITAS_EXPECTS(rows > 0 && cols > 0);
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  VERITAS_EXPECTS(!rows.empty() && !rows.front().empty());
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    VERITAS_EXPECTS(rows[r].size() == m.cols());
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::reshape(std::size_t rows, std::size_t cols, std::size_t stride,
                     double fill) {
  VERITAS_EXPECTS(rows > 0 && cols > 0);
  rows_ = rows;
  cols_ = cols;
  stride_ = stride;
  data_.assign(rows * stride, fill);
}

void Matrix::resize(std::size_t rows, std::size_t cols, double fill) {
  reshape(rows, cols, cols, fill);
}

void Matrix::resize_padded(std::size_t rows, std::size_t cols, double fill) {
  reshape(rows, cols, padded_cols(cols), fill);
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  Matrix out;
  multiply_into(rhs, out);
  return out;
}

void Matrix::multiply_into(const Matrix& rhs, Matrix& out) const {
  VERITAS_EXPECTS(cols_ == rhs.rows_);
  VERITAS_EXPECTS(&out != this && &out != &rhs);
  out.resize(rows_, rhs.cols_, 0.0);
  // ikj order: the inner loop walks both rhs and out contiguously.
  for (std::size_t r = 0; r < rows_; ++r) {
    double* out_row = out.row_data(r);
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* rhs_row = rhs.row_data(k);
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out_row[c] += a * rhs_row[c];
      }
    }
  }
}

std::vector<double> Matrix::operator*(std::span<const double> v) const {
  VERITAS_EXPECTS(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  VERITAS_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  double worst = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      worst = std::max(worst, std::abs((*this)(r, c) - rhs(r, c)));
    }
  }
  return worst;
}

bool Matrix::is_row_stochastic(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      if ((*this)(r, c) < -tol) return false;
      sum += (*this)(r, c);
    }
    if (std::abs(sum - 1.0) > tol) return false;
  }
  return true;
}

Matrix matrix_power(const Matrix& a, std::size_t power) {
  VERITAS_EXPECTS(a.rows() == a.cols());
  Matrix result = Matrix::identity(a.rows());
  Matrix base = a;
  Matrix scratch;
  std::size_t p = power;
  while (p > 0) {
    if (p & 1U) {
      result.multiply_into(base, scratch);
      std::swap(result, scratch);
    }
    p >>= 1U;
    if (p > 0) {
      base.multiply_into(base, scratch);
      std::swap(base, scratch);
    }
  }
  return result;
}

}  // namespace veritas::math
