// Reference kernel table + runtime dispatch. Compiled with baseline
// flags: these loops are the pre-SIMD EHMM inner loops, moved behind the
// KernelOps interface verbatim — per-element operation order is
// unchanged, so a VERITAS_SIMD=OFF build (or a forced-scalar run) remains
// bit-identical to the historical implementation.
#include "math/simd_kernels.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace veritas::math::simd_kernels {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

void emission_log_pdf_row_scalar(double y, const double* means,
                                 std::size_t k, std::size_t stride,
                                 double sigma, double log_sigma,
                                 double half_log_2pi, double* out) {
  for (std::size_t i = 0; i < k; ++i) {
    const double z = (y - means[i]) / sigma;
    out[i] = -0.5 * z * z - log_sigma - half_log_2pi;
  }
  for (std::size_t i = k; i < stride; ++i) out[i] = kNegInf;
}

void exp_rows_scalar(const double* in, double shift, std::size_t n,
                     double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(in[i] - shift);
}

void log_rows_scalar(const double* in, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::log(in[i]);
}

void viterbi_step_scalar(const double* prev, const DeltaTables& a,
                         std::size_t k, const double* e_n, double* curr,
                         std::uint32_t* back) {
  for (std::size_t i = 0; i < k; ++i) {
    double best = kNegInf;
    std::size_t best_prev = 0;
    const double* log_a = a.log_t + i * a.stride;
    for (std::size_t j = 0; j < k; ++j) {
      const double candidate = prev[j] + log_a[j];
      if (candidate > best) {
        best = candidate;
        best_prev = j;
      }
    }
    curr[i] = best + e_n[i];
    back[i] = static_cast<std::uint32_t>(best_prev);
  }
}

void forward_step_scalar(const double* prev, const DeltaTables& a,
                         std::size_t k, const double* em_n, double* row) {
  for (std::size_t i = 0; i < k; ++i) {
    double acc = 0.0;
    const double* a_col = a.t + i * a.stride;
    for (std::size_t j = 0; j < k; ++j) acc += prev[j] * a_col[j];
    row[i] = acc * em_n[i];
  }
}

void backward_step_scalar(const DeltaTables& a, std::size_t k,
                          const double* em_next, const double* beta_next,
                          double scale, double* beta_n, const double* alpha_n,
                          double* pair_total) {
  if (alpha_n == nullptr || pair_total == nullptr) {
    for (std::size_t i = 0; i < k; ++i) {
      double acc = 0.0;
      const double* a_row = a.p + i * a.stride;
      for (std::size_t j = 0; j < k; ++j) {
        acc += a_row[j] * em_next[j] * beta_next[j];
      }
      beta_n[i] = acc / scale;
    }
    return;
  }
  // Fused pair-normalizer: same term expression and i-major j-minor
  // order as the historical standalone pair pass — bit-identical to it —
  // but computed in the same sweep over A^Δ as the beta recursion.
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    double acc = 0.0;
    const double* a_row = a.p + i * a.stride;
    const double alpha_i = alpha_n[i];
    for (std::size_t j = 0; j < k; ++j) {
      acc += a_row[j] * em_next[j] * beta_next[j];
      total += alpha_i * a_row[j] * em_next[j] * beta_next[j];
    }
    beta_n[i] = acc / scale;
  }
  *pair_total = total;
}

double pair_total_scalar(const double* alpha_n, const DeltaTables& a,
                         std::size_t k, const double* em_next,
                         const double* beta_next) {
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double* a_row = a.p + i * a.stride;
    const double alpha_i = alpha_n[i];
    for (std::size_t j = 0; j < k; ++j) {
      total += alpha_i * a_row[j] * em_next[j] * beta_next[j];
    }
  }
  return total;
}

constexpr KernelOps kScalarOps = {
    "scalar",
    kCpuBaseline,
    &emission_log_pdf_row_scalar,
    &exp_rows_scalar,
    &log_rows_scalar,
    &viterbi_step_scalar,
    &forward_step_scalar,
    &backward_step_scalar,
    &pair_total_scalar,
    // estimate_batch: null — the scalar reference for a batch is the
    // per-candidate loop over net::estimate_throughput_mbps, run by
    // net::estimate_throughput_batch itself (see KernelOps doc).
    nullptr,
};

// ---------------------------------------------------------------- dispatch

bool cpu_supports(unsigned features) {
  if (features & kCpuAvx2) {
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2") == 0) return false;
#else
    return false;
#endif
  }
  if (features & kCpuAvx512) {
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx512f") == 0 ||
        __builtin_cpu_supports("avx512dq") == 0) {
      return false;
    }
#else
    return false;
#endif
  }
  return true;
}

bool env_forces_scalar() {
  const char* value = std::getenv("VERITAS_SIMD");
  if (value == nullptr) return false;
  return std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
         std::strcmp(value, "OFF") == 0 || std::strcmp(value, "scalar") == 0;
}

// The AVX-512/FMA tier is strictly opt-in: plain kAuto never selects it
// (its fused multiply-adds break the default dispatch's bit-identity
// contract), but VERITAS_SIMD=avx512 requests it for the whole process.
bool env_requests_avx512() {
  const char* value = std::getenv("VERITAS_SIMD");
  if (value == nullptr) return false;
  return std::strcmp(value, "avx512") == 0 ||
         std::strcmp(value, "AVX512") == 0;
}

const KernelOps* resolve_table(const KernelOps* table) {
  if (table == nullptr || !cpu_supports(table->cpu_features)) return nullptr;
  return table;
}

std::atomic<Mode> g_mode{Mode::kAuto};

}  // namespace

const KernelOps& scalar_ops() { return kScalarOps; }

const KernelOps* simd_ops() {
  static const KernelOps* const table =
      resolve_table(detail::compiled_simd_table);
  return table;
}

const KernelOps* avx512_ops() {
  static const KernelOps* const table =
      resolve_table(detail::compiled_avx512_table);
  return table;
}

Mode mode() noexcept { return g_mode.load(std::memory_order_relaxed); }
void set_mode(Mode m) noexcept {
  g_mode.store(m, std::memory_order_relaxed);
}

const KernelOps& active_ops() {
  switch (mode()) {
    case Mode::kForceScalar:
      return kScalarOps;
    case Mode::kForceSimd: {
      const KernelOps* simd = simd_ops();
      return simd != nullptr ? *simd : kScalarOps;
    }
    case Mode::kForceAvx512: {
      const KernelOps* avx512 = avx512_ops();
      if (avx512 != nullptr) return *avx512;
      const KernelOps* simd = simd_ops();
      return simd != nullptr ? *simd : kScalarOps;
    }
    case Mode::kAuto:
      break;
  }
  static const bool env_scalar = env_forces_scalar();
  if (env_scalar) return kScalarOps;
  static const bool env_avx512 = env_requests_avx512();
  if (env_avx512) {
    const KernelOps* avx512 = avx512_ops();
    if (avx512 != nullptr) return *avx512;
  }
  const KernelOps* simd = simd_ops();
  return simd != nullptr ? *simd : kScalarOps;
}

const char* backend_name() { return active_ops().name; }

}  // namespace veritas::math::simd_kernels
