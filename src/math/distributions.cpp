#include "math/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "math/simd_kernels.hpp"
#include "util/expects.hpp"

namespace veritas::math {

double log_normal_pdf(double x, double mean, double sigma) {
  VERITAS_EXPECTS(sigma > 0.0);
  const double z = (x - mean) / sigma;
  return -0.5 * z * z - std::log(sigma) -
         0.5 * std::log(2.0 * std::numbers::pi);
}

double normal_pdf(double x, double mean, double sigma) {
  return std::exp(log_normal_pdf(x, mean, sigma));
}

void log_normal_pdf_rows(double x, std::span<const double> means,
                         double sigma, std::span<double> out) {
  VERITAS_EXPECTS(sigma > 0.0);
  VERITAS_EXPECTS(out.size() >= means.size());
  const double log_sigma = std::log(sigma);
  const double half_log_2pi = 0.5 * std::log(2.0 * std::numbers::pi);
  // stride == k: the batch API pads nothing; padded callers go through
  // the kernel table directly (core/ehmm.cpp).
  simd_kernels::active_ops().emission_log_pdf_row(
      x, means.data(), means.size(), means.size(), sigma, log_sigma,
      half_log_2pi, out.data());
}

void exp_rows(std::span<const double> xs, std::span<double> out) {
  VERITAS_EXPECTS(out.size() >= xs.size());
  simd_kernels::active_ops().exp_rows(xs.data(), 0.0, xs.size(), out.data());
}

void log_rows(std::span<const double> xs, std::span<double> out) {
  VERITAS_EXPECTS(out.size() >= xs.size());
  simd_kernels::active_ops().log_rows(xs.data(), xs.size(), out.data());
}

double log_sum_exp(std::span<const double> xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;  // all -inf (or a +inf dominates)
  double acc = 0.0;
  for (const double x : xs) acc += std::exp(x - m);
  return m + std::log(acc);
}

double normalize(std::span<double> weights) {
  VERITAS_EXPECTS(!weights.empty());
  double sum = 0.0;
  for (const double w : weights) {
    VERITAS_EXPECTS(w >= 0.0);
    sum += w;
  }
  if (sum <= 0.0) {
    const double u = 1.0 / static_cast<double>(weights.size());
    for (double& w : weights) w = u;
    return 0.0;
  }
  for (double& w : weights) w /= sum;
  return sum;
}

double entropy(std::span<const double> probabilities) {
  double h = 0.0;
  for (const double p : probabilities) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

double expectation(std::span<const double> values,
                   std::span<const double> probabilities) {
  VERITAS_EXPECTS(values.size() == probabilities.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc += values[i] * probabilities[i];
  }
  return acc;
}

}  // namespace veritas::math
