// Probability helpers for the EHMM: Gaussian log-density (the emission
// noise of paper Eq. 3), numerically stable log-sum-exp, and in-place
// normalization of weight vectors.
//
// The *_rows batch variants dispatch through the SIMD kernel table
// (math/simd_kernels.hpp): one call evaluates a whole k-state row with
// vector lanes when the CPU supports it, falling back to bit-identical
// scalar loops otherwise.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace veritas::math {

/// Additive identity of max-plus / log-space accumulation.
inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// log(x) tolerant of exact zero (yields -inf instead of a domain error).
inline double safe_log(double x) { return x > 0.0 ? std::log(x) : kNegInf; }

/// log N(x; mean, sigma^2). Requires sigma > 0.
double log_normal_pdf(double x, double mean, double sigma);

/// N(x; mean, sigma^2). Requires sigma > 0.
double normal_pdf(double x, double mean, double sigma);

/// Batched emission log-density: out[i] = log_normal_pdf(x, means[i],
/// sigma) for i < means.size(); out must be at least as long. Requires
/// sigma > 0. Runs through the active SIMD kernel (scalar and vector
/// paths agree bitwise — the lane ops replicate the scalar operation
/// order exactly).
void log_normal_pdf_rows(double x, std::span<const double> means,
                         double sigma, std::span<double> out);

/// Batched out[i] = exp(xs[i]) (SIMD-dispatched; the vector path is a
/// ~2 ulp polynomial approximation, property-tested against libm).
void exp_rows(std::span<const double> xs, std::span<double> out);

/// Batched out[i] = log(xs[i]), std::log semantics (SIMD-dispatched,
/// ~1 ulp on the vector path).
void log_rows(std::span<const double> xs, std::span<double> out);

/// log(sum_i exp(xs[i])) computed stably. Returns -inf for empty input or
/// when all entries are -inf.
double log_sum_exp(std::span<const double> xs);

/// Normalizes non-negative weights to sum to 1 in place.
/// Returns the pre-normalization sum (useful as a scaling likelihood).
/// If the sum is zero, leaves a uniform distribution.
double normalize(std::span<double> weights);

/// Entropy (nats) of a normalized distribution; 0log0 := 0.
double entropy(std::span<const double> probabilities);

/// Expected value sum_i values[i] * probabilities[i]; sizes must match.
double expectation(std::span<const double> values,
                   std::span<const double> probabilities);

}  // namespace veritas::math
