// Ground-truth TCP download simulator.
//
// This is the substrate standing in for the paper's mahimahi emulation
// testbed (DESIGN.md §3): a deterministic per-RTT-round model of a single
// long-lived connection downloading objects over a bottleneck whose rate
// follows a BandwidthTrace. It implements slow start, additive congestion
// avoidance, an rwnd clamp and RFC 2861 slow-start restart; loss is not
// modelled (per paper §3.2). Within a round the link is fluid: the bytes
// delivered are min(cwnd * MSS, rate(t) * RTT).
//
// The estimator f (net/throughput_estimator.hpp) is a deliberately
// simplified constant-bandwidth version of this process, so inference
// error stays realistic (paper Fig. 5).
#pragma once

#include "net/tcp_state.hpp"
#include "trace/bandwidth_trace.hpp"

namespace veritas::net {

/// Outcome of one simulated object download.
struct DownloadResult {
  double start_s = 0.0;
  double end_s = 0.0;       ///< arrival time of the last byte
  double bytes = 0.0;
  int rounds = 0;           ///< RTT rounds used (>= 1)

  double duration_s() const noexcept { return end_s - start_s; }
  /// Observed throughput Y = S / D in Mbps.
  double throughput_mbps() const noexcept {
    return bytes * 8.0 / 1e6 / (end_s - start_s);
  }
};

/// A persistent TCP connection (one per video session). Congestion state
/// carries across downloads; idle gaps between downloads trigger
/// slow-start restart, exactly the effect Veritas must control for.
class TcpConnection {
 public:
  /// rtt_s is the path round-trip time (the paper emulates 80 ms
  /// end-to-end delay for sessions, 5-40 ms in the Fig. 5 sweep).
  TcpConnection(const TcpConfig& config, double rtt_s);

  /// Snapshot W at time `now_s` (>= time of the previous send). The
  /// snapshot reflects state *before* slow-start restart is applied, as a
  /// kernel's tcp_info would.
  TcpState snapshot(double now_s) const;

  /// Simulates downloading `size_bytes` starting at `start_s` over
  /// `bandwidth`. Advances the connection's congestion state and its
  /// last-send time. Requires size_bytes > 0 and start_s not before the
  /// previous download's end.
  DownloadResult download(const trace::BandwidthTrace& bandwidth,
                          double start_s, double size_bytes);

  const TcpConfig& config() const noexcept { return config_; }
  double rtt_s() const noexcept { return rtt_s_; }
  double cwnd_segments() const noexcept { return cwnd_; }
  double ssthresh_segments() const noexcept { return ssthresh_; }

 private:
  TcpConfig config_;
  double rtt_s_;
  double rto_s_;
  double cwnd_;
  double ssthresh_;
  double last_send_s_ = -1e18;  ///< fresh connection: "idle forever"
  bool first_use_ = true;
};

}  // namespace veritas::net
