#include "net/tcp_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/expects.hpp"
#include "util/rng.hpp"

namespace veritas::net {

void apply_slow_start_restart(TcpState& w, const TcpConfig& config) {
  if (!config.enable_ssr) return;
  if (config.congestion_control == CongestionControl::kBbrLike) {
    // BBR keeps its bottleneck-rate estimate across idle periods; after
    // a long idle it re-probes from roughly the old operating point
    // rather than collapsing to the initial window.
    return;
  }
  if (w.last_send_gap_s <= w.rto_s) return;
  // Raise ssthresh from the pre-decay window (Linux
  // tcp_cwnd_application_limited: ssthresh = max(ssthresh, 3/4 cwnd)).
  w.ssthresh_segments = std::max(
      w.ssthresh_segments, 0.75 * w.cwnd_segments);
  // Halve cwnd once per elapsed RTO, floored at the restart window.
  double gap = w.last_send_gap_s;
  while (gap > w.rto_s && w.cwnd_segments > config.init_cwnd) {
    gap -= w.rto_s;
    w.cwnd_segments = std::max(config.init_cwnd, w.cwnd_segments / 2.0);
  }
}

double bdp_segments(double mbps, double rtt_s, const TcpConfig& config) {
  VERITAS_EXPECTS(mbps >= 0.0 && rtt_s > 0.0);
  return mbps * 1e6 / 8.0 * rtt_s / config.mss_bytes;
}

double segments_for_bytes(double size_bytes, const TcpConfig& config) {
  VERITAS_EXPECTS(size_bytes >= 0.0);
  return std::ceil(size_bytes / config.mss_bytes);
}

bool in_slow_start(double cwnd_segments, double ssthresh_segments,
                   double bdp_segments, const TcpConfig& config) {
  const bool delay_exit =
      config.enable_hystart &&
      cwnd_segments >= config.hystart_bdp_fraction * bdp_segments;
  return cwnd_segments < ssthresh_segments && !delay_exit;
}

double grow_window(double cwnd_segments, double ssthresh_segments,
                   double bdp_segments, const TcpConfig& config) {
  if (config.congestion_control == CongestionControl::kBbrLike) {
    // Startup doubles until the pipe (plus headroom) is full; from then
    // on the window tracks 2x the measured BDP in both directions —
    // rate-based operation.
    const double target = 2.0 * bdp_segments;
    const double grown = cwnd_segments < target
                             ? std::min(2.0 * cwnd_segments, target)
                             : target;
    return std::min(std::max(grown, config.init_cwnd),
                    config.rwnd_segments);
  }
  const double grown =
      in_slow_start(cwnd_segments, ssthresh_segments, bdp_segments, config)
          ? 2.0 * cwnd_segments
          : cwnd_segments + 1.0;
  return std::min(grown, config.rwnd_segments);
}

TcpConnection::TcpConnection(const TcpConfig& config, double rtt_s)
    : config_(config),
      rtt_s_(rtt_s),
      rto_s_(std::max(config.min_rto_s, 2.0 * rtt_s)),
      cwnd_(config.init_cwnd),
      ssthresh_(config.initial_ssthresh) {
  VERITAS_EXPECTS(rtt_s > 0.0);
}

TcpState TcpConnection::snapshot(double now_s) const {
  TcpState w;
  w.cwnd_segments = cwnd_;
  w.ssthresh_segments = ssthresh_;
  w.rto_s = rto_s_;
  w.min_rtt_s = rtt_s_;
  w.rtt_s = rtt_s_;
  w.last_send_gap_s =
      first_use_ ? 0.0 : std::max(0.0, now_s - last_send_s_);
  return w;
}

DownloadResult TcpConnection::download(const trace::BandwidthTrace& bandwidth,
                                       double start_s, double size_bytes) {
  VERITAS_EXPECTS(size_bytes > 0.0);
  VERITAS_EXPECTS(start_s >= 0.0);
  VERITAS_EXPECTS(first_use_ || start_s >= last_send_s_);

  if (!first_use_) {
    TcpState w = snapshot(start_s);
    apply_slow_start_restart(w, config_);
    cwnd_ = w.cwnd_segments;
    ssthresh_ = w.ssthresh_segments;
  }
  first_use_ = false;

  DownloadResult result;
  result.start_s = start_s;
  result.bytes = size_bytes;

  double remaining = size_bytes;
  double t = start_s;
  int rounds = 0;
  // Guard against zero-rate tails: a stall longer than this aborts the
  // round loop with the time the trace itself would need.
  constexpr double kMinRate = 1e-9;

  // Deterministic per-download noise stream (see TcpConfig::rate_jitter):
  // hashed from the download identity so repeated runs are identical.
  std::uint64_t noise_state = std::bit_cast<std::uint64_t>(start_s) ^
                              (std::bit_cast<std::uint64_t>(size_bytes) *
                               0x9e3779b97f4a7c15ULL);

  while (remaining > 0.0) {
    const double rate_mbps = bandwidth.at(t);
    if (rate_mbps <= kMinRate) {
      // Nothing can be delivered in this window; skip to the next window
      // boundary (or stall forever if the trace ends at rate 0).
      const std::size_t idx = bandwidth.window_index(t);
      if (idx + 1 >= bandwidth.windows()) {
        // Trace holds 0 Mbps forever: model as an extremely long stall.
        result.end_s = t + 1e9;
        result.rounds = std::max(rounds, 1);
        last_send_s_ = result.end_s;
        return result;
      }
      t = static_cast<double>(idx + 1) * bandwidth.interval_s();
      continue;
    }

    double link_rate = rate_mbps;
    if (config_.rate_jitter > 0.0) {
      const double u = static_cast<double>(util::splitmix64(noise_state) >> 11) *
                       0x1.0p-53;
      link_rate *= 1.0 + config_.rate_jitter * (2.0 * u - 1.0);
    }
    const double link_bytes = link_rate * 1e6 / 8.0 * rtt_s_;
    const double window_bytes = cwnd_ * config_.mss_bytes;
    const double round_bytes = std::min(window_bytes, link_bytes);

    ++rounds;
    if (remaining <= round_bytes && rounds > 1) {
      // Fractional final round (first round always costs one full RTT:
      // request plus first delivery cannot beat one round trip).
      t += rtt_s_ * (remaining / round_bytes);
      remaining = 0.0;
    } else {
      t += rtt_s_;
      remaining -= std::min(remaining, round_bytes);
    }

    // Window evolution per round (shared law with the estimator f).
    cwnd_ = grow_window(cwnd_, ssthresh_,
                        bdp_segments(rate_mbps, rtt_s_, config_), config_);

    // Bottleneck overshoot: the queue absorbs queue_bdp_factor * BDP;
    // beyond that the tail drops and the sender halves into congestion
    // avoidance (fast recovery). Keeps ssthresh ~ BDP, so every
    // post-idle restart pays a slow linear climb — the size-dependent
    // throughput bias of paper Fig. 2(c).
    if (config_.enable_loss &&
        config_.congestion_control == CongestionControl::kCubicLike) {
      const double bdp = bdp_segments(rate_mbps, rtt_s_, config_);
      const double limit =
          std::max((1.0 + config_.queue_bdp_factor) * bdp, config_.init_cwnd);
      if (cwnd_ > limit) {
        ssthresh_ = std::max(cwnd_ / 2.0, config_.init_cwnd);
        cwnd_ = ssthresh_;
      }
    }
  }

  result.end_s = t;
  result.rounds = rounds;
  last_send_s_ = result.end_s;
  VERITAS_ENSURES(result.end_s > result.start_s);
  return result;
}

}  // namespace veritas::net
