// The Veritas domain-specific emission model f (paper Algorithm 4).
//
// f estimates the throughput a chunk of size S would observe when the
// ground-truth bandwidth is a *candidate* constant c and the connection
// starts the download in TCP state W. It models slow start, additive
// congestion avoidance and slow-start restart, but deliberately ignores
// GTBW changes during the download (paper Eq. 3 simplification) — the
// EHMM's Gaussian noise term absorbs the residual error (paper Fig. 5).
#pragma once

#include <span>

#include "net/tcp_state.hpp"

namespace veritas::net {

/// Estimated throughput (Mbps) for downloading `size_bytes` at candidate
/// GTBW `gtbw_mbps` from TCP state `w`. Pure function; `w` is copied and
/// slow-start restart applied internally. Requires size_bytes > 0.
/// Returns 0 when gtbw_mbps == 0.
double estimate_throughput_mbps(double gtbw_mbps, const TcpState& w,
                                double size_bytes,
                                const TcpConfig& config = {});

/// f evaluated for a whole candidate row at once:
/// out[i] = estimate_throughput_mbps(candidates_mbps[i], w, size_bytes) —
/// *bit-identical* to the per-candidate composition for every candidate
/// vector, Cubic and BBR states alike. Slow-start restart and the
/// candidate-independent terms (segment count, one-RTT throughput) are
/// computed once; the per-candidate window evolution runs through the
/// vectorized kernel table (math::simd_kernels::KernelOps::
/// estimate_batch) when the active dispatch mode provides one, and
/// otherwise through the scalar composition itself — same
/// VERITAS_SIMD switch / env var / ScopedMode machinery as the EHMM
/// recursions. Requires size_bytes > 0, candidates >= 0 and
/// out.size() >= candidates.size(); writes exactly candidates.size()
/// entries.
void estimate_throughput_batch(std::span<const double> candidates_mbps,
                               const TcpState& w, double size_bytes,
                               const TcpConfig& config, std::span<double> out);

/// Estimated download time (seconds) = size / f(...); +inf when the
/// estimated throughput is 0.
double estimate_download_time_s(double gtbw_mbps, const TcpState& w,
                                double size_bytes,
                                const TcpConfig& config = {});

namespace detail {

/// The seed's per-round loop counting transmission rounds for
/// `data_segments` starting from window `cwnd` (post-SSR) under the
/// grow_window law: the executable specification the closed-form path is
/// property-tested against, and the fallback when one of its guards trips.
int count_rounds_iterative(double cwnd, double ssthresh, double bdp,
                           double data_segments, const TcpConfig& config);

/// Closed-form round count: slow-start doublings are O(log) literal
/// steps, congestion-avoidance runs collapse to an arithmetic-series
/// solve (exact on the coarse window grid real stacks produce), and
/// constant-send tails to one division with a floating-point boundary
/// guard. Bit-identical to count_rounds_iterative: any input where the
/// rounded reference sums could flip a loop-exit decision falls back to
/// the reference loop itself.
int count_rounds(double cwnd, double ssthresh, double bdp,
                 double data_segments, const TcpConfig& config);

}  // namespace detail

/// Ablation hook (bench_ablate_tcp_state): a deliberately broken variant
/// of f that ignores the TCP state entirely and assumes the connection is
/// in steady state, i.e. returns min(gtbw, size/min_rtt). Demonstrates why
/// conditioning on W_sn matters (paper §3.2 d-separation argument).
double estimate_throughput_no_tcp_state_mbps(double gtbw_mbps,
                                             const TcpState& w,
                                             double size_bytes,
                                             const TcpConfig& config = {});

}  // namespace veritas::net
