// A network path = bandwidth trace + round-trip time. Owns the trace;
// hands out connections bound to the path's RTT.
#pragma once

#include <utility>

#include "net/tcp_model.hpp"
#include "trace/bandwidth_trace.hpp"

namespace veritas::net {

/// The emulated network between video client and server.
class NetworkPath {
 public:
  /// Requires rtt_s > 0. The paper's session experiments use 80 ms.
  NetworkPath(trace::BandwidthTrace bandwidth, double rtt_s,
              TcpConfig config = {});

  const trace::BandwidthTrace& bandwidth() const noexcept { return bandwidth_; }
  double rtt_s() const noexcept { return rtt_s_; }
  const TcpConfig& config() const noexcept { return config_; }

  /// A fresh connection over this path.
  TcpConnection make_connection() const;

 private:
  trace::BandwidthTrace bandwidth_;
  double rtt_s_;
  TcpConfig config_;
};

}  // namespace veritas::net
