#include "net/network_path.hpp"

#include "util/expects.hpp"

namespace veritas::net {

NetworkPath::NetworkPath(trace::BandwidthTrace bandwidth, double rtt_s,
                         TcpConfig config)
    : bandwidth_(std::move(bandwidth)), rtt_s_(rtt_s), config_(config) {
  VERITAS_EXPECTS(rtt_s > 0.0);
}

TcpConnection NetworkPath::make_connection() const {
  return TcpConnection(config_, rtt_s_);
}

}  // namespace veritas::net
