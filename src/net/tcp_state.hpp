// TCP state snapshot W_sn (paper §3.1).
//
// Veritas conditions its EHMM on the TCP state observed at the start of
// each chunk download; in a real deployment these fields come from the
// kernel (tcp_info / `ss`). Our simulator captures the same snapshot.
#pragma once

namespace veritas::net {

/// Congestion-control flavour of the deployed stack. The paper's model
/// (Algorithm 4) targets a cubic/Reno-style loss-based stack with
/// RFC 2861 slow-start restart; the BBR-like variant is the extension
/// the paper's §3.2 anticipates ("more detailed models that capture
/// intricate details of specific TCP versions can be easily
/// incorporated"). BBR keeps a rate estimate across idle periods, does
/// not halve on idle, and paces at the estimated bottleneck rate once
/// startup has filled the pipe.
enum class CongestionControl {
  kCubicLike,  ///< loss-based: SSR on idle, halve on overshoot (default)
  kBbrLike,    ///< rate-based: no SSR halving, no loss halving
};

/// Fixed protocol parameters shared by the simulator and the estimator f.
struct TcpConfig {
  CongestionControl congestion_control = CongestionControl::kCubicLike;
  double mss_bytes = 1448.0;     ///< maximum segment size
  double init_cwnd = 10.0;       ///< initial / restart congestion window (segments)
  double initial_ssthresh = 1e9; ///< "infinite" initial slow start threshold
  double min_rto_s = 0.2;        ///< Linux TCP_RTO_MIN is 200 ms
  double rwnd_segments = 20000;  ///< receive-window clamp on cwnd
  bool enable_ssr = true;        ///< model slow-start restart (RFC 2861)

  // Ground-truth simulator only (the estimator f is loss-free, per paper):
  // the bottleneck holds queue_bdp_factor * BDP of packets; when the
  // window overshoots BDP + queue the simulator emulates a loss episode
  // (ssthresh = cwnd/2, enter congestion avoidance). This is what keeps
  // recorded ssthresh values finite and post-idle recovery slow — the
  // source of the throughput-vs-size bias the paper studies (Fig. 2c).
  bool enable_loss = true;
  double queue_bdp_factor = 1.0;

  // Delay-based slow-start exit (hystart, the Linux cubic default):
  // exponential growth stops once the window covers this fraction of the
  // BDP; growth continues linearly from there. This is what makes
  // post-idle recovery slow in practice and drives the magnitude of the
  // throughput-vs-size effect in paper Fig. 2(c). Shared by the
  // simulator and the estimator f (both model the same deployed stack).
  // 0.25 is calibrated so the throughput-vs-size curve of the simulator
  // matches the magnitudes of paper Fig. 2(c) (hystart exits early and
  // cubic's concave region climbs slowly at residential BDPs).
  bool enable_hystart = true;
  double hystart_bdp_fraction = 0.25;

  // Ground-truth simulator only: per-round multiplicative noise on the
  // deliverable link rate (deterministic hash of download identity, no
  // RNG state). Real testbeds are not perfectly fluid; this keeps the
  // estimator f honestly imperfect (paper Fig. 5 shows residual error).
  double rate_jitter = 0.05;
};

/// Snapshot of the connection at the moment a chunk download begins.
/// Mirrors the fields the paper lists: congestion window, slow start
/// threshold, RTO, min RTT, RTT, and time since the last data send.
struct TcpState {
  double cwnd_segments = 10.0;
  double ssthresh_segments = 1e9;
  double rto_s = 0.2;
  double min_rtt_s = 0.08;
  double rtt_s = 0.08;
  double last_send_gap_s = 0.0;  ///< now - time of last data send
};

/// Applies slow-start restart (RFC 2861 / Linux tcp_cwnd_restart) to a
/// snapshot: when the connection has idled longer than the RTO, ssthresh
/// is raised to max(ssthresh, 3/4 * cwnd) and the congestion window is
/// halved once per elapsed RTO, floored at the initial window.
///
/// Note: paper Algorithm 4 writes the decay as `cwnd << 2` (growth); that
/// contradicts RFC 2861 and the Linux implementation it cites, so we use
/// the kernel semantics (halving). See DESIGN.md §3.
void apply_slow_start_restart(TcpState& w, const TcpConfig& config);

/// Bandwidth-delay product in segments for the given rate and RTT.
double bdp_segments(double mbps, double rtt_s, const TcpConfig& config);

/// True when a cubic-like window is still in slow start: below ssthresh
/// and (with hystart) below the configured fraction of the BDP. The
/// single definition shared by grow_window and the closed-form round
/// counter (net::detail::count_rounds), so the two cannot drift.
bool in_slow_start(double cwnd_segments, double ssthresh_segments,
                   double bdp_segments, const TcpConfig& config);

/// One round of congestion-window growth: slow start doubles the window
/// until it reaches ssthresh or (with hystart) the configured fraction of
/// the BDP; afterwards congestion avoidance adds one segment per round.
/// Clamped by the receive window. Shared by the ground-truth simulator
/// and the estimator f so both model the same deployed TCP stack.
///
/// NOTE: the batched estimator's vector kernel carries a deliberate
/// lane-parallel replica of this law (and of in_slow_start) over
/// flattened TcpBatchParams in math/simd_kernels_simd.cpp — it cannot
/// call into net from the ISA-flagged TU. Any semantic change here must
/// land there too; the bit-identity property suite
/// (tests/net/throughput_batch_test.cpp) fails loudly if they drift.
double grow_window(double cwnd_segments, double ssthresh_segments,
                   double bdp_segments, const TcpConfig& config);

/// Number of MSS-sized segments needed for `size_bytes` (ceiling, >= 1
/// for any positive size).
double segments_for_bytes(double size_bytes, const TcpConfig& config);

}  // namespace veritas::net
