#include "net/throughput_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expects.hpp"

namespace veritas::net {

double estimate_throughput_mbps(double gtbw_mbps, const TcpState& w,
                                double size_bytes, const TcpConfig& config) {
  VERITAS_EXPECTS(size_bytes > 0.0);
  VERITAS_EXPECTS(gtbw_mbps >= 0.0);
  if (gtbw_mbps == 0.0) return 0.0;

  TcpState state = w;
  apply_slow_start_restart(state, config);

  const double data_segments = segments_for_bytes(size_bytes, config);
  const double bdp = bdp_segments(gtbw_mbps, state.min_rtt_s, config);

  // Paper Algorithm 4, branch 1: the window already covers the pipe.
  if (state.cwnd_segments > bdp) {
    if (data_segments > bdp) {
      return gtbw_mbps;  // long transfer saturates the link
    }
    // Fits in one round trip.
    return size_bytes * 8.0 / 1e6 / state.min_rtt_s;
  }

  // Branch 2: count transmission rounds while the window opens (same
  // growth law as the deployed stack, see net::grow_window).
  double cwnd = state.cwnd_segments;
  double sent = 0.0;
  int rounds = 0;
  while (sent < data_segments) {
    sent += std::min(cwnd, bdp);
    cwnd = grow_window(cwnd, state.ssthresh_segments, bdp, config);
    ++rounds;
  }
  const double estimated =
      size_bytes * 8.0 / 1e6 / (static_cast<double>(rounds) * state.min_rtt_s);
  return std::min(estimated, gtbw_mbps);
}

double estimate_download_time_s(double gtbw_mbps, const TcpState& w,
                                double size_bytes, const TcpConfig& config) {
  const double y = estimate_throughput_mbps(gtbw_mbps, w, size_bytes, config);
  if (y <= 0.0) return std::numeric_limits<double>::infinity();
  return size_bytes * 8.0 / 1e6 / y;
}

double estimate_throughput_no_tcp_state_mbps(double gtbw_mbps,
                                             const TcpState& w,
                                             double size_bytes,
                                             const TcpConfig& config) {
  VERITAS_EXPECTS(size_bytes > 0.0);
  (void)config;
  // Steady-state assumption: either link-limited or one-RTT-limited.
  const double one_rtt_mbps = size_bytes * 8.0 / 1e6 / w.min_rtt_s;
  return std::min(gtbw_mbps, one_rtt_mbps);
}

}  // namespace veritas::net
