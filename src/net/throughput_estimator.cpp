#include "net/throughput_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/simd_kernels.hpp"
#include "util/expects.hpp"

namespace veritas::net {

namespace detail {

int count_rounds_iterative(double cwnd, double ssthresh, double bdp,
                           double data_segments, const TcpConfig& config) {
  double sent = 0.0;
  int rounds = 0;
  while (sent < data_segments) {
    sent += std::min(cwnd, bdp);
    cwnd = grow_window(cwnd, ssthresh, bdp, config);
    ++rounds;
  }
  return rounds;
}

namespace {

// True when w is a multiple of 2^-20 with |w| < 2^26. Every congestion
// window a real stack produces is far coarser (doublings, +1 steps and
// halvings of the initial window), and on this grid the +1.0
// congestion-avoidance recurrence and its arithmetic-series partial sums
// are exact in double precision, so a jumped round count provably equals
// the reference loop's.
bool on_coarse_grid(double w) {
  if (!(w >= 0.0) || w >= 67108864.0) return false;
  const double scaled = w * 1048576.0;
  return scaled == std::floor(scaled);
}

// S(r) = r*c + r*(r-1)/2: segments sent by r congestion-avoidance rounds
// starting from window c. Exact under the coarse-grid preconditions.
double ca_sum(double c, double r) { return r * c + r * (r - 1.0) * 0.5; }

}  // namespace

// NOTE: the batched estimator's per-lane scalar continuation
// (finish_rounds in math/simd_kernels_simd.cpp) replicates this
// function's jumps and guards from a mid-stream state; keep the two in
// lockstep (pinned by tests/net/throughput_batch_test.cpp).
int count_rounds(double cwnd0, double ssthresh, double bdp,
                 double data_segments, const TcpConfig& config) {
  // The reference loop's partial sums carry rounding error bounded by
  // (#rounds)*eps*sum; any loop-exit decision closer to a boundary than
  // this slack is ambiguous and is resolved by running the reference.
  const double slack = 1e-9 * (data_segments + 1.0);
  const bool cubic =
      config.congestion_control == CongestionControl::kCubicLike;
  double cwnd = cwnd0;

  // `sent` is kept bit-identical to the reference loop's accumulator:
  // literal steps replay the same operations in the same order, and the
  // congestion-avoidance jump is exact arithmetic on the coarse grid.
  double sent = 0.0;
  long rounds = 0;

  for (int steps = 0; steps < 512; ++steps) {
    if (sent >= data_segments) return static_cast<int>(rounds);

    const double send = std::min(cwnd, bdp);
    const double next = grow_window(cwnd, ssthresh, bdp, config);

    // Constant-send tail: either the window stopped evolving (fixed
    // point of grow_window), or it already covers the pipe and is
    // non-decreasing, so every remaining round delivers `per`.
    const bool fixed_point = next == cwnd;
    const bool saturated = send == bdp && next >= cwnd;
    if (fixed_point || saturated) {
      const double per = fixed_point ? send : bdp;
      if (!(per > 0.0)) break;  // degenerate: defer to the reference
      const double remaining = data_segments - sent;
      const double ratio = remaining / per;
      if (!(ratio < 4e6)) break;  // error bound / overflow cap
      long k = static_cast<long>(std::ceil(ratio));
      if (k < 1) k = 1;
      while (k > 1 && static_cast<double>(k - 1) * per >= remaining) --k;
      while (static_cast<double>(k) * per < remaining) ++k;
      // Distance of the exit decision from the nearest flip point must
      // exceed the reference's accumulated rounding error.
      const double lo = remaining - static_cast<double>(k - 1) * per;
      const double hi = static_cast<double>(k) * per - remaining;
      if (lo < slack || hi < slack) break;
      return static_cast<int>(rounds + k);
    }

    // Congestion-avoidance run (cubic only): sends c, c+1, c+2, ...
    // while the window stays under both the pipe and the receive window.
    // !slow_start is absorbing (the window only grows), so the whole run
    // can be jumped with the arithmetic series — exactly, on the grid.
    if (cubic && next == cwnd + 1.0) {
      if (!in_slow_start(cwnd, ssthresh, bdp, config)) {
        if (!on_coarse_grid(cwnd) || !on_coarse_grid(sent) ||
            data_segments >= 1073741824.0) {
          break;  // off-grid: exactness argument void, use the reference
        }
        // Largest t with cwnd + t <= min(bdp, rwnd): beyond it the send
        // caps at bdp or growth clamps at rwnd. Window values are exact,
        // so a floor plus local adjustment lands the crossing exactly.
        const double bound = std::min(bdp, config.rwnd_segments);
        long t_max = static_cast<long>(std::floor(bound - cwnd));
        while (cwnd + static_cast<double>(t_max + 1) <= bound) ++t_max;
        while (t_max > 0 && cwnd + static_cast<double>(t_max) > bound)
          --t_max;
        if (t_max < 0) t_max = 0;
        const long run = t_max + 1;  // rounds sending cwnd .. cwnd+t_max
        if (cwnd + static_cast<double>(run) >= 67108864.0) break;

        // Minimal r in [1, run] with sent + S(r) >= data, if any. The
        // quadratic solve gets within a step or two; the exact S
        // evaluations land it. Never extrapolate past the run: beyond it
        // the sends cap at bdp (or growth clamps at rwnd).
        const double need = data_segments - sent;  // exact on the grid
        const double c2 = 2.0 * cwnd - 1.0;
        long r = static_cast<long>(
            std::ceil((std::sqrt(c2 * c2 + 8.0 * need) - c2) * 0.5));
        r = std::clamp(r, 1L, run);
        while (r > 1 && ca_sum(cwnd, static_cast<double>(r - 1)) >= need)
          --r;
        while (r < run && ca_sum(cwnd, static_cast<double>(r)) < need) ++r;
        if (ca_sum(cwnd, static_cast<double>(r)) >= need) {
          return static_cast<int>(rounds + r);
        }
        // The run ends (send caps or growth clamps) before the data is
        // done: account for the whole run and re-classify. The final
        // growth carries grow_window's receive-window clamp — when the
        // run ended at the rwnd boundary the reference's next window is
        // rwnd, not cwnd+run.
        sent += ca_sum(cwnd, static_cast<double>(run));
        rounds += run;
        cwnd = std::min(cwnd + static_cast<double>(run),
                        config.rwnd_segments);
        continue;
      }
    }

    // Literal step (slow-start doubling, BBR startup, clamp transients):
    // identical operations to the reference, so `sent` stays bit-exact.
    sent += send;
    cwnd = next;
    ++rounds;
  }

  // A guard tripped (boundary too close, off-grid window, or an
  // adversarial trajectory): the reference loop, replayed from the
  // original inputs, is the semantics.
  return count_rounds_iterative(cwnd0, ssthresh, bdp, data_segments, config);
}

}  // namespace detail

double estimate_throughput_mbps(double gtbw_mbps, const TcpState& w,
                                double size_bytes, const TcpConfig& config) {
  VERITAS_EXPECTS(size_bytes > 0.0);
  VERITAS_EXPECTS(gtbw_mbps >= 0.0);
  if (gtbw_mbps == 0.0) return 0.0;

  TcpState state = w;
  apply_slow_start_restart(state, config);

  const double data_segments = segments_for_bytes(size_bytes, config);
  const double bdp = bdp_segments(gtbw_mbps, state.min_rtt_s, config);

  // Paper Algorithm 4, branch 1: the window already covers the pipe.
  if (state.cwnd_segments > bdp) {
    if (data_segments > bdp) {
      return gtbw_mbps;  // long transfer saturates the link
    }
    // Fits in one round trip.
    return size_bytes * 8.0 / 1e6 / state.min_rtt_s;
  }

  // Branch 2: transmission rounds while the window opens (same growth
  // law as the deployed stack, see net::grow_window). The round count is
  // closed-form with a guarded fallback to the per-round reference loop;
  // see detail::count_rounds.
  const int rounds =
      detail::count_rounds(state.cwnd_segments, state.ssthresh_segments, bdp,
                           data_segments, config);
  const double estimated =
      size_bytes * 8.0 / 1e6 / (static_cast<double>(rounds) * state.min_rtt_s);
  return std::min(estimated, gtbw_mbps);
}

void estimate_throughput_batch(std::span<const double> candidates_mbps,
                               const TcpState& w, double size_bytes,
                               const TcpConfig& config,
                               std::span<double> out) {
  VERITAS_EXPECTS(size_bytes > 0.0);
  VERITAS_EXPECTS(out.size() >= candidates_mbps.size());
  if (candidates_mbps.empty()) return;

  const math::simd_kernels::KernelOps& ops =
      math::simd_kernels::active_ops();
  // The vector kernel assumes a well-formed state (the scalar path
  // re-validates per call and short-circuits zero candidates before its
  // RTT use); fall back to the reference composition otherwise.
  if (ops.estimate_batch != nullptr && w.min_rtt_s > 0.0) {
    for (const double c : candidates_mbps) VERITAS_EXPECTS(c >= 0.0);
    TcpState state = w;
    apply_slow_start_restart(state, config);
    math::simd_kernels::TcpBatchParams p;
    p.cwnd0 = state.cwnd_segments;
    p.ssthresh = state.ssthresh_segments;
    p.min_rtt_s = state.min_rtt_s;
    p.mss_bytes = config.mss_bytes;
    p.rwnd_segments = config.rwnd_segments;
    p.init_cwnd = config.init_cwnd;
    p.hystart_bdp_fraction = config.hystart_bdp_fraction;
    p.data_segments = segments_for_bytes(size_bytes, config);
    p.size_bytes = size_bytes;
    p.bbr = config.congestion_control == CongestionControl::kBbrLike;
    p.hystart = config.enable_hystart;
    ops.estimate_batch(candidates_mbps.data(), candidates_mbps.size(), p,
                       out.data());
    return;
  }

  // Scalar reference: the batch result is *defined* as this composition.
  for (std::size_t i = 0; i < candidates_mbps.size(); ++i) {
    out[i] =
        estimate_throughput_mbps(candidates_mbps[i], w, size_bytes, config);
  }
}

double estimate_download_time_s(double gtbw_mbps, const TcpState& w,
                                double size_bytes, const TcpConfig& config) {
  const double y = estimate_throughput_mbps(gtbw_mbps, w, size_bytes, config);
  if (y <= 0.0) return std::numeric_limits<double>::infinity();
  return size_bytes * 8.0 / 1e6 / y;
}

double estimate_throughput_no_tcp_state_mbps(double gtbw_mbps,
                                             const TcpState& w,
                                             double size_bytes,
                                             const TcpConfig& config) {
  VERITAS_EXPECTS(size_bytes > 0.0);
  (void)config;
  // Steady-state assumption: either link-limited or one-RTT-limited.
  const double one_rtt_mbps = size_bytes * 8.0 / 1e6 / w.min_rtt_s;
  return std::min(gtbw_mbps, one_rtt_mbps);
}

}  // namespace veritas::net
