// Quality-ladder presets used by the paper's experiments.
#pragma once

#include "video/video.hpp"

namespace veritas::video {

/// The deployed ladder (Setting A): bitrates 0.1-4.0 Mbps (paper §4.1).
Ladder default_ladder();

/// The "higher set of qualities" counterfactual (paper Fig. 11):
/// the low rungs are dropped and rungs up to 8 Mbps are added.
Ladder high_ladder();

/// Two-rung ladder for the Fig. 2(b) bias demonstration (forced
/// low-vs-high next chunk).
Ladder low_high_ladder();

/// Default video config (10-minute clip, 2 s chunks, default ladder).
VideoConfig default_video_config(std::uint64_t seed = 42);

}  // namespace veritas::video
