#include "video/ladder_presets.hpp"

namespace veritas::video {

Ladder default_ladder() {
  return {
      {"240p", 0.1}, {"360p", 0.4}, {"480p", 1.0},
      {"720p", 2.5}, {"1080p", 4.0},
  };
}

Ladder high_ladder() {
  // "Higher set of qualities" (paper Fig. 11): the low rungs are dropped
  // entirely and rungs up to 8 Mbps are added.
  return {
      {"720p", 2.5}, {"1080p", 4.0}, {"1440p", 6.0}, {"2160p", 8.0},
  };
}

Ladder low_high_ladder() {
  return {{"low", 0.1}, {"high", 4.0}};
}

VideoConfig default_video_config(std::uint64_t seed) {
  VideoConfig cfg;
  cfg.ladder = default_ladder();
  cfg.seed = seed;
  return cfg;
}

}  // namespace veritas::video
