#include "video/video.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"
#include "util/rng.hpp"

namespace veritas::video {

namespace {
// Calibration of ssim_model (see header): solve 1 - a*r^-b through the
// paper's two endpoints (0.1 Mbps, 0.908) and (4.0 Mbps, 0.986).
constexpr double kSsimAlpha = 0.02841;
constexpr double kSsimBeta = 0.5097;
}  // namespace

double ssim_model(double bitrate_mbps, double difficulty) {
  VERITAS_EXPECTS(bitrate_mbps > 0.0);
  VERITAS_EXPECTS(difficulty > 0.0);
  const double deficit =
      kSsimAlpha * difficulty * std::pow(bitrate_mbps, -kSsimBeta);
  return std::clamp(1.0 - deficit, 0.0, 0.99999);
}

double ssim_db(double ssim) {
  VERITAS_EXPECTS(ssim >= 0.0 && ssim < 1.0);
  return -10.0 * std::log10(1.0 - ssim);
}

Video::Video(VideoConfig config) : config_(std::move(config)) {
  VERITAS_EXPECTS(config_.duration_s > 0.0);
  VERITAS_EXPECTS(config_.chunk_duration_s > 0.0);
  VERITAS_EXPECTS(!config_.ladder.empty());
  VERITAS_EXPECTS(config_.vbr_sigma >= 0.0 && config_.ssim_sigma >= 0.0);
  for (std::size_t q = 1; q < config_.ladder.size(); ++q) {
    VERITAS_EXPECTS(config_.ladder[q].bitrate_mbps >
                    config_.ladder[q - 1].bitrate_mbps);
  }
  VERITAS_EXPECTS(config_.ladder.front().bitrate_mbps > 0.0);

  num_chunks_ = static_cast<std::size_t>(
      std::floor(config_.duration_s / config_.chunk_duration_s + 0.5));
  VERITAS_EXPECTS(num_chunks_ >= 1);

  util::Rng rng(config_.seed);
  size_jitter_.reserve(num_chunks_);
  difficulty_.reserve(num_chunks_);
  for (std::size_t n = 0; n < num_chunks_; ++n) {
    // Mean-corrected lognormal: E[jitter] == 1 so expected sizes match
    // the nominal bitrate.
    const double s = config_.vbr_sigma;
    size_jitter_.push_back(
        s > 0.0 ? rng.lognormal(-0.5 * s * s, s) : 1.0);
    const double d = config_.ssim_sigma;
    difficulty_.push_back(std::clamp(
        d > 0.0 ? rng.lognormal(-0.5 * d * d, d) : 1.0, 0.5, 2.0));
  }
}

double Video::chunk_size_bytes(std::size_t chunk, std::size_t quality) const {
  VERITAS_EXPECTS(chunk < num_chunks_);
  VERITAS_EXPECTS(quality < config_.ladder.size());
  const double nominal_bytes = config_.ladder[quality].bitrate_mbps * 1e6 /
                               8.0 * config_.chunk_duration_s;
  return nominal_bytes * size_jitter_[chunk];
}

double Video::chunk_ssim(std::size_t chunk, std::size_t quality) const {
  VERITAS_EXPECTS(chunk < num_chunks_);
  VERITAS_EXPECTS(quality < config_.ladder.size());
  return ssim_model(config_.ladder[quality].bitrate_mbps, difficulty_[chunk]);
}

double Video::bitrate_mbps(std::size_t quality) const {
  VERITAS_EXPECTS(quality < config_.ladder.size());
  return config_.ladder[quality].bitrate_mbps;
}

Video Video::with_ladder(Ladder ladder) const {
  VideoConfig cfg = config_;
  cfg.ladder = std::move(ladder);
  // Same seed -> same per-chunk jitter/difficulty: identical content.
  return Video(cfg);
}

}  // namespace veritas::video
