// The video being streamed: a quality ladder plus per-chunk variable
// bitrate (VBR) sizes and per-chunk SSIM values.
//
// Substitutes for the paper's pre-recorded 10-minute clip (DESIGN.md §3):
// sizes follow a mean-corrected lognormal around the nominal bitrate and
// SSIM follows a saturating power-law in bitrate calibrated to the
// paper's endpoints (session-mean 0.908 at the lowest quality, 0.986 at
// the highest; §4.1). Deterministic in the seed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace veritas::video {

/// One rung of the quality ladder.
struct QualityLevel {
  std::string name;      ///< e.g. "480p"
  double bitrate_mbps;   ///< nominal encoding bitrate
};

/// An ordered quality ladder (ascending bitrate).
using Ladder = std::vector<QualityLevel>;

/// Parameters of the synthetic video.
struct VideoConfig {
  double duration_s = 600.0;   ///< paper: 10-minute clip
  double chunk_duration_s = 2.0;
  Ladder ladder;               ///< must be non-empty, ascending bitrate
  double vbr_sigma = 0.15;     ///< lognormal size jitter (0 = CBR)
  double ssim_sigma = 0.10;    ///< per-chunk encoding-difficulty jitter
  std::uint64_t seed = 42;     ///< drives per-chunk size/difficulty draws
};

/// Immutable synthetic video: chunk sizes and SSIM per (chunk, quality).
class Video {
 public:
  explicit Video(VideoConfig config);

  std::size_t num_chunks() const noexcept { return num_chunks_; }
  double chunk_duration_s() const noexcept { return config_.chunk_duration_s; }
  double duration_s() const noexcept {
    return static_cast<double>(num_chunks_) * config_.chunk_duration_s;
  }
  const Ladder& ladder() const noexcept { return config_.ladder; }
  std::size_t num_qualities() const noexcept { return config_.ladder.size(); }

  /// Encoded size in bytes of chunk `chunk` at quality `quality`.
  double chunk_size_bytes(std::size_t chunk, std::size_t quality) const;

  /// SSIM index of chunk `chunk` at quality `quality` (in (0, 1)).
  double chunk_ssim(std::size_t chunk, std::size_t quality) const;

  /// Nominal bitrate of a quality level, Mbps.
  double bitrate_mbps(std::size_t quality) const;

  /// A copy of this video re-encoded with a different ladder but identical
  /// per-chunk content difficulty (for the "change of qualities"
  /// counterfactual, paper Fig. 11: same content, new ladder).
  Video with_ladder(Ladder ladder) const;

 private:
  VideoConfig config_;
  std::size_t num_chunks_;
  // difficulty_[chunk]: multiplicative factor on size and SSIM deficit.
  std::vector<double> size_jitter_;
  std::vector<double> difficulty_;
};

/// SSIM of a stream encoded at `bitrate_mbps` with the given per-chunk
/// difficulty factor (1.0 = average content). Saturating power-law
/// calibrated so difficulty 1.0 yields 0.908 at 0.1 Mbps and 0.986 at
/// 4.0 Mbps.
double ssim_model(double bitrate_mbps, double difficulty = 1.0);

/// SSIM in decibels: -10 log10(1 - ssim). Used by quality-aware ABRs.
double ssim_db(double ssim);

}  // namespace veritas::video
