// Hand-rolled multilayer perceptron with Adam, used to reproduce Fugu's
// transmission-time predictor (the paper's associational baseline).
//
// Deliberately small and dependency-free: dense layers, ReLU hidden
// activations, linear output, mean-squared-error loss. Gradients are
// verified against finite differences in tests/ml/mlp_test.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace veritas::ml {

struct MlpConfig {
  std::vector<std::size_t> layer_sizes;  ///< e.g. {17, 64, 64, 1}
  double learning_rate = 1e-3;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.999;
  double adam_epsilon = 1e-8;
  std::uint64_t seed = 7;
};

/// Feedforward network: ReLU hidden layers, linear scalar-or-vector output.
class Mlp {
 public:
  /// Requires >= 2 layer sizes, all positive.
  explicit Mlp(MlpConfig config);

  std::size_t input_size() const noexcept;
  std::size_t output_size() const noexcept;

  /// Forward pass for a single input row.
  std::vector<double> predict(std::span<const double> input) const;

  /// One Adam step on a mini-batch; rows of inputs/targets correspond.
  /// Returns the batch mean-squared-error *before* the update.
  double train_batch(std::span<const std::vector<double>> inputs,
                     std::span<const std::vector<double>> targets);

  /// MSE over a dataset (no update).
  double evaluate_mse(std::span<const std::vector<double>> inputs,
                      std::span<const std::vector<double>> targets) const;

  /// Loss gradient w.r.t. all parameters for one example, flattened in
  /// parameter order. Exposed for gradient-check tests.
  std::vector<double> parameter_gradient(std::span<const double> input,
                                         std::span<const double> target) const;

  /// Flattened parameter vector (weights then biases, layer by layer).
  std::vector<double> parameters() const;
  void set_parameters(std::span<const double> flat);

 private:
  struct Layer {
    std::size_t in = 0, out = 0;
    std::vector<double> weights;  ///< row-major out x in
    std::vector<double> bias;
    // Adam moments.
    std::vector<double> m_w, v_w, m_b, v_b;
  };

  struct ForwardCache {
    std::vector<std::vector<double>> activations;      ///< per layer input
    std::vector<std::vector<double>> pre_activations;  ///< per layer z
  };

  std::vector<double> forward(std::span<const double> input,
                              ForwardCache* cache) const;
  void accumulate_gradients(std::span<const double> input,
                            std::span<const double> target,
                            std::vector<std::vector<double>>& grad_w,
                            std::vector<std::vector<double>>& grad_b,
                            double scale) const;

  MlpConfig config_;
  std::vector<Layer> layers_;
  std::size_t adam_step_ = 0;
};

/// Z-score feature scaler fitted on training data (stored with the model
/// so prediction inputs are normalized identically).
class StandardScaler {
 public:
  /// Fits mean/std per column. Requires non-empty rows of equal width.
  void fit(std::span<const std::vector<double>> rows);
  std::vector<double> transform(std::span<const double> row) const;
  bool fitted() const noexcept { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace veritas::ml
