// FuguNN: the associational download-time predictor the paper compares
// against (Yan et al., NSDI'20; paper §2.2 and §4.4).
//
// Predicts the download time of the next chunk from its size and the
// sizes and download times of the previous K chunks. Trained on logs of
// a deployed ABR, it learns the *association* between size and download
// time under that ABR's policy — which is biased for causal queries
// (forced sizes the ABR would not have chosen). Veritas is the causal
// alternative; this class exists to reproduce Figs. 2(b) and 12.
#pragma once

#include <span>
#include <vector>

#include "ml/mlp.hpp"
#include "sim/session_log.hpp"

namespace veritas::ml {

struct FuguConfig {
  std::size_t past_chunks = 8;        ///< K in the paper's description
  std::vector<std::size_t> hidden = {64, 64};
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  double learning_rate = 1e-3;
  double validation_fraction = 0.1;   ///< held out for early-stop reporting
  std::uint64_t seed = 17;
  bool predict_log_time = true;       ///< regress log(D) (times are heavy-tailed)
  double max_prediction_s = 120.0;    ///< clamp on predicted download times
};

/// A trained Fugu model.
class FuguNN {
 public:
  explicit FuguNN(FuguConfig config = {});

  /// Trains on the chunk sequences of the given session logs. Returns
  /// the final validation MSE (in model target units). Requires at least
  /// one log with more than past_chunks chunks.
  double fit(std::span<const sim::SessionLog> logs);

  /// Predicts the download time (seconds) of a next chunk of
  /// `next_size_bytes`, given the previous chunks' sizes and download
  /// times (most recent last). Requires fit() first; histories shorter
  /// than K are left-padded with the oldest entry.
  double predict_download_time_s(std::span<const double> past_sizes_bytes,
                                 std::span<const double> past_times_s,
                                 double next_size_bytes) const;

  /// Convenience: predicts chunk `index` of a log from its in-log history.
  /// Requires index >= 1.
  double predict_chunk(const sim::SessionLog& log, std::size_t index) const;

  const FuguConfig& config() const noexcept { return config_; }
  bool trained() const noexcept { return trained_; }

 private:
  std::vector<double> make_features(std::span<const double> past_sizes_bytes,
                                    std::span<const double> past_times_s,
                                    double next_size_bytes) const;

  FuguConfig config_;
  Mlp mlp_;
  StandardScaler scaler_;
  bool trained_ = false;
};

}  // namespace veritas::ml
