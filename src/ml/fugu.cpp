#include "ml/fugu.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"
#include "util/rng.hpp"

namespace veritas::ml {

namespace {

MlpConfig make_mlp_config(const FuguConfig& config) {
  MlpConfig mlp;
  mlp.layer_sizes.push_back(2 * config.past_chunks + 1);
  for (const std::size_t h : config.hidden) mlp.layer_sizes.push_back(h);
  mlp.layer_sizes.push_back(1);
  mlp.learning_rate = config.learning_rate;
  mlp.seed = config.seed;
  return mlp;
}

}  // namespace

FuguNN::FuguNN(FuguConfig config)
    : config_(std::move(config)), mlp_(make_mlp_config(config_)) {
  VERITAS_EXPECTS(config_.past_chunks >= 1);
  VERITAS_EXPECTS(config_.epochs >= 1);
  VERITAS_EXPECTS(config_.batch_size >= 1);
}

std::vector<double> FuguNN::make_features(
    std::span<const double> past_sizes_bytes,
    std::span<const double> past_times_s, double next_size_bytes) const {
  VERITAS_EXPECTS(past_sizes_bytes.size() == past_times_s.size());
  VERITAS_EXPECTS(!past_sizes_bytes.empty());
  const std::size_t k = config_.past_chunks;
  std::vector<double> features;
  features.reserve(2 * k + 1);
  // Left-pad short histories with the oldest entry; sizes in MB.
  for (std::size_t slot = 0; slot < k; ++slot) {
    const std::size_t have = past_sizes_bytes.size();
    const std::size_t idx = (slot + have >= k) ? slot + have - k : 0;
    features.push_back(past_sizes_bytes[idx] / 1e6);
  }
  for (std::size_t slot = 0; slot < k; ++slot) {
    const std::size_t have = past_times_s.size();
    const std::size_t idx = (slot + have >= k) ? slot + have - k : 0;
    features.push_back(past_times_s[idx]);
  }
  features.push_back(next_size_bytes / 1e6);
  return features;
}

double FuguNN::fit(std::span<const sim::SessionLog> logs) {
  VERITAS_EXPECTS(!logs.empty());

  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<double>> targets;
  for (const sim::SessionLog& log : logs) {
    if (log.size() <= config_.past_chunks) continue;
    std::vector<double> sizes;
    std::vector<double> times;
    sizes.reserve(log.size());
    times.reserve(log.size());
    for (const sim::ChunkLog& c : log.chunks) {
      sizes.push_back(c.size_bytes);
      times.push_back(c.download_time_s());
    }
    for (std::size_t n = config_.past_chunks; n < log.size(); ++n) {
      const std::span<const double> past_sizes(sizes.data() + n - config_.past_chunks,
                                               config_.past_chunks);
      const std::span<const double> past_times(times.data() + n - config_.past_chunks,
                                               config_.past_chunks);
      inputs.push_back(make_features(past_sizes, past_times, sizes[n]));
      const double d = times[n];
      targets.push_back(
          {config_.predict_log_time ? std::log(std::max(d, 1e-4)) : d});
    }
  }
  VERITAS_EXPECTS(!inputs.empty());

  scaler_.fit(inputs);
  for (auto& row : inputs) row = scaler_.transform(row);

  // Shuffle and split off a validation tail.
  util::Rng rng(config_.seed ^ 0xf09dULL);
  std::vector<std::size_t> order(inputs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  util::shuffle(order, rng);
  const std::size_t val_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.validation_fraction *
                                  static_cast<double>(inputs.size())));
  const std::size_t train_count = inputs.size() - val_count;

  std::vector<std::vector<double>> train_x, train_y, val_x, val_y;
  train_x.reserve(train_count);
  train_y.reserve(train_count);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto& dst_x = (i < train_count) ? train_x : val_x;
    auto& dst_y = (i < train_count) ? train_y : val_y;
    dst_x.push_back(inputs[order[i]]);
    dst_y.push_back(targets[order[i]]);
  }

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    util::shuffle(order, rng);  // reshuffle batch composition per epoch
    for (std::size_t begin = 0; begin < train_x.size();
         begin += config_.batch_size) {
      const std::size_t end =
          std::min(begin + config_.batch_size, train_x.size());
      mlp_.train_batch(
          std::span<const std::vector<double>>(train_x.data() + begin,
                                               end - begin),
          std::span<const std::vector<double>>(train_y.data() + begin,
                                               end - begin));
    }
  }
  trained_ = true;
  return mlp_.evaluate_mse(val_x, val_y);
}

double FuguNN::predict_download_time_s(
    std::span<const double> past_sizes_bytes,
    std::span<const double> past_times_s, double next_size_bytes) const {
  VERITAS_EXPECTS(trained_);
  VERITAS_EXPECTS(next_size_bytes > 0.0);
  const std::vector<double> features =
      scaler_.transform(make_features(past_sizes_bytes, past_times_s,
                                      next_size_bytes));
  const double raw = mlp_.predict(features)[0];
  const double time =
      config_.predict_log_time ? std::exp(raw) : std::max(raw, 0.0);
  // Guard against extrapolation blow-ups far off the training manifold
  // (a real predictor bounds its output range).
  return std::min(time, config_.max_prediction_s);
}

double FuguNN::predict_chunk(const sim::SessionLog& log,
                             std::size_t index) const {
  VERITAS_EXPECTS(index >= 1 && index < log.size());
  const std::size_t k = std::min(config_.past_chunks, index);
  std::vector<double> sizes;
  std::vector<double> times;
  sizes.reserve(k);
  times.reserve(k);
  for (std::size_t n = index - k; n < index; ++n) {
    sizes.push_back(log.chunks[n].size_bytes);
    times.push_back(log.chunks[n].download_time_s());
  }
  return predict_download_time_s(sizes, times, log.chunks[index].size_bytes);
}

}  // namespace veritas::ml
