#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"

namespace veritas::ml {

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {
  VERITAS_EXPECTS(config_.layer_sizes.size() >= 2);
  for (const std::size_t s : config_.layer_sizes) VERITAS_EXPECTS(s > 0);
  util::Rng rng(config_.seed);
  layers_.reserve(config_.layer_sizes.size() - 1);
  for (std::size_t l = 0; l + 1 < config_.layer_sizes.size(); ++l) {
    Layer layer;
    layer.in = config_.layer_sizes[l];
    layer.out = config_.layer_sizes[l + 1];
    layer.weights.resize(layer.in * layer.out);
    layer.bias.assign(layer.out, 0.0);
    // He initialization (ReLU-friendly).
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (double& w : layer.weights) w = rng.normal(0.0, scale);
    layer.m_w.assign(layer.weights.size(), 0.0);
    layer.v_w.assign(layer.weights.size(), 0.0);
    layer.m_b.assign(layer.out, 0.0);
    layer.v_b.assign(layer.out, 0.0);
    layers_.push_back(std::move(layer));
  }
}

std::size_t Mlp::input_size() const noexcept { return layers_.front().in; }
std::size_t Mlp::output_size() const noexcept { return layers_.back().out; }

std::vector<double> Mlp::forward(std::span<const double> input,
                                 ForwardCache* cache) const {
  VERITAS_EXPECTS(input.size() == input_size());
  std::vector<double> current(input.begin(), input.end());
  if (cache != nullptr) {
    cache->activations.clear();
    cache->pre_activations.clear();
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    if (cache != nullptr) cache->activations.push_back(current);
    std::vector<double> z(layer.out, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double acc = layer.bias[o];
      const double* w_row = layer.weights.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) acc += w_row[i] * current[i];
      z[o] = acc;
    }
    if (cache != nullptr) cache->pre_activations.push_back(z);
    const bool is_output = (l + 1 == layers_.size());
    if (!is_output) {
      for (double& v : z) v = std::max(0.0, v);  // ReLU
    }
    current = std::move(z);
  }
  return current;
}

std::vector<double> Mlp::predict(std::span<const double> input) const {
  return forward(input, nullptr);
}

void Mlp::accumulate_gradients(std::span<const double> input,
                               std::span<const double> target,
                               std::vector<std::vector<double>>& grad_w,
                               std::vector<std::vector<double>>& grad_b,
                               double scale) const {
  VERITAS_EXPECTS(target.size() == output_size());
  ForwardCache cache;
  const std::vector<double> output = forward(input, &cache);

  // dL/dy for L = mean over outputs of (y - t)^2.
  std::vector<double> delta(output.size());
  for (std::size_t o = 0; o < output.size(); ++o) {
    delta[o] = 2.0 * (output[o] - target[o]) /
               static_cast<double>(output.size());
  }

  for (std::size_t l = layers_.size(); l-- > 0;) {
    const Layer& layer = layers_[l];
    const std::vector<double>& a_in = cache.activations[l];
    const bool is_output = (l + 1 == layers_.size());
    // Through the activation: ReLU' on hidden layers.
    if (!is_output) {
      const std::vector<double>& z = cache.pre_activations[l];
      for (std::size_t o = 0; o < layer.out; ++o) {
        if (z[o] <= 0.0) delta[o] = 0.0;
      }
    }
    for (std::size_t o = 0; o < layer.out; ++o) {
      grad_b[l][o] += scale * delta[o];
      double* gw_row = grad_w[l].data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) {
        gw_row[i] += scale * delta[o] * a_in[i];
      }
    }
    if (l > 0) {
      std::vector<double> next_delta(layer.in, 0.0);
      for (std::size_t i = 0; i < layer.in; ++i) {
        double acc = 0.0;
        for (std::size_t o = 0; o < layer.out; ++o) {
          acc += layer.weights[o * layer.in + i] * delta[o];
        }
        next_delta[i] = acc;
      }
      delta = std::move(next_delta);
    }
  }
}

double Mlp::train_batch(std::span<const std::vector<double>> inputs,
                        std::span<const std::vector<double>> targets) {
  VERITAS_EXPECTS(!inputs.empty());
  VERITAS_EXPECTS(inputs.size() == targets.size());

  std::vector<std::vector<double>> grad_w(layers_.size());
  std::vector<std::vector<double>> grad_b(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    grad_w[l].assign(layers_[l].weights.size(), 0.0);
    grad_b[l].assign(layers_[l].bias.size(), 0.0);
  }

  const double scale = 1.0 / static_cast<double>(inputs.size());
  double loss = 0.0;
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    const std::vector<double> out = predict(inputs[r]);
    for (std::size_t o = 0; o < out.size(); ++o) {
      const double d = out[o] - targets[r][o];
      loss += d * d / static_cast<double>(out.size());
    }
    accumulate_gradients(inputs[r], targets[r], grad_w, grad_b, scale);
  }
  loss *= scale;

  // Adam update.
  ++adam_step_;
  const double b1 = config_.adam_beta1;
  const double b2 = config_.adam_beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(adam_step_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(adam_step_));
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Layer& layer = layers_[l];
    for (std::size_t i = 0; i < layer.weights.size(); ++i) {
      layer.m_w[i] = b1 * layer.m_w[i] + (1.0 - b1) * grad_w[l][i];
      layer.v_w[i] = b2 * layer.v_w[i] + (1.0 - b2) * grad_w[l][i] * grad_w[l][i];
      const double m_hat = layer.m_w[i] / bias1;
      const double v_hat = layer.v_w[i] / bias2;
      layer.weights[i] -= config_.learning_rate * m_hat /
                          (std::sqrt(v_hat) + config_.adam_epsilon);
    }
    for (std::size_t i = 0; i < layer.bias.size(); ++i) {
      layer.m_b[i] = b1 * layer.m_b[i] + (1.0 - b1) * grad_b[l][i];
      layer.v_b[i] = b2 * layer.v_b[i] + (1.0 - b2) * grad_b[l][i] * grad_b[l][i];
      const double m_hat = layer.m_b[i] / bias1;
      const double v_hat = layer.v_b[i] / bias2;
      layer.bias[i] -= config_.learning_rate * m_hat /
                       (std::sqrt(v_hat) + config_.adam_epsilon);
    }
  }
  return loss;
}

double Mlp::evaluate_mse(std::span<const std::vector<double>> inputs,
                         std::span<const std::vector<double>> targets) const {
  VERITAS_EXPECTS(!inputs.empty());
  VERITAS_EXPECTS(inputs.size() == targets.size());
  double loss = 0.0;
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    const std::vector<double> out = predict(inputs[r]);
    for (std::size_t o = 0; o < out.size(); ++o) {
      const double d = out[o] - targets[r][o];
      loss += d * d / static_cast<double>(out.size());
    }
  }
  return loss / static_cast<double>(inputs.size());
}

std::vector<double> Mlp::parameter_gradient(
    std::span<const double> input, std::span<const double> target) const {
  std::vector<std::vector<double>> grad_w(layers_.size());
  std::vector<std::vector<double>> grad_b(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    grad_w[l].assign(layers_[l].weights.size(), 0.0);
    grad_b[l].assign(layers_[l].bias.size(), 0.0);
  }
  accumulate_gradients(input, target, grad_w, grad_b, 1.0);
  std::vector<double> flat;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    flat.insert(flat.end(), grad_w[l].begin(), grad_w[l].end());
    flat.insert(flat.end(), grad_b[l].begin(), grad_b[l].end());
  }
  return flat;
}

std::vector<double> Mlp::parameters() const {
  std::vector<double> flat;
  for (const Layer& layer : layers_) {
    flat.insert(flat.end(), layer.weights.begin(), layer.weights.end());
    flat.insert(flat.end(), layer.bias.begin(), layer.bias.end());
  }
  return flat;
}

void Mlp::set_parameters(std::span<const double> flat) {
  std::size_t offset = 0;
  for (Layer& layer : layers_) {
    VERITAS_EXPECTS(offset + layer.weights.size() + layer.bias.size() <=
                    flat.size());
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                layer.weights.size(), layer.weights.begin());
    offset += layer.weights.size();
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                layer.bias.size(), layer.bias.begin());
    offset += layer.bias.size();
  }
  VERITAS_EXPECTS(offset == flat.size());
}

void StandardScaler::fit(std::span<const std::vector<double>> rows) {
  VERITAS_EXPECTS(!rows.empty());
  const std::size_t width = rows.front().size();
  VERITAS_EXPECTS(width > 0);
  mean_.assign(width, 0.0);
  std_.assign(width, 0.0);
  for (const auto& row : rows) {
    VERITAS_EXPECTS(row.size() == width);
    for (std::size_t c = 0; c < width; ++c) mean_[c] += row[c];
  }
  for (double& m : mean_) m /= static_cast<double>(rows.size());
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < width; ++c) {
      const double d = row[c] - mean_[c];
      std_[c] += d * d;
    }
  }
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(rows.size()));
    if (s < 1e-12) s = 1.0;  // constant feature
  }
}

std::vector<double> StandardScaler::transform(
    std::span<const double> row) const {
  VERITAS_EXPECTS(fitted());
  VERITAS_EXPECTS(row.size() == mean_.size());
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - mean_[c]) / std_[c];
  }
  return out;
}

}  // namespace veritas::ml
