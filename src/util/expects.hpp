// Contract-checking helpers in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// Violations throw veritas::ContractViolation so that tests can assert on
// misuse and library users get a diagnosable error instead of UB.
#pragma once

#include <stdexcept>
#include <string>

namespace veritas {

/// Thrown when a precondition or postcondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace veritas

/// Precondition check: document and enforce what a function requires.
#define VERITAS_EXPECTS(cond)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::veritas::detail::contract_fail("Precondition", #cond, __FILE__,    \
                                       __LINE__);                          \
  } while (false)

/// Postcondition / invariant check.
#define VERITAS_ENSURES(cond)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::veritas::detail::contract_fail("Postcondition", #cond, __FILE__,   \
                                       __LINE__);                          \
  } while (false)

/// Marks a path the surrounding logic proves impossible (e.g. after an
/// exhaustive switch over an enum, where adding a default case would
/// defeat -Wswitch). Throws instead of invoking UB so a violated
/// assumption is diagnosable.
#define VERITAS_UNREACHABLE()                                              \
  ::veritas::detail::contract_fail("Unreachable-path invariant",           \
                                   "unreachable", __FILE__, __LINE__)
