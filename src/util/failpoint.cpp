#include "util/failpoint.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>

namespace veritas::util {

namespace {

/// SplitMix64: the (seed, evaluation index) -> [0, 1) hash behind
/// probabilistic triggers. Statistically solid, branch-free, and — the
/// property that matters here — a pure function of its inputs.
double uniform01(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + index * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

struct Site {
  Failpoints::Config config;
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> hits{0};
};

struct Registry {
  // How many sites are armed, mirrored into an atomic so evaluate()'s
  // common case (nothing armed) is one relaxed load, no lock.
  std::atomic<std::size_t> armed{0};
  std::shared_mutex mutex;
  std::unordered_map<std::string, std::shared_ptr<Site>> sites;

  Registry() {
    if (const char* spec = std::getenv("VERITAS_FAILPOINTS")) {
      parse_spec(spec);
    }
  }

  void parse_spec(const std::string& spec);

  // The enable/arm implementations live on the registry itself (not on
  // the Failpoints facade) so the constructor's env-spec parse never
  // re-enters instance() — calling it while the magic static is still
  // under construction would self-deadlock on the init guard.
  void enable_site(const std::string& site, Failpoints::Config config);

  static Registry& instance() {
    static Registry registry;  // leak-free: process-lifetime singleton
    return registry;
  }
};

std::uint64_t parse_u64(const std::string& text, std::uint64_t fallback) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return (ec == std::errc{} && ptr == text.data() + text.size()) ? value
                                                                 : fallback;
}

double parse_double(const std::string& text, double fallback) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return (ec == std::errc{} && ptr == text.data() + text.size()) ? value
                                                                 : fallback;
}

void Registry::parse_spec(const std::string& spec) {
  // site=mode[:key=value]... entries separated by ';'. Malformed entries
  // are skipped: env-driven injection must never crash a healthy binary.
  for (std::size_t pos = 0; pos <= spec.size();) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    const std::string site = entry.substr(0, eq);

    Failpoints::Config config;
    bool valid = true;
    std::string rest = entry.substr(eq + 1);
    for (std::size_t i = 0, field = 0; i <= rest.size(); ++field) {
      std::size_t colon = rest.find(':', i);
      if (colon == std::string::npos) colon = rest.size();
      const std::string token = rest.substr(i, colon - i);
      i = colon + 1;
      if (field == 0) {
        if (token == "error") config.mode = Failpoints::Config::Mode::kError;
        else if (token == "throw") config.mode = Failpoints::Config::Mode::kThrow;
        else if (token == "sleep") config.mode = Failpoints::Config::Mode::kSleep;
        else valid = false;
        continue;
      }
      const std::size_t keq = token.find('=');
      if (keq == std::string::npos) continue;
      const std::string key = token.substr(0, keq);
      const std::string value = token.substr(keq + 1);
      if (key == "p") config.probability = parse_double(value, 1.0);
      else if (key == "skip") config.skip = parse_u64(value, 0);
      else if (key == "max") config.max_hits = parse_u64(value, config.max_hits);
      else if (key == "ms") config.sleep_ms = parse_u64(value, config.sleep_ms);
      else if (key == "seed") config.seed = parse_u64(value, config.seed);
    }
    if (valid) enable_site(site, config);
  }
}

void Registry::enable_site(const std::string& site,
                           Failpoints::Config config) {
  config.probability = std::clamp(config.probability, 0.0, 1.0);
  const std::unique_lock lock(mutex);
  auto& slot = sites[site];
  if (slot == nullptr) {
    armed.fetch_add(1, std::memory_order_release);
  }
  // Fresh Site: re-enabling restarts the evaluation and hit counters.
  slot = std::make_shared<Site>();
  slot->config = config;
}

}  // namespace

void Failpoints::enable(const std::string& site, Config config) {
  Registry::instance().enable_site(site, config);
}

void Failpoints::disable(const std::string& site) {
  Registry& registry = Registry::instance();
  const std::unique_lock lock(registry.mutex);
  if (registry.sites.erase(site) > 0) {
    registry.armed.fetch_sub(1, std::memory_order_release);
  }
}

void Failpoints::disable_all() {
  Registry& registry = Registry::instance();
  const std::unique_lock lock(registry.mutex);
  registry.armed.fetch_sub(registry.sites.size(), std::memory_order_release);
  registry.sites.clear();
}

std::uint64_t Failpoints::hits(const std::string& site) {
  Registry& registry = Registry::instance();
  const std::shared_lock lock(registry.mutex);
  const auto it = registry.sites.find(site);
  return it == registry.sites.end()
             ? 0
             : it->second->hits.load(std::memory_order_relaxed);
}

std::vector<std::string> Failpoints::active_sites() {
  Registry& registry = Registry::instance();
  std::vector<std::string> names;
  {
    const std::shared_lock lock(registry.mutex);
    names.reserve(registry.sites.size());
    for (const auto& [name, site] : registry.sites) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void Failpoints::arm_from_spec(const std::string& spec) {
  Registry::instance().parse_spec(spec);
}

bool Failpoints::evaluate(const char* site_name) {
  Registry& registry = Registry::instance();
  // Hot path: nothing armed anywhere — one relaxed load, no lock.
  if (registry.armed.load(std::memory_order_acquire) == 0) return false;

  std::shared_ptr<Site> site;
  {
    const std::shared_lock lock(registry.mutex);
    const auto it = registry.sites.find(site_name);
    if (it == registry.sites.end()) return false;
    site = it->second;  // pin: a concurrent disable can't free it under us
  }

  const Config& config = site->config;
  const std::uint64_t index =
      site->evaluations.fetch_add(1, std::memory_order_relaxed);
  if (index < config.skip) return false;
  if (config.probability < 1.0 &&
      uniform01(config.seed, index) >= config.probability) {
    return false;
  }
  // Claim a hit slot; once max_hits triggers happened the site is spent
  // (left armed so hits() still reads, but it never fires again).
  std::uint64_t hit = site->hits.load(std::memory_order_relaxed);
  do {
    if (hit >= config.max_hits) return false;
  } while (!site->hits.compare_exchange_weak(hit, hit + 1,
                                             std::memory_order_relaxed));

  switch (config.mode) {
    case Config::Mode::kError:
      return true;
    case Config::Mode::kThrow:
      throw FailpointTriggered(site_name);
    case Config::Mode::kSleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(config.sleep_ms));
      return false;
  }
  return false;
}

}  // namespace veritas::util
