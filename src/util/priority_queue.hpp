// Bounded multi-producer / multi-consumer queue with priority classes.
//
// The service's admission-controlled successor to util::BoundedQueue:
// one shared capacity across N strict priority classes (0 = most
// urgent), FIFO within a class. What it adds over the plain queue is
// exactly the overload toolkit:
//
//  * timed admission — push_until() waits for space only up to a
//    deadline, so a submitter's queue wait is bounded by construction;
//  * displacement — push_displacing() never waits: when full it evicts
//    the oldest item of the lowest priority class strictly below the
//    arrival and hands the victim back to the caller (who fails its
//    future as "shed"), so urgent work is admitted in O(1) under
//    overload;
//  * predicate pop — pop_if() delivers the first item (scanning classes
//    urgent-first, FIFO within) an eligibility predicate accepts, which
//    is how per-shard lane quotas skip a saturated shard without
//    reordering anything else; notify_waiters() re-wakes poppers after
//    external eligibility changes (a lane finishing its job).
//
// Failure is non-destructive everywhere: any push that does not accept
// the item leaves the caller's value untouched (moves happen only on
// the commit path). close() keeps BoundedQueue's contract — accepted
// items are always drained (pop_if ignores eligibility once closed, so
// shutdown can never deadlock on a quota), then pops return nullopt.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/expects.hpp"

namespace veritas::util {

/// Outcome of a push attempt. On anything but kAccepted the pushed
/// value is untouched and still owned by the caller.
enum class PushOutcome {
  kAccepted,
  kFull,      ///< no space (and, for push_displacing, no lower victim)
  kTimedOut,  ///< push_until deadline passed while still full
  kClosed,
};

template <typename T, std::size_t NumPriorities = 3>
class BoundedPriorityQueue {
  static_assert(NumPriorities >= 1);

 public:
  /// Requires capacity >= 1 (shared across all priority classes).
  explicit BoundedPriorityQueue(std::size_t capacity) : capacity_(capacity) {
    VERITAS_EXPECTS(capacity >= 1);
  }

  BoundedPriorityQueue(const BoundedPriorityQueue&) = delete;
  BoundedPriorityQueue& operator=(const BoundedPriorityQueue&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return size_locked();
  }

  /// Instantaneous per-class depths (index = priority).
  std::array<std::size_t, NumPriorities> depths() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::array<std::size_t, NumPriorities> out{};
    for (std::size_t p = 0; p < NumPriorities; ++p) out[p] = lanes_[p].size();
    return out;
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Blocks while full. Requires priority < NumPriorities.
  PushOutcome push(T&& value, std::size_t priority) {
    return push_until(std::move(value), priority,
                      std::chrono::steady_clock::time_point::max());
  }

  /// Non-blocking push; the value is untouched unless accepted.
  PushOutcome try_push(T&& value, std::size_t priority) {
    VERITAS_EXPECTS(priority < NumPriorities);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushOutcome::kClosed;
      if (size_locked() >= capacity_) return PushOutcome::kFull;
      lanes_[priority].push_back(std::move(value));
    }
    not_empty_.notify_one();
    return PushOutcome::kAccepted;
  }

  /// Waits for space until `deadline`; kTimedOut (value untouched) when
  /// the queue is still full then. time_point::max() waits forever.
  PushOutcome push_until(T&& value, std::size_t priority,
                         std::chrono::steady_clock::time_point deadline) {
    VERITAS_EXPECTS(priority < NumPriorities);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto have_room = [this] {
        return closed_ || size_locked() < capacity_;
      };
      if (deadline == std::chrono::steady_clock::time_point::max()) {
        not_full_.wait(lock, have_room);
      } else if (!not_full_.wait_until(lock, deadline, have_room)) {
        return PushOutcome::kTimedOut;
      }
      if (closed_) return PushOutcome::kClosed;
      lanes_[priority].push_back(std::move(value));
    }
    not_empty_.notify_one();
    return PushOutcome::kAccepted;
  }

  /// Admission for urgent work under overload: never waits. When full,
  /// evicts the *oldest* item of the lowest-priority non-empty class
  /// strictly below `priority` (it has waited longest and is the most
  /// likely to be deadline-dead anyway) and returns it through
  /// `displaced` so the caller can resolve its future as shed. kFull
  /// (value untouched, no eviction) when every queued item is at or
  /// above the arrival's priority.
  PushOutcome push_displacing(T&& value, std::size_t priority,
                              std::optional<T>& displaced) {
    VERITAS_EXPECTS(priority < NumPriorities);
    displaced.reset();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushOutcome::kClosed;
      if (size_locked() >= capacity_) {
        std::size_t victim = NumPriorities;
        for (std::size_t p = NumPriorities; p-- > priority + 1;) {
          if (!lanes_[p].empty()) {
            victim = p;
            break;
          }
        }
        if (victim == NumPriorities) return PushOutcome::kFull;
        displaced.emplace(std::move(lanes_[victim].front()));
        lanes_[victim].pop_front();
      }
      lanes_[priority].push_back(std::move(value));
    }
    not_empty_.notify_one();
    return PushOutcome::kAccepted;
  }

  /// Blocks while empty; highest priority first, FIFO within a class.
  /// nullopt once closed AND drained.
  std::optional<T> pop() {
    return pop_if([](const T&) { return true; });
  }

  /// Like pop(), but delivers the first item `eligible` accepts
  /// (classes scanned urgent-first, each front-to-back). Blocks while
  /// nothing is eligible — call notify_waiters() when external state
  /// makes queued items eligible again. Once the queue is closed the
  /// predicate is ignored (shutdown drains unconditionally), so a quota
  /// can never deadlock teardown.
  template <typename Eligible>
  std::optional<T> pop_if(const Eligible& eligible) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (closed_) {
        // Drain mode: deliver strictly by priority, predicate ignored.
        for (std::size_t p = 0; p < NumPriorities; ++p) {
          if (!lanes_[p].empty()) return take_locked(p, 0);
        }
        return std::nullopt;
      }
      for (std::size_t p = 0; p < NumPriorities; ++p) {
        for (std::size_t i = 0; i < lanes_[p].size(); ++i) {
          if (eligible(lanes_[p][i])) return take_locked(p, i);
        }
      }
      not_empty_.wait(lock);
    }
  }

  /// Non-blocking pop_if; nullopt when nothing is currently eligible.
  template <typename Eligible>
  std::optional<T> try_pop_if(const Eligible& eligible) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t p = 0; p < NumPriorities; ++p) {
      for (std::size_t i = 0; i < lanes_[p].size(); ++i) {
        if (closed_ || eligible(lanes_[p][i])) return take_locked(p, i);
      }
    }
    return std::nullopt;
  }

  /// Wakes every blocked pop_if so it re-evaluates its predicate (e.g.
  /// a lane finished and freed a shard-quota slot).
  void notify_waiters() { not_empty_.notify_all(); }

  /// Closes the queue: pushes fail, pops drain then return nullopt.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  std::size_t size_locked() const {
    std::size_t n = 0;
    for (const auto& lane : lanes_) n += lane.size();
    return n;
  }

  /// Removes and returns lanes_[p][i]; called under mutex_. The unlock +
  /// notify ordering of BoundedQueue is kept by the callers being about
  /// to drop their lock scope.
  std::optional<T> take_locked(std::size_t p, std::size_t i) {
    T value = std::move(lanes_[p][i]);
    lanes_[p].erase(lanes_[p].begin() + static_cast<std::ptrdiff_t>(i));
    not_full_.notify_one();
    return value;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::array<std::deque<T>, NumPriorities> lanes_;
  bool closed_ = false;
};

}  // namespace veritas::util
