// Descriptive statistics used throughout the evaluation harness:
// quantiles, five-number (boxplot) summaries, empirical CDFs and error
// metrics. All functions are pure and take read-only views.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace veritas::util {

/// Arithmetic mean. Requires non-empty input.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Requires size >= 2.
double variance(std::span<const double> xs);

/// Sample standard deviation. Requires size >= 2.
double stddev(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1]. Requires non-empty input.
/// q = 0 gives the minimum, q = 1 the maximum, q = 0.5 the median.
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Minimum / maximum. Require non-empty input.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Five-number summary for boxplots (as in paper Fig. 2a).
struct BoxplotStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  std::size_t count = 0;
};
BoxplotStats boxplot(std::span<const double> xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0;      ///< x: the sample value
  double fraction = 0;   ///< y: P(X <= value)
};

/// Empirical CDF down-sampled to at most `max_points` evenly spaced points
/// (by rank). Suitable for reproducing CDF figures (paper Fig. 5).
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs,
                                    std::size_t max_points = 100);

/// Mean absolute error between two equally sized series.
double mean_absolute_error(std::span<const double> a, std::span<const double> b);

/// Root mean squared error between two equally sized series.
double rmse(std::span<const double> a, std::span<const double> b);

/// Formats "min/q1/median/q3/max (n=count)" for table output.
std::string to_string(const BoxplotStats& b);

}  // namespace veritas::util
