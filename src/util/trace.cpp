#include "util/trace.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <utility>

namespace veritas::util {

namespace {

/// Process-global tracer state behind a magic static, mirroring the
/// failpoint registry: no static-initialization-order hazards, one
/// relaxed atomic on the hot path, everything else under the mutex.
struct TracerState {
  std::atomic<bool> enabled{false};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  std::mutex mutex;
  std::vector<Tracer::Event> ring;
  std::size_t capacity = Tracer::kDefaultCapacity;
  std::uint64_t head = 0;  ///< total events ever recorded
  std::vector<Tracer::Event> slow;
  std::uint64_t slow_head = 0;
  std::uint64_t slow_threshold_ns = 0;

  static TracerState& instance() {
    static TracerState state;
    return state;
  }
};

/// Unwraps a ring (backing store + total-write count) into
/// oldest-first order.
std::vector<Tracer::Event> unwrap(const std::vector<Tracer::Event>& ring,
                                  std::size_t capacity,
                                  std::uint64_t head) {
  std::vector<Tracer::Event> out;
  if (head <= capacity) {
    out.assign(ring.begin(), ring.begin() + static_cast<long>(head));
    return out;
  }
  const std::size_t cursor = static_cast<std::size_t>(head % capacity);
  out.reserve(capacity);
  out.insert(out.end(), ring.begin() + static_cast<long>(cursor),
             ring.end());
  out.insert(out.end(), ring.begin(),
             ring.begin() + static_cast<long>(cursor));
  return out;
}

void push_ring(std::vector<Tracer::Event>& ring, std::size_t capacity,
               std::uint64_t& head, const Tracer::Event& event) {
  if (ring.size() < capacity) {
    ring.push_back(event);
  } else {
    ring[static_cast<std::size_t>(head % capacity)] = event;
  }
  ++head;
}

/// JSON string escaping for the few dynamic fields (names are literals
/// under our control, but a cheap escape keeps the output well-formed
/// no matter what a future site passes).
std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_us(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

bool Tracer::enabled() noexcept {
  if constexpr (!kCompiledIn) return false;
  return TracerState::instance().enabled.load(std::memory_order_relaxed);
}

void Tracer::set_enabled(bool on) {
  if constexpr (!kCompiledIn) {
    (void)on;
    return;
  }
  TracerState::instance().enabled.store(on, std::memory_order_relaxed);
}

void Tracer::set_capacity(std::size_t events) {
  TracerState& state = TracerState::instance();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.capacity = events < 1 ? 1 : events;
  state.ring.clear();
  state.ring.shrink_to_fit();
  state.head = 0;
}

void Tracer::set_slow_query_threshold_us(std::uint64_t us) {
  TracerState& state = TracerState::instance();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.slow_threshold_ns = us * 1000;
}

void Tracer::record(const Event& event) {
  TracerState& state = TracerState::instance();
  const std::lock_guard<std::mutex> lock(state.mutex);
  push_ring(state.ring, state.capacity, state.head, event);
  if (event.root && state.slow_threshold_ns > 0 &&
      event.duration_ns >= state.slow_threshold_ns) {
    push_ring(state.slow, kSlowLogCapacity, state.slow_head, event);
  }
}

void Tracer::record_span(const char* name, const char* category,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end,
                         std::uint64_t query_id, bool root) {
  TracerState& state = TracerState::instance();
  Event event;
  event.name = name;
  event.category = category;
  event.query_id = query_id;
  const auto since_epoch = start - state.epoch;
  event.start_ns = since_epoch.count() > 0
                       ? static_cast<std::uint64_t>(
                             std::chrono::duration_cast<
                                 std::chrono::nanoseconds>(since_epoch)
                                 .count())
                       : 0;
  const auto duration = end - start;
  event.duration_ns =
      duration.count() > 0
          ? static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    duration)
                    .count())
          : 0;
  event.thread_id = thread_id();
  event.root = root;
  record(event);
}

std::vector<Tracer::Event> Tracer::events() {
  TracerState& state = TracerState::instance();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return unwrap(state.ring, state.capacity, state.head);
}

std::vector<Tracer::Event> Tracer::slow_queries() {
  TracerState& state = TracerState::instance();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return unwrap(state.slow, kSlowLogCapacity, state.slow_head);
}

std::uint64_t Tracer::dropped() {
  TracerState& state = TracerState::instance();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.head > state.capacity ? state.head - state.capacity : 0;
}

void Tracer::clear() {
  TracerState& state = TracerState::instance();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.ring.clear();
  state.head = 0;
  state.slow.clear();
  state.slow_head = 0;
}

std::string Tracer::chrome_trace_json() {
  const std::vector<Event> snapshot = events();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event& event : snapshot) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
       << json_escape(event.category) << "\",\"ph\":\"X\",\"ts\":"
       << format_us(event.start_ns) << ",\"dur\":"
       << format_us(event.duration_ns) << ",\"pid\":1,\"tid\":"
       << event.thread_id << ",\"args\":{\"query\":" << event.query_id
       << "}}";
  }
  os << "]}";
  return os.str();
}

std::string Tracer::slow_query_log() {
  const std::vector<Event> snapshot = slow_queries();
  std::ostringstream os;
  for (const Event& event : snapshot) {
    char dur[32];
    std::snprintf(dur, sizeof(dur), "%.3f",
                  static_cast<double>(event.duration_ns) / 1e6);
    os << "slow-query name=" << event.name << " query=" << event.query_id
       << " dur_ms=" << dur << " start_us=" << format_us(event.start_ns)
       << " thread=" << event.thread_id << '\n';
  }
  return os.str();
}

std::uint64_t Tracer::now_ns() {
  const auto since =
      std::chrono::steady_clock::now() - TracerState::instance().epoch;
  return since.count() > 0
             ? static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       since)
                       .count())
             : 0;
}

std::uint32_t Tracer::thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

namespace {
thread_local std::uint64_t t_current_query = 0;
}  // namespace

std::uint64_t Tracer::current_query() noexcept { return t_current_query; }

void Tracer::set_current_query(std::uint64_t id) noexcept {
  t_current_query = id;
}

}  // namespace veritas::util
