// Terminal rendering of time series: the bench binaries regenerate the
// paper's *figures*, so give the reader an actual picture, not only a
// table. Multiple series share one canvas; each series gets a glyph.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace veritas::util {

/// One plotted series: samples at uniform x spacing plus a glyph.
struct PlotSeries {
  std::string name;
  std::vector<double> values;
  char glyph = '*';
};

struct PlotOptions {
  std::size_t width = 100;   ///< canvas columns
  std::size_t height = 16;   ///< canvas rows
  double y_min = 0.0;        ///< y-axis low (used when y_auto is false)
  double y_max = 1.0;        ///< y-axis high
  bool y_auto = true;        ///< derive the y range from the data
};

/// Renders all series on one canvas with a y-axis scale and a legend.
/// Series may have different lengths; each is stretched to the canvas
/// width. Requires at least one non-empty series.
std::string render_plot(std::span<const PlotSeries> series,
                        const PlotOptions& options = {});

/// One-line sparkline of a single series (eight-level resolution).
std::string sparkline(std::span<const double> values);

}  // namespace veritas::util
