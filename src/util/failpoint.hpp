// Deterministic fault injection for the serving path.
//
// A *failpoint* is a named site in production code where a test (or an
// operator, via the VERITAS_FAILPOINTS environment variable) can inject
// a failure: throw an exception, sleep to simulate a slow dependency,
// or signal the site to take its own error path. Sites are free when
// inactive — one relaxed atomic load — and the whole subsystem compiles
// to literally nothing when CMake is configured with
// -DVERITAS_FAILPOINTS=OFF (the macro folds to constant false).
//
// Activation is deterministic: `count`-style triggers (skip the first S
// evaluations, then fire the next N) depend only on the site's
// evaluation counter, and probabilistic triggers hash (seed, evaluation
// index) through SplitMix64 — no wall clock, no global RNG — so a chaos
// run with a fixed workload reproduces the same trigger set.
//
// Site catalog (kept in sync with docs/ARCHITECTURE.md):
//   service.queue.push   — submit()'s enqueue; kError => admission reject
//   service.queue.pop    — lane dequeue; kSleep => slow consumer
//   service.lane.execute — before inference runs; kThrow => poisoned job
//   service.cache.fill   — before the result-cache put; kError => skip fill
//   service.shard.swap   — swap_shard between build and publish
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace veritas::util {

/// Thrown by a kThrow failpoint; catch-all boundaries convert it to a
/// Status like any other exception.
class FailpointTriggered : public std::runtime_error {
 public:
  explicit FailpointTriggered(const std::string& site)
      : std::runtime_error("failpoint triggered: " + site) {}
};

class Failpoints {
 public:
  struct Config {
    enum class Mode {
      kError,  ///< evaluate() returns true; the site takes its error path
      kThrow,  ///< evaluate() throws FailpointTriggered
      kSleep,  ///< evaluate() sleeps sleep_ms, then returns false
    };
    Mode mode = Mode::kError;
    /// Chance each (non-skipped) evaluation triggers, in [0, 1].
    /// Deterministic in (seed, evaluation index).
    double probability = 1.0;
    /// Let the first `skip` evaluations pass untouched.
    std::uint64_t skip = 0;
    /// Deactivate after this many triggers (kMaxHitsUnlimited = never).
    std::uint64_t max_hits = kMaxHitsUnlimited;
    std::uint64_t sleep_ms = 10;  ///< kSleep duration
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< probability hash seed

    static constexpr std::uint64_t kMaxHitsUnlimited = ~std::uint64_t{0};
  };

  /// Arms `site` with `config`, replacing any previous arming (the
  /// evaluation/hit counters restart). Thread-safe.
  static void enable(const std::string& site, Config config);

  /// Disarms `site` (idempotent).
  static void disable(const std::string& site);

  /// Disarms everything — call between chaos tests.
  static void disable_all();

  /// Triggers recorded for `site` since it was last enabled (0 when
  /// never enabled).
  static std::uint64_t hits(const std::string& site);

  /// Currently armed site names, sorted.
  static std::vector<std::string> active_sites();

  /// The hot-path check behind VERITAS_FAILPOINT(site): false (no
  /// lookup at all) while nothing is armed anywhere. Returns true when
  /// an armed kError failpoint fires; throws for kThrow; sleeps then
  /// returns false for kSleep.
  static bool evaluate(const char* site);

  /// Parses the VERITAS_FAILPOINTS environment variable and arms the
  /// sites it names. Called once, lazily, from the first evaluate();
  /// exposed for tests. Grammar (';'-separated sites):
  ///   site=mode[:p=P][:skip=N][:max=N][:ms=N][:seed=N]
  /// e.g. VERITAS_FAILPOINTS="service.lane.execute=throw:p=0.1:max=5;
  ///                          service.queue.pop=sleep:ms=50"
  /// Unknown modes or malformed entries are ignored (injection must
  /// never take down a healthy binary).
  static void arm_from_spec(const std::string& spec);
};

/// RAII arming for tests: enables in the constructor, disables in the
/// destructor, so a failing assertion can't leak an armed site into the
/// next test.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, Failpoints::Config config)
      : site_(std::move(site)) {
    Failpoints::enable(site_, config);
  }
  ~ScopedFailpoint() { Failpoints::disable(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  std::uint64_t hits() const { return Failpoints::hits(site_); }

 private:
  std::string site_;
};

}  // namespace veritas::util

#if defined(VERITAS_FAILPOINTS_DISABLED)
// Compiled out: constant-folds away, including the site-name literal.
#define VERITAS_FAILPOINT(site) (false)
#else
#define VERITAS_FAILPOINT(site) (::veritas::util::Failpoints::evaluate(site))
#endif
