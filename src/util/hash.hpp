// Fast stable content hashing (FNV-1a, 64-bit).
//
// The service layer keys its result cache by the *content* of a session
// log, so the hash must be deterministic across runs, platforms and
// standard libraries — std::hash guarantees none of that. FNV-1a over a
// canonical byte feed (little-endian integers, IEEE-754 bit patterns for
// doubles) gives a stable 64-bit digest that is cheap enough to compute
// per query (a few ns per chunk).
//
// Collisions: a 64-bit digest makes accidental collisions between the
// handful of distinct logs alive in a cache astronomically unlikely
// (birthday bound ~2^32 entries); callers that cannot tolerate them
// should compare payloads on hit.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace veritas::sim {
struct SessionLog;  // sim/session_log.hpp
}

namespace veritas::util {

/// Incremental FNV-1a hasher. Feed order matters: the digest is a pure
/// function of the byte sequence fed, so two call sites agree iff they
/// feed the same fields in the same order.
class Fnv1aHasher {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  Fnv1aHasher& bytes(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= static_cast<std::uint64_t>(p[i]);
      state_ *= kPrime;
    }
    return *this;
  }

  /// Canonical little-endian feed, independent of host endianness.
  Fnv1aHasher& u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      state_ ^= (v >> (8 * i)) & 0xFFu;
      state_ *= kPrime;
    }
    return *this;
  }

  /// Hashes the IEEE-754 bit pattern (distinguishes +0.0 / -0.0; NaNs
  /// hash by payload — acceptable for cache keys).
  Fnv1aHasher& f64(double v) noexcept { return u64(std::bit_cast<std::uint64_t>(v)); }

  Fnv1aHasher& str(std::string_view s) noexcept {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot FNV-1a over a byte range.
std::uint64_t hash_bytes(const void* data, std::size_t size) noexcept;

/// One-shot FNV-1a over a string.
std::uint64_t hash_string(std::string_view s) noexcept;

/// Stable digest of every field a SessionLog carries (session constants
/// plus, per chunk: index, quality, size, timings, buffer and the full
/// TCP snapshot). Two logs hash equal iff they are field-for-field
/// bit-identical; any single-field change perturbs the digest.
std::uint64_t hash_session_log(const sim::SessionLog& log) noexcept;

}  // namespace veritas::util
