// Per-query span tracing for the serving path.
//
// A *span* is one named, timed phase of a query's life — admission,
// queue wait, the engine's forward pass — recorded into a process-wide
// bounded ring buffer and exportable as Chrome trace-event JSON
// (chrome://tracing, Perfetto) plus a threshold-driven slow-query log.
// The design mirrors util/failpoint.hpp: sites are free when tracing is
// disabled (one relaxed atomic load, no clock read, no lock), and the
// VERITAS_TRACE_SPAN macros compile to literally nothing when CMake is
// configured with -DVERITAS_TRACING=OFF (the default), so the release
// hot path is bit-identical to a build that never heard of tracing.
//
// When enabled, a span costs two steady_clock reads plus one
// mutex-guarded ring-buffer store at destruction. The mutex (rather
// than a lock-free ring) is a deliberate trade: enabled-mode recording
// already pays two clock calls, the critical section is a handful of
// stores, and a plain mutex keeps the buffer trivially race-free under
// TSan. The *disabled* path — the one benchmarks run — never touches
// it.
//
// Query attribution: the service stamps each job with a trace id and
// sets it as the thread's current query (ScopedQueryId) for the span
// of execution, so engine-level spans recorded deep inside Ehmm carry
// the query id without threading it through every signature. Spans
// flagged `root` cover a query end-to-end; those are the ones the
// slow-query log retains when their duration crosses the configured
// threshold.
//
// Span taxonomy (kept in sync with docs/OBSERVABILITY.md):
//   service.admit       — submit-side admission (shard resolve to verdict)
//   service.cache_probe — result-cache lookup at admission
//   service.queue_wait  — accepted job's time in the priority queue
//   service.execute     — root span: lane-side compute + cache fill
//   engine.infer        — InferenceEngine::infer_with_seed end to end
//   engine.sample_posterior — the posterior sampling loop (all draws)
//   ehmm.emission_means — estimator batch (TCP estimator + caches)
//   ehmm.emission_logpdf — Gaussian log-density over the mean rows
//   ehmm.viterbi        — MAP pass
//   ehmm.forward        — scaled emissions + forward recursion
//   ehmm.backward       — backward recursion + pair totals + marginals
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace veritas::util {

class Tracer {
 public:
  /// False when the whole subsystem was compiled out
  /// (-DVERITAS_TRACING=OFF): macro sites vanish and enable() is
  /// refused, so callers can warn instead of silently writing an empty
  /// trace.
#if defined(VERITAS_TRACING_DISABLED)
  static constexpr bool kCompiledIn = false;
#else
  static constexpr bool kCompiledIn = true;
#endif

  static constexpr std::size_t kDefaultCapacity = 1 << 16;
  static constexpr std::size_t kSlowLogCapacity = 256;

  /// One completed span. `name` and `category` must be string literals
  /// (or otherwise outlive the tracer) — the ring stores the pointers.
  struct Event {
    const char* name = "";
    const char* category = "";
    std::uint64_t query_id = 0;  ///< 0 = not attributed to a query
    std::uint64_t start_ns = 0;  ///< since the process trace epoch
    std::uint64_t duration_ns = 0;
    std::uint32_t thread_id = 0;  ///< small sequential per-thread id
    bool root = false;            ///< covers a query end to end
  };

  /// The hot-path gate: one relaxed atomic load.
  static bool enabled() noexcept;

  /// Turns recording on/off. Enabling a compiled-out tracer is a no-op
  /// (enabled() stays false).
  static void set_enabled(bool on);

  /// Resizes the ring (drops buffered events; min capacity 1).
  static void set_capacity(std::size_t events);

  /// Root spans at least this long are retained in the slow-query log;
  /// 0 disables it.
  static void set_slow_query_threshold_us(std::uint64_t us);

  /// Records one completed span (caller checked enabled()).
  static void record(const Event& event);

  /// Convenience: record a span from two steady_clock points on the
  /// calling thread, attributed to `query_id`.
  static void record_span(const char* name, const char* category,
                          std::chrono::steady_clock::time_point start,
                          std::chrono::steady_clock::time_point end,
                          std::uint64_t query_id, bool root = false);

  /// Buffered events, oldest first.
  static std::vector<Event> events();

  /// Retained slow root spans, oldest first.
  static std::vector<Event> slow_queries();

  /// Events overwritten by ring wraparound since the last clear().
  static std::uint64_t dropped();

  /// Drops buffered events, the slow log and the dropped counter;
  /// keeps enabled state, capacity and threshold.
  static void clear();

  /// The buffered events as Chrome trace-event JSON ("X" complete
  /// events; ts/dur in µs; query id and category in args).
  static std::string chrome_trace_json();

  /// Human-readable slow-query log, one line per retained root span.
  static std::string slow_query_log();

  /// Nanoseconds since the process trace epoch (steady clock).
  static std::uint64_t now_ns();

  /// The calling thread's small sequential id (stable for its life).
  static std::uint32_t thread_id() noexcept;

  /// Thread-local query attribution for spans recorded below the
  /// service layer. 0 = none.
  static std::uint64_t current_query() noexcept;
  static void set_current_query(std::uint64_t id) noexcept;
};

/// RAII query attribution: sets the thread's current query id, restores
/// the previous one on scope exit (nesting-safe).
class ScopedQueryId {
 public:
  explicit ScopedQueryId(std::uint64_t id) noexcept
      : prev_(Tracer::current_query()) {
    Tracer::set_current_query(id);
  }
  ~ScopedQueryId() { Tracer::set_current_query(prev_); }
  ScopedQueryId(const ScopedQueryId&) = delete;
  ScopedQueryId& operator=(const ScopedQueryId&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII span: stamps the start on construction (only when tracing is
/// enabled — otherwise the constructor is one relaxed load) and records
/// on destruction, attributed to the thread's current query. The class
/// is always compiled (tests exercise it in every build); only the
/// macro sites below fold away under -DVERITAS_TRACING=OFF.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category,
            bool root = false) noexcept {
    if (!Tracer::enabled()) return;
    armed_ = true;
    name_ = name;
    category_ = category;
    root_ = root;
    start_ = std::chrono::steady_clock::now();
  }
  ~TraceSpan() {
    if (!armed_) return;
    Tracer::record_span(name_, category_, start_,
                        std::chrono::steady_clock::now(),
                        Tracer::current_query(), root_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool armed_ = false;
  bool root_ = false;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace veritas::util

#define VERITAS_TRACE_CONCAT_INNER(a, b) a##b
#define VERITAS_TRACE_CONCAT(a, b) VERITAS_TRACE_CONCAT_INNER(a, b)

#if defined(VERITAS_TRACING_DISABLED)
// Compiled out: the site vanishes, including the name literals.
#define VERITAS_TRACE_SPAN(name, category)
#define VERITAS_TRACE_QUERY_SPAN(name, category)
#else
/// Times the rest of the enclosing scope as one span.
#define VERITAS_TRACE_SPAN(name, category)                            \
  const ::veritas::util::TraceSpan VERITAS_TRACE_CONCAT(              \
      veritas_trace_span_, __LINE__)((name), (category))
/// Same, flagged as a query root span (slow-query-log eligible).
#define VERITAS_TRACE_QUERY_SPAN(name, category)                      \
  const ::veritas::util::TraceSpan VERITAS_TRACE_CONCAT(              \
      veritas_trace_span_, __LINE__)((name), (category), /*root=*/true)
#endif
