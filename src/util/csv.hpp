// Minimal CSV writing/reading for experiment artifacts (bench outputs,
// session logs, traces). Values are written with enough precision to
// round-trip doubles; fields containing separators or quotes are quoted.
#pragma once

#include <filesystem>
#include <ostream>
#include <string>
#include <vector>

namespace veritas::util {

/// Streams rows of a CSV table. The header (if any) is written first; each
/// row must then have exactly as many fields as the header.
class CsvWriter {
 public:
  /// Writes to an externally owned stream (kept by reference).
  explicit CsvWriter(std::ostream& out);

  /// Sets the header row; must be called before the first data row.
  void header(const std::vector<std::string>& names);

  /// Writes one row of string fields.
  void row(const std::vector<std::string>& fields);

  /// Writes one row of numeric fields (formatted with max_digits10).
  void row(const std::vector<double>& values);

  /// Number of data rows written so far.
  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_fields(const std::vector<std::string>& fields);

  std::ostream& out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// An in-memory CSV table: one header row plus data rows of strings.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws ContractViolation when absent.
  std::size_t column(const std::string& name) const;

  /// Parses cell (row, column-name) as double.
  double number(std::size_t row, const std::string& name) const;
};

/// Parses CSV text (first row = header). Handles quoted fields with
/// embedded separators, quotes and newlines.
CsvTable parse_csv(const std::string& text);

/// Reads and parses a CSV file. Throws std::runtime_error on IO failure.
CsvTable read_csv_file(const std::filesystem::path& path);

/// Formats a double with round-trip precision.
std::string format_double(double v);

}  // namespace veritas::util
