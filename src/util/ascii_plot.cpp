#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/expects.hpp"

namespace veritas::util {

namespace {

double sample_series(const std::vector<double>& values, double fraction) {
  if (values.size() == 1) return values.front();
  const double pos = fraction * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

std::string render_plot(std::span<const PlotSeries> series,
                        const PlotOptions& options) {
  VERITAS_EXPECTS(!series.empty());
  VERITAS_EXPECTS(options.width >= 10 && options.height >= 4);
  for (const PlotSeries& s : series) VERITAS_EXPECTS(!s.values.empty());

  double y_min = options.y_min;
  double y_max = options.y_max;
  if (options.y_auto) {
    y_min = series[0].values[0];
    y_max = y_min;
    for (const PlotSeries& s : series) {
      for (const double v : s.values) {
        y_min = std::min(y_min, v);
        y_max = std::max(y_max, v);
      }
    }
    const double pad = std::max(0.05 * (y_max - y_min), 1e-9);
    y_min -= pad;
    y_max += pad;
  }
  VERITAS_EXPECTS(y_max > y_min);

  std::vector<std::string> canvas(options.height,
                                  std::string(options.width, ' '));
  for (const PlotSeries& s : series) {
    for (std::size_t col = 0; col < options.width; ++col) {
      const double fraction =
          static_cast<double>(col) / static_cast<double>(options.width - 1);
      const double v = sample_series(s.values, fraction);
      const double clamped = std::clamp(v, y_min, y_max);
      const double rel = (clamped - y_min) / (y_max - y_min);
      const auto row = static_cast<std::size_t>(std::llround(
          (1.0 - rel) * static_cast<double>(options.height - 1)));
      canvas[row][col] = s.glyph;
    }
  }

  std::ostringstream out;
  char label[32];
  for (std::size_t row = 0; row < options.height; ++row) {
    const double rel = 1.0 - static_cast<double>(row) /
                                 static_cast<double>(options.height - 1);
    const double y = y_min + rel * (y_max - y_min);
    std::snprintf(label, sizeof(label), "%8.2f |", y);
    out << label << canvas[row] << '\n';
  }
  out << std::string(10, ' ') << std::string(options.width, '-') << '\n';
  out << "  legend: ";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) out << "   ";
    out << "'" << series[i].glyph << "' = " << series[i].name;
  }
  out << '\n';
  return out.str();
}

std::string sparkline(std::span<const double> values) {
  VERITAS_EXPECTS(!values.empty());
  static const char* kLevels = " .:-=+*#@";
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  std::string out;
  out.reserve(values.size());
  for (const double v : values) {
    const double rel = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    const auto level = static_cast<std::size_t>(std::llround(rel * 8.0));
    out += kLevels[level];
  }
  return out;
}

}  // namespace veritas::util
