#include "util/rng.hpp"

#include <cmath>

#include "util/expects.hpp"

namespace veritas::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (~range + 1) % range;  // (2^64 - range) % range
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double factor = std::sqrt(-2.0 * std::log(s) / s);
      cached_normal_ = v * factor;
      has_cached_normal_ = true;
      return u * factor;
    }
  }
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  // Inverse CDF; 1 - uniform() is in (0, 1] so log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::categorical(std::span<const double> weights) {
  VERITAS_EXPECTS(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    VERITAS_EXPECTS(w >= 0.0);
    total += w;
  }
  VERITAS_EXPECTS(total > 0.0);
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: return the last index with positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  // Hash the current state together with the stream id; does not advance
  // *this, so forks are order-independent.
  std::uint64_t h = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
  std::uint64_t sm = h ^ (0xd1342543de82ef95ULL * (stream + 1));
  return Rng(splitmix64(sm));
}

}  // namespace veritas::util
