// Pull-based metrics registry with a Prometheus text-exposition writer.
//
// Design: the registry stores *collector callbacks*, not values. The
// instrumented code keeps doing what it already does — bumping its own
// relaxed atomics (OutcomeCounters, EstimatorCache::Stats,
// LatencyHistogram buckets) — and registration hands the registry a
// closure that snapshots those counters on demand. Updates are
// therefore exactly as lock-free as the underlying counters: the hot
// path never takes a registry lock, never allocates, and does not even
// know the registry exists. The registry's own mutex guards only
// registration and scraping (expose()), which are rare, cold
// operations.
//
// A *family* is one metric name with one type and any number of
// labeled sample series, matching the Prometheus data model:
//
//   registry.add_gauge("veritas_queue_depth", "Pending jobs", [&] {
//     return std::vector<util::MetricsRegistry::Sample>{
//         {{{"priority", "interactive"}}, 3.0}, ...};
//   });
//
// expose() renders the standard text format — `# HELP` / `# TYPE`
// comments, escaped label values, and for histograms the cumulative
// `_bucket{le=...}` series plus `_sum` / `_count` — in registration
// order, collecting every family under one lock hold so a scrape is a
// consistent-ish point-in-time view (exactly as consistent as the
// underlying relaxed counters allow).
//
// Registration validates names (Prometheus [a-zA-Z_:][a-zA-Z0-9_:]*,
// labels without the colon) and rejects duplicate families via
// VERITAS_EXPECTS — a typo'd dashboard is a bug worth failing fast on.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/expects.hpp"
#include "util/latency_histogram.hpp"

namespace veritas::util {

class MetricsRegistry {
 public:
  /// Label set of one sample series, in emission order.
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// One labeled value of a counter or gauge family.
  struct Sample {
    Labels labels;
    double value = 0.0;
  };

  /// One labeled series of a histogram family. `cumulative` holds
  /// (upper bound, cumulative count) pairs in increasing bound order;
  /// the writer appends the implicit `+Inf` bucket from `count`.
  struct HistogramSample {
    Labels labels;
    std::vector<std::pair<double, std::uint64_t>> cumulative;
    double sum = 0.0;
    std::uint64_t count = 0;
  };

  using SampleFn = std::function<std::vector<Sample>()>;
  using HistogramFn = std::function<std::vector<HistogramSample>()>;

  /// Registers a counter family (cumulative, monotonically
  /// non-decreasing values). By convention the name ends in `_total`.
  void add_counter(std::string name, std::string help, SampleFn collect) {
    add_family(std::move(name), std::move(help), "counter",
               std::move(collect), nullptr);
  }

  /// Registers a gauge family (instantaneous values, may go down).
  void add_gauge(std::string name, std::string help, SampleFn collect) {
    add_family(std::move(name), std::move(help), "gauge",
               std::move(collect), nullptr);
  }

  /// Registers a histogram family.
  void add_histogram(std::string name, std::string help,
                     HistogramFn collect) {
    add_family(std::move(name), std::move(help), "histogram", nullptr,
               std::move(collect));
  }

  /// Single-series conveniences: one fixed label set, one value read.
  void add_counter(std::string name, std::string help, Labels labels,
                   std::function<double()> read) {
    add_counter(std::move(name), std::move(help),
                [labels = std::move(labels), read = std::move(read)] {
                  return std::vector<Sample>{{labels, read()}};
                });
  }
  void add_gauge(std::string name, std::string help, Labels labels,
                 std::function<double()> read) {
    add_gauge(std::move(name), std::move(help),
              [labels = std::move(labels), read = std::move(read)] {
                return std::vector<Sample>{{labels, read()}};
              });
  }

  std::size_t families() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return families_.size();
  }

  /// Renders every family in registration order as Prometheus text
  /// exposition format (version 0.0.4).
  void write_prometheus(std::ostream& os) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Family& family : families_) {
      os << "# HELP " << family.name << ' ' << escape_help(family.help)
         << '\n';
      os << "# TYPE " << family.name << ' ' << family.type << '\n';
      if (family.collect_histogram) {
        for (const HistogramSample& series : family.collect_histogram()) {
          write_histogram_series(os, family.name, series);
        }
      } else {
        for (const Sample& sample : family.collect()) {
          os << family.name;
          write_labels(os, sample.labels);
          os << ' ' << format_value(sample.value) << '\n';
        }
      }
    }
  }

  std::string expose() const {
    std::ostringstream os;
    write_prometheus(os);
    return os.str();
  }

  /// Bridges a LatencyHistogram snapshot into one histogram series:
  /// cumulative counts over the power-of-two buckets up to the last
  /// non-empty one (the writer adds `+Inf`), exact `_sum` from the
  /// histogram's running sum. Bounds are each bucket's inclusive upper
  /// bound in µs.
  static HistogramSample from_latency_snapshot(
      const LatencyHistogram::Snapshot& snap, Labels labels) {
    HistogramSample series;
    series.labels = std::move(labels);
    series.sum = static_cast<double>(snap.sum_us);
    series.count = snap.total;
    std::size_t last = 0;
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      if (snap.counts[b] > 0) last = b;
    }
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b <= last && snap.total > 0; ++b) {
      seen += snap.counts[b];
      series.cumulative.emplace_back(LatencyHistogram::upper_bound_us(b),
                                     seen);
    }
    return series;
  }

  // ------------------------------------------------------ format helpers

  /// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
  static bool valid_metric_name(const std::string& name) {
    if (name.empty()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool alpha =
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
          c == ':';
      if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
    }
    return true;
  }

  /// Label names: like metric names but without the colon, and never
  /// starting with `__` (reserved by Prometheus).
  static bool valid_label_name(const std::string& name) {
    if (name.empty() || name.rfind("__", 0) == 0) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool alpha =
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
      if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
    }
    return true;
  }

  /// Label values escape backslash, double-quote and newline.
  static std::string escape_label_value(const std::string& value) {
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '"':
          out += "\\\"";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    return out;
  }

  /// HELP text escapes backslash and newline (quotes are legal there).
  static std::string escape_help(const std::string& help) {
    std::string out;
    out.reserve(help.size());
    for (const char c : help) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    return out;
  }

  /// Deterministic value text: integers (the common case — every
  /// counter) print exactly, everything else round-trips through
  /// shortest-exact %.17g.
  static std::string format_value(double value) {
    const auto as_int = static_cast<long long>(value);
    if (static_cast<double>(as_int) == value &&
        value >= -9.007199254740992e15 && value <= 9.007199254740992e15) {
      return std::to_string(as_int);
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
  }

 private:
  struct Family {
    std::string name;
    std::string help;
    const char* type;
    SampleFn collect;
    HistogramFn collect_histogram;
  };

  void add_family(std::string name, std::string help, const char* type,
                  SampleFn collect, HistogramFn collect_histogram) {
    VERITAS_EXPECTS(valid_metric_name(name));
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Family& family : families_) {
      VERITAS_EXPECTS(family.name != name);
    }
    families_.push_back(Family{std::move(name), std::move(help), type,
                               std::move(collect),
                               std::move(collect_histogram)});
  }

  static void write_labels(std::ostream& os, const Labels& labels) {
    if (labels.empty()) return;
    os << '{';
    bool first = true;
    for (const auto& [key, value] : labels) {
      VERITAS_EXPECTS(valid_label_name(key));
      if (!first) os << ',';
      first = false;
      os << key << "=\"" << escape_label_value(value) << '"';
    }
    os << '}';
  }

  static void write_histogram_series(std::ostream& os,
                                     const std::string& name,
                                     const HistogramSample& series) {
    Labels with_le = series.labels;
    with_le.emplace_back("le", "");
    for (const auto& [bound, cumulative] : series.cumulative) {
      with_le.back().second = format_value(bound);
      os << name << "_bucket";
      write_labels(os, with_le);
      os << ' ' << cumulative << '\n';
    }
    with_le.back().second = "+Inf";
    os << name << "_bucket";
    write_labels(os, with_le);
    os << ' ' << series.count << '\n';
    os << name << "_sum";
    write_labels(os, series.labels);
    os << ' ' << format_value(series.sum) << '\n';
    os << name << "_count";
    write_labels(os, series.labels);
    os << ' ' << series.count << '\n';
  }

  mutable std::mutex mutex_;
  std::vector<Family> families_;
};

}  // namespace veritas::util
