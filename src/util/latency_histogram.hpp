// Lock-free fixed-bucket latency histogram for serving-path percentiles.
//
// 64 power-of-two microsecond buckets (bucket b counts samples whose µs
// value has bit-width b, i.e. [2^(b-1), 2^b)), recorded with relaxed
// atomics — no locks, no allocation, safe from any number of worker
// lanes. Alongside the buckets the histogram tracks the exact running
// sum (for Prometheus `_sum` series and mean latency) and the exact
// observed maximum. Percentiles are read from a snapshot by walking the
// cumulative counts and reporting the matched bucket's upper bound
// clamped to the observed maximum, so a reported p99 is an upper bound
// on the true p99 within its power-of-two bucket (~2x resolution — the
// right trade for a gauge that must cost nothing on the hot path; see
// VeritasService::shard_stats()), never exceeds any real sample, and is
// exact for the single-sample and all-in-the-top-bucket cases.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace veritas::util {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// One sample, in microseconds. Relaxed: counters only, no ordering.
  void record_us(std::uint64_t us) noexcept {
    buckets_[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(us, std::memory_order_relaxed);
    // fetch_max by CAS loop; contention is rare (a new max) and the
    // failure path re-checks, so the loop is wait-free in practice.
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (us > prev &&
           !max_.compare_exchange_weak(prev, us, std::memory_order_relaxed)) {
    }
  }

  /// Point-in-time copy of the counters, from which any number of
  /// percentiles can be read consistently.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;
    std::uint64_t sum_us = 0;  ///< exact sum of recorded samples
    std::uint64_t max_us = 0;  ///< exact maximum recorded sample

    /// Upper bound (µs) of the bucket holding the p-quantile sample,
    /// p in [0, 1], clamped to the exact observed maximum. 0 when no
    /// samples were recorded; the exact sample value when only one was.
    double percentile_us(double p) const noexcept {
      if (total == 0) return 0.0;
      if (p < 0.0) p = 0.0;
      if (p > 1.0) p = 1.0;
      // Rank of the quantile sample, 1-based (nearest-rank definition).
      std::uint64_t rank = static_cast<std::uint64_t>(
          p * static_cast<double>(total) + 0.5);
      if (rank < 1) rank = 1;
      if (rank > total) rank = total;
      const double max = static_cast<double>(max_us);
      std::uint64_t seen = 0;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        seen += counts[b];
        if (seen >= rank) {
          const double bound = upper_bound_us(b);
          return bound < max ? bound : max;
        }
      }
      return max;
    }
  };

  Snapshot snapshot() const noexcept {
    Snapshot s;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      s.counts[b] = buckets_[b].load(std::memory_order_relaxed);
      s.total += s.counts[b];
    }
    s.sum_us = sum_.load(std::memory_order_relaxed);
    s.max_us = max_.load(std::memory_order_relaxed);
    return s;
  }

  /// Bucket index of a µs value: its bit width (0 µs -> bucket 0),
  /// clamped so values >= 2^63 land in the top bucket instead of one
  /// past the array.
  static constexpr std::size_t bucket_of(std::uint64_t us) noexcept {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(us));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Largest µs value bucket b can hold (2^b - 1; bucket 0 holds only
  /// the value 0; saturates at the top).
  static constexpr double upper_bound_us(std::size_t b) noexcept {
    if (b >= 63) return 9.223372036854775807e18;
    return static_cast<double>((std::uint64_t{1} << b) - 1);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace veritas::util
