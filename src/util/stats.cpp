#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/expects.hpp"

namespace veritas::util {

double mean(std::span<const double> xs) {
  VERITAS_EXPECTS(!xs.empty());
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  VERITAS_EXPECTS(xs.size() >= 2);
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  VERITAS_EXPECTS(!xs.empty());
  VERITAS_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double min(std::span<const double> xs) {
  VERITAS_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  VERITAS_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

BoxplotStats boxplot(std::span<const double> xs) {
  VERITAS_EXPECTS(!xs.empty());
  BoxplotStats b;
  b.min = min(xs);
  b.q1 = quantile(xs, 0.25);
  b.median = median(xs);
  b.q3 = quantile(xs, 0.75);
  b.max = max(xs);
  b.count = xs.size();
  return b;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs,
                                    std::size_t max_points) {
  VERITAS_EXPECTS(!xs.empty());
  VERITAS_EXPECTS(max_points >= 2);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const std::size_t points = std::min(max_points, n);
  std::vector<CdfPoint> cdf;
  cdf.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    // Evenly spaced ranks, always including the first and last sample.
    const std::size_t rank =
        (points == 1) ? n - 1 : (k * (n - 1)) / (points - 1);
    cdf.push_back({sorted[rank],
                   static_cast<double>(rank + 1) / static_cast<double>(n)});
  }
  return cdf;
}

double mean_absolute_error(std::span<const double> a,
                           std::span<const double> b) {
  VERITAS_EXPECTS(a.size() == b.size());
  VERITAS_EXPECTS(!a.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

double rmse(std::span<const double> a, std::span<const double> b) {
  VERITAS_EXPECTS(a.size() == b.size());
  VERITAS_EXPECTS(!a.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

std::string to_string(const BoxplotStats& b) {
  std::ostringstream os;
  os << b.min << "/" << b.q1 << "/" << b.median << "/" << b.q3 << "/" << b.max
     << " (n=" << b.count << ")";
  return os.str();
}

}  // namespace veritas::util
