// Sharded LRU cache with hit/miss/eviction accounting.
//
// Keys are distributed over independently locked shards (the key's hash
// picks the shard), so concurrent lookups from many service lanes rarely
// contend on one mutex. Each shard keeps its own recency list and evicts
// least-recently-used entries once it exceeds its slice of the total
// capacity; values are returned by copy, so cache a cheap handle
// (e.g. shared_ptr to an immutable result), not the payload itself.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/expects.hpp"

namespace veritas::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    ///< counted by get() only, never peek()
    std::uint64_t misses = 0;  ///< counted by get() only, never peek()
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  /// At most `capacity` entries total, split across up to `shards`
  /// locks (the shard count is clamped so per-shard slices never sum
  /// past `capacity`). Requires capacity, shards >= 1.
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 8)
      : shard_capacity_(slice_capacity(capacity, shards)) {
    const std::size_t count = std::min(shards, capacity);
    shards_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// Looks the key up, promoting it to most-recently-used on a hit.
  std::optional<Value> get(const Key& key) { return lookup(key, true); }

  /// get() without touching the hit/miss counters (still promotes).
  /// For probes that may not represent a served request — e.g. a
  /// try-submission that can still be rejected on a full queue.
  std::optional<Value> peek(const Key& key) { return lookup(key, false); }

  /// Inserts or refreshes the key as most-recently-used, evicting the
  /// shard's LRU tail when over capacity.
  void put(const Key& key, Value value) {
    Shard& shard = shard_of(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    shard.order.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.order.begin());
    if (shard.order.size() > shard_capacity_) {
      shard.index.erase(shard.order.back().first);
      shard.order.pop_back();
      ++shard.evictions;
    }
  }

  /// Drops every entry (counters are kept).
  void clear() {
    for (auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      shard->order.clear();
      shard->index.clear();
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->order.size();
    }
    return total;
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Aggregated counters across shards (consistent per shard, summed
  /// without a global lock).
  Stats stats() const {
    Stats total;
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      total.hits += shard->hits;
      total.misses += shard->misses;
      total.evictions += shard->evictions;
      total.entries += shard->order.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::list<std::pair<Key, Value>> order;  ///< front = most recent
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  static std::size_t slice_capacity(std::size_t capacity, std::size_t shards) {
    VERITAS_EXPECTS(capacity >= 1);
    VERITAS_EXPECTS(shards >= 1);
    // Floor over the clamped shard count: slices sum to <= capacity.
    return capacity / std::min(shards, capacity);
  }

  std::optional<Value> lookup(const Key& key, bool count) {
    Shard& shard = shard_of(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      if (count) ++shard.misses;
      return std::nullopt;
    }
    if (count) ++shard.hits;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return it->second->second;
  }

  Shard& shard_of(const Key& key) {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  const std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace veritas::util
