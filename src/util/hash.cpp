#include "util/hash.hpp"

#include "sim/session_log.hpp"

namespace veritas::util {

std::uint64_t hash_bytes(const void* data, std::size_t size) noexcept {
  return Fnv1aHasher{}.bytes(data, size).digest();
}

std::uint64_t hash_string(std::string_view s) noexcept {
  return Fnv1aHasher{}.bytes(s.data(), s.size()).digest();
}

std::uint64_t hash_session_log(const sim::SessionLog& log) noexcept {
  Fnv1aHasher h;
  h.f64(log.chunk_duration_s).f64(log.rtt_s).u64(log.chunks.size());
  for (const sim::ChunkLog& c : log.chunks) {
    h.u64(c.index).u64(c.quality);
    h.f64(c.size_bytes).f64(c.start_s).f64(c.end_s).f64(c.buffer_at_start_s);
    h.f64(c.tcp_at_start.cwnd_segments)
        .f64(c.tcp_at_start.ssthresh_segments)
        .f64(c.tcp_at_start.rto_s)
        .f64(c.tcp_at_start.min_rtt_s)
        .f64(c.tcp_at_start.rtt_s)
        .f64(c.tcp_at_start.last_send_gap_s);
  }
  return h.digest();
}

}  // namespace veritas::util
