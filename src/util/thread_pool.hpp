// Minimal fixed-size worker pool for batch inference.
//
// Designed for the InferenceEngine's fan-out pattern: N independent
// work items, one shared immutable model, one scratch arena per worker.
// parallel_for hands out indices dynamically (an atomic cursor), so
// uneven session lengths load-balance, and the calling thread works too —
// a pool of size T applies T+1 threads to the loop.
//
// Exceptions thrown by the body are captured and the first one is
// rethrown on the calling thread after every worker has stopped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace veritas::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed: parallel_for then runs
  /// entirely on the calling thread).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (not counting the calling thread).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Threads the hardware supports (>= 1 even when unknown).
  static std::size_t hardware_threads() noexcept;

  /// Runs body(worker, index) for every index in [0, count), blocking
  /// until all complete. `worker` identifies the executing lane in
  /// [0, size()]; lane size() is the calling thread. Lanes never run two
  /// bodies concurrently, so per-lane scratch needs no locking.
  void parallel_for(
      std::size_t count,
      const std::function<void(std::size_t worker, std::size_t index)>& body);

  /// Enqueues one fire-and-forget job.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace veritas::util
