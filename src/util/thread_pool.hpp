// Minimal fixed-size worker pool for batch inference.
//
// Designed for the InferenceEngine's fan-out pattern: N independent
// work items, one shared immutable model, one scratch arena per worker.
// parallel_for hands out indices dynamically (an atomic cursor), so
// uneven session lengths load-balance, and the calling thread works too —
// a pool of size T applies T+1 threads to the loop.
//
// Exceptions never terminate the process: parallel_for captures the
// first body exception and rethrows it on the calling thread; a plain
// submit() job that throws has its exception stashed and rethrown by the
// next wait_idle() (workers keep running); submit_task() returns a
// future that carries the task's result or exception.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace veritas::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed: parallel_for then runs
  /// entirely on the calling thread).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (not counting the calling thread).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Threads the hardware supports (>= 1 even when unknown).
  static std::size_t hardware_threads() noexcept;

  /// Runs body(worker, index) for every index in [0, count), blocking
  /// until all complete. `worker` identifies the executing lane in
  /// [0, size()]; lane size() is the calling thread. Lanes never run two
  /// bodies concurrently, so per-lane scratch needs no locking.
  void parallel_for(
      std::size_t count,
      const std::function<void(std::size_t worker, std::size_t index)>& body);

  /// Enqueues one fire-and-forget job. If the job throws, the worker
  /// survives and the first uncollected exception is rethrown by the
  /// next wait_idle() — never std::terminate. Prefer submit_task() when
  /// the caller wants the specific task's outcome.
  void submit(std::function<void()> job);

  /// Enqueues a task and returns a future for its result; an exception
  /// thrown by the task is delivered through the future, not wait_idle.
  template <typename F>
  auto submit_task(F&& task) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // shared_ptr because std::function requires a copyable callable.
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    submit([packaged] { (*packaged)(); });
    return future;
  }

  /// Blocks until the queue is empty and all workers are idle, then
  /// rethrows the first exception any fire-and-forget job raised since
  /// the last wait_idle (clearing it).
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr pending_error_;  ///< first uncollected submit() error
};

}  // namespace veritas::util
