// Structured error taxonomy for the serving path.
//
// Overload is not exceptional: when the service sheds a background query
// or a deadline expires in the queue, that outcome is a *value* the
// caller inspects, not a stack unwind. Status names the terminal outcome
// of a query (one code per counter bucket in ServiceStats, so the
// outcome breakdown reconciles exactly: submitted == computed + hits +
// rejected + timed_out + shed + failed), and Expected<T> carries either
// a payload or a non-ok Status through std::future without ever
// breaking a promise. Exceptions remain for contract violations (caller
// bugs); everything the *environment* can cause — overload, deadlines,
// shard churn, a poisoned job — travels as a Status.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "util/expects.hpp"

namespace veritas {

/// Terminal outcome of a serving-path operation. Every non-kOk code maps
/// to exactly one ServiceStats counter bucket (see veritas_service.hpp).
enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// Admission control refused the query: the queue stayed full past the
  /// admission timeout, a failpoint forced rejection, or the service is
  /// shutting down. Nothing was computed; safe to retry later.
  kRejected,
  /// The shed policy dropped the query to protect higher-priority work
  /// (pre-shed at admission under overload, or displaced from the queue
  /// by a higher-priority arrival).
  kShed,
  /// The query's deadline passed before it completed (already missed at
  /// submit, expired while queued, or the admission wait ran into it).
  kDeadlineExceeded,
  /// The named shard is not registered.
  kNotFound,
  /// Inference raised an exception; it was converted to this status at
  /// the lane boundary (the lane itself survives).
  kInternal,
};

/// Stable lowercase name for logs and counters.
inline const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kRejected: return "rejected";
    case StatusCode::kShed: return "shed";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

/// A status code plus a human-readable detail message. Value type,
/// cheap to move; the message is empty for kOk.
class Status {
 public:
  Status() = default;  // kOk
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok_status() { return Status(); }
  static Status rejected(std::string m) {
    return Status(StatusCode::kRejected, std::move(m));
  }
  static Status shed(std::string m) {
    return Status(StatusCode::kShed, std::move(m));
  }
  static Status deadline_exceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status not_found(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "code: message" (or just "code" when the message is empty).
  std::string to_string() const {
    std::string s = status_code_name(code_);
    if (!message_.empty()) s += ": " + message_;
    return s;
  }

  bool operator==(const Status& other) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a T or a non-ok Status — the std::expected shape, buildable
/// without C++23. Accessing value() on an error throws ContractViolation
/// carrying the status text, so a caller that ignores failure semantics
/// still gets a diagnosable error instead of UB.
template <typename T>
class Expected {
 public:
  /// Implicit from a payload: the common return path stays `return result;`.
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  /// Implicit from a non-ok Status. A kOk status would be a lie (there is
  /// no value to go with it), so it is a contract violation.
  Expected(Status status) : state_(std::in_place_index<1>, std::move(status)) {
    VERITAS_EXPECTS(!std::get<1>(state_).ok());
  }

  bool ok() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  /// kOk when a value is held, the carried error otherwise.
  Status status() const {
    return ok() ? Status::ok_status() : std::get<1>(state_);
  }

  T& value() & { return checked(); }
  const T& value() const& {
    return const_cast<Expected*>(this)->checked();
  }
  T&& value() && { return std::move(checked()); }

  T* operator->() { return &checked(); }
  const T* operator->() const {
    return &const_cast<Expected*>(this)->checked();
  }
  T& operator*() { return checked(); }
  const T& operator*() const {
    return const_cast<Expected*>(this)->checked();
  }

  /// The payload, or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? std::get<0>(state_) : fallback; }

 private:
  T& checked() {
    if (!ok()) {
      throw ContractViolation("Expected::value() on error: " +
                              std::get<1>(state_).to_string());
    }
    return std::get<0>(state_);
  }

  std::variant<T, Status> state_;
};

}  // namespace veritas
