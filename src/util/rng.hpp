// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit seed so that
// experiments are reproducible bit-for-bit across runs and platforms. The
// generator is xoshiro256** (public domain, Blackman & Vigna) seeded via
// splitmix64, which avoids the zero-state pathology of naive seeding.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace veritas::util {

/// splitmix64 step: used for seeding and for cheap stateless hashing of
/// (seed, stream) pairs into independent generator states.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies UniformRandomBitGenerator so it can be used with <random>
/// distributions, but the methods below are preferred: they are stable
/// across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Equal seeds produce equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Marsaglia polar method (stable across platforms).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept;

  /// Log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given rate (> 0).
  double exponential(double rate) noexcept;

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) noexcept;

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Weights must be non-negative with a positive sum.
  std::size_t categorical(std::span<const double> weights);

  /// Derives an independent child generator for a named sub-stream.
  /// fork(i) != fork(j) for i != j, and forking does not perturb *this.
  Rng fork(std::uint64_t stream) const noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Fisher-Yates shuffle with the library Rng (std::shuffle is not
/// reproducible across standard libraries).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace veritas::util
