// Bounded multi-producer / multi-consumer FIFO queue.
//
// The service layer's submission front-end: producers block in push()
// when the queue is full (backpressure — a burst of queries throttles
// the submitters instead of growing memory without bound), consumers
// block in pop() when it is empty. close() wakes everyone: pending items
// are still drained, after which pop() returns nullopt and push()
// returns false, so a shutdown never drops accepted work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/expects.hpp"

namespace veritas::util {

template <typename T>
class BoundedQueue {
 public:
  /// Requires capacity >= 1.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    VERITAS_EXPECTS(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Blocks while the queue is full. Returns false when the queue is
  /// closed — `value` was taken by value and is discarded either way;
  /// use try_push for the give-back-on-failure form.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed. Failure is
  /// non-destructive by contract: `value` is moved from only on the
  /// accept path, so a rejected caller still owns its (untouched) value
  /// and can retry, fall back, or fail it explicitly. (The old
  /// `try_push(T&)` signature invited call sites that assumed the value
  /// survived rejection while the signature permitted a move either
  /// way; taking an rvalue reference makes the handoff explicit and the
  /// rollback guarantee part of the interface.)
  bool try_push(T&& value) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue is
  /// closed AND drained; items accepted before close() are always
  /// delivered.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Closes the queue: subsequent pushes fail, pops drain the remaining
  /// items then return nullopt. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace veritas::util
