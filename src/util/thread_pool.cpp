#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <utility>

#include "util/expects.hpp"

namespace veritas::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::submit(std::function<void()> job) {
  VERITAS_EXPECTS(job != nullptr);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    VERITAS_EXPECTS(!stopping_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    error = std::exchange(pending_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      // Keep the worker alive; hand the error to the next wait_idle().
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error && !pending_error_) pending_error_ = error;
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t worker, std::size_t index)>& body) {
  if (count == 0) return;
  const std::size_t caller_lane = size();

  // Shared cursor: lanes pull the next unclaimed index until drained.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&](std::size_t lane) {
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        body(lane, index);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // One pulling job per worker lane; the calling thread drains too. Lanes
  // that find the cursor exhausted exit immediately, so submitting more
  // jobs than items is harmless.
  std::atomic<std::size_t> jobs_left{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  const std::size_t lanes = std::min(size(), count);
  jobs_left.store(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([&, lane] {
      drain(lane);
      // Notify under the lock: the waiter owns these stack locals, and
      // may only observe jobs_left == 0 (and destroy them) after the
      // mutex is released, i.e. after the cv access below is done.
      const std::lock_guard<std::mutex> lock(done_mutex);
      jobs_left.fetch_sub(1);
      done_cv.notify_one();
    });
  }

  drain(caller_lane);

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return jobs_left.load() == 0; });

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace veritas::util
