#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/expects.hpp"

namespace veritas::util {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

void CsvWriter::header(const std::vector<std::string>& names) {
  VERITAS_EXPECTS(!header_written_ && rows_ == 0);
  VERITAS_EXPECTS(!names.empty());
  columns_ = names.size();
  header_written_ = true;
  write_fields(names);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (columns_ == 0) columns_ = fields.size();
  VERITAS_EXPECTS(fields.size() == columns_);
  write_fields(fields);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) fields.push_back(format_double(v));
  row(fields);
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << (needs_quoting(fields[i]) ? quote(fields[i]) : fields[i]);
  }
  out_ << '\n';
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw ContractViolation("CSV column not found: " + name);
}

double CsvTable::number(std::size_t row, const std::string& name) const {
  VERITAS_EXPECTS(row < rows.size());
  const std::string& cell = rows[row][column(name)];
  double value = 0.0;
  const auto* begin = cell.data();
  const auto* end = cell.data() + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw ContractViolation("CSV cell is not a number: '" + cell + "'");
  }
  return value;
}

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&] {
    fields.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    if (!fields.empty() || row_has_content) {
      end_field();
      if (table.header.empty()) {
        table.header = std::move(fields);
      } else {
        table.rows.push_back(std::move(fields));
      }
      fields.clear();
      row_has_content = false;
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      row_has_content = true;
    } else if (c == ',') {
      end_field();
      row_has_content = true;
    } else if (c == '\n') {
      end_row();
    } else if (c != '\r') {
      field += c;
      row_has_content = true;
    }
  }
  end_row();  // final row without trailing newline

  for (const auto& r : table.rows) {
    if (r.size() != table.header.size()) {
      throw ContractViolation("CSV row width mismatch");
    }
  }
  return table;
}

CsvTable read_csv_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace veritas::util
