// Client-side playback buffer dynamics.
//
// The buffer holds downloaded-but-unplayed seconds of video. While
// playback runs it drains in real time; when it empties mid-download the
// session stalls (rebuffering). The player requests the next chunk only
// when the buffer has room for it (this pacing creates the idle gaps that
// trigger TCP slow-start restart — the effect Veritas controls for).
#pragma once

namespace veritas::sim {

class PlayerBuffer {
 public:
  /// Requires capacity_s > 0.
  explicit PlayerBuffer(double capacity_s);

  double level_s() const noexcept { return level_s_; }
  double capacity_s() const noexcept { return capacity_s_; }
  bool playback_started() const noexcept { return playing_; }
  double total_stall_s() const noexcept { return total_stall_s_; }

  /// Begins playback (idempotent).
  void start_playback() noexcept { playing_ = true; }

  /// Advances wall-clock by dt (>= 0). If playing, drains the buffer and
  /// returns the stall time incurred within this interval (0 if the
  /// buffer covered it). If not playing, returns 0 and drains nothing.
  double advance(double dt_s);

  /// True when a chunk of the given duration fits without exceeding
  /// capacity.
  bool has_room(double chunk_duration_s) const noexcept;

  /// Seconds of draining needed before a chunk fits (0 when it already
  /// fits). Only meaningful while playing.
  double time_until_room(double chunk_duration_s) const noexcept;

  /// Adds a downloaded chunk. Requires has_room(chunk_duration_s).
  void push_chunk(double chunk_duration_s);

 private:
  double capacity_s_;
  double level_s_ = 0.0;
  double total_stall_s_ = 0.0;
  bool playing_ = false;
};

}  // namespace veritas::sim
