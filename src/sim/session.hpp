// Video streaming session simulation: the substrate standing in for the
// paper's mahimahi/Puffer emulation testbed. Plays the whole video over a
// NetworkPath under a given ABR algorithm and records the session log a
// deployed system would produce.
#pragma once

#include <vector>

#include "abr/abr.hpp"
#include "net/network_path.hpp"
#include "sim/player.hpp"
#include "sim/session_log.hpp"
#include "video/video.hpp"

namespace veritas::sim {

struct SessionConfig {
  double buffer_capacity_s = 5.0;  ///< paper Setting A default
  std::size_t startup_chunks = 1;  ///< playback begins after this many chunks
};

/// Complete outcome of one simulated session.
struct SessionResult {
  SessionLog log;
  std::vector<std::size_t> qualities;  ///< rung chosen per chunk
  double startup_delay_s = 0.0;        ///< arrival of the startup_chunks-th chunk
  double total_stall_s = 0.0;          ///< rebuffering time after startup
  double session_end_s = 0.0;          ///< wall time when the last second plays
};

/// Runs one session. The ABR is reset() first; the TCP connection
/// persists across chunks (idle gaps trigger slow-start restart).
/// Requires buffer capacity >= one chunk duration.
SessionResult run_session(const video::Video& video, abr::AbrAlgorithm& abr,
                          const net::NetworkPath& path,
                          const SessionConfig& config = {});

}  // namespace veritas::sim
