#include "sim/session_log.hpp"

#include <sstream>

#include "util/csv.hpp"
#include "util/expects.hpp"

namespace veritas::sim {

SessionLog SessionLog::prefix(std::size_t n) const {
  VERITAS_EXPECTS(n <= chunks.size());
  SessionLog out;
  out.chunk_duration_s = chunk_duration_s;
  out.rtt_s = rtt_s;
  out.chunks.assign(chunks.begin(),
                    chunks.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

std::string to_csv(const SessionLog& log) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.header({"index", "quality", "size_bytes", "start_s", "end_s",
                 "cwnd", "ssthresh", "rto_s", "min_rtt_s", "rtt_s",
                 "last_send_gap_s", "buffer_s", "chunk_duration_s",
                 "session_rtt_s"});
  for (const ChunkLog& c : log.chunks) {
    writer.row(std::vector<double>{
        static_cast<double>(c.index), static_cast<double>(c.quality),
        c.size_bytes, c.start_s, c.end_s, c.tcp_at_start.cwnd_segments,
        c.tcp_at_start.ssthresh_segments, c.tcp_at_start.rto_s,
        c.tcp_at_start.min_rtt_s, c.tcp_at_start.rtt_s,
        c.tcp_at_start.last_send_gap_s, c.buffer_at_start_s,
        log.chunk_duration_s, log.rtt_s});
  }
  return out.str();
}

SessionLog session_log_from_csv(const std::string& text) {
  const util::CsvTable table = util::parse_csv(text);
  SessionLog log;
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    ChunkLog c;
    c.index = static_cast<std::size_t>(table.number(r, "index"));
    c.quality = static_cast<std::size_t>(table.number(r, "quality"));
    c.size_bytes = table.number(r, "size_bytes");
    c.start_s = table.number(r, "start_s");
    c.end_s = table.number(r, "end_s");
    c.tcp_at_start.cwnd_segments = table.number(r, "cwnd");
    c.tcp_at_start.ssthresh_segments = table.number(r, "ssthresh");
    c.tcp_at_start.rto_s = table.number(r, "rto_s");
    c.tcp_at_start.min_rtt_s = table.number(r, "min_rtt_s");
    c.tcp_at_start.rtt_s = table.number(r, "rtt_s");
    c.tcp_at_start.last_send_gap_s = table.number(r, "last_send_gap_s");
    c.buffer_at_start_s = table.number(r, "buffer_s");
    log.chunk_duration_s = table.number(r, "chunk_duration_s");
    log.rtt_s = table.number(r, "session_rtt_s");
    log.chunks.push_back(c);
  }
  return log;
}

}  // namespace veritas::sim
