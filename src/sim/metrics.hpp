// QoE metrics reported in the paper's evaluation: mean SSIM, rebuffering
// ratio (% of session), average bitrate (Fig. 14) plus auxiliary metrics.
#pragma once

#include "sim/session.hpp"
#include "video/video.hpp"

namespace veritas::sim {

struct QoeMetrics {
  double mean_ssim = 0.0;          ///< mean per-chunk SSIM index
  double mean_ssim_db = 0.0;       ///< mean -10log10(1-SSIM)
  double rebuffer_ratio_pct = 0.0; ///< stall time / session wall time * 100
  double avg_bitrate_mbps = 0.0;   ///< mean nominal bitrate of chosen rungs
  double startup_delay_s = 0.0;
  std::size_t quality_switches = 0;
};

/// Computes metrics for a session played from `video` (the video the
/// session actually used — pass the Setting B video when replaying).
QoeMetrics compute_metrics(const video::Video& video,
                           const SessionResult& result);

}  // namespace veritas::sim
