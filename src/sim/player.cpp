#include "sim/player.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace veritas::sim {

PlayerBuffer::PlayerBuffer(double capacity_s) : capacity_s_(capacity_s) {
  VERITAS_EXPECTS(capacity_s > 0.0);
}

double PlayerBuffer::advance(double dt_s) {
  VERITAS_EXPECTS(dt_s >= 0.0);
  if (!playing_) return 0.0;
  const double played = std::min(level_s_, dt_s);
  const double stall = dt_s - played;
  level_s_ -= played;
  total_stall_s_ += stall;
  return stall;
}

bool PlayerBuffer::has_room(double chunk_duration_s) const noexcept {
  return level_s_ + chunk_duration_s <= capacity_s_ + 1e-9;
}

double PlayerBuffer::time_until_room(double chunk_duration_s) const noexcept {
  return std::max(0.0, level_s_ + chunk_duration_s - capacity_s_);
}

void PlayerBuffer::push_chunk(double chunk_duration_s) {
  VERITAS_EXPECTS(chunk_duration_s > 0.0);
  VERITAS_EXPECTS(has_room(chunk_duration_s));
  level_s_ += chunk_duration_s;
}

}  // namespace veritas::sim
