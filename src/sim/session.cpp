#include "sim/session.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace veritas::sim {

SessionResult run_session(const video::Video& video, abr::AbrAlgorithm& abr,
                          const net::NetworkPath& path,
                          const SessionConfig& config) {
  const double chunk_s = video.chunk_duration_s();
  VERITAS_EXPECTS(config.buffer_capacity_s >= chunk_s);
  VERITAS_EXPECTS(config.startup_chunks >= 1);

  abr.reset();
  net::TcpConnection connection = path.make_connection();
  PlayerBuffer buffer(config.buffer_capacity_s);

  SessionResult result;
  result.log.chunk_duration_s = chunk_s;
  result.log.rtt_s = path.rtt_s();

  std::vector<abr::DownloadedChunk> history;
  history.reserve(video.num_chunks());

  double now = 0.0;
  for (std::size_t n = 0; n < video.num_chunks(); ++n) {
    // Pacing: wait for buffer room. While waiting, playback drains the
    // buffer (a high buffer means no stall risk during the wait).
    if (!buffer.has_room(chunk_s)) {
      const double wait = buffer.time_until_room(chunk_s);
      buffer.advance(wait);
      now += wait;
    }

    abr::AbrContext context;
    context.video = &video;
    context.next_chunk = n;
    context.buffer_s = buffer.level_s();
    context.buffer_capacity_s = config.buffer_capacity_s;
    context.history = history;
    const std::size_t quality = abr.choose_quality(context);
    VERITAS_EXPECTS(quality < video.num_qualities());

    const double size_bytes = video.chunk_size_bytes(n, quality);
    const net::TcpState w = connection.snapshot(now);
    const net::DownloadResult download =
        connection.download(path.bandwidth(), now, size_bytes);

    // Playback continues during the download; stalls accrue if the
    // buffer empties.
    buffer.advance(download.duration_s());
    buffer.push_chunk(chunk_s);

    if (!buffer.playback_started() &&
        history.size() + 1 >= config.startup_chunks) {
      buffer.start_playback();
      result.startup_delay_s = download.end_s;
    }

    ChunkLog chunk;
    chunk.index = n;
    chunk.quality = quality;
    chunk.size_bytes = size_bytes;
    chunk.start_s = download.start_s;
    chunk.end_s = download.end_s;
    chunk.tcp_at_start = w;
    chunk.buffer_at_start_s = context.buffer_s;
    result.log.chunks.push_back(chunk);
    result.qualities.push_back(quality);

    abr::DownloadedChunk downloaded;
    downloaded.chunk_index = n;
    downloaded.quality = quality;
    downloaded.size_bytes = size_bytes;
    downloaded.duration_s = download.duration_s();
    history.push_back(downloaded);

    now = download.end_s;
  }

  // The session ends when the remaining buffer plays out.
  result.session_end_s = now + buffer.level_s();
  result.total_stall_s = buffer.total_stall_s();

  VERITAS_ENSURES(result.log.chunks.size() == video.num_chunks());
  return result;
}

}  // namespace veritas::sim
