#include "sim/metrics.hpp"

#include "util/expects.hpp"

namespace veritas::sim {

QoeMetrics compute_metrics(const video::Video& video,
                           const SessionResult& result) {
  VERITAS_EXPECTS(!result.qualities.empty());
  VERITAS_EXPECTS(result.qualities.size() == video.num_chunks());

  QoeMetrics m;
  double ssim_sum = 0.0;
  double ssim_db_sum = 0.0;
  double bitrate_sum = 0.0;
  for (std::size_t n = 0; n < result.qualities.size(); ++n) {
    const std::size_t q = result.qualities[n];
    const double ssim = video.chunk_ssim(n, q);
    ssim_sum += ssim;
    ssim_db_sum += video::ssim_db(ssim);
    bitrate_sum += video.bitrate_mbps(q);
    if (n > 0 && result.qualities[n] != result.qualities[n - 1]) {
      ++m.quality_switches;
    }
  }
  const auto count = static_cast<double>(result.qualities.size());
  m.mean_ssim = ssim_sum / count;
  m.mean_ssim_db = ssim_db_sum / count;
  m.avg_bitrate_mbps = bitrate_sum / count;
  m.startup_delay_s = result.startup_delay_s;
  VERITAS_EXPECTS(result.session_end_s > 0.0);
  m.rebuffer_ratio_pct =
      100.0 * result.total_stall_s / result.session_end_s;
  return m;
}

}  // namespace veritas::sim
