// Session logs: what a deployed system records (paper §3.3).
//
// For each chunk: size, download start/end time, and the TCP state at the
// start of the download (cwnd, ssthresh, rto, ...). Notably the log does
// NOT contain the ground-truth bandwidth — recovering it is Veritas's
// abduction task. Logs serialize to CSV so they can be inspected and
// replayed offline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/tcp_state.hpp"

namespace veritas::sim {

/// Per-chunk observation (the shaded variables of paper Fig. 3).
struct ChunkLog {
  std::size_t index = 0;        ///< chunk number n (0-based)
  std::size_t quality = 0;      ///< ladder rung chosen by the deployed ABR
  double size_bytes = 0.0;      ///< S_n
  double start_s = 0.0;         ///< s_n
  double end_s = 0.0;           ///< e_n
  net::TcpState tcp_at_start;   ///< W_sn
  double buffer_at_start_s = 0.0;  ///< B_sn (logged but not required; §A.2)

  double download_time_s() const noexcept { return end_s - start_s; }
  /// Observed throughput Y_n = S_n / D_n, Mbps.
  double throughput_mbps() const noexcept {
    return size_bytes * 8.0 / 1e6 / (end_s - start_s);
  }
};

/// A full session's observations plus the session-level constants that a
/// real log would carry.
struct SessionLog {
  std::vector<ChunkLog> chunks;
  double chunk_duration_s = 2.0;
  double rtt_s = 0.08;

  bool empty() const noexcept { return chunks.empty(); }
  std::size_t size() const noexcept { return chunks.size(); }

  /// Prefix of the first `n` chunks (for interventional queries that see
  /// only the session so far).
  SessionLog prefix(std::size_t n) const;
};

/// CSV serialization (one row per chunk).
std::string to_csv(const SessionLog& log);

/// Parses to_csv() output.
SessionLog session_log_from_csv(const std::string& text);

}  // namespace veritas::sim
