#include "service/veritas_service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/expects.hpp"
#include "util/hash.hpp"

namespace veritas::service {

std::size_t VeritasService::CacheKeyHash::operator()(
    const CacheKey& key) const noexcept {
  return static_cast<std::size_t>(util::Fnv1aHasher{}
                                      .u64(key.log_hash)
                                      .u64(key.epoch)
                                      .u64(static_cast<std::uint64_t>(key.kind))
                                      .u64(key.seed)
                                      .digest());
}

VeritasService::VeritasService(ServiceOptions options)
    : options_(options),
      lanes_(options.num_threads == 0 ? util::ThreadPool::hardware_threads()
                                      : options.num_threads),
      cache_(std::max<std::size_t>(1, options.cache_capacity),
             std::max<std::size_t>(1, options.cache_shards)),
      queue_(std::max<std::size_t>(1, options.queue_capacity)),
      pool_(lanes_) {
  // Long-running drain jobs, one per lane; each owns a scratch arena
  // reused across every job it executes.
  for (std::size_t i = 0; i < lanes_; ++i) {
    pool_.submit([this] { drain_lane(); });
  }
}

VeritasService::~VeritasService() {
  // Closing the queue stops new submissions and wakes blocked lanes;
  // they drain the remaining accepted jobs (completing every handed-out
  // future) and exit. wait_idle() then lets the pool join cleanly.
  queue_.close();
  pool_.wait_idle();
}

// --------------------------------------------------------------- registry

std::uint64_t VeritasService::add_shard(const std::string& name,
                                        const core::VeritasConfig& config,
                                        core::EngineOptions engine_options) {
  // Build outside the lock: engine construction precomputes the A^Δ and
  // span tables and can take milliseconds.
  return add_shard(name, std::make_shared<const core::InferenceEngine>(
                             config, engine_options));
}

std::uint64_t VeritasService::add_shard(
    const std::string& name,
    std::shared_ptr<const core::InferenceEngine> engine) {
  VERITAS_EXPECTS(engine != nullptr);
  auto veritas = std::make_shared<const core::Veritas>(std::move(engine));
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  Shard& shard = shards_[name];
  shard.veritas = std::move(veritas);
  // Counters follow the name: a replaced shard keeps its history, a
  // fresh name starts at zero.
  if (shard.counters == nullptr) {
    shard.counters = std::make_shared<ShardCounters>();
  }
  // Epochs are unique across every add/swap on this service, so a
  // removed-and-re-added shard can never resurrect stale cache entries.
  shard.epoch = next_epoch_++;
  return shard.epoch;
}

std::uint64_t VeritasService::swap_shard(const std::string& name,
                                         const core::VeritasConfig& config,
                                         core::EngineOptions engine_options) {
  // Build first (slow), then replace under one lock hold: a concurrent
  // remove_shard can never interleave and be silently undone.
  auto veritas = std::make_shared<const core::Veritas>(
      std::make_shared<const core::InferenceEngine>(config, engine_options));
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = shards_.find(name);
  VERITAS_EXPECTS(it != shards_.end());
  it->second.veritas = std::move(veritas);
  it->second.epoch = next_epoch_++;
  return it->second.epoch;
}

bool VeritasService::remove_shard(const std::string& name) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return shards_.erase(name) > 0;
}

bool VeritasService::has_shard(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return shards_.find(name) != shards_.end();
}

std::vector<std::string> VeritasService::shard_names() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::string> names;
  names.reserve(shards_.size());
  for (const auto& [name, shard] : shards_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::uint64_t VeritasService::shard_epoch(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = shards_.find(name);
  VERITAS_EXPECTS(it != shards_.end());
  return it->second.epoch;
}

std::shared_ptr<const core::InferenceEngine> VeritasService::shard_engine(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = shards_.find(name);
  VERITAS_EXPECTS(it != shards_.end());
  return it->second.veritas->engine_ptr();
}

// ------------------------------------------------------------- submission

VeritasService::Job VeritasService::make_job(Query query) const {
  Job job;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = shards_.find(query.shard);
    if (it == shards_.end()) {
      throw ContractViolation("unknown shard: " + query.shard);
    }
    job.shard = it->second;  // pin engine + epoch for this query
  }
  job.key.log_hash = util::hash_session_log(query.log);
  job.key.epoch = job.shard.epoch;
  job.key.kind = query.kind;
  // Seed resolution against the *pinned* shard, so a concurrent swap
  // cannot pair one shard's seed with another's engine. Prediction
  // queries are seed-independent: normalize so seed-bearing duplicates
  // share one cache entry.
  if (query.kind == QueryKind::kAbduction) {
    const std::uint64_t base = job.shard.veritas->config().seed;
    job.key.seed = query.seed.value_or(base) ^ query.seed_xor.value_or(0);
  } else {
    job.key.seed = 0;
  }
  job.query = std::move(query);
  return job;
}

bool VeritasService::serve_from_cache(Job& job) {
  if (options_.cache_capacity == 0) return false;
  // peek: the miss is counted only once the query is really accepted.
  std::optional<CachedPayload> payload = cache_.peek(job.key);
  if (!payload) return false;
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  job.shard.counters->cache_hits.fetch_add(1, std::memory_order_relaxed);
  InferenceResult result;
  result.abduction = std::move(payload->abduction);
  result.predictions = std::move(payload->predictions);
  result.cache_hit = true;
  result.shard_epoch = job.key.epoch;
  job.promise.set_value(std::move(result));
  return true;
}

std::future<InferenceResult> VeritasService::submit(Query query) {
  Job job = make_job(std::move(query));
  std::future<InferenceResult> future = job.promise.get_future();
  if (serve_from_cache(job)) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    job.shard.counters->submitted.fetch_add(1, std::memory_order_relaxed);
    return future;
  }
  const std::shared_ptr<ShardCounters> counters = job.shard.counters;
  if (!queue_.push(std::move(job))) {
    throw ContractViolation("VeritasService is shutting down");
  }
  if (options_.cache_capacity > 0) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    counters->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  counters->submitted.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::optional<std::future<InferenceResult>> VeritasService::try_submit(
    Query query) {
  Job job = make_job(std::move(query));
  std::future<InferenceResult> future = job.promise.get_future();
  if (serve_from_cache(job)) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    job.shard.counters->submitted.fetch_add(1, std::memory_order_relaxed);
    return future;
  }
  // try_push moves from `job` on success; keep the counter handle alive.
  const std::shared_ptr<ShardCounters> counters = job.shard.counters;
  if (!queue_.try_push(job)) return std::nullopt;  // full or closing
  if (options_.cache_capacity > 0) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    counters->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  counters->submitted.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::vector<std::future<InferenceResult>> VeritasService::submit_batch(
    std::span<const sim::SessionLog> logs, const std::string& shard,
    QueryKind kind) {
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(logs.size());
  for (const sim::SessionLog& log : logs) {
    Query query;
    query.log = log;
    query.shard = shard;
    query.kind = kind;
    futures.push_back(submit(std::move(query)));
  }
  return futures;
}

std::vector<ShardStats> VeritasService::shard_stats() const {
  std::vector<ShardStats> out;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    out.reserve(shards_.size());
    for (const auto& [name, shard] : shards_) {
      ShardStats s;
      s.name = name;
      s.epoch = shard.epoch;
      s.submitted = shard.counters->submitted.load(std::memory_order_relaxed);
      s.computed = shard.counters->computed.load(std::memory_order_relaxed);
      s.cache_hits =
          shard.counters->cache_hits.load(std::memory_order_relaxed);
      s.cache_misses =
          shard.counters->cache_misses.load(std::memory_order_relaxed);
      const util::LatencyHistogram::Snapshot latency =
          shard.counters->latency.snapshot();
      s.latency_count = latency.total;
      s.latency_p50_us = latency.percentile_us(0.50);
      s.latency_p95_us = latency.percentile_us(0.95);
      s.latency_p99_us = latency.percentile_us(0.99);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ShardStats& a, const ShardStats& b) {
              return a.name < b.name;
            });
  return out;
}

ServiceStats VeritasService::stats() const {
  const auto cache = cache_.stats();
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.computed = computed_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.cache_evictions = cache.evictions;
  s.cache_entries = cache.entries;
  s.queue_depth = queue_.size();
  return s;
}

// ---------------------------------------------------------------- workers

void VeritasService::drain_lane() {
  core::Ehmm::Scratch scratch;
  while (std::optional<Job> job = queue_.pop()) {
    execute(*job, scratch);
  }
}

void VeritasService::execute(Job& job, core::Ehmm::Scratch& scratch) {
  try {
    const auto start = std::chrono::steady_clock::now();
    InferenceResult result;
    result.shard_epoch = job.shard.epoch;
    const core::Veritas& veritas = *job.shard.veritas;
    switch (job.query.kind) {
      case QueryKind::kAbduction:
        result.abduction = std::make_shared<const core::VeritasResult>(
            veritas.engine().infer_with_seed(job.query.log, scratch,
                                             job.key.seed));
        break;
      case QueryKind::kPredictSequence:
        result.predictions =
            std::make_shared<const std::vector<core::NextChunkPrediction>>(
                veritas.predict_sequence(job.query.log, scratch));
        break;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    job.shard.counters->latency.record_us(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
    computed_.fetch_add(1, std::memory_order_relaxed);
    job.shard.counters->computed.fetch_add(1, std::memory_order_relaxed);
    if (options_.cache_capacity > 0) {
      cache_.put(job.key, CachedPayload{result.abduction, result.predictions});
    }
    job.promise.set_value(std::move(result));
  } catch (...) {
    job.promise.set_exception(std::current_exception());
  }
}

}  // namespace veritas::service
