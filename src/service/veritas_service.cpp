#include "service/veritas_service.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "math/simd_kernels.hpp"
#include "util/expects.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace veritas::service {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

std::size_t VeritasService::CacheKeyHash::operator()(
    const CacheKey& key) const noexcept {
  return static_cast<std::size_t>(util::Fnv1aHasher{}
                                      .u64(key.log_hash)
                                      .u64(key.epoch)
                                      .u64(static_cast<std::uint64_t>(key.kind))
                                      .u64(key.seed)
                                      .digest());
}

VeritasService::VeritasService(ServiceOptions options)
    : options_(options),
      lanes_(options.num_threads == 0 ? util::ThreadPool::hardware_threads()
                                      : options.num_threads),
      cache_(std::max<std::size_t>(1, options.cache_capacity),
             std::max<std::size_t>(1, options.cache_shards)),
      queue_(std::max<std::size_t>(1, options.queue_capacity)),
      pool_(lanes_) {
  // Long-running drain jobs, one per lane; each owns a scratch arena
  // reused across every job it executes.
  for (std::size_t i = 0; i < lanes_; ++i) {
    pool_.submit([this] { drain_lane(); });
  }
}

VeritasService::~VeritasService() {
  // Closing the queue stops new submissions and wakes blocked lanes;
  // they drain the remaining accepted jobs — expired deadlines resolve
  // as kDeadlineExceeded, everything else computes — so every future
  // ever handed out resolves before the pool joins. drain_lane never
  // lets an exception reach the pool, so wait_idle() cannot rethrow
  // from the destructor.
  queue_.close();
  pool_.wait_idle();
}

// --------------------------------------------------------------- registry

std::uint64_t VeritasService::add_shard(const std::string& name,
                                        const core::VeritasConfig& config,
                                        core::EngineOptions engine_options) {
  // Build outside the lock: engine construction precomputes the A^Δ and
  // span tables and can take milliseconds.
  return add_shard(name, std::make_shared<const core::InferenceEngine>(
                             config, engine_options));
}

std::uint64_t VeritasService::add_shard(
    const std::string& name,
    std::shared_ptr<const core::InferenceEngine> engine) {
  VERITAS_EXPECTS(engine != nullptr);
  auto veritas = std::make_shared<const core::Veritas>(std::move(engine));
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  Shard& shard = shards_[name];
  // Replacing an existing shard is a swap: remember the outgoing epoch
  // so its cache entries stay reachable as stale hits under overload.
  if (shard.veritas != nullptr) {
    shard.prev_epoch = shard.epoch;
    shard.has_prev_epoch = true;
  }
  shard.veritas = std::move(veritas);
  // Counters follow the name: a replaced shard keeps its history, a
  // fresh name starts at zero.
  if (shard.counters == nullptr) {
    shard.counters = std::make_shared<ShardCounters>();
  }
  // Epochs are unique across every add/swap on this service, so a
  // removed-and-re-added shard can never resurrect stale cache entries.
  shard.epoch = next_epoch_++;
  return shard.epoch;
}

std::uint64_t VeritasService::swap_shard(const std::string& name,
                                         const core::VeritasConfig& config,
                                         core::EngineOptions engine_options) {
  // Build first (slow), then replace under one lock hold: a concurrent
  // remove_shard can never interleave and be silently undone.
  auto veritas = std::make_shared<const core::Veritas>(
      std::make_shared<const core::InferenceEngine>(config, engine_options));
  // Injected between build and publish: a failed swap must leave the
  // shard serving the old engine at the old epoch.
  if (VERITAS_FAILPOINT("service.shard.swap")) {
    throw util::FailpointTriggered("service.shard.swap");
  }
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = shards_.find(name);
  VERITAS_EXPECTS(it != shards_.end());
  it->second.prev_epoch = it->second.epoch;
  it->second.has_prev_epoch = true;
  it->second.veritas = std::move(veritas);
  it->second.epoch = next_epoch_++;
  return it->second.epoch;
}

bool VeritasService::remove_shard(const std::string& name) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return shards_.erase(name) > 0;
}

bool VeritasService::has_shard(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return shards_.find(name) != shards_.end();
}

std::vector<std::string> VeritasService::shard_names() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::string> names;
  names.reserve(shards_.size());
  for (const auto& [name, shard] : shards_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::uint64_t VeritasService::shard_epoch(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = shards_.find(name);
  VERITAS_EXPECTS(it != shards_.end());
  return it->second.epoch;
}

std::shared_ptr<const core::InferenceEngine> VeritasService::shard_engine(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = shards_.find(name);
  VERITAS_EXPECTS(it != shards_.end());
  return it->second.veritas->engine_ptr();
}

// ------------------------------------------------------------- submission

VeritasService::Job VeritasService::make_job(Query query) const {
  Job job;
  // Trace ids are drawn only while tracing is live, so the disabled
  // path never touches the counter (and trace_id 0 = untraced keeps
  // every downstream check a plain integer compare).
  if (util::Tracer::enabled()) {
    job.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = shards_.find(query.shard);
    if (it != shards_.end()) {
      job.shard = it->second;  // pin engine + epoch for this query
    }
    // Unknown shard: job.shard.veritas stays null; the caller resolves
    // the future with kNotFound instead of throwing — an operator typo
    // in one query must not unwind a batch submitter.
  }
  if (job.shard.veritas != nullptr) {
    job.key.log_hash = util::hash_session_log(query.log);
    job.key.epoch = job.shard.epoch;
    job.key.kind = query.kind;
    // Seed resolution against the *pinned* shard, so a concurrent swap
    // cannot pair one shard's seed with another's engine. Prediction
    // queries are seed-independent: normalize so seed-bearing duplicates
    // share one cache entry.
    if (query.kind == QueryKind::kAbduction) {
      const std::uint64_t base = job.shard.veritas->config().seed;
      job.key.seed = query.seed.value_or(base) ^ query.seed_xor.value_or(0);
    } else {
      job.key.seed = 0;
    }
  }
  job.query = std::move(query);
  return job;
}

bool VeritasService::serve_from_cache(Job& job, std::uint64_t epoch,
                                      bool stale) {
  if (options_.cache_capacity == 0) return false;
  VERITAS_TRACE_SPAN("service.cache_probe", "service");
  CacheKey key = job.key;
  key.epoch = epoch;
  // peek: the miss is counted only once the query is really accepted.
  std::optional<CachedPayload> payload = cache_.peek(key);
  if (!payload) return false;
  totals_.cache_hits.fetch_add(1, std::memory_order_relaxed);
  job.shard.counters->outcomes.cache_hits.fetch_add(1,
                                                    std::memory_order_relaxed);
  if (stale) {
    totals_.stale_hits.fetch_add(1, std::memory_order_relaxed);
    job.shard.counters->outcomes.stale_hits.fetch_add(
        1, std::memory_order_relaxed);
  }
  InferenceResult result;
  result.abduction = std::move(payload->abduction);
  result.predictions = std::move(payload->predictions);
  result.cache_hit = true;
  result.stale = stale;
  result.shard_epoch = epoch;
  job.done = true;
  job.promise.set_value(Expected<InferenceResult>(std::move(result)));
  return true;
}

void VeritasService::finish_with_status(Job& job, Status status) {
  if (job.done) return;
  job.done = true;
  // One terminal bucket per non-ok code — this switch is the
  // reconciliation invariant's other half.
  std::atomic<std::uint64_t> OutcomeCounters::* bucket = nullptr;
  switch (status.code()) {
    case StatusCode::kRejected:
      bucket = &OutcomeCounters::rejected;
      break;
    case StatusCode::kShed:
      bucket = &OutcomeCounters::shed;
      break;
    case StatusCode::kDeadlineExceeded:
      bucket = &OutcomeCounters::timed_out;
      break;
    case StatusCode::kNotFound:
    case StatusCode::kInternal:
    case StatusCode::kOk:  // unreachable: Expected rejects ok statuses
      bucket = &OutcomeCounters::failed;
      break;
  }
  (totals_.*bucket).fetch_add(1, std::memory_order_relaxed);
  if (job.shard.counters != nullptr) {
    (job.shard.counters->outcomes.*bucket)
        .fetch_add(1, std::memory_order_relaxed);
  }
  job.promise.set_value(Expected<InferenceResult>(std::move(status)));
}

void VeritasService::count_submitted(const Job& job) {
  totals_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (job.shard.counters != nullptr) {
    job.shard.counters->outcomes.submitted.fetch_add(
        1, std::memory_order_relaxed);
  }
}

bool VeritasService::admit_or_resolve(Job& job) {
  const util::ScopedQueryId scoped_query(job.trace_id);
  VERITAS_TRACE_SPAN("service.admit", "service");
  if (job.shard.veritas == nullptr) {
    count_submitted(job);
    finish_with_status(job,
                       Status::not_found("unknown shard: " + job.query.shard));
    return true;
  }
  const QueryOptions& qopts = job.query.options;
  if (qopts.deadline && Clock::now() >= *qopts.deadline) {
    count_submitted(job);
    finish_with_status(
        job, Status::deadline_exceeded("deadline expired before admission"));
    return true;
  }
  if (serve_from_cache(job, job.shard.epoch, /*stale=*/false)) {
    count_submitted(job);
    return true;
  }
  if (overloaded()) {
    const OverloadPolicy& policy = options_.overload;
    // Degradation ladder, cheapest first: a stale hit costs nothing, a
    // shed refusal costs the caller a retry, degraded compute still
    // burns a lane (but a shorter one).
    if (policy.serve_stale_hits && qopts.allow_degraded &&
        job.shard.has_prev_epoch &&
        serve_from_cache(job, job.shard.prev_epoch, /*stale=*/true)) {
      count_submitted(job);
      return true;
    }
    if (policy.shed_lowest_priority &&
        qopts.priority == Priority::kBackground) {
      count_submitted(job);
      finish_with_status(
          job, Status::shed("overloaded: background query shed at admission"));
      return true;
    }
    if (policy.degraded_num_samples > 0 && qopts.allow_degraded &&
        job.query.kind == QueryKind::kAbduction) {
      job.degrade_samples = true;
    }
  }
  if (VERITAS_FAILPOINT("service.queue.push")) {
    count_submitted(job);
    finish_with_status(job, Status::rejected("failpoint: service.queue.push"));
    return true;
  }
  return false;
}

std::future<Expected<InferenceResult>> VeritasService::submit(Query query) {
  Job job = make_job(std::move(query));
  std::future<Expected<InferenceResult>> future = job.promise.get_future();
  if (admit_or_resolve(job)) return future;

  // From here the future is handed out no matter what the queue says —
  // a failed push resolves it with a status instead of throwing.
  count_submitted(job);
  if (job.trace_id != 0) job.enqueue_time = Clock::now();
  const std::shared_ptr<ShardCounters> counters = job.shard.counters;
  const std::size_t prio =
      static_cast<std::size_t>(job.query.options.priority);
  const std::optional<Clock::time_point> deadline = job.query.options.deadline;

  // The admission wait is bounded by the query's own deadline and the
  // service-wide cap, whichever bites first; with neither set it blocks
  // indefinitely (the legacy backpressure contract).
  Clock::time_point bound = Clock::time_point::max();
  if (deadline) bound = *deadline;
  if (options_.admission_timeout.count() > 0) {
    bound = std::min(bound, Clock::now() + options_.admission_timeout);
  }

  util::PushOutcome outcome;
  if (job.query.options.priority == Priority::kInteractive) {
    // Urgent work is admitted in O(1): displace queued lower-priority
    // work rather than waiting behind it.
    std::optional<Job> displaced;
    outcome = queue_.push_displacing(std::move(job), prio, displaced);
    if (displaced) {
      finish_with_status(*displaced,
                         Status::shed("displaced by an interactive arrival"));
    }
    if (outcome == util::PushOutcome::kFull) {
      // Full of same-priority work: nothing to displace, wait like
      // everyone else (job was left untouched by the failed push).
      outcome = queue_.push_until(std::move(job), prio, bound);
    }
  } else {
    outcome = queue_.push_until(std::move(job), prio, bound);
  }

  switch (outcome) {
    case util::PushOutcome::kAccepted:
      if (options_.cache_capacity > 0) {
        totals_.cache_misses.fetch_add(1, std::memory_order_relaxed);
        counters->outcomes.cache_misses.fetch_add(1,
                                                  std::memory_order_relaxed);
      }
      break;
    case util::PushOutcome::kTimedOut:
      // Which bound bit? The query's own deadline reads as a missed
      // deadline; the service cap as an admission rejection.
      if (deadline && bound == *deadline) {
        finish_with_status(job, Status::deadline_exceeded(
                                    "deadline expired waiting for admission"));
      } else {
        finish_with_status(
            job, Status::rejected("queue full past the admission timeout"));
      }
      break;
    case util::PushOutcome::kClosed:
      finish_with_status(job,
                         Status::rejected("VeritasService is shutting down"));
      break;
    case util::PushOutcome::kFull:
      // push_until never returns kFull; kept for switch exhaustiveness.
      finish_with_status(job, Status::rejected("queue full"));
      break;
  }
  return future;
}

std::optional<std::future<Expected<InferenceResult>>> VeritasService::try_submit(
    Query query) {
  Job job = make_job(std::move(query));
  std::future<Expected<InferenceResult>> future = job.promise.get_future();
  if (admit_or_resolve(job)) return future;
  const std::shared_ptr<ShardCounters> counters = job.shard.counters;
  const std::size_t prio =
      static_cast<std::size_t>(job.query.options.priority);
  if (job.trace_id != 0) job.enqueue_time = Clock::now();
  if (queue_.try_push(std::move(job), prio) != util::PushOutcome::kAccepted) {
    // Full or closing: nothing was counted — a rejected probe leaves no
    // trace, and the caller still owns retry policy.
    return std::nullopt;
  }
  totals_.submitted.fetch_add(1, std::memory_order_relaxed);
  counters->outcomes.submitted.fetch_add(1, std::memory_order_relaxed);
  if (options_.cache_capacity > 0) {
    totals_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    counters->outcomes.cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return future;
}

std::vector<std::future<Expected<InferenceResult>>>
VeritasService::submit_batch(std::span<const sim::SessionLog> logs,
                             const std::string& shard, QueryKind kind,
                             QueryOptions options) {
  std::vector<std::future<Expected<InferenceResult>>> futures;
  futures.reserve(logs.size());
  for (const sim::SessionLog& log : logs) {
    Query query;
    query.log = log;
    query.shard = shard;
    query.kind = kind;
    query.options = options;
    futures.push_back(submit(std::move(query)));
  }
  return futures;
}

bool VeritasService::overloaded() const {
  const OverloadPolicy& policy = options_.overload;
  // Depth trigger: watermark is a fraction of capacity, clamped so a
  // completely full queue always qualifies.
  const double watermark = std::clamp(policy.queue_high_watermark, 0.0, 1.0);
  const std::size_t threshold = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(watermark * static_cast<double>(queue_.capacity()))));
  if (queue_.size() >= threshold) return true;
  // Latency trigger: compute p99 over budget, once the histogram has
  // seen enough samples to mean anything.
  if (policy.p99_budget_us > 0.0) {
    const util::LatencyHistogram::Snapshot snap = latency_.snapshot();
    if (snap.total >= policy.p99_min_samples &&
        snap.percentile_us(0.99) > policy.p99_budget_us) {
      return true;
    }
  }
  return false;
}

std::vector<ShardStats> VeritasService::shard_stats() const {
  std::vector<ShardStats> out;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    out.reserve(shards_.size());
    for (const auto& [name, shard] : shards_) {
      const OutcomeCounters& c = shard.counters->outcomes;
      ShardStats s;
      s.name = name;
      s.epoch = shard.epoch;
      s.submitted = c.submitted.load(std::memory_order_relaxed);
      s.computed = c.computed.load(std::memory_order_relaxed);
      s.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
      s.cache_misses = c.cache_misses.load(std::memory_order_relaxed);
      s.rejected = c.rejected.load(std::memory_order_relaxed);
      s.timed_out = c.timed_out.load(std::memory_order_relaxed);
      s.shed = c.shed.load(std::memory_order_relaxed);
      s.failed = c.failed.load(std::memory_order_relaxed);
      s.degraded = c.degraded.load(std::memory_order_relaxed);
      s.stale_hits = c.stale_hits.load(std::memory_order_relaxed);
      s.in_flight =
          shard.counters->in_flight.load(std::memory_order_relaxed);
      const util::LatencyHistogram::Snapshot latency =
          shard.counters->latency.snapshot();
      s.latency_count = latency.total;
      s.latency_p50_us = latency.percentile_us(0.50);
      s.latency_p95_us = latency.percentile_us(0.95);
      s.latency_p99_us = latency.percentile_us(0.99);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ShardStats& a, const ShardStats& b) {
              return a.name < b.name;
            });
  return out;
}

ServiceStats VeritasService::stats() const {
  const auto cache = cache_.stats();
  ServiceStats s;
  s.submitted = totals_.submitted.load(std::memory_order_relaxed);
  s.computed = totals_.computed.load(std::memory_order_relaxed);
  s.cache_hits = totals_.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = totals_.cache_misses.load(std::memory_order_relaxed);
  s.rejected = totals_.rejected.load(std::memory_order_relaxed);
  s.timed_out = totals_.timed_out.load(std::memory_order_relaxed);
  s.shed = totals_.shed.load(std::memory_order_relaxed);
  s.failed = totals_.failed.load(std::memory_order_relaxed);
  s.degraded = totals_.degraded.load(std::memory_order_relaxed);
  s.stale_hits = totals_.stale_hits.load(std::memory_order_relaxed);
  s.cache_evictions = cache.evictions;
  s.cache_entries = cache.entries;
  s.queue_depth_by_priority = queue_.depths();
  s.queue_depth = 0;
  for (const std::size_t depth : s.queue_depth_by_priority) {
    s.queue_depth += depth;
  }
  s.overloaded = overloaded();
  return s;
}

// ---------------------------------------------------------------- metrics

void VeritasService::register_metrics(util::MetricsRegistry& registry) const {
  using Registry = util::MetricsRegistry;
  using Sample = Registry::Sample;
  const auto count = [](std::uint64_t v) { return static_cast<double>(v); };

  registry.add_counter(
      "veritas_queries_submitted_total", "Futures handed out, all outcomes.",
      {}, [this, count] {
        return count(totals_.submitted.load(std::memory_order_relaxed));
      });
  registry.add_counter(
      "veritas_queries_total",
      "Terminal query outcomes; at quiescence the sum equals "
      "veritas_queries_submitted_total.",
      [this, count] {
        const ServiceStats s = stats();
        return std::vector<Sample>{
            {{{"outcome", "computed"}}, count(s.computed)},
            {{{"outcome", "cache_hit"}}, count(s.cache_hits)},
            {{{"outcome", "rejected"}}, count(s.rejected)},
            {{{"outcome", "timed_out"}}, count(s.timed_out)},
            {{{"outcome", "shed"}}, count(s.shed)},
            {{{"outcome", "failed"}}, count(s.failed)},
        };
      });
  registry.add_counter(
      "veritas_queries_degraded_total",
      "Queries computed with a reduced posterior sample count.", {},
      [this, count] {
        return count(totals_.degraded.load(std::memory_order_relaxed));
      });
  registry.add_counter(
      "veritas_stale_hits_total",
      "Cache hits served from a shard's previous epoch under overload.", {},
      [this, count] {
        return count(totals_.stale_hits.load(std::memory_order_relaxed));
      });
  registry.add_counter(
      "veritas_result_cache_misses_total",
      "Queries accepted into the queue after missing the result cache.", {},
      [this, count] {
        return count(totals_.cache_misses.load(std::memory_order_relaxed));
      });
  registry.add_counter("veritas_result_cache_evictions_total",
                       "Result-cache LRU evictions.", {}, [this, count] {
                         return count(cache_.stats().evictions);
                       });
  registry.add_gauge("veritas_result_cache_entries",
                     "Resident result-cache entries.", {}, [this, count] {
                       return count(cache_.stats().entries);
                     });
  registry.add_gauge(
      "veritas_queue_depth", "Pending jobs per priority class.", [this, count] {
        const std::array<std::size_t, kNumPriorities> depths =
            queue_.depths();
        return std::vector<Sample>{
            {{{"priority", "interactive"}}, count(depths[0])},
            {{{"priority", "batch"}}, count(depths[1])},
            {{{"priority", "background"}}, count(depths[2])},
        };
      });
  registry.add_gauge("veritas_overloaded",
                     "1 while the overload detector is armed.", {},
                     [this] { return overloaded() ? 1.0 : 0.0; });
  // The PR 6 reconciliation invariant as a scrapeable self-check:
  // submitted minus the six terminal buckets. In-flight and queued work
  // makes it transiently positive; a nonzero value at quiescence means
  // a query was double-counted or lost (the chaos suite's book-keeping
  // bug, now visible on a dashboard).
  registry.add_gauge(
      "veritas_unreconciled_queries",
      "submitted - (computed + cache_hits + rejected + timed_out + shed + "
      "failed); transient in-flight work only, 0 at quiescence.",
      {}, [this] {
        const ServiceStats s = stats();
        return static_cast<double>(s.submitted) -
               static_cast<double>(s.computed + s.cache_hits + s.rejected +
                                   s.timed_out + s.shed + s.failed);
      });
  registry.add_histogram(
      "veritas_compute_latency_us",
      "Service-wide compute wall time per computed query, power-of-two "
      "microsecond buckets.",
      [this] {
        return std::vector<Registry::HistogramSample>{
            Registry::from_latency_snapshot(latency_.snapshot(), {})};
      });

  registry.add_counter(
      "veritas_shard_submitted_total", "Futures handed out, by shard.",
      [this, count] {
        std::vector<Sample> out;
        for (const ShardStats& s : shard_stats()) {
          out.push_back({{{"shard", s.name}}, count(s.submitted)});
        }
        return out;
      });
  registry.add_counter(
      "veritas_shard_queries_total", "Terminal query outcomes, by shard.",
      [this, count] {
        std::vector<Sample> out;
        for (const ShardStats& s : shard_stats()) {
          const Registry::Labels base{{"shard", s.name}};
          const std::pair<const char*, std::uint64_t> outcomes[] = {
              {"computed", s.computed},   {"cache_hit", s.cache_hits},
              {"rejected", s.rejected},   {"timed_out", s.timed_out},
              {"shed", s.shed},           {"failed", s.failed},
          };
          for (const auto& [name, value] : outcomes) {
            Registry::Labels labels = base;
            labels.emplace_back("outcome", name);
            out.push_back({std::move(labels), count(value)});
          }
        }
        return out;
      });
  registry.add_gauge("veritas_shard_in_flight",
                     "Lanes currently executing each shard's queries.",
                     [this, count] {
                       std::vector<Sample> out;
                       for (const ShardStats& s : shard_stats()) {
                         out.push_back({{{"shard", s.name}},
                                        count(s.in_flight)});
                       }
                       return out;
                     });
  registry.add_gauge("veritas_shard_epoch",
                     "Epoch of each shard's current engine.", [this, count] {
                       std::vector<Sample> out;
                       for (const ShardStats& s : shard_stats()) {
                         out.push_back({{{"shard", s.name}}, count(s.epoch)});
                       }
                       return out;
                     });
  registry.add_histogram(
      "veritas_shard_compute_latency_us",
      "Per-shard compute wall time per computed query, power-of-two "
      "microsecond buckets.",
      [this] {
        std::vector<Registry::HistogramSample> out;
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        for (const auto& [name, shard] : shards_) {
          out.push_back(Registry::from_latency_snapshot(
              shard.counters->latency.snapshot(), {{"shard", name}}));
        }
        std::sort(out.begin(), out.end(),
                  [](const Registry::HistogramSample& a,
                     const Registry::HistogramSample& b) {
                    return a.labels < b.labels;
                  });
        return out;
      });
  // Shared estimator-cache counters, per shard. The per-lane L1 front
  // caches live inside each lane's scratch and are deliberately not
  // aggregated here (no shared counters by design — see
  // core/estimator_cache.hpp).
  registry.add_counter(
      "veritas_estimator_cache_events_total",
      "Shared estimator-cache events (hit/miss/insert/flush), by shard.",
      [this, count] {
        std::vector<Sample> out;
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        for (const auto& [name, shard] : shards_) {
          const auto& cache = shard.veritas->engine_ptr()->estimator_cache();
          if (cache == nullptr) continue;
          const core::EstimatorCache::Stats stats = cache->stats();
          const std::pair<const char*, std::uint64_t> events[] = {
              {"hit", stats.hits},
              {"miss", stats.misses},
              {"insert", stats.insertions},
              {"flush", stats.flushes},
          };
          for (const auto& [event, value] : events) {
            out.push_back(
                {{{"shard", name}, {"event", event}}, count(value)});
          }
        }
        std::sort(out.begin(), out.end(),
                  [](const Sample& a, const Sample& b) {
                    return a.labels < b.labels;
                  });
        return out;
      });
  registry.add_gauge(
      "veritas_estimator_cache_entries",
      "Resident shared estimator-cache entries, by shard.", [this, count] {
        std::vector<Sample> out;
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        for (const auto& [name, shard] : shards_) {
          const auto& cache = shard.veritas->engine_ptr()->estimator_cache();
          if (cache == nullptr) continue;
          out.push_back({{{"shard", name}}, count(cache->stats().entries)});
        }
        std::sort(out.begin(), out.end(),
                  [](const Sample& a, const Sample& b) {
                    return a.labels < b.labels;
                  });
        return out;
      });
  registry.add_gauge(
      "veritas_build_info",
      "Constant 1; the labels carry the resolved kernel tier and which "
      "optional subsystems this binary compiled in.",
      [] {
#if defined(VERITAS_FAILPOINTS_DISABLED)
        const char* failpoints = "off";
#else
        const char* failpoints = "on";
#endif
        return std::vector<Sample>{
            {{{"kernels", math::simd_kernels::backend_name()},
              {"tracing", util::Tracer::kCompiledIn ? "on" : "off"},
              {"failpoints", failpoints}},
             1.0}};
      });
}

// ---------------------------------------------------------------- workers

void VeritasService::drain_lane() {
  core::Ehmm::Scratch scratch;
  const std::size_t quota = options_.max_lanes_per_shard;
  for (;;) {
    std::optional<Job> job =
        quota == 0
            ? queue_.pop()
            : queue_.pop_if([quota](const Job& j) {
                // Skip (don't reorder, don't drop) jobs whose shard
                // already occupies its lane quota.
                return j.shard.counters == nullptr ||
                       j.shard.counters->in_flight.load(
                           std::memory_order_relaxed) < quota;
              });
    if (!job) return;  // closed and drained
    // Injected dequeue faults (slow consumer, a thrown probe) must
    // neither kill the lane nor leak the job just popped.
    try {
      VERITAS_FAILPOINT("service.queue.pop");
    } catch (const std::exception&) {
    }
    // The queue-wait span is recorded from the submit-side timestamp —
    // the one span that crosses threads, so it cannot be a scoped site.
    if (job->trace_id != 0 && util::Tracer::enabled()) {
      util::Tracer::record_span("service.queue_wait", "service",
                                job->enqueue_time, Clock::now(),
                                job->trace_id);
    }
    // Expire already-dead deadlines before burning a lane on them.
    if (job->query.options.deadline &&
        Clock::now() >= *job->query.options.deadline) {
      finish_with_status(
          *job, Status::deadline_exceeded("deadline expired in the queue"));
      continue;
    }
    ShardCounters* counters = job->shard.counters.get();
    counters->in_flight.fetch_add(1, std::memory_order_relaxed);
    Expected<InferenceResult> outcome = [&] {
      const util::ScopedQueryId scoped_query(job->trace_id);
      // The root span: everything the lane does for this query,
      // including the result-cache fill inside execute().
      VERITAS_TRACE_QUERY_SPAN("service.execute", "service");
      return execute(*job, scratch);
    }();
    counters->in_flight.fetch_sub(1, std::memory_order_relaxed);
    // Resolve only after the gauge dropped: "my future is ready" must
    // imply this job is no longer counted as in flight.
    if (outcome.ok()) {
      job->done = true;
      job->promise.set_value(std::move(outcome));
    } else {
      finish_with_status(*job, outcome.status());
    }
    // A finished job may have freed a quota slot some blocked pop_if is
    // waiting on.
    if (quota != 0) queue_.notify_waiters();
  }
}

Expected<InferenceResult> VeritasService::execute(
    Job& job, core::Ehmm::Scratch& scratch) noexcept {
  try {
    if (VERITAS_FAILPOINT("service.lane.execute")) {
      throw util::FailpointTriggered("service.lane.execute");
    }
    const auto start = Clock::now();
    InferenceResult result;
    result.shard_epoch = job.shard.epoch;
    result.degraded = job.degrade_samples;
    const core::Veritas& veritas = *job.shard.veritas;
    switch (job.query.kind) {
      case QueryKind::kAbduction: {
        // Degraded mode truncates the posterior sample set; per-index
        // forked RNG streams make the result an exact prefix of the
        // full answer.
        const std::size_t num_samples =
            job.degrade_samples ? options_.overload.degraded_num_samples
                                : core::InferenceEngine::kConfigNumSamples;
        result.abduction = std::make_shared<const core::VeritasResult>(
            veritas.engine().infer_with_seed(job.query.log, scratch,
                                             job.key.seed, num_samples));
        break;
      }
      case QueryKind::kPredictSequence:
        result.predictions =
            std::make_shared<const std::vector<core::NextChunkPrediction>>(
                veritas.predict_sequence(job.query.log, scratch));
        break;
    }
    const auto elapsed = Clock::now() - start;
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
    latency_.record_us(us);
    job.shard.counters->latency.record_us(us);
    totals_.computed.fetch_add(1, std::memory_order_relaxed);
    job.shard.counters->outcomes.computed.fetch_add(1,
                                                    std::memory_order_relaxed);
    if (job.degrade_samples) {
      totals_.degraded.fetch_add(1, std::memory_order_relaxed);
      job.shard.counters->outcomes.degraded.fetch_add(
          1, std::memory_order_relaxed);
    }
    // Degraded results are partial answers — caching one would serve a
    // truncated posterior to a later full-fidelity query.
    if (options_.cache_capacity > 0 && !job.degrade_samples) {
      try {
        if (!VERITAS_FAILPOINT("service.cache.fill")) {
          cache_.put(job.key,
                     CachedPayload{result.abduction, result.predictions});
        }
      } catch (...) {
        // A cache failure loses reuse, never the answer.
      }
    }
    return Expected<InferenceResult>(std::move(result));
  } catch (const std::exception& e) {
    // The lane boundary: ANY exception inside a job — inference, a
    // failpoint, an allocation — becomes a Status on this job's future.
    // The lane itself survives to serve the next query.
    return Expected<InferenceResult>(
        Status::internal(std::string("inference failed: ") + e.what()));
  } catch (...) {
    return Expected<InferenceResult>(
        Status::internal("inference failed: unknown exception"));
  }
}

}  // namespace veritas::service
