#include "service/veritas_service.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "util/expects.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"

namespace veritas::service {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

std::size_t VeritasService::CacheKeyHash::operator()(
    const CacheKey& key) const noexcept {
  return static_cast<std::size_t>(util::Fnv1aHasher{}
                                      .u64(key.log_hash)
                                      .u64(key.epoch)
                                      .u64(static_cast<std::uint64_t>(key.kind))
                                      .u64(key.seed)
                                      .digest());
}

VeritasService::VeritasService(ServiceOptions options)
    : options_(options),
      lanes_(options.num_threads == 0 ? util::ThreadPool::hardware_threads()
                                      : options.num_threads),
      cache_(std::max<std::size_t>(1, options.cache_capacity),
             std::max<std::size_t>(1, options.cache_shards)),
      queue_(std::max<std::size_t>(1, options.queue_capacity)),
      pool_(lanes_) {
  // Long-running drain jobs, one per lane; each owns a scratch arena
  // reused across every job it executes.
  for (std::size_t i = 0; i < lanes_; ++i) {
    pool_.submit([this] { drain_lane(); });
  }
}

VeritasService::~VeritasService() {
  // Closing the queue stops new submissions and wakes blocked lanes;
  // they drain the remaining accepted jobs — expired deadlines resolve
  // as kDeadlineExceeded, everything else computes — so every future
  // ever handed out resolves before the pool joins. drain_lane never
  // lets an exception reach the pool, so wait_idle() cannot rethrow
  // from the destructor.
  queue_.close();
  pool_.wait_idle();
}

// --------------------------------------------------------------- registry

std::uint64_t VeritasService::add_shard(const std::string& name,
                                        const core::VeritasConfig& config,
                                        core::EngineOptions engine_options) {
  // Build outside the lock: engine construction precomputes the A^Δ and
  // span tables and can take milliseconds.
  return add_shard(name, std::make_shared<const core::InferenceEngine>(
                             config, engine_options));
}

std::uint64_t VeritasService::add_shard(
    const std::string& name,
    std::shared_ptr<const core::InferenceEngine> engine) {
  VERITAS_EXPECTS(engine != nullptr);
  auto veritas = std::make_shared<const core::Veritas>(std::move(engine));
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  Shard& shard = shards_[name];
  // Replacing an existing shard is a swap: remember the outgoing epoch
  // so its cache entries stay reachable as stale hits under overload.
  if (shard.veritas != nullptr) {
    shard.prev_epoch = shard.epoch;
    shard.has_prev_epoch = true;
  }
  shard.veritas = std::move(veritas);
  // Counters follow the name: a replaced shard keeps its history, a
  // fresh name starts at zero.
  if (shard.counters == nullptr) {
    shard.counters = std::make_shared<ShardCounters>();
  }
  // Epochs are unique across every add/swap on this service, so a
  // removed-and-re-added shard can never resurrect stale cache entries.
  shard.epoch = next_epoch_++;
  return shard.epoch;
}

std::uint64_t VeritasService::swap_shard(const std::string& name,
                                         const core::VeritasConfig& config,
                                         core::EngineOptions engine_options) {
  // Build first (slow), then replace under one lock hold: a concurrent
  // remove_shard can never interleave and be silently undone.
  auto veritas = std::make_shared<const core::Veritas>(
      std::make_shared<const core::InferenceEngine>(config, engine_options));
  // Injected between build and publish: a failed swap must leave the
  // shard serving the old engine at the old epoch.
  if (VERITAS_FAILPOINT("service.shard.swap")) {
    throw util::FailpointTriggered("service.shard.swap");
  }
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = shards_.find(name);
  VERITAS_EXPECTS(it != shards_.end());
  it->second.prev_epoch = it->second.epoch;
  it->second.has_prev_epoch = true;
  it->second.veritas = std::move(veritas);
  it->second.epoch = next_epoch_++;
  return it->second.epoch;
}

bool VeritasService::remove_shard(const std::string& name) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return shards_.erase(name) > 0;
}

bool VeritasService::has_shard(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return shards_.find(name) != shards_.end();
}

std::vector<std::string> VeritasService::shard_names() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::string> names;
  names.reserve(shards_.size());
  for (const auto& [name, shard] : shards_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::uint64_t VeritasService::shard_epoch(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = shards_.find(name);
  VERITAS_EXPECTS(it != shards_.end());
  return it->second.epoch;
}

std::shared_ptr<const core::InferenceEngine> VeritasService::shard_engine(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = shards_.find(name);
  VERITAS_EXPECTS(it != shards_.end());
  return it->second.veritas->engine_ptr();
}

// ------------------------------------------------------------- submission

VeritasService::Job VeritasService::make_job(Query query) const {
  Job job;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = shards_.find(query.shard);
    if (it != shards_.end()) {
      job.shard = it->second;  // pin engine + epoch for this query
    }
    // Unknown shard: job.shard.veritas stays null; the caller resolves
    // the future with kNotFound instead of throwing — an operator typo
    // in one query must not unwind a batch submitter.
  }
  if (job.shard.veritas != nullptr) {
    job.key.log_hash = util::hash_session_log(query.log);
    job.key.epoch = job.shard.epoch;
    job.key.kind = query.kind;
    // Seed resolution against the *pinned* shard, so a concurrent swap
    // cannot pair one shard's seed with another's engine. Prediction
    // queries are seed-independent: normalize so seed-bearing duplicates
    // share one cache entry.
    if (query.kind == QueryKind::kAbduction) {
      const std::uint64_t base = job.shard.veritas->config().seed;
      job.key.seed = query.seed.value_or(base) ^ query.seed_xor.value_or(0);
    } else {
      job.key.seed = 0;
    }
  }
  job.query = std::move(query);
  return job;
}

bool VeritasService::serve_from_cache(Job& job, std::uint64_t epoch,
                                      bool stale) {
  if (options_.cache_capacity == 0) return false;
  CacheKey key = job.key;
  key.epoch = epoch;
  // peek: the miss is counted only once the query is really accepted.
  std::optional<CachedPayload> payload = cache_.peek(key);
  if (!payload) return false;
  totals_.cache_hits.fetch_add(1, std::memory_order_relaxed);
  job.shard.counters->outcomes.cache_hits.fetch_add(1,
                                                    std::memory_order_relaxed);
  if (stale) {
    totals_.stale_hits.fetch_add(1, std::memory_order_relaxed);
    job.shard.counters->outcomes.stale_hits.fetch_add(
        1, std::memory_order_relaxed);
  }
  InferenceResult result;
  result.abduction = std::move(payload->abduction);
  result.predictions = std::move(payload->predictions);
  result.cache_hit = true;
  result.stale = stale;
  result.shard_epoch = epoch;
  job.done = true;
  job.promise.set_value(Expected<InferenceResult>(std::move(result)));
  return true;
}

void VeritasService::finish_with_status(Job& job, Status status) {
  if (job.done) return;
  job.done = true;
  // One terminal bucket per non-ok code — this switch is the
  // reconciliation invariant's other half.
  std::atomic<std::uint64_t> OutcomeCounters::* bucket = nullptr;
  switch (status.code()) {
    case StatusCode::kRejected:
      bucket = &OutcomeCounters::rejected;
      break;
    case StatusCode::kShed:
      bucket = &OutcomeCounters::shed;
      break;
    case StatusCode::kDeadlineExceeded:
      bucket = &OutcomeCounters::timed_out;
      break;
    case StatusCode::kNotFound:
    case StatusCode::kInternal:
    case StatusCode::kOk:  // unreachable: Expected rejects ok statuses
      bucket = &OutcomeCounters::failed;
      break;
  }
  (totals_.*bucket).fetch_add(1, std::memory_order_relaxed);
  if (job.shard.counters != nullptr) {
    (job.shard.counters->outcomes.*bucket)
        .fetch_add(1, std::memory_order_relaxed);
  }
  job.promise.set_value(Expected<InferenceResult>(std::move(status)));
}

void VeritasService::count_submitted(const Job& job) {
  totals_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (job.shard.counters != nullptr) {
    job.shard.counters->outcomes.submitted.fetch_add(
        1, std::memory_order_relaxed);
  }
}

bool VeritasService::admit_or_resolve(Job& job) {
  if (job.shard.veritas == nullptr) {
    count_submitted(job);
    finish_with_status(job,
                       Status::not_found("unknown shard: " + job.query.shard));
    return true;
  }
  const QueryOptions& qopts = job.query.options;
  if (qopts.deadline && Clock::now() >= *qopts.deadline) {
    count_submitted(job);
    finish_with_status(
        job, Status::deadline_exceeded("deadline expired before admission"));
    return true;
  }
  if (serve_from_cache(job, job.shard.epoch, /*stale=*/false)) {
    count_submitted(job);
    return true;
  }
  if (overloaded()) {
    const OverloadPolicy& policy = options_.overload;
    // Degradation ladder, cheapest first: a stale hit costs nothing, a
    // shed refusal costs the caller a retry, degraded compute still
    // burns a lane (but a shorter one).
    if (policy.serve_stale_hits && qopts.allow_degraded &&
        job.shard.has_prev_epoch &&
        serve_from_cache(job, job.shard.prev_epoch, /*stale=*/true)) {
      count_submitted(job);
      return true;
    }
    if (policy.shed_lowest_priority &&
        qopts.priority == Priority::kBackground) {
      count_submitted(job);
      finish_with_status(
          job, Status::shed("overloaded: background query shed at admission"));
      return true;
    }
    if (policy.degraded_num_samples > 0 && qopts.allow_degraded &&
        job.query.kind == QueryKind::kAbduction) {
      job.degrade_samples = true;
    }
  }
  if (VERITAS_FAILPOINT("service.queue.push")) {
    count_submitted(job);
    finish_with_status(job, Status::rejected("failpoint: service.queue.push"));
    return true;
  }
  return false;
}

std::future<Expected<InferenceResult>> VeritasService::submit(Query query) {
  Job job = make_job(std::move(query));
  std::future<Expected<InferenceResult>> future = job.promise.get_future();
  if (admit_or_resolve(job)) return future;

  // From here the future is handed out no matter what the queue says —
  // a failed push resolves it with a status instead of throwing.
  count_submitted(job);
  const std::shared_ptr<ShardCounters> counters = job.shard.counters;
  const std::size_t prio =
      static_cast<std::size_t>(job.query.options.priority);
  const std::optional<Clock::time_point> deadline = job.query.options.deadline;

  // The admission wait is bounded by the query's own deadline and the
  // service-wide cap, whichever bites first; with neither set it blocks
  // indefinitely (the legacy backpressure contract).
  Clock::time_point bound = Clock::time_point::max();
  if (deadline) bound = *deadline;
  if (options_.admission_timeout.count() > 0) {
    bound = std::min(bound, Clock::now() + options_.admission_timeout);
  }

  util::PushOutcome outcome;
  if (job.query.options.priority == Priority::kInteractive) {
    // Urgent work is admitted in O(1): displace queued lower-priority
    // work rather than waiting behind it.
    std::optional<Job> displaced;
    outcome = queue_.push_displacing(std::move(job), prio, displaced);
    if (displaced) {
      finish_with_status(*displaced,
                         Status::shed("displaced by an interactive arrival"));
    }
    if (outcome == util::PushOutcome::kFull) {
      // Full of same-priority work: nothing to displace, wait like
      // everyone else (job was left untouched by the failed push).
      outcome = queue_.push_until(std::move(job), prio, bound);
    }
  } else {
    outcome = queue_.push_until(std::move(job), prio, bound);
  }

  switch (outcome) {
    case util::PushOutcome::kAccepted:
      if (options_.cache_capacity > 0) {
        totals_.cache_misses.fetch_add(1, std::memory_order_relaxed);
        counters->outcomes.cache_misses.fetch_add(1,
                                                  std::memory_order_relaxed);
      }
      break;
    case util::PushOutcome::kTimedOut:
      // Which bound bit? The query's own deadline reads as a missed
      // deadline; the service cap as an admission rejection.
      if (deadline && bound == *deadline) {
        finish_with_status(job, Status::deadline_exceeded(
                                    "deadline expired waiting for admission"));
      } else {
        finish_with_status(
            job, Status::rejected("queue full past the admission timeout"));
      }
      break;
    case util::PushOutcome::kClosed:
      finish_with_status(job,
                         Status::rejected("VeritasService is shutting down"));
      break;
    case util::PushOutcome::kFull:
      // push_until never returns kFull; kept for switch exhaustiveness.
      finish_with_status(job, Status::rejected("queue full"));
      break;
  }
  return future;
}

std::optional<std::future<Expected<InferenceResult>>> VeritasService::try_submit(
    Query query) {
  Job job = make_job(std::move(query));
  std::future<Expected<InferenceResult>> future = job.promise.get_future();
  if (admit_or_resolve(job)) return future;
  const std::shared_ptr<ShardCounters> counters = job.shard.counters;
  const std::size_t prio =
      static_cast<std::size_t>(job.query.options.priority);
  if (queue_.try_push(std::move(job), prio) != util::PushOutcome::kAccepted) {
    // Full or closing: nothing was counted — a rejected probe leaves no
    // trace, and the caller still owns retry policy.
    return std::nullopt;
  }
  totals_.submitted.fetch_add(1, std::memory_order_relaxed);
  counters->outcomes.submitted.fetch_add(1, std::memory_order_relaxed);
  if (options_.cache_capacity > 0) {
    totals_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    counters->outcomes.cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return future;
}

std::vector<std::future<Expected<InferenceResult>>>
VeritasService::submit_batch(std::span<const sim::SessionLog> logs,
                             const std::string& shard, QueryKind kind,
                             QueryOptions options) {
  std::vector<std::future<Expected<InferenceResult>>> futures;
  futures.reserve(logs.size());
  for (const sim::SessionLog& log : logs) {
    Query query;
    query.log = log;
    query.shard = shard;
    query.kind = kind;
    query.options = options;
    futures.push_back(submit(std::move(query)));
  }
  return futures;
}

bool VeritasService::overloaded() const {
  const OverloadPolicy& policy = options_.overload;
  // Depth trigger: watermark is a fraction of capacity, clamped so a
  // completely full queue always qualifies.
  const double watermark = std::clamp(policy.queue_high_watermark, 0.0, 1.0);
  const std::size_t threshold = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(watermark * static_cast<double>(queue_.capacity()))));
  if (queue_.size() >= threshold) return true;
  // Latency trigger: compute p99 over budget, once the histogram has
  // seen enough samples to mean anything.
  if (policy.p99_budget_us > 0.0) {
    const util::LatencyHistogram::Snapshot snap = latency_.snapshot();
    if (snap.total >= policy.p99_min_samples &&
        snap.percentile_us(0.99) > policy.p99_budget_us) {
      return true;
    }
  }
  return false;
}

std::vector<ShardStats> VeritasService::shard_stats() const {
  std::vector<ShardStats> out;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    out.reserve(shards_.size());
    for (const auto& [name, shard] : shards_) {
      const OutcomeCounters& c = shard.counters->outcomes;
      ShardStats s;
      s.name = name;
      s.epoch = shard.epoch;
      s.submitted = c.submitted.load(std::memory_order_relaxed);
      s.computed = c.computed.load(std::memory_order_relaxed);
      s.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
      s.cache_misses = c.cache_misses.load(std::memory_order_relaxed);
      s.rejected = c.rejected.load(std::memory_order_relaxed);
      s.timed_out = c.timed_out.load(std::memory_order_relaxed);
      s.shed = c.shed.load(std::memory_order_relaxed);
      s.failed = c.failed.load(std::memory_order_relaxed);
      s.degraded = c.degraded.load(std::memory_order_relaxed);
      s.stale_hits = c.stale_hits.load(std::memory_order_relaxed);
      s.in_flight =
          shard.counters->in_flight.load(std::memory_order_relaxed);
      const util::LatencyHistogram::Snapshot latency =
          shard.counters->latency.snapshot();
      s.latency_count = latency.total;
      s.latency_p50_us = latency.percentile_us(0.50);
      s.latency_p95_us = latency.percentile_us(0.95);
      s.latency_p99_us = latency.percentile_us(0.99);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ShardStats& a, const ShardStats& b) {
              return a.name < b.name;
            });
  return out;
}

ServiceStats VeritasService::stats() const {
  const auto cache = cache_.stats();
  ServiceStats s;
  s.submitted = totals_.submitted.load(std::memory_order_relaxed);
  s.computed = totals_.computed.load(std::memory_order_relaxed);
  s.cache_hits = totals_.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = totals_.cache_misses.load(std::memory_order_relaxed);
  s.rejected = totals_.rejected.load(std::memory_order_relaxed);
  s.timed_out = totals_.timed_out.load(std::memory_order_relaxed);
  s.shed = totals_.shed.load(std::memory_order_relaxed);
  s.failed = totals_.failed.load(std::memory_order_relaxed);
  s.degraded = totals_.degraded.load(std::memory_order_relaxed);
  s.stale_hits = totals_.stale_hits.load(std::memory_order_relaxed);
  s.cache_evictions = cache.evictions;
  s.cache_entries = cache.entries;
  s.queue_depth_by_priority = queue_.depths();
  s.queue_depth = 0;
  for (const std::size_t depth : s.queue_depth_by_priority) {
    s.queue_depth += depth;
  }
  s.overloaded = overloaded();
  return s;
}

// ---------------------------------------------------------------- workers

void VeritasService::drain_lane() {
  core::Ehmm::Scratch scratch;
  const std::size_t quota = options_.max_lanes_per_shard;
  for (;;) {
    std::optional<Job> job =
        quota == 0
            ? queue_.pop()
            : queue_.pop_if([quota](const Job& j) {
                // Skip (don't reorder, don't drop) jobs whose shard
                // already occupies its lane quota.
                return j.shard.counters == nullptr ||
                       j.shard.counters->in_flight.load(
                           std::memory_order_relaxed) < quota;
              });
    if (!job) return;  // closed and drained
    // Injected dequeue faults (slow consumer, a thrown probe) must
    // neither kill the lane nor leak the job just popped.
    try {
      VERITAS_FAILPOINT("service.queue.pop");
    } catch (const std::exception&) {
    }
    // Expire already-dead deadlines before burning a lane on them.
    if (job->query.options.deadline &&
        Clock::now() >= *job->query.options.deadline) {
      finish_with_status(
          *job, Status::deadline_exceeded("deadline expired in the queue"));
      continue;
    }
    ShardCounters* counters = job->shard.counters.get();
    counters->in_flight.fetch_add(1, std::memory_order_relaxed);
    Expected<InferenceResult> outcome = execute(*job, scratch);
    counters->in_flight.fetch_sub(1, std::memory_order_relaxed);
    // Resolve only after the gauge dropped: "my future is ready" must
    // imply this job is no longer counted as in flight.
    if (outcome.ok()) {
      job->done = true;
      job->promise.set_value(std::move(outcome));
    } else {
      finish_with_status(*job, outcome.status());
    }
    // A finished job may have freed a quota slot some blocked pop_if is
    // waiting on.
    if (quota != 0) queue_.notify_waiters();
  }
}

Expected<InferenceResult> VeritasService::execute(
    Job& job, core::Ehmm::Scratch& scratch) noexcept {
  try {
    if (VERITAS_FAILPOINT("service.lane.execute")) {
      throw util::FailpointTriggered("service.lane.execute");
    }
    const auto start = Clock::now();
    InferenceResult result;
    result.shard_epoch = job.shard.epoch;
    result.degraded = job.degrade_samples;
    const core::Veritas& veritas = *job.shard.veritas;
    switch (job.query.kind) {
      case QueryKind::kAbduction: {
        // Degraded mode truncates the posterior sample set; per-index
        // forked RNG streams make the result an exact prefix of the
        // full answer.
        const std::size_t num_samples =
            job.degrade_samples ? options_.overload.degraded_num_samples
                                : core::InferenceEngine::kConfigNumSamples;
        result.abduction = std::make_shared<const core::VeritasResult>(
            veritas.engine().infer_with_seed(job.query.log, scratch,
                                             job.key.seed, num_samples));
        break;
      }
      case QueryKind::kPredictSequence:
        result.predictions =
            std::make_shared<const std::vector<core::NextChunkPrediction>>(
                veritas.predict_sequence(job.query.log, scratch));
        break;
    }
    const auto elapsed = Clock::now() - start;
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
    latency_.record_us(us);
    job.shard.counters->latency.record_us(us);
    totals_.computed.fetch_add(1, std::memory_order_relaxed);
    job.shard.counters->outcomes.computed.fetch_add(1,
                                                    std::memory_order_relaxed);
    if (job.degrade_samples) {
      totals_.degraded.fetch_add(1, std::memory_order_relaxed);
      job.shard.counters->outcomes.degraded.fetch_add(
          1, std::memory_order_relaxed);
    }
    // Degraded results are partial answers — caching one would serve a
    // truncated posterior to a later full-fidelity query.
    if (options_.cache_capacity > 0 && !job.degrade_samples) {
      try {
        if (!VERITAS_FAILPOINT("service.cache.fill")) {
          cache_.put(job.key,
                     CachedPayload{result.abduction, result.predictions});
        }
      } catch (...) {
        // A cache failure loses reuse, never the answer.
      }
    }
    return Expected<InferenceResult>(std::move(result));
  } catch (const std::exception& e) {
    // The lane boundary: ANY exception inside a job — inference, a
    // failpoint, an allocation — becomes a Status on this job's future.
    // The lane itself survives to serve the next query.
    return Expected<InferenceResult>(
        Status::internal(std::string("inference failed: ") + e.what()));
  } catch (...) {
    return Expected<InferenceResult>(
        Status::internal("inference failed: unknown exception"));
  }
}

}  // namespace veritas::service
