// The Veritas query service: many models, many queries, one process.
//
// The inference engine answers one session against one configuration;
// an operator runs Veritas over a fleet, where sessions from different
// deployments (per-ABR, per-CDN, per-network-tier) need different model
// configurations and the same trace is queried repeatedly (a what-if
// sweep re-abducts the identical log for every candidate setting). The
// service adds the serving layer for that workload:
//
//  * a registry of named *shards* — each shard owns one immutable
//    InferenceEngine built from its own VeritasConfig. Shards can be
//    added, removed and hot-swapped (retrain/replace) while queries are
//    in flight: a submitted query pins the engine it resolved, so a
//    swap never perturbs running work.
//  * an async submission front-end: submit() returns a
//    std::future<InferenceResult> and enqueues the job on a *bounded*
//    MPMC queue — a full queue blocks submitters (backpressure) instead
//    of buffering without limit. Worker lanes drain the queue through
//    util::ThreadPool, each lane reusing one Ehmm::Scratch arena across
//    jobs, so steady-state serving allocates only results.
//  * a sharded LRU result cache keyed by (session-log content hash,
//    shard name, shard epoch, query kind, sampling seed). Every
//    add/swap assigns the shard a fresh epoch from a service-global
//    counter, so entries for a replaced model can never be served again
//    — cache coherence by construction. Hits complete the future
//    immediately without touching the queue.
//
// Determinism: a query's payload is bit-identical to calling the direct
// single-threaded path (InferenceEngine::infer / Veritas::
// predict_sequence) on an engine with the same configuration — for any
// lane count, queue capacity, submission order, and whether the answer
// came from the cache or a fresh computation.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/veritas.hpp"
#include "sim/session_log.hpp"
#include "util/bounded_queue.hpp"
#include "util/latency_histogram.hpp"
#include "util/lru_cache.hpp"
#include "util/thread_pool.hpp"

namespace veritas::service {

/// What the caller wants computed for a session.
enum class QueryKind {
  kAbduction,        ///< full posterior: MAP trace + K samples + marginals
  kPredictSequence,  ///< per-chunk interventional next-chunk predictions
};

/// One unit of work for the service.
struct Query {
  sim::SessionLog log;
  std::string shard;
  QueryKind kind = QueryKind::kAbduction;
  /// Overrides the shard config's posterior-sampling seed (kAbduction
  /// only; prediction queries are seed-independent and ignore it).
  /// Part of the cache key.
  std::optional<std::uint64_t> seed;
  /// XORed onto the resolved seed (kAbduction only) — the per-session
  /// perturbation pattern (`config seed ^ session seed`). Resolved
  /// against the shard pinned at submit time, so it composes correctly
  /// with concurrent shard swaps, unlike reading the config seed
  /// yourself before submitting.
  std::optional<std::uint64_t> seed_xor;
};

/// A completed query. Payloads are immutable and shared with the result
/// cache, so copying an InferenceResult is two refcount bumps.
struct InferenceResult {
  /// Set for QueryKind::kAbduction.
  std::shared_ptr<const core::VeritasResult> abduction;
  /// Set for QueryKind::kPredictSequence.
  std::shared_ptr<const std::vector<core::NextChunkPrediction>> predictions;
  bool cache_hit = false;
  std::uint64_t shard_epoch = 0;  ///< epoch of the engine that answered
};

struct ServiceOptions {
  /// Worker lanes draining the queue (0 = hardware thread count). Each
  /// lane owns one scratch arena reused across jobs.
  std::size_t num_threads = 0;
  /// Submission queue bound: submit() blocks once this many jobs are
  /// pending (cache hits bypass the queue).
  std::size_t queue_capacity = 256;
  /// Result-cache entries across all cache shards; 0 disables caching.
  std::size_t cache_capacity = 1024;
  /// Independently locked cache shards.
  std::size_t cache_shards = 8;
};

/// Point-in-time counters. queue_depth is an instantaneous gauge; the
/// rest are monotonic over the service's lifetime.
struct ServiceStats {
  std::uint64_t submitted = 0;      ///< queries accepted (hits included)
  std::uint64_t computed = 0;       ///< queries that ran inference
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;
  std::size_t queue_depth = 0;      ///< jobs pending in the bounded queue
};

/// Per-shard slice of the service counters. Counters follow the shard
/// *name*: they persist across swap_shard (a hot-swapped model keeps its
/// traffic history) and reset only when the shard is removed and
/// re-added. A query that was accepted but not yet executed has been
/// counted in submitted (and hits/misses) but not yet in computed.
struct ShardStats {
  std::string name;
  std::uint64_t epoch = 0;          ///< epoch of the current engine
  std::uint64_t submitted = 0;      ///< queries accepted for this shard
  std::uint64_t computed = 0;       ///< queries that ran inference
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Compute-latency percentiles over this shard's *computed* queries
  /// (cache hits complete in the submitter and are not timed), read from
  /// a lock-free power-of-two-bucket histogram — each value is the upper
  /// bound of its bucket (~2x resolution), 0 until the first computed
  /// query. Like the counters, they follow the shard name across hot
  /// swaps and reset on remove + re-add.
  std::uint64_t latency_count = 0;  ///< samples behind the percentiles
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
};

class VeritasService {
 public:
  explicit VeritasService(ServiceOptions options = {});

  /// Drains and completes every accepted query, then joins the lanes.
  ~VeritasService();

  VeritasService(const VeritasService&) = delete;
  VeritasService& operator=(const VeritasService&) = delete;

  // ------------------------------------------------------------ registry

  /// Registers a shard under `name`, building its engine from `config`.
  /// Replaces any existing shard of that name (same as swap_shard).
  /// Returns the shard's epoch — unique across all add/swap calls on
  /// this service. Engine construction happens outside the registry
  /// lock, so serving is not stalled by a build.
  std::uint64_t add_shard(const std::string& name,
                          const core::VeritasConfig& config,
                          core::EngineOptions engine_options = {});

  /// Registers a shard around an engine built elsewhere (non-null).
  std::uint64_t add_shard(const std::string& name,
                          std::shared_ptr<const core::InferenceEngine> engine);

  /// Atomically replaces `name`'s engine and bumps its epoch, so cached
  /// results for the old model can no longer be served. In-flight
  /// queries keep the engine they resolved at submit time. Requires the
  /// shard to exist.
  std::uint64_t swap_shard(const std::string& name,
                           const core::VeritasConfig& config,
                           core::EngineOptions engine_options = {});

  /// Unregisters `name`; in-flight queries finish on the old engine.
  /// Returns false when no such shard exists.
  bool remove_shard(const std::string& name);

  bool has_shard(const std::string& name) const;
  std::vector<std::string> shard_names() const;

  /// Current epoch of `name`; requires the shard to exist.
  std::uint64_t shard_epoch(const std::string& name) const;

  /// Borrow the shard's current engine (e.g. for its config); requires
  /// the shard to exist.
  std::shared_ptr<const core::InferenceEngine> shard_engine(
      const std::string& name) const;

  // ---------------------------------------------------------- submission

  /// Submits one query against a registered shard. Cache hits complete
  /// the returned future before submit() returns; misses enqueue,
  /// blocking while the queue is full (backpressure). Throws
  /// ContractViolation when the shard is unknown or the service is
  /// shutting down; a failure *inside* inference is delivered through
  /// the future.
  std::future<InferenceResult> submit(Query query);

  /// Non-blocking submit: nullopt when the queue is full (cache hits
  /// always succeed).
  std::optional<std::future<InferenceResult>> try_submit(Query query);

  /// Submits every log against `shard`; futures are positionally
  /// aligned with `logs`. Blocks as needed (backpressure), so the batch
  /// may be arbitrarily larger than the queue bound.
  std::vector<std::future<InferenceResult>> submit_batch(
      std::span<const sim::SessionLog> logs, const std::string& shard,
      QueryKind kind = QueryKind::kAbduction);

  ServiceStats stats() const;

  /// Per-shard counter snapshot, sorted by shard name.
  std::vector<ShardStats> shard_stats() const;

  std::size_t num_lanes() const noexcept { return lanes_; }

 private:
  /// Lock-free per-shard counters, shared between the registry entry and
  /// every in-flight job that resolved the shard (so a concurrent
  /// remove_shard can never invalidate a worker's counter).
  struct ShardCounters {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> computed{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    util::LatencyHistogram latency;  ///< computed-query wall time
  };

  struct Shard {
    std::shared_ptr<const core::Veritas> veritas;  ///< facade over engine
    std::uint64_t epoch = 0;
    std::shared_ptr<ShardCounters> counters;
  };

  /// Four integers: the epoch alone identifies the (shard, model) pair
  /// because every add/swap draws a service-unique epoch — no need to
  /// carry the shard name.
  struct CacheKey {
    std::uint64_t log_hash = 0;
    std::uint64_t epoch = 0;
    QueryKind kind = QueryKind::kAbduction;
    std::uint64_t seed = 0;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const noexcept;
  };

  /// What the cache stores: the immutable payload of one query.
  struct CachedPayload {
    std::shared_ptr<const core::VeritasResult> abduction;
    std::shared_ptr<const std::vector<core::NextChunkPrediction>> predictions;
  };

  struct Job {
    Shard shard;  ///< pinned at submit time
    Query query;
    CacheKey key;
    std::promise<InferenceResult> promise;
  };

  /// Resolves the query's shard (throws on unknown) and computes its
  /// cache key; the promise is default-constructed and unfulfilled.
  Job make_job(Query query) const;

  /// Probes the cache for the job's key; on a hit fulfills the promise
  /// and returns true.
  bool serve_from_cache(Job& job);

  void drain_lane();
  void execute(Job& job, core::Ehmm::Scratch& scratch);

  ServiceOptions options_;
  std::size_t lanes_ = 0;

  mutable std::mutex registry_mutex_;
  std::unordered_map<std::string, Shard> shards_;
  std::uint64_t next_epoch_ = 0;

  util::ShardedLruCache<CacheKey, CachedPayload, CacheKeyHash> cache_;
  util::BoundedQueue<Job> queue_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> computed_{0};
  // Hit/miss are counted here, not by the LRU, so a try_submit probe
  // whose enqueue is then rejected skews nothing.
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};

  util::ThreadPool pool_;  ///< last member: joins before the rest die
};

}  // namespace veritas::service
