// The Veritas query service: many models, many queries, one process.
//
// The inference engine answers one session against one configuration;
// an operator runs Veritas over a fleet, where sessions from different
// deployments (per-ABR, per-CDN, per-network-tier) need different model
// configurations and the same trace is queried repeatedly (a what-if
// sweep re-abducts the identical log for every candidate setting). The
// service adds the serving layer for that workload:
//
//  * a registry of named *shards* — each shard owns one immutable
//    InferenceEngine built from its own VeritasConfig. Shards can be
//    added, removed and hot-swapped (retrain/replace) while queries are
//    in flight: a submitted query pins the engine it resolved, so a
//    swap never perturbs running work.
//  * an async submission front-end: submit() returns a
//    std::future<Expected<InferenceResult>> and enqueues the job on a
//    *bounded* priority queue. Worker lanes drain the queue through
//    util::ThreadPool, each lane reusing one Ehmm::Scratch arena across
//    jobs, so steady-state serving allocates only results.
//  * a sharded LRU result cache keyed by (session-log content hash,
//    shard name, shard epoch, query kind, sampling seed). Every
//    add/swap assigns the shard a fresh epoch from a service-global
//    counter, so entries for a replaced model can never be served again
//    — cache coherence by construction. Hits complete the future
//    immediately without touching the queue.
//
// Failure semantics (see docs/ARCHITECTURE.md "Failure semantics &
// overload behavior"): every future the service hands out resolves with
// a definite Expected<InferenceResult> — a payload, or a Status naming
// the terminal outcome (rejected / shed / deadline_exceeded / not_found
// / internal). Overload is handled, not suffered: queries carry a
// priority and an optional absolute deadline; admission waits are
// bounded (timed push, and interactive arrivals displace queued
// background work instead of waiting); an overload detector
// (queue-depth watermark + compute-latency p99) drives a shed policy
// that drops the lowest priority first and can degrade service —
// slightly-stale cache entries and/or reduced posterior sample counts —
// before refusing work. Deadlines already missed are expired at
// dequeue, before they burn a lane. Exceptions inside a job are
// converted to Status at the lane boundary: a poisoned query can never
// take down or stall a lane. Deterministic failpoints
// (util/failpoint.hpp) are wired into the queue, the lanes, the cache
// fill and shard swap so all of this is testable on demand
// (tests/service/chaos_test.cpp).
//
// Determinism: a non-degraded query's payload is bit-identical to
// calling the direct single-threaded path (InferenceEngine::infer /
// Veritas::predict_sequence) on an engine with the same configuration —
// for any lane count, queue capacity, submission order, and whether the
// answer came from the cache or a fresh computation. A degraded
// kAbduction result is the exact prefix of the full one (same MAP trace
// and marginals, first m posterior samples).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/veritas.hpp"
#include "sim/session_log.hpp"
#include "util/latency_histogram.hpp"
#include "util/lru_cache.hpp"
#include "util/priority_queue.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace veritas::util {
class MetricsRegistry;
}  // namespace veritas::util

namespace veritas::service {

/// What the caller wants computed for a session.
enum class QueryKind {
  kAbduction,        ///< full posterior: MAP trace + K samples + marginals
  kPredictSequence,  ///< per-chunk interventional next-chunk predictions
};

/// Strict admission classes, most urgent first. The queue serves
/// kInteractive before kBatch before kBackground, the shed policy drops
/// in the opposite order, and an interactive arrival may displace
/// queued background work when the queue is full.
enum class Priority : std::uint8_t {
  kInteractive = 0,
  kBatch = 1,
  kBackground = 2,
};
inline constexpr std::size_t kNumPriorities = 3;

/// Per-query serving knobs (the Query's model-facing fields say *what*
/// to compute; these say *how urgently* and *how negotiably*).
struct QueryOptions {
  Priority priority = Priority::kBatch;
  /// Absolute deadline. Bounds the admission wait, expires the query at
  /// dequeue when already missed, and resolves the future with
  /// StatusCode::kDeadlineExceeded instead of computing late. nullopt =
  /// no deadline (legacy blocking behavior).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Whether the service may answer this query degraded under overload
  /// (stale cache entry, reduced sample count) instead of queueing it
  /// at full fidelity. Results record what happened.
  bool allow_degraded = true;
};

/// One unit of work for the service.
struct Query {
  sim::SessionLog log;
  std::string shard;
  QueryKind kind = QueryKind::kAbduction;
  /// Overrides the shard config's posterior-sampling seed (kAbduction
  /// only; prediction queries are seed-independent and ignore it).
  /// Part of the cache key.
  std::optional<std::uint64_t> seed;
  /// XORed onto the resolved seed (kAbduction only) — the per-session
  /// perturbation pattern (`config seed ^ session seed`). Resolved
  /// against the shard pinned at submit time, so it composes correctly
  /// with concurrent shard swaps, unlike reading the config seed
  /// yourself before submitting.
  std::optional<std::uint64_t> seed_xor;
  QueryOptions options;
};

/// A completed query. Payloads are immutable and shared with the result
/// cache, so copying an InferenceResult is two refcount bumps.
struct InferenceResult {
  /// Set for QueryKind::kAbduction.
  std::shared_ptr<const core::VeritasResult> abduction;
  /// Set for QueryKind::kPredictSequence.
  std::shared_ptr<const std::vector<core::NextChunkPrediction>> predictions;
  bool cache_hit = false;
  /// Computed under overload degradation: fewer posterior samples than
  /// the shard config asks for (an exact prefix of the full answer).
  bool degraded = false;
  /// Served from the shard's previous epoch's cache entry under
  /// overload (implies cache_hit; the payload is the old model's).
  bool stale = false;
  std::uint64_t shard_epoch = 0;  ///< epoch of the engine that answered
};

/// When and how the service trades fidelity for liveness. The detector
/// arms when the queue is deep (depth >= watermark * capacity) or when
/// the compute-latency p99 blows its budget; the policy fields say what
/// an armed detector may do. Defaults keep the happy path byte-for-byte
/// identical to a service without the overload layer: nothing degrades,
/// and only kBackground work (which predates nothing — the class is new)
/// is ever pre-shed.
struct OverloadPolicy {
  /// Queue-depth fraction of capacity at which the service counts as
  /// overloaded. >= 1.0 means only a completely full queue qualifies.
  double queue_high_watermark = 0.75;
  /// Compute-latency p99 budget in µs; 0 disables the latency trigger.
  double p99_budget_us = 0.0;
  /// Samples before the p99 trigger is trusted (a cold histogram's p99
  /// is noise).
  std::uint64_t p99_min_samples = 32;
  /// Under overload, resolve kBackground submissions immediately with
  /// kShed instead of queueing them.
  bool shed_lowest_priority = true;
  /// Under overload, a miss on the current epoch may be answered from
  /// the shard's *previous* epoch's cache entry (marked stale in the
  /// result) — the slightly-old model now, instead of the fresh model
  /// late. Requires the query's allow_degraded.
  bool serve_stale_hits = false;
  /// Under overload, kAbduction queries with allow_degraded compute
  /// this many posterior samples instead of the config's count (the
  /// result is an exact prefix of the full answer and is not cached).
  /// 0 disables sample-count degradation.
  std::size_t degraded_num_samples = 0;
};

struct ServiceOptions {
  /// Worker lanes draining the queue (0 = hardware thread count). Each
  /// lane owns one scratch arena reused across jobs.
  std::size_t num_threads = 0;
  /// Submission queue bound, shared across the three priority classes.
  std::size_t queue_capacity = 256;
  /// Result-cache entries across all cache shards; 0 disables caching.
  std::size_t cache_capacity = 1024;
  /// Independently locked cache shards.
  std::size_t cache_shards = 8;
  /// Longest a deadline-less submit() may block waiting for queue
  /// space; zero = wait forever (the legacy backpressure behavior).
  /// Queries with a deadline always use min(deadline, this bound).
  std::chrono::milliseconds admission_timeout{0};
  /// Max lanes concurrently executing one shard's queries (0 = no
  /// quota). A saturated shard's jobs are skipped at dequeue — not
  /// reordered, not dropped — so one hot shard cannot occupy every
  /// lane and starve the rest of the fleet.
  std::size_t max_lanes_per_shard = 0;
  OverloadPolicy overload;
};

/// Point-in-time counters. Gauges (queue depths, in-flight, overloaded)
/// are instantaneous; the rest are monotonic over the service lifetime.
/// Every future the service ever handed out lands in exactly one
/// terminal bucket, so at quiescence the breakdown reconciles exactly:
///   submitted == computed + cache_hits + rejected + timed_out
///                + shed + failed
struct ServiceStats {
  std::uint64_t submitted = 0;   ///< futures handed out (all outcomes)
  std::uint64_t computed = 0;    ///< ran inference (degraded included)
  std::uint64_t cache_hits = 0;  ///< answered from cache (stale included)
  std::uint64_t cache_misses = 0;  ///< accepted into the queue, not a hit
  std::uint64_t rejected = 0;    ///< admission refused (full past timeout)
  std::uint64_t timed_out = 0;   ///< deadline missed (at submit or dequeue)
  std::uint64_t shed = 0;        ///< dropped by the shed policy
  std::uint64_t failed = 0;      ///< unknown shard or internal error
  std::uint64_t degraded = 0;    ///< computed with reduced samples
  std::uint64_t stale_hits = 0;  ///< hits served from a previous epoch
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;
  std::size_t queue_depth = 0;   ///< jobs pending across all priorities
  /// Pending jobs per priority class (index = Priority).
  std::array<std::size_t, kNumPriorities> queue_depth_by_priority{};
  bool overloaded = false;       ///< detector state right now

  /// The outcome-breakdown invariant; holds exactly at quiescence (no
  /// submission or execution racing the snapshot).
  bool reconciled() const noexcept {
    return submitted ==
           computed + cache_hits + rejected + timed_out + shed + failed;
  }
};

/// Per-shard slice of the service counters. Counters follow the shard
/// *name*: they persist across swap_shard (a hot-swapped model keeps its
/// traffic history) and reset only when the shard is removed and
/// re-added. A query that was accepted but not yet executed has been
/// counted in submitted (and misses) but not yet in a terminal bucket.
struct ShardStats {
  std::string name;
  std::uint64_t epoch = 0;          ///< epoch of the current engine
  std::uint64_t submitted = 0;
  std::uint64_t computed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t stale_hits = 0;
  std::uint64_t in_flight = 0;      ///< lanes executing this shard now
  /// Compute-latency percentiles over this shard's *computed* queries
  /// (cache hits complete in the submitter and are not timed), read from
  /// a lock-free power-of-two-bucket histogram — each value is the upper
  /// bound of its bucket (~2x resolution), 0 until the first computed
  /// query. Like the counters, they follow the shard name across hot
  /// swaps and reset on remove + re-add.
  std::uint64_t latency_count = 0;  ///< samples behind the percentiles
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
};

class VeritasService {
 public:
  explicit VeritasService(ServiceOptions options = {});

  /// Drains and completes every accepted query (expired deadlines
  /// resolve as kDeadlineExceeded, the rest compute), then joins the
  /// lanes. Every future ever handed out resolves with a definite
  /// Expected<InferenceResult> — never a broken promise.
  ~VeritasService();

  VeritasService(const VeritasService&) = delete;
  VeritasService& operator=(const VeritasService&) = delete;

  // ------------------------------------------------------------ registry

  /// Registers a shard under `name`, building its engine from `config`.
  /// Replaces any existing shard of that name (same as swap_shard).
  /// Returns the shard's epoch — unique across all add/swap calls on
  /// this service. Engine construction happens outside the registry
  /// lock, so serving is not stalled by a build.
  std::uint64_t add_shard(const std::string& name,
                          const core::VeritasConfig& config,
                          core::EngineOptions engine_options = {});

  /// Registers a shard around an engine built elsewhere (non-null).
  std::uint64_t add_shard(const std::string& name,
                          std::shared_ptr<const core::InferenceEngine> engine);

  /// Atomically replaces `name`'s engine and bumps its epoch, so cached
  /// results for the old model can no longer be served (except as
  /// explicitly-marked stale hits under overload). In-flight queries
  /// keep the engine they resolved at submit time. Requires the shard
  /// to exist.
  std::uint64_t swap_shard(const std::string& name,
                           const core::VeritasConfig& config,
                           core::EngineOptions engine_options = {});

  /// Unregisters `name`; in-flight queries finish on the old engine.
  /// Returns false when no such shard exists.
  bool remove_shard(const std::string& name);

  bool has_shard(const std::string& name) const;
  std::vector<std::string> shard_names() const;

  /// Current epoch of `name`; requires the shard to exist.
  std::uint64_t shard_epoch(const std::string& name) const;

  /// Borrow the shard's current engine (e.g. for its config); requires
  /// the shard to exist.
  std::shared_ptr<const core::InferenceEngine> shard_engine(
      const std::string& name) const;

  // ---------------------------------------------------------- submission

  /// Submits one query. The returned future ALWAYS resolves with a
  /// definite Expected<InferenceResult>: a payload, or a Status —
  /// kNotFound (unknown shard), kRejected (queue full past the
  /// admission bound, or shutting down), kShed (dropped by the overload
  /// policy or displaced by a higher priority), kDeadlineExceeded, or
  /// kInternal (inference raised; converted at the lane boundary).
  /// Cache hits complete before submit() returns. A deadline-less
  /// submission with admission_timeout 0 blocks while the queue is full
  /// (legacy backpressure); otherwise the wait is bounded.
  std::future<Expected<InferenceResult>> submit(Query query);

  /// Non-blocking submit: nullopt when the queue is full (nothing is
  /// counted — a rejected probe leaves no trace). Cache hits and
  /// immediately-resolvable outcomes (unknown shard, missed deadline)
  /// still return a future.
  std::optional<std::future<Expected<InferenceResult>>> try_submit(
      Query query);

  /// Submits every log against `shard` with the same options; futures
  /// are positionally aligned with `logs`. May block as the queue
  /// admits work (bounded per query by deadline/admission_timeout), so
  /// the batch may be arbitrarily larger than the queue bound.
  std::vector<std::future<Expected<InferenceResult>>> submit_batch(
      std::span<const sim::SessionLog> logs, const std::string& shard,
      QueryKind kind = QueryKind::kAbduction, QueryOptions options = {});

  /// The overload detector's current verdict (queue-depth watermark
  /// and/or compute-latency p99 over budget).
  bool overloaded() const;

  ServiceStats stats() const;

  /// Per-shard counter snapshot, sorted by shard name.
  std::vector<ShardStats> shard_stats() const;

  /// Registers this service's whole metric inventory — outcome counters,
  /// queue depths per priority, overload and reconciliation-drift
  /// gauges, per-shard counters/in-flight/epoch with a `shard` label,
  /// compute-latency histograms, per-shard estimator-cache counters, and
  /// a `veritas_build_info` info gauge carrying the resolved kernel tier
  /// — into `registry` as pull callbacks (see docs/OBSERVABILITY.md for
  /// the inventory). The callbacks capture `this`: the registry must not
  /// outlive the service, and a scrape only reads the same relaxed
  /// atomics stats()/shard_stats() read, so registration adds zero cost
  /// to the serving path.
  void register_metrics(util::MetricsRegistry& registry) const;

  std::size_t num_lanes() const noexcept { return lanes_; }

 private:
  /// One terminal bucket per future, mirrored at service and shard
  /// level. All atomics, relaxed: counters only, no ordering.
  struct OutcomeCounters {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> computed{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> timed_out{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> stale_hits{0};
  };

  /// Lock-free per-shard counters, shared between the registry entry and
  /// every in-flight job that resolved the shard (so a concurrent
  /// remove_shard can never invalidate a worker's counter).
  struct ShardCounters {
    OutcomeCounters outcomes;
    util::LatencyHistogram latency;  ///< computed-query wall time
    std::atomic<std::uint64_t> in_flight{0};  ///< lane-quota gauge
  };

  struct Shard {
    std::shared_ptr<const core::Veritas> veritas;  ///< facade over engine
    std::uint64_t epoch = 0;
    /// Epoch before the last swap/replace — the key under which
    /// slightly-stale cache entries live (serve_stale_hits).
    std::uint64_t prev_epoch = 0;
    bool has_prev_epoch = false;
    std::shared_ptr<ShardCounters> counters;
  };

  /// Four integers: the epoch alone identifies the (shard, model) pair
  /// because every add/swap draws a service-unique epoch — no need to
  /// carry the shard name.
  struct CacheKey {
    std::uint64_t log_hash = 0;
    std::uint64_t epoch = 0;
    QueryKind kind = QueryKind::kAbduction;
    std::uint64_t seed = 0;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const noexcept;
  };

  /// What the cache stores: the immutable payload of one query.
  struct CachedPayload {
    std::shared_ptr<const core::VeritasResult> abduction;
    std::shared_ptr<const std::vector<core::NextChunkPrediction>> predictions;
  };

  struct Job {
    Shard shard;  ///< pinned at submit time; veritas null = unknown shard
    Query query;
    CacheKey key;
    /// Set at admission when the overload policy degrades this query's
    /// sample count.
    bool degrade_samples = false;
    /// Nonzero only while tracing is enabled: the query's span id, set
    /// at make_job and carried into every span the lane records.
    std::uint64_t trace_id = 0;
    /// Stamped just before the queue push when trace_id != 0; the lane
    /// turns it into a service.queue_wait span at dequeue.
    std::chrono::steady_clock::time_point enqueue_time{};
    /// Exactly-once promise guard: all resolution funnels through the
    /// finish_/fulfill_ helpers, which flip this.
    bool done = false;
    std::promise<Expected<InferenceResult>> promise;
  };

  /// Resolves the query's shard (null veritas when unknown) and computes
  /// its cache key; the promise is default-constructed and unfulfilled.
  Job make_job(Query query) const;

  /// Probes the cache under `epoch`; on a hit fulfills the promise
  /// (marking stale/degraded as instructed) and returns true.
  bool serve_from_cache(Job& job, std::uint64_t epoch, bool stale);

  /// Resolves the job's future with a non-ok status and lands it in the
  /// matching counter bucket (service + shard). No-op when already done.
  void finish_with_status(Job& job, Status status);

  /// The shared front half of submit/try_submit: counts the submission
  /// and resolves everything that never reaches the queue (unknown
  /// shard, missed deadline, cache hit, overload shed). Returns true
  /// when the future is already resolved.
  bool admit_or_resolve(Job& job);

  /// Bumps the submitted counters (service + shard when known). Called
  /// exactly once per future the service hands out.
  void count_submitted(const Job& job);

  void drain_lane();

  /// Runs the job's inference and lands it in the computed/degraded (or,
  /// via the catch-all boundary, failed-bucket-to-be) books. Returns the
  /// outcome WITHOUT touching the promise: the lane resolves it after
  /// dropping the in_flight gauge, so a caller whose future is ready
  /// never observes its own job still counted as executing.
  Expected<InferenceResult> execute(Job& job,
                                    core::Ehmm::Scratch& scratch) noexcept;

  ServiceOptions options_;
  std::size_t lanes_ = 0;

  mutable std::mutex registry_mutex_;
  std::unordered_map<std::string, Shard> shards_;
  std::uint64_t next_epoch_ = 0;

  util::ShardedLruCache<CacheKey, CachedPayload, CacheKeyHash> cache_;
  util::BoundedPriorityQueue<Job, kNumPriorities> queue_;

  OutcomeCounters totals_;
  /// Service-wide compute latency — the overload detector's p99 source.
  util::LatencyHistogram latency_;
  /// Trace-id source (ids start at 1; 0 means untraced).
  mutable std::atomic<std::uint64_t> next_trace_id_{0};

  util::ThreadPool pool_;  ///< last member: joins before the rest die
};

}  // namespace veritas::service
