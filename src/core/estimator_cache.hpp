// Cross-session memo over the TCP emission kernel (PR 5 tentpole).
//
// The k-state emission-mean row of a chunk is a pure function of its
// (TCP state W, size S) tuple and of the model's candidate table, so the
// same tuple seen in another session — or by another thread, or in a
// later EM iteration — can reuse the row instead of re-running the
// estimator f. This cache generalizes the per-session Ehmm::EmissionMemo
// the seed grew in PR 2 (which it subsumes): entries are self-contained
// row copies rather than indices into one session's matrix, so nothing
// is cleared between sessions, and the map is sharded behind
// shared_mutexes for read-mostly concurrent serving.
//
// Keying and invalidation: the key is the bit pattern of the seven
// estimator inputs (cwnd, ssthresh, rto, min_rtt, rtt, idle gap, size)
// plus a *candidate-table id* — a fingerprint of everything else the row
// depends on (estimator kind, TcpConfig, candidate values, span table,
// δ). A model whose table id differs can share the same cache object
// without ever observing another model's rows; retraining under
// kMultiWindow moves the id with A, so stale span-averaged rows become
// unreachable by construction (the same epoch idea as the service's
// result cache, one layer down).
//
// Quantization: with quantize_mantissa_bits > 0 the estimator *inputs*
// are rounded to the top N mantissa bits before both keying and
// evaluation, so near-identical TCP snapshots (real fleets produce
// continuum-valued ones) collapse onto shared entries. Because the
// evaluation itself uses the quantized inputs, a hit is still
// bit-identical to the miss that created the entry — the knob trades
// emission-mean fidelity for hit rate, never determinism. 0 (the
// default) keys exact bit patterns and changes no result at all.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "net/tcp_state.hpp"

namespace veritas::core {

class EstimatorCache {
 public:
  /// Default byte budget owners size their caches from (converted to an
  /// entry count via entries_for_bytes) — one constant shared by
  /// VeritasConfig::estimator_cache_bytes and baum_welch_train so the
  /// two cannot drift.
  static constexpr std::size_t kDefaultByteBudget = 24u << 20;

  struct Config {
    /// Total entry budget across shards. When a shard fills, it is
    /// flushed wholesale (epoch-style) and re-warms — bounded memory
    /// with no per-hit bookkeeping, the right trade for a read-mostly
    /// memo whose entries are cheap to recompute.
    std::size_t capacity = 1 << 16;
    /// Independently locked shards.
    std::size_t shards = 16;
    /// Mantissa bits kept when quantizing estimator inputs; 0 = exact.
    unsigned quantize_mantissa_bits = 0;
  };

  /// One memoized row pair. `plain` is only filled when the model
  /// span-averages (kMultiWindow), where the un-averaged f(value_i) row
  /// differs from `mean`; otherwise the two coincide and only `mean` is
  /// stored.
  struct Entry {
    std::vector<double> mean;
    std::vector<double> plain;
  };

  struct Key {
    std::array<std::uint64_t, 7> state_bits;  ///< W fields, bit patterns
    std::uint64_t size_bits = 0;              ///< S, bit pattern
    std::uint64_t table_id = 0;               ///< candidate-table id
    bool operator==(const Key&) const = default;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t flushes = 0;  ///< full-shard evictions
    std::size_t entries = 0;
  };

  // Two constructors rather than one defaulted argument: GCC rejects a
  // `= {}` default for a nested class with member initializers
  // (PR c++/88165).
  EstimatorCache() : EstimatorCache(Config{}) {}
  explicit EstimatorCache(Config config);

  /// Entry budget for a byte budget at state-space size k: resident
  /// memory scales with k (each entry stores a k-double row, two under
  /// kMultiWindow), so owners size the cache in bytes and convert here
  /// instead of letting a fixed entry count balloon on large grids.
  /// ~200 bytes of per-entry overhead (key, map node, control block,
  /// vector headers) plus the row payload; floored at 1024 entries.
  static std::size_t entries_for_bytes(std::size_t bytes, std::size_t k,
                                       bool two_rows) noexcept {
    const std::size_t entry_bytes =
        200 + k * sizeof(double) * (two_rows ? 2 : 1);
    const std::size_t entries = bytes / entry_bytes;
    return entries < 1024 ? 1024 : entries;
  }

  bool quantizes() const noexcept {
    return config_.quantize_mantissa_bits > 0;
  }

  /// Rounds one estimator input to the configured mantissa grid
  /// (truncation toward zero; identity when quantization is off or the
  /// value is non-finite).
  double quantize(double v) const noexcept;

  /// The key of a (state, size) tuple under `table_id`. Callers pass
  /// already-quantized inputs (see quantize()).
  static Key key_of(const net::TcpState& w, double size_bytes,
                    std::uint64_t table_id) noexcept;

  /// Shared-lock lookup; counts a hit or miss.
  std::shared_ptr<const Entry> find(const Key& key) const;

  /// Publishes an entry (first writer wins; concurrent duplicates are
  /// dropped — both hold identical rows by construction).
  void insert(const Key& key, std::shared_ptr<const Entry> entry);

  Stats stats() const;
  void clear();

  /// Monotone invalidation counter: bumped by clear() only. Capacity
  /// flushes deliberately do NOT bump it — entries are pure functions of
  /// their key (candidate-table id included), so a row pinned elsewhere
  /// stays correct when its shard re-warms; only an explicit clear()
  /// demands that downstream front-caches drop their pins too.
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<Key, std::shared_ptr<const Entry>, KeyHash> map;
  };

  Shard& shard_for(const Key& key) const noexcept;

  Config config_;
  std::size_t per_shard_capacity_;
  std::unique_ptr<Shard[]> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> epoch_{0};

 public:
  /// Per-lane L1 front-cache over one shared EstimatorCache (PR 7
  /// tentpole). A Scratch is single-threaded by contract, so the L1 is a
  /// plain open-addressed table with no locks and no atomics: a repeat
  /// (W, S) tuple inside a lane resolves to its memoized row without
  /// touching the sharded shared_mutex memo at all — no lock traffic, no
  /// hash-map probe, and (for callers of the row-span API) no memcpy.
  ///
  /// Slots pin their entries via shared_ptr, so a row served from the L1
  /// stays valid even if the owning shard was capacity-flushed since —
  /// by the purity argument behind epoch(), a pinned row can go
  /// unreachable but never stale. sync() keys the table to
  /// (owner address, owner epoch): hopping the lane to a different cache
  /// or clear()-ing the owner drops every slot. A freed cache whose
  /// address is later reused (ABA) is indistinguishable from the
  /// original owner until the epochs diverge, and benign: whatever entry
  /// a slot pins is still the unique correct row for its key.
  class L1 {
   public:
    static constexpr std::size_t kSlots = 128;      ///< power of two
    static constexpr std::size_t kProbeLimit = 4;   ///< linear probes

    /// Re-keys the table to `owner`; drops all slots when the owner or
    /// its epoch changed since the last sync. Callers invoke this once
    /// per session before the find/put loop.
    void sync(const EstimatorCache& owner) {
      const std::uint64_t epoch = owner.epoch();
      if (owner_ == &owner && epoch_ == epoch) return;
      reset();
      owner_ = &owner;
      epoch_ = epoch;
    }

    /// The pinning shared_ptr of `key`'s slot, or nullptr. The returned
    /// pointer aliases the slot — copy the shared_ptr out before the
    /// next put()/reset() if the row must outlive table churn.
    const std::shared_ptr<const Entry>* find(const Key& key) noexcept {
      const std::size_t h = KeyHash{}(key);
      for (std::size_t p = 0; p < kProbeLimit; ++p) {
        const Slot& slot = slots_[(h + p) & (kSlots - 1)];
        if (slot.entry != nullptr && slot.key == key) {
          ++hits_;
          return &slot.entry;
        }
      }
      ++misses_;
      return nullptr;
    }

    void put(const Key& key, std::shared_ptr<const Entry> entry) {
      const std::size_t h = KeyHash{}(key);
      for (std::size_t p = 0; p < kProbeLimit; ++p) {
        Slot& slot = slots_[(h + p) & (kSlots - 1)];
        if (slot.entry == nullptr || slot.key == key) {
          slot.key = key;
          slot.entry = std::move(entry);
          return;
        }
      }
      // Every probed slot holds a different live key: displace the home
      // slot (recency wins; the displaced row is still in the shared
      // memo, so losing it costs one L2 lookup, not a recompute).
      Slot& home = slots_[h & (kSlots - 1)];
      home.key = key;
      home.entry = std::move(entry);
    }

    void reset() noexcept {
      for (Slot& slot : slots_) slot.entry.reset();
      owner_ = nullptr;
      epoch_ = 0;
    }

    std::uint64_t hits() const noexcept { return hits_; }
    std::uint64_t misses() const noexcept { return misses_; }

   private:
    struct Slot {
      Key key{};
      std::shared_ptr<const Entry> entry;
    };
    std::array<Slot, kSlots> slots_{};
    const EstimatorCache* owner_ = nullptr;
    std::uint64_t epoch_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
  };
};

}  // namespace veritas::core
