#include "core/diagnostics.hpp"

#include <cmath>
#include <sstream>

#include "math/distributions.hpp"
#include "net/tcp_model.hpp"
#include "util/expects.hpp"

namespace veritas::core {

std::string InferenceDiagnostics::summary() const {
  std::ostringstream out;
  out << "inference diagnostics: " << chunks.size() << " chunks, "
      << "mean posterior entropy " << mean_entropy_nats << " / "
      << max_entropy_nats << " nats, "
      << 100.0 * fraction_informative
      << "% of chunks exceed the BDP (strong evidence)\n";
  if (uncertain_spans.empty()) {
    out << "no uncertain spans: the data pins GTBW throughout\n";
    return out.str();
  }
  out << uncertain_spans.size() << " uncertain span(s):\n";
  for (const UncertainSpan& span : uncertain_spans) {
    out << "  [" << span.begin_s << " s, " << span.end_s
        << " s] mean entropy " << span.mean_entropy_nats << " nats\n";
  }
  return out.str();
}

InferenceDiagnostics diagnose(const Veritas& veritas,
                              const sim::SessionLog& log,
                              double uncertain_entropy_fraction) {
  VERITAS_EXPECTS(!log.chunks.empty());
  VERITAS_EXPECTS(uncertain_entropy_fraction > 0.0 &&
                  uncertain_entropy_fraction < 1.0);

  const std::vector<ChunkObservation> observations =
      observations_from_log(log);
  const Ehmm& ehmm = veritas.engine().ehmm();
  Ehmm::Scratch scratch;
  const Ehmm::InferencePass pass = ehmm.infer_fused(observations, scratch);
  const Ehmm::ViterbiResult& viterbi = pass.viterbi;
  const Ehmm::ForwardBackwardResult& fb = pass.forward_backward;
  const std::size_t k = ehmm.space().size();

  InferenceDiagnostics diagnostics;
  diagnostics.max_entropy_nats = std::log(static_cast<double>(k));
  diagnostics.chunks.reserve(observations.size());

  double entropy_sum = 0.0;
  std::size_t informative_count = 0;
  for (std::size_t n = 0; n < observations.size(); ++n) {
    ChunkDiagnostic d;
    d.chunk = n;
    d.start_s = observations[n].start_s;
    d.observed_throughput_mbps = observations[n].throughput_mbps;
    d.map_gtbw_mbps = ehmm.space().value(viterbi.states[n]);
    d.posterior_entropy_nats = math::entropy(fb.gamma.row(n));

    // Posterior std dev in Mbps.
    const auto values = ehmm.space().values();
    const double mean = math::expectation(values, fb.gamma.row(n));
    double var = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double dv = values[i] - mean;
      var += fb.gamma(n, i) * dv * dv;
    }
    d.posterior_std_mbps = std::sqrt(var);

    // Informative when the chunk exceeds the BDP at the MAP state.
    const double bdp_bytes =
        net::bdp_segments(d.map_gtbw_mbps, observations[n].tcp.min_rtt_s,
                          veritas.config().tcp) *
        veritas.config().tcp.mss_bytes;
    d.informative = observations[n].size_bytes > bdp_bytes;

    entropy_sum += d.posterior_entropy_nats;
    informative_count += d.informative;
    diagnostics.chunks.push_back(d);
  }
  diagnostics.mean_entropy_nats =
      entropy_sum / static_cast<double>(observations.size());
  diagnostics.fraction_informative =
      static_cast<double>(informative_count) /
      static_cast<double>(observations.size());

  // Segment uncertain spans: consecutive chunks above the threshold.
  const double threshold =
      uncertain_entropy_fraction * diagnostics.max_entropy_nats;
  std::size_t span_start = 0;
  bool in_span = false;
  double span_entropy = 0.0;
  std::size_t span_count = 0;
  auto close_span = [&](std::size_t end_index) {
    UncertainSpan span;
    span.begin_s = diagnostics.chunks[span_start].start_s;
    span.end_s = observations[end_index].end_s;
    span.mean_entropy_nats = span_entropy / double(span_count);
    diagnostics.uncertain_spans.push_back(span);
  };
  for (std::size_t n = 0; n < diagnostics.chunks.size(); ++n) {
    const bool uncertain =
        diagnostics.chunks[n].posterior_entropy_nats > threshold;
    if (uncertain && !in_span) {
      in_span = true;
      span_start = n;
      span_entropy = 0.0;
      span_count = 0;
    }
    if (uncertain) {
      span_entropy += diagnostics.chunks[n].posterior_entropy_nats;
      ++span_count;
    }
    if (!uncertain && in_span) {
      in_span = false;
      close_span(n - 1);
    }
  }
  if (in_span) close_span(diagnostics.chunks.size() - 1);
  return diagnostics;
}

}  // namespace veritas::core
