#include "core/emission_model.hpp"

#include "math/distributions.hpp"
#include "net/throughput_estimator.hpp"
#include "util/expects.hpp"

namespace veritas::core {

std::vector<ChunkObservation> observations_from_log(
    const sim::SessionLog& log) {
  VERITAS_EXPECTS(!log.chunks.empty());
  std::vector<ChunkObservation> out;
  out.reserve(log.chunks.size());
  double prev_start = -1.0;
  for (const sim::ChunkLog& c : log.chunks) {
    VERITAS_EXPECTS(c.end_s > c.start_s);
    VERITAS_EXPECTS(c.start_s > prev_start);
    prev_start = c.start_s;
    ChunkObservation obs;
    obs.throughput_mbps = c.throughput_mbps();
    obs.tcp = c.tcp_at_start;
    obs.size_bytes = c.size_bytes;
    obs.start_s = c.start_s;
    obs.end_s = c.end_s;
    out.push_back(obs);
  }
  return out;
}

EmissionModel::EmissionModel(double sigma_mbps, net::TcpConfig tcp_config,
                             Estimator estimator)
    : sigma_mbps_(sigma_mbps),
      tcp_config_(tcp_config),
      estimator_(estimator) {
  VERITAS_EXPECTS(sigma_mbps > 0.0);
}

double EmissionModel::mean_throughput_mbps(double candidate_mbps,
                                           const ChunkObservation& obs) const {
  switch (estimator_) {
    case Estimator::kFullTcp:
    case Estimator::kMultiWindow:
      // kMultiWindow shares f; the candidate is pre-averaged over the
      // download span by Ehmm::emission_log_probs.
      return net::estimate_throughput_mbps(candidate_mbps, obs.tcp,
                                           obs.size_bytes, tcp_config_);
    case Estimator::kNoTcpState:
      return net::estimate_throughput_no_tcp_state_mbps(
          candidate_mbps, obs.tcp, obs.size_bytes, tcp_config_);
  }
  // Exhaustive switch, no default: -Wswitch flags a future Estimator
  // value at compile time instead of silently returning 0 here.
  VERITAS_UNREACHABLE();
}

void EmissionModel::mean_throughput_row(const double* candidates_mbps,
                                        std::size_t k,
                                        const ChunkObservation& obs,
                                        double* out) const {
  switch (estimator_) {
    case Estimator::kFullTcp:
    case Estimator::kMultiWindow:
      net::estimate_throughput_batch({candidates_mbps, k}, obs.tcp,
                                     obs.size_bytes, tcp_config_, {out, k});
      return;
    case Estimator::kNoTcpState:
      // The ablation estimator is two flops per candidate: nothing to
      // batch.
      for (std::size_t i = 0; i < k; ++i) {
        out[i] = net::estimate_throughput_no_tcp_state_mbps(
            candidates_mbps[i], obs.tcp, obs.size_bytes, tcp_config_);
      }
      return;
  }
  VERITAS_UNREACHABLE();
}

double EmissionModel::log_prob(double candidate_mbps,
                               const ChunkObservation& obs) const {
  return log_prob_given_mean(mean_throughput_mbps(candidate_mbps, obs), obs);
}

double EmissionModel::log_prob_given_mean(double mean_mbps,
                                          const ChunkObservation& obs) const {
  return math::log_normal_pdf(obs.throughput_mbps, mean_mbps, sigma_mbps_);
}

}  // namespace veritas::core
