#include "core/ehmm.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numbers>

#include "math/distributions.hpp"
#include "math/simd_kernels.hpp"
#include "util/expects.hpp"
#include "util/hash.hpp"
#include "util/trace.hpp"

namespace veritas::core {

using math::kNegInf;
using math::safe_log;

namespace {

using math::simd_kernels::DeltaTables;
using math::simd_kernels::KernelOps;

/// Fills `tables` with the padded dense layouts of `view`; false when the
/// delta fell beyond the precomputed range (callers then run the legacy
/// strided loops on view.p).
bool dense_tables(const TransitionModel::PowerView& view,
                  DeltaTables& tables) {
  if (view.transposed == nullptr) return false;
  tables.p = view.p->row_data(0);
  tables.t = view.transposed->row_data(0);
  tables.log_p = view.log_p->row_data(0);
  tables.log_t = view.log_transposed->row_data(0);
  tables.stride = view.p->col_stride();
  return true;
}

}  // namespace

Ehmm::Ehmm(StateSpace space, TransitionModel transition,
           EmissionModel emission, double delta_s,
           std::size_t precompute_powers)
    : space_(std::move(space)),
      transition_(std::move(transition)),
      emission_(std::move(emission)),
      delta_s_(delta_s) {
  VERITAS_EXPECTS(delta_s_ > 0.0);
  VERITAS_EXPECTS(space_.size() == transition_.states());

  multi_window_ =
      emission_.estimator() == EmissionModel::Estimator::kMultiWindow;
  transition_.precompute_powers(
      multi_window_ ? std::max(precompute_powers, kMaxSpanWindows)
                    : precompute_powers);

  if (multi_window_) {
    // Candidate table for the span-averaged emission mean: entry
    // (i, span) replays the per-observation loop the estimator used to
    // run — sum over m of E[C_{sn+m} | C_sn = value(i)] divided by span —
    // with identical accumulation order, so emissions stay bit-identical
    // while the per-observation cost drops from O(span * K) to O(1).
    const std::size_t k = space_.size();
    span_candidates_ = math::Matrix(k, kMaxSpanWindows + 1, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      span_candidates_(i, 0) = space_.value(i);
      span_candidates_(i, 1) = space_.value(i);
      double sum = 0.0;
      for (std::size_t m = 0; m < kMaxSpanWindows; ++m) {
        const math::Matrix& a_m = transition_.power(m);
        double expected = 0.0;
        for (std::size_t j = 0; j < k; ++j) {
          expected += a_m(i, j) * space_.value(j);
        }
        sum += expected;
        if (m >= 1) {
          span_candidates_(i, m + 1) = sum / static_cast<double>(m + 1);
        }
      }
    }
  }

  candidate_values_ = space_.values();

  // Candidate-table id: a digest of everything an emission-mean row
  // depends on besides (W, S). Two Ehmms produce bit-identical rows for
  // every tuple iff these inputs match, so the id scopes EstimatorCache
  // entries — a retrained transition model (kMultiWindow span table) or
  // a different TcpConfig gets fresh keys by construction. σ is
  // deliberately absent: the means do not depend on it.
  util::Fnv1aHasher hasher;
  hasher.u64(static_cast<std::uint64_t>(emission_.estimator()));
  const net::TcpConfig& tcp = emission_.tcp_config();
  hasher.u64(static_cast<std::uint64_t>(tcp.congestion_control))
      .f64(tcp.mss_bytes)
      .f64(tcp.init_cwnd)
      .f64(tcp.initial_ssthresh)
      .f64(tcp.min_rto_s)
      .f64(tcp.rwnd_segments)
      .u64(tcp.enable_ssr ? 1 : 0)
      .u64(tcp.enable_loss ? 1 : 0)
      .f64(tcp.queue_bdp_factor)
      .u64(tcp.enable_hystart ? 1 : 0)
      .f64(tcp.hystart_bdp_fraction)
      .f64(tcp.rate_jitter);
  hasher.f64(delta_s_).u64(candidate_values_.size());
  for (const double v : candidate_values_) hasher.f64(v);
  if (multi_window_) {
    hasher.u64(span_candidates_.rows()).u64(span_candidates_.cols());
    for (std::size_t i = 0; i < span_candidates_.rows(); ++i) {
      for (std::size_t s = 0; s < span_candidates_.cols(); ++s) {
        hasher.f64(span_candidates_(i, s));
      }
    }
  }
  emission_table_id_ = hasher.digest();
}

std::size_t Ehmm::window_of(double t_s) const {
  VERITAS_EXPECTS(t_s >= 0.0);
  return static_cast<std::size_t>(t_s / delta_s_);
}

void Ehmm::window_deltas_into(std::span<const ChunkObservation> observations,
                              std::vector<std::size_t>& out) const {
  VERITAS_EXPECTS(!observations.empty());
  out.assign(observations.size(), 0);
  for (std::size_t n = 1; n < observations.size(); ++n) {
    const std::size_t prev = window_of(observations[n - 1].start_s);
    const std::size_t curr = window_of(observations[n].start_s);
    VERITAS_EXPECTS(curr >= prev);
    out[n] = curr - prev;
  }
}

std::vector<std::size_t> Ehmm::window_deltas(
    std::span<const ChunkObservation> observations) const {
  std::vector<std::size_t> deltas;
  window_deltas_into(observations, deltas);
  return deltas;
}

namespace {

/// Quantizes the estimator inputs of observations[n] when the cache is
/// lossy (both the key and the evaluation use the quantized values, so a
/// hit stays bit-identical to the miss that filled it); pass-through
/// otherwise. `storage` backs the quantized copy across loop iterations.
const ChunkObservation& quantized_view(const EstimatorCache& cache,
                                       bool quantized,
                                       const ChunkObservation& raw,
                                       ChunkObservation& storage) {
  if (!quantized) return raw;
  storage = raw;
  storage.tcp.cwnd_segments = cache.quantize(storage.tcp.cwnd_segments);
  storage.tcp.ssthresh_segments =
      cache.quantize(storage.tcp.ssthresh_segments);
  storage.tcp.rto_s = cache.quantize(storage.tcp.rto_s);
  storage.tcp.min_rtt_s = cache.quantize(storage.tcp.min_rtt_s);
  storage.tcp.rtt_s = cache.quantize(storage.tcp.rtt_s);
  storage.tcp.last_send_gap_s = cache.quantize(storage.tcp.last_send_gap_s);
  storage.size_bytes = cache.quantize(storage.size_bytes);
  return storage;
}

}  // namespace

void Ehmm::compute_cache_entry(const ChunkObservation& obs,
                               EstimatorCache::Entry& entry,
                               std::vector<double>& y0_row,
                               std::vector<double>& span_cands,
                               std::vector<std::uint8_t>& span_gt1) const {
  const std::size_t k = space_.size();
  entry.mean.resize(k);
  if (!multi_window_) {
    // One batched estimator call for the whole candidate row.
    emission_.mean_throughput_row(candidate_values_.data(), k, obs,
                                  entry.mean.data());
    return;
  }
  // Replace each candidate with its expected average over the download
  // span: estimate the span from f at the start value (first batched
  // call), then re-evaluate f at the precomputed span-averaged candidate
  // for the spans that exceed one window (second batched call;
  // single-window lanes keep y0 and are fed a zero candidate, which
  // short-circuits inside f).
  emission_.mean_throughput_row(candidate_values_.data(), k, obs,
                                y0_row.data());
  bool any_span = false;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t span_windows = 1;
    if (y0_row[i] > 1e-9) {
      const double est_duration = obs.size_bytes * 8.0 / 1e6 / y0_row[i];
      span_windows = std::min<std::size_t>(
          static_cast<std::size_t>(est_duration / delta_s_) + 1,
          kMaxSpanWindows);
    }
    span_gt1[i] = span_windows > 1 ? 1 : 0;
    span_cands[i] =
        span_windows > 1 ? span_candidates_(i, span_windows) : 0.0;
    any_span |= span_windows > 1;
  }
  if (any_span) {
    emission_.mean_throughput_row(span_cands.data(), k, obs,
                                  entry.mean.data());
    for (std::size_t i = 0; i < k; ++i) {
      if (span_gt1[i] == 0) entry.mean[i] = y0_row[i];
    }
  } else {
    std::memcpy(entry.mean.data(), y0_row.data(), k * sizeof(double));
  }
  entry.plain.assign(y0_row.begin(), y0_row.end());
}

void Ehmm::emission_means_into(std::span<const ChunkObservation> observations,
                               math::Matrix& means, EstimatorCache& cache,
                               math::Matrix* plain_means,
                               EstimatorCache::L1* l1) const {
  VERITAS_EXPECTS(!observations.empty());
  const std::size_t n_obs = observations.size();
  const std::size_t k = space_.size();
  // Padded rows: the batched emission kernel may read whole lanes.
  means.resize_padded(n_obs, k, 0.0);
  if (plain_means != nullptr) plain_means->resize_padded(n_obs, k, 0.0);
  const bool quantized = cache.quantizes();
  if (l1 != nullptr) l1->sync(cache);
  // kMultiWindow span-estimation buffers, reused across rows.
  std::vector<double> y0_row;
  std::vector<double> span_cands;
  std::vector<std::uint8_t> span_gt1;
  if (multi_window_) {
    y0_row.resize(k);
    span_cands.resize(k);
    span_gt1.resize(k);
  }
  ChunkObservation quantized_obs;
  for (std::size_t n = 0; n < n_obs; ++n) {
    const ChunkObservation& obs =
        quantized_view(cache, quantized, observations[n], quantized_obs);
    double* mean_row = means.row_data(n);
    double* plain_row =
        plain_means != nullptr ? plain_means->row_data(n) : nullptr;
    const EstimatorCache::Key key =
        EstimatorCache::key_of(obs.tcp, obs.size_bytes, emission_table_id_);
    const EstimatorCache::Entry* hit = nullptr;
    if (l1 != nullptr) {
      // L1 first: a repeat tuple inside this lane costs a handful of
      // probes instead of a shard lock + hash-map lookup. No put happens
      // between find and the memcpy below, so the raw pointer is safe.
      if (const std::shared_ptr<const EstimatorCache::Entry>* pinned =
              l1->find(key)) {
        hit = pinned->get();
      }
    }
    std::shared_ptr<const EstimatorCache::Entry> shared_hit;
    if (hit == nullptr) {
      shared_hit = cache.find(key);
      if (shared_hit != nullptr) {
        hit = shared_hit.get();
        if (l1 != nullptr) l1->put(key, std::move(shared_hit));
      }
    }
    if (hit != nullptr) {
      // This (TCP state, size) tuple already ran the estimator — in this
      // session, an earlier one, or on another thread: the row is
      // identical by construction.
      std::memcpy(mean_row, hit->mean.data(), k * sizeof(double));
      if (plain_row != nullptr) {
        const std::vector<double>& plain =
            hit->plain.empty() ? hit->mean : hit->plain;
        std::memcpy(plain_row, plain.data(), k * sizeof(double));
      }
      continue;
    }
    auto entry = std::make_shared<EstimatorCache::Entry>();
    compute_cache_entry(obs, *entry, y0_row, span_cands, span_gt1);
    std::memcpy(mean_row, entry->mean.data(), k * sizeof(double));
    if (plain_row != nullptr) {
      const std::vector<double>& plain =
          entry->plain.empty() ? entry->mean : entry->plain;
      std::memcpy(plain_row, plain.data(), k * sizeof(double));
    }
    if (l1 != nullptr) l1->put(key, entry);
    cache.insert(key, std::move(entry));
  }
}

void Ehmm::emission_mean_rows_into(
    std::span<const ChunkObservation> observations, EstimatorCache& cache,
    EstimatorCache::L1& l1, std::vector<const double*>& rows,
    std::vector<std::shared_ptr<const EstimatorCache::Entry>>& refs) const {
  VERITAS_EXPECTS(!observations.empty());
  const std::size_t n_obs = observations.size();
  const std::size_t k = space_.size();
  rows.resize(n_obs);
  refs.clear();
  refs.reserve(n_obs);
  const bool quantized = cache.quantizes();
  l1.sync(cache);
  std::vector<double> y0_row;
  std::vector<double> span_cands;
  std::vector<std::uint8_t> span_gt1;
  if (multi_window_) {
    y0_row.resize(k);
    span_cands.resize(k);
    span_gt1.resize(k);
  }
  ChunkObservation quantized_obs;
  for (std::size_t n = 0; n < n_obs; ++n) {
    const ChunkObservation& obs =
        quantized_view(cache, quantized, observations[n], quantized_obs);
    const EstimatorCache::Key key =
        EstimatorCache::key_of(obs.tcp, obs.size_bytes, emission_table_id_);
    // Every served row is pinned in `refs` — a later put() may displace
    // the L1 slot whose shared_ptr kept the entry alive, and the shared
    // memo may capacity-flush the owning shard, so the per-session pin
    // is what makes the row pointers stable for the recursions.
    if (const std::shared_ptr<const EstimatorCache::Entry>* pinned =
            l1.find(key)) {
      refs.push_back(*pinned);
      rows[n] = refs.back()->mean.data();
      continue;
    }
    if (std::shared_ptr<const EstimatorCache::Entry> entry =
            cache.find(key)) {
      rows[n] = entry->mean.data();
      refs.push_back(entry);
      l1.put(key, std::move(entry));
      continue;
    }
    auto entry = std::make_shared<EstimatorCache::Entry>();
    compute_cache_entry(obs, *entry, y0_row, span_cands, span_gt1);
    rows[n] = entry->mean.data();
    refs.push_back(entry);
    l1.put(key, entry);
    cache.insert(key, std::move(entry));
  }
}

void Ehmm::emission_log_probs_from_means_into(
    std::span<const ChunkObservation> observations, const math::Matrix& means,
    math::Matrix& out) const {
  VERITAS_EXPECTS(!observations.empty());
  const std::size_t n_obs = observations.size();
  const std::size_t k = space_.size();
  VERITAS_EXPECTS(means.rows() == n_obs && means.cols() == k);
  out.resize_padded(n_obs, k, kNegInf);
  // Batched Normal log-density (the body of EmissionModel::
  // log_prob_given_mean), one SIMD-dispatched kernel call per chunk row.
  // The kernel replicates math::log_normal_pdf's operation order, so
  // scalar and vector paths agree bitwise with the per-call composition.
  const KernelOps& ops = math::simd_kernels::active_ops();
  const double sigma = emission_.sigma_mbps();
  const double log_sigma = std::log(sigma);
  const double half_log_2pi = 0.5 * std::log(2.0 * std::numbers::pi);
  const std::size_t stride = out.col_stride();
  for (std::size_t n = 0; n < n_obs; ++n) {
    ops.emission_log_pdf_row(observations[n].throughput_mbps,
                             means.row_data(n), k, stride, sigma, log_sigma,
                             half_log_2pi, out.row_data(n));
  }
}

void Ehmm::emission_log_probs_from_rows_into(
    std::span<const ChunkObservation> observations,
    std::span<const double* const> rows, math::Matrix& out) const {
  VERITAS_EXPECTS(!observations.empty());
  const std::size_t n_obs = observations.size();
  const std::size_t k = space_.size();
  VERITAS_EXPECTS(rows.size() == n_obs);
  out.resize_padded(n_obs, k, kNegInf);
  // Same batched kernel as the matrix overload; the kernel contract only
  // requires k readable doubles per mean row, so the unpadded in-entry
  // rows are fed directly — no densification copy.
  const KernelOps& ops = math::simd_kernels::active_ops();
  const double sigma = emission_.sigma_mbps();
  const double log_sigma = std::log(sigma);
  const double half_log_2pi = 0.5 * std::log(2.0 * std::numbers::pi);
  const std::size_t stride = out.col_stride();
  for (std::size_t n = 0; n < n_obs; ++n) {
    ops.emission_log_pdf_row(observations[n].throughput_mbps, rows[n], k,
                             stride, sigma, log_sigma, half_log_2pi,
                             out.row_data(n));
  }
}

void Ehmm::emission_log_probs_into(
    std::span<const ChunkObservation> observations, math::Matrix& out) const {
  EstimatorCache cache;
  math::Matrix means;
  emission_means_into(observations, means, cache);
  emission_log_probs_from_means_into(observations, means, out);
}

math::Matrix Ehmm::emission_log_probs(
    std::span<const ChunkObservation> observations) const {
  math::Matrix logs;
  emission_log_probs_into(observations, logs);
  return logs;
}

void Ehmm::prepare(std::span<const ChunkObservation> observations,
                   Scratch& scratch) const {
  VERITAS_EXPECTS(!observations.empty());
  if (scratch.estimator_cache == nullptr) {
    // No owner-provided cross-session cache: give the scratch a private
    // one. It persists across this scratch's sessions (superset of the
    // old per-session memo) with memory bounded by the same byte budget
    // every other owner applies (entries derived from k, so large grids
    // don't balloon).
    EstimatorCache::Config config;
    config.capacity = EstimatorCache::entries_for_bytes(
        EstimatorCache::kDefaultByteBudget, space_.size(), multi_window_);
    scratch.estimator_cache = std::make_shared<EstimatorCache>(config);
  }
  // Zero-copy emission phase (PR 7): the L1 front-cache serves repeat
  // tuples without shard locks, and rows are consumed straight out of
  // cache-entry storage — a fully warm session does no row memcpy at
  // all. Bit-identical to the dense emission_means_into pipeline.
  {
    VERITAS_TRACE_SPAN("ehmm.emission_means", "ehmm");
    emission_mean_rows_into(observations, *scratch.estimator_cache,
                            scratch.estimator_l1, scratch.emission_rows,
                            scratch.emission_refs);
  }
  {
    VERITAS_TRACE_SPAN("ehmm.emission_logpdf", "ehmm");
    emission_log_probs_from_rows_into(observations, scratch.emission_rows,
                                      scratch.log_emission);
  }
  window_deltas_into(observations, scratch.deltas);
}

void Ehmm::viterbi_from(std::size_t n_obs, Scratch& scratch,
                        ViterbiResult& result) const {
  VERITAS_TRACE_SPAN("ehmm.viterbi", "ehmm");
  const std::size_t k = space_.size();
  const math::Matrix& log_emission = scratch.log_emission;
  const KernelOps& ops = math::simd_kernels::active_ops();

  result.scores.resize_padded(n_obs, k, kNegInf);
  const std::size_t stride = result.scores.col_stride();
  // back[n * stride + i]: predecessor of the best path reaching (n, i).
  scratch.back.assign(n_obs * stride, 0);

  const auto initial = transition_.initial();
  {
    double* scores0 = result.scores.row_data(0);
    const double* e0 = log_emission.row_data(0);
    for (std::size_t i = 0; i < k; ++i) {
      scores0[i] = safe_log(initial[i]) + e0[i];
    }
  }

  for (std::size_t n = 1; n < n_obs; ++n) {
    const TransitionModel::PowerView view =
        transition_.power_view(scratch.deltas[n]);
    const double* prev = result.scores.row_data(n - 1);
    double* curr = result.scores.row_data(n);
    const double* e_n = log_emission.row_data(n);
    std::uint32_t* back_n = scratch.back.data() + n * stride;
    DeltaTables tables;
    if (dense_tables(view, tables)) {
      ops.viterbi_step(prev, tables, k, e_n, curr, back_n);
      continue;
    }
    // Legacy fallback beyond the precomputed range: strided access with
    // log computed on the fly (rare; correctness over speed).
    const math::Matrix& a_delta = *view.p;
    for (std::size_t i = 0; i < k; ++i) {
      double best = kNegInf;
      std::size_t best_prev = 0;
      for (std::size_t j = 0; j < k; ++j) {
        const double candidate = prev[j] + safe_log(a_delta(j, i));
        if (candidate > best) {
          best = candidate;
          best_prev = j;
        }
      }
      curr[i] = best + e_n[i];
      back_n[i] = static_cast<std::uint32_t>(best_prev);
    }
  }

  // Backtrack from the best final state.
  std::size_t state = 0;
  double best_final = kNegInf;
  {
    const double* last = result.scores.row_data(n_obs - 1);
    for (std::size_t i = 0; i < k; ++i) {
      if (last[i] > best_final) {
        best_final = last[i];
        state = i;
      }
    }
  }
  result.log_likelihood = best_final;
  result.states.assign(n_obs, 0);
  for (std::size_t n = n_obs; n-- > 0;) {
    result.states[n] = state;
    if (n > 0) state = scratch.back[n * stride + state];
  }
}

void Ehmm::forward_backward_from(std::size_t n_obs, Scratch& scratch,
                                 ForwardBackwardResult& result) const {
  const std::size_t k = space_.size();
  const math::Matrix& log_emission = scratch.log_emission;
  const KernelOps& ops = math::simd_kernels::active_ops();

  // Row-scaled emissions: em(n, i) = exp(logE(n, i) - rowmax(n)). The
  // per-row constant folds into the forward scaling factors, keeping the
  // recursion in a safe numeric range for arbitrarily unlikely data.
  // Pads are exp(-inf - max) = 0, the sum-product neutral element.
  math::Matrix& em = scratch.em;
  em.resize_padded(n_obs, k, 0.0);
  const std::size_t stride = em.col_stride();
  std::vector<double>& row_max = scratch.row_max;
  math::Matrix& alpha = scratch.alpha;
  std::vector<double>& log_scale = scratch.log_scale;
  std::vector<double>& row = scratch.row;
  {
    // The forward span includes the emission scaling: the scaled matrix
    // exists only to feed this sweep.
    VERITAS_TRACE_SPAN("ehmm.forward", "ehmm");
    row_max.assign(n_obs, kNegInf);
    for (std::size_t n = 0; n < n_obs; ++n) {
      const double* log_row = log_emission.row_data(n);
      double* em_row = em.row_data(n);
      for (std::size_t i = 0; i < k; ++i) {
        row_max[n] = std::max(row_max[n], log_row[i]);
      }
      // Degenerate guard: if every state is impossible, fall back to a
      // flat emission (the posterior then follows the prior).
      if (!std::isfinite(row_max[n])) {
        for (std::size_t i = 0; i < k; ++i) em_row[i] = 1.0;
        row_max[n] = 0.0;
        continue;
      }
      ops.exp_rows(log_row, row_max[n], stride, em_row);
    }

    // Forward pass with per-step normalization.
    alpha.resize_padded(n_obs, k, 0.0);
    log_scale.assign(n_obs, 0.0);
    row.assign(stride, 0.0);
    {
      const auto initial = transition_.initial();
      const double* em0 = em.row_data(0);
      for (std::size_t i = 0; i < k; ++i) row[i] = initial[i] * em0[i];
      const double scale = math::normalize(std::span<double>(row.data(), k));
      log_scale[0] = safe_log(scale) + row_max[0];
      double* alpha0 = alpha.row_data(0);
      for (std::size_t i = 0; i < k; ++i) alpha0[i] = row[i];
    }
    for (std::size_t n = 1; n < n_obs; ++n) {
      const TransitionModel::PowerView view =
          transition_.power_view(scratch.deltas[n]);
      const double* prev = alpha.row_data(n - 1);
      const double* em_n = em.row_data(n);
      DeltaTables tables;
      if (dense_tables(view, tables)) {
        ops.forward_step(prev, tables, k, em_n, row.data());
      } else {
        // Legacy fallback beyond the precomputed range: strided access.
        const math::Matrix& a_delta = *view.p;
        for (std::size_t i = 0; i < k; ++i) {
          double acc = 0.0;
          for (std::size_t j = 0; j < k; ++j) acc += prev[j] * a_delta(j, i);
          row[i] = acc * em_n[i];
        }
      }
      const double scale = math::normalize(std::span<double>(row.data(), k));
      log_scale[n] = safe_log(scale) + row_max[n];
      double* alpha_n = alpha.row_data(n);
      for (std::size_t i = 0; i < k; ++i) alpha_n[i] = row[i];
    }
  }

  // Backward pass using the same scaling factors, with the
  // pair-posterior normalizers Z_n (paper Eq. 6) fused into the same
  // sweep: the unscaled backward dot against A^Δ is exactly what the
  // pair total folds with alpha, so one stream over the tables yields
  // both. Only the scalar Z_n is kept — the scalar kernel accumulates it
  // in the exact element order the seed used when it materialized xi, so
  // everything reconstructed from it (sampler columns, Baum-Welch
  // counts, pair_posterior) stays bit-identical; the SIMD kernel
  // reassociates the sum across lanes within the tested tolerance.
  math::Matrix& beta = scratch.beta;
  // The backward span includes the pair totals and posterior marginals:
  // both fall out of the same sweep's products.
  VERITAS_TRACE_SPAN("ehmm.backward", "ehmm");
  beta.resize_padded(n_obs, k, 0.0);
  {
    double* beta_last = beta.row_data(n_obs - 1);
    for (std::size_t i = 0; i < k; ++i) beta_last[i] = 1.0;
  }
  result.pair_totals.assign(n_obs - 1, 0.0);
  for (std::size_t n = n_obs - 1; n-- > 0;) {
    const TransitionModel::PowerView view =
        transition_.power_view(scratch.deltas[n + 1]);
    const double* em_next = em.row_data(n + 1);
    const double* beta_next = beta.row_data(n + 1);
    const double* alpha_n = alpha.row_data(n);
    double* beta_n = beta.row_data(n);
    // The forward scale at step n+1 was exp(log_scale[n+1]); the scaled
    // beta recursion divides by the same *relative* factor, i.e. the
    // normalizer of the alpha row, so gamma = alpha .* beta normalizes
    // cleanly. Using the raw scale would reintroduce row_max, so divide
    // by the alpha-row normalizer only.
    double scale = std::exp(log_scale[n + 1] - row_max[n + 1]);
    if (scale <= 0.0) scale = 1.0;
    DeltaTables tables;
    if (dense_tables(view, tables)) {
      ops.backward_step(tables, k, em_next, beta_next, scale, beta_n,
                        alpha_n, &result.pair_totals[n]);
      continue;
    }
    // Legacy fallback beyond the precomputed range: strided access, beta
    // and pair total in the historical separate-accumulator order.
    const math::Matrix& a_delta = *view.p;
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      double acc = 0.0;
      const double* a_row = a_delta.row_data(i);
      const double alpha_i = alpha_n[i];
      for (std::size_t j = 0; j < k; ++j) {
        acc += a_row[j] * em_next[j] * beta_next[j];
        total += alpha_i * a_row[j] * em_next[j] * beta_next[j];
      }
      beta_n[i] = acc / scale;
    }
    result.pair_totals[n] = total;
  }

  result.log_likelihood = 0.0;
  for (const double s : log_scale) result.log_likelihood += s;

  // Posterior marginals gamma (unpadded: part of the public result).
  result.gamma.resize(n_obs, k, 0.0);
  for (std::size_t n = 0; n < n_obs; ++n) {
    const double* alpha_n = alpha.row_data(n);
    const double* beta_n = beta.row_data(n);
    double* gamma_n = result.gamma.row_data(n);
    for (std::size_t i = 0; i < k; ++i) gamma_n[i] = alpha_n[i] * beta_n[i];
    math::normalize(std::span<double>(gamma_n, k));
  }
}

math::Matrix Ehmm::pair_posterior(const ForwardBackwardResult& fb,
                                  const Scratch& scratch,
                                  std::size_t n) const {
  const std::size_t k = space_.size();
  VERITAS_EXPECTS(n < fb.pair_totals.size());
  VERITAS_EXPECTS(scratch.alpha.rows() == fb.gamma.rows());
  const math::Matrix& a_delta = transition_.power(scratch.deltas[n + 1]);
  const double* alpha_n = scratch.alpha.row_data(n);
  const double* em_next = scratch.em.row_data(n + 1);
  const double* beta_next = scratch.beta.row_data(n + 1);
  const double total = fb.pair_totals[n];
  math::Matrix pair(k, k, 0.0);
  if (total > 0.0) {
    for (std::size_t i = 0; i < k; ++i) {
      const double* a_row = a_delta.row_data(i);
      double* pair_row = pair.row_data(i);
      for (std::size_t j = 0; j < k; ++j) {
        pair_row[j] =
            alpha_n[i] * a_row[j] * em_next[j] * beta_next[j] / total;
      }
    }
  } else {
    // Degenerate: independent marginals (the seed's fallback).
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        pair(i, j) = fb.gamma(n, i) * fb.gamma(n + 1, j);
      }
    }
  }
  return pair;
}

std::vector<std::size_t> Ehmm::sample_posterior(
    const ViterbiResult& viterbi, const ForwardBackwardResult& fb,
    const Scratch& scratch, util::Rng& rng,
    const SamplerConfig& config) const {
  const std::size_t n_obs = viterbi.states.size();
  VERITAS_EXPECTS(n_obs >= 1);
  VERITAS_EXPECTS(fb.pair_totals.size() + 1 == n_obs);
  VERITAS_EXPECTS(fb.gamma.rows() == n_obs);
  VERITAS_EXPECTS(scratch.alpha.rows() == n_obs);
  const std::size_t k = fb.gamma.cols();

  std::vector<std::size_t> states(n_obs, 0);
  switch (config.last_state) {
    case SamplerConfig::LastState::kViterbi:
      states[n_obs - 1] = viterbi.states[n_obs - 1];
      break;
    case SamplerConfig::LastState::kPosterior:
      states[n_obs - 1] = rng.categorical(fb.gamma.row(n_obs - 1));
      break;
  }

  // Backward sampling through the pair posterior Γ: the needed column
  // Γ(·, next, n) is rebuilt from one alpha row, one A^Δ column and two
  // scalars — the same values the seed read out of its materialized xi.
  std::vector<double> weights(k, 0.0);
  for (std::size_t n = n_obs - 1; n-- > 0;) {
    const std::size_t next = states[n + 1];
    const double total_n = fb.pair_totals[n];
    double total = 0.0;
    if (total_n > 0.0) {
      const TransitionModel::PowerView view =
          transition_.power_view(scratch.deltas[n + 1]);
      const double* alpha_n = scratch.alpha.row_data(n);
      const double em_next = scratch.em(n + 1, next);
      const double beta_next = scratch.beta(n + 1, next);
      if (view.transposed != nullptr) {
        const double* a_col = view.transposed->row_data(next);
        for (std::size_t i = 0; i < k; ++i) {
          weights[i] =
              alpha_n[i] * a_col[i] * em_next * beta_next / total_n;
          total += weights[i];
        }
      } else {
        const math::Matrix& a_delta = *view.p;
        for (std::size_t i = 0; i < k; ++i) {
          weights[i] =
              alpha_n[i] * a_delta(i, next) * em_next * beta_next / total_n;
          total += weights[i];
        }
      }
    } else {
      // Degenerate pair: independent marginals.
      for (std::size_t i = 0; i < k; ++i) {
        weights[i] = fb.gamma(n, i) * fb.gamma(n + 1, next);
        total += weights[i];
      }
    }
    if (total <= 0.0) {
      // Degenerate column (the pinned next state has zero pair mass,
      // possible when the Viterbi path disagrees with smoothing tails):
      // fall back to the smoothed marginal at n.
      for (std::size_t i = 0; i < k; ++i) {
        weights[i] = fb.gamma(n, i);
      }
    }
    states[n] = rng.categorical(weights);
  }
  return states;
}

Ehmm::ViterbiResult Ehmm::viterbi(
    std::span<const ChunkObservation> observations, Scratch& scratch) const {
  prepare(observations, scratch);
  ViterbiResult result;
  viterbi_from(observations.size(), scratch, result);
  return result;
}

Ehmm::ViterbiResult Ehmm::viterbi(
    std::span<const ChunkObservation> observations) const {
  Scratch scratch;
  return viterbi(observations, scratch);
}

Ehmm::ForwardBackwardResult Ehmm::forward_backward(
    std::span<const ChunkObservation> observations, Scratch& scratch) const {
  prepare(observations, scratch);
  ForwardBackwardResult result;
  forward_backward_from(observations.size(), scratch, result);
  return result;
}

Ehmm::ForwardBackwardResult Ehmm::forward_backward(
    std::span<const ChunkObservation> observations) const {
  Scratch scratch;
  return forward_backward(observations, scratch);
}

Ehmm::ForwardBackwardResult Ehmm::forward_backward_from_means(
    std::span<const ChunkObservation> observations, const math::Matrix& means,
    Scratch& scratch) const {
  VERITAS_EXPECTS(!observations.empty());
  emission_log_probs_from_means_into(observations, means,
                                     scratch.log_emission);
  window_deltas_into(observations, scratch.deltas);
  ForwardBackwardResult result;
  forward_backward_from(observations.size(), scratch, result);
  return result;
}

Ehmm::InferencePass Ehmm::infer_fused(
    std::span<const ChunkObservation> observations, Scratch& scratch) const {
  prepare(observations, scratch);
  InferencePass pass;
  viterbi_from(observations.size(), scratch, pass.viterbi);
  forward_backward_from(observations.size(), scratch, pass.forward_backward);
  return pass;
}

}  // namespace veritas::core
