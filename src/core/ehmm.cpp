#include "core/ehmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/distributions.hpp"
#include "util/expects.hpp"

namespace veritas::core {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// log(x) tolerant of exact zero.
double safe_log(double x) { return x > 0.0 ? std::log(x) : kNegInf; }
}  // namespace

Ehmm::Ehmm(StateSpace space, TransitionModel transition,
           EmissionModel emission, double delta_s)
    : space_(std::move(space)),
      transition_(std::move(transition)),
      emission_(std::move(emission)),
      delta_s_(delta_s) {
  VERITAS_EXPECTS(delta_s_ > 0.0);
  VERITAS_EXPECTS(space_.size() == transition_.states());
}

std::size_t Ehmm::window_of(double t_s) const {
  VERITAS_EXPECTS(t_s >= 0.0);
  return static_cast<std::size_t>(t_s / delta_s_);
}

std::vector<std::size_t> Ehmm::window_deltas(
    std::span<const ChunkObservation> observations) const {
  VERITAS_EXPECTS(!observations.empty());
  std::vector<std::size_t> deltas(observations.size(), 0);
  for (std::size_t n = 1; n < observations.size(); ++n) {
    const std::size_t prev = window_of(observations[n - 1].start_s);
    const std::size_t curr = window_of(observations[n].start_s);
    VERITAS_EXPECTS(curr >= prev);
    deltas[n] = curr - prev;
  }
  return deltas;
}

math::Matrix Ehmm::emission_log_probs(
    std::span<const ChunkObservation> observations) const {
  VERITAS_EXPECTS(!observations.empty());
  const std::size_t n_obs = observations.size();
  const std::size_t k = space_.size();
  const bool multi_window =
      emission_.estimator() == EmissionModel::Estimator::kMultiWindow;
  math::Matrix logs(n_obs, k, kNegInf);
  for (std::size_t n = 0; n < n_obs; ++n) {
    for (std::size_t i = 0; i < k; ++i) {
      double candidate = space_.value(i);
      if (multi_window) {
        // Replace the candidate with its expected average over the
        // download span: first estimate the span from f at the start
        // value, then average E[C_{sn+m} | C_sn = candidate] over it.
        const double y0 =
            emission_.mean_throughput_mbps(candidate, observations[n]);
        if (y0 > 1e-9) {
          const double est_duration =
              observations[n].size_bytes * 8.0 / 1e6 / y0;
          const auto span_windows = std::min<std::size_t>(
              static_cast<std::size_t>(est_duration / delta_s_) + 1, 8);
          if (span_windows > 1) {
            double sum = 0.0;
            for (std::size_t m = 0; m < span_windows; ++m) {
              const math::Matrix& a_m = transition_.power(m);
              double expected = 0.0;
              for (std::size_t j = 0; j < k; ++j) {
                expected += a_m(i, j) * space_.value(j);
              }
              sum += expected;
            }
            candidate = sum / static_cast<double>(span_windows);
          }
        }
      }
      logs(n, i) = emission_.log_prob(candidate, observations[n]);
    }
  }
  return logs;
}

Ehmm::ViterbiResult Ehmm::viterbi(
    std::span<const ChunkObservation> observations) const {
  VERITAS_EXPECTS(!observations.empty());
  const std::size_t n_obs = observations.size();
  const std::size_t k = space_.size();
  const math::Matrix log_emission = emission_log_probs(observations);
  const std::vector<std::size_t> deltas = window_deltas(observations);

  ViterbiResult result;
  result.scores = math::Matrix(n_obs, k, kNegInf);
  // back(n, i): predecessor state of the best path reaching (n, i).
  std::vector<std::vector<std::size_t>> back(
      n_obs, std::vector<std::size_t>(k, 0));

  const auto initial = transition_.initial();
  for (std::size_t i = 0; i < k; ++i) {
    result.scores(0, i) = safe_log(initial[i]) + log_emission(0, i);
  }

  for (std::size_t n = 1; n < n_obs; ++n) {
    const math::Matrix& a_delta = transition_.power(deltas[n]);
    for (std::size_t i = 0; i < k; ++i) {
      double best = kNegInf;
      std::size_t best_prev = 0;
      for (std::size_t j = 0; j < k; ++j) {
        const double candidate =
            result.scores(n - 1, j) + safe_log(a_delta(j, i));
        if (candidate > best) {
          best = candidate;
          best_prev = j;
        }
      }
      result.scores(n, i) = best + log_emission(n, i);
      back[n][i] = best_prev;
    }
  }

  // Backtrack from the best final state.
  std::size_t state = 0;
  double best_final = kNegInf;
  for (std::size_t i = 0; i < k; ++i) {
    if (result.scores(n_obs - 1, i) > best_final) {
      best_final = result.scores(n_obs - 1, i);
      state = i;
    }
  }
  result.log_likelihood = best_final;
  result.states.assign(n_obs, 0);
  for (std::size_t n = n_obs; n-- > 0;) {
    result.states[n] = state;
    if (n > 0) state = back[n][state];
  }
  return result;
}

Ehmm::ForwardBackwardResult Ehmm::forward_backward(
    std::span<const ChunkObservation> observations) const {
  VERITAS_EXPECTS(!observations.empty());
  const std::size_t n_obs = observations.size();
  const std::size_t k = space_.size();
  const math::Matrix log_emission = emission_log_probs(observations);
  const std::vector<std::size_t> deltas = window_deltas(observations);

  // Row-scaled emissions: em(n, i) = exp(logE(n, i) - rowmax(n)). The
  // per-row constant folds into the forward scaling factors, keeping the
  // recursion in a safe numeric range for arbitrarily unlikely data.
  math::Matrix em(n_obs, k, 0.0);
  std::vector<double> row_max(n_obs, kNegInf);
  for (std::size_t n = 0; n < n_obs; ++n) {
    for (std::size_t i = 0; i < k; ++i) {
      row_max[n] = std::max(row_max[n], log_emission(n, i));
    }
    // Degenerate guard: if every state is impossible, fall back to a
    // flat emission (the posterior then follows the prior).
    if (!std::isfinite(row_max[n])) {
      for (std::size_t i = 0; i < k; ++i) em(n, i) = 1.0;
      row_max[n] = 0.0;
      continue;
    }
    for (std::size_t i = 0; i < k; ++i) {
      em(n, i) = std::exp(log_emission(n, i) - row_max[n]);
    }
  }

  // Forward pass with per-step normalization.
  math::Matrix alpha(n_obs, k, 0.0);
  std::vector<double> log_scale(n_obs, 0.0);
  {
    const auto initial = transition_.initial();
    std::vector<double> row(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) row[i] = initial[i] * em(0, i);
    const double scale = math::normalize(row);
    log_scale[0] = safe_log(scale) + row_max[0];
    for (std::size_t i = 0; i < k; ++i) alpha(0, i) = row[i];
  }
  for (std::size_t n = 1; n < n_obs; ++n) {
    const math::Matrix& a_delta = transition_.power(deltas[n]);
    std::vector<double> row(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        acc += alpha(n - 1, j) * a_delta(j, i);
      }
      row[i] = acc * em(n, i);
    }
    const double scale = math::normalize(row);
    log_scale[n] = safe_log(scale) + row_max[n];
    for (std::size_t i = 0; i < k; ++i) alpha(n, i) = row[i];
  }

  // Backward pass using the same scaling factors.
  math::Matrix beta(n_obs, k, 0.0);
  for (std::size_t i = 0; i < k; ++i) beta(n_obs - 1, i) = 1.0;
  for (std::size_t n = n_obs - 1; n-- > 0;) {
    const math::Matrix& a_delta = transition_.power(deltas[n + 1]);
    // The forward scale at step n+1 was exp(log_scale[n+1]); the scaled
    // beta recursion divides by the same *relative* factor, i.e. the
    // normalizer of the alpha row, so gamma = alpha .* beta normalizes
    // cleanly. Using the raw scale would reintroduce row_max, so divide
    // by the alpha-row normalizer only.
    double scale = std::exp(log_scale[n + 1] - row_max[n + 1]);
    if (scale <= 0.0) scale = 1.0;
    for (std::size_t i = 0; i < k; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        acc += a_delta(i, j) * em(n + 1, j) * beta(n + 1, j);
      }
      beta(n, i) = acc / scale;
    }
  }

  ForwardBackwardResult result;
  result.log_likelihood = 0.0;
  for (const double s : log_scale) result.log_likelihood += s;

  // Posterior marginals gamma.
  result.gamma = math::Matrix(n_obs, k, 0.0);
  for (std::size_t n = 0; n < n_obs; ++n) {
    std::vector<double> row(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) row[i] = alpha(n, i) * beta(n, i);
    math::normalize(row);
    for (std::size_t i = 0; i < k; ++i) result.gamma(n, i) = row[i];
  }

  // Pair posteriors Γ (paper Eq. 6).
  result.xi.reserve(n_obs - 1);
  for (std::size_t n = 0; n + 1 < n_obs; ++n) {
    const math::Matrix& a_delta = transition_.power(deltas[n + 1]);
    math::Matrix pair(k, k, 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        const double v =
            alpha(n, i) * a_delta(i, j) * em(n + 1, j) * beta(n + 1, j);
        pair(i, j) = v;
        total += v;
      }
    }
    if (total > 0.0) {
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) pair(i, j) /= total;
      }
    } else {
      // Degenerate: fall back to independent marginals.
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
          pair(i, j) = result.gamma(n, i) * result.gamma(n + 1, j);
        }
      }
    }
    result.xi.push_back(std::move(pair));
  }
  return result;
}

}  // namespace veritas::core
