// The Veritas Embedded Hidden Markov Model (paper §3.2).
//
// Differences from a textbook HMM:
//  * emissions come from the domain-specific TCP estimator f (EmissionModel)
//    conditioned on control variables (W_sn, S_n), not a fitted density;
//  * the chain is *embedded*: hidden GTBW states live on δ-second windows,
//    chunks start at arbitrary times, so the transition between chunk n-1
//    and chunk n is A^Δn with Δn = window(s_n) - window(s_{n-1}) — zero
//    (same window), one, or many window hops (paper Fig. 4).
//
// Implements the paper's Viterbi variant (Algorithm 3) and scaled
// Baum-Welch forward-backward variant (Algorithm 2) producing the pair
// posterior Γ used by the capacity sampler (Algorithm 1).
#pragma once

#include <span>
#include <vector>

#include "core/emission_model.hpp"
#include "core/observation.hpp"
#include "core/state_space.hpp"
#include "core/transition_model.hpp"
#include "math/matrix.hpp"

namespace veritas::core {

class Ehmm {
 public:
  /// Requires matching state counts and delta_s > 0 (the paper's δ).
  Ehmm(StateSpace space, TransitionModel transition, EmissionModel emission,
       double delta_s);

  const StateSpace& space() const noexcept { return space_; }
  const TransitionModel& transition() const noexcept { return transition_; }
  const EmissionModel& emission() const noexcept { return emission_; }
  double delta_s() const noexcept { return delta_s_; }

  /// GTBW window index of wall-clock time t.
  std::size_t window_of(double t_s) const;

  /// Δn for n = 1..N-1 (Δ[0] is defined as 0 and unused). Requires
  /// non-decreasing start times.
  std::vector<std::size_t> window_deltas(
      std::span<const ChunkObservation> observations) const;

  /// N x K matrix of log emission probabilities:
  /// (n, i) -> log P(Y_n | W_sn, S_n, C = value(i)).
  math::Matrix emission_log_probs(
      std::span<const ChunkObservation> observations) const;

  struct ViterbiResult {
    std::vector<std::size_t> states;  ///< MAP state index per chunk (I*)
    double log_likelihood = 0.0;      ///< log P(obs, I*) up to emission scaling
    /// viterbi_scores(n, i): best log score of any path ending in state i
    /// at chunk n. Column argmaxes give MAP end states for every prefix —
    /// used by interventional queries to avoid re-running per prefix.
    math::Matrix scores;
  };

  /// Paper Algorithm 3 (Viterbi with A^Δn), in log space.
  ViterbiResult viterbi(std::span<const ChunkObservation> observations) const;

  struct ForwardBackwardResult {
    /// gamma(n, i) = P(C_sn = value(i) | all observations).
    math::Matrix gamma;
    /// xi[n](i, j) = Γ_{i,j,n} = P(C_sn = i, C_s(n+1) = j | observations)
    /// for n = 0..N-2 (paper Eq. 6).
    std::vector<math::Matrix> xi;
    /// log P(observations) under the model.
    double log_likelihood = 0.0;
  };

  /// Paper Algorithm 2 (scaled forward-backward with A^Δn).
  ForwardBackwardResult forward_backward(
      std::span<const ChunkObservation> observations) const;

 private:
  StateSpace space_;
  TransitionModel transition_;
  EmissionModel emission_;
  double delta_s_;
};

}  // namespace veritas::core
