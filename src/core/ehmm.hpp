// The Veritas Embedded Hidden Markov Model (paper §3.2).
//
// Differences from a textbook HMM:
//  * emissions come from the domain-specific TCP estimator f (EmissionModel)
//    conditioned on control variables (W_sn, S_n), not a fitted density;
//  * the chain is *embedded*: hidden GTBW states live on δ-second windows,
//    chunks start at arbitrary times, so the transition between chunk n-1
//    and chunk n is A^Δn with Δn = window(s_n) - window(s_{n-1}) — zero
//    (same window), one, or many window hops (paper Fig. 4).
//
// Implements the paper's Viterbi variant (Algorithm 3) and scaled
// Baum-Welch forward-backward variant (Algorithm 2) producing the pair
// posterior Γ used by the capacity sampler (Algorithm 1).
//
// Hot-path layout: the model is immutable after construction — the dense
// A^Δ power table (with transposed / log-transposed variants) and the
// multi-window span-candidate table are precomputed in the constructor —
// so one Ehmm can serve many sessions from many threads. Per-session
// buffers live in Ehmm::Scratch, and infer_fused() runs Viterbi and
// forward-backward off a single shared emission/delta computation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/emission_model.hpp"
#include "core/estimator_cache.hpp"
#include "core/observation.hpp"
#include "core/state_space.hpp"
#include "core/transition_model.hpp"
#include "math/matrix.hpp"
#include "util/rng.hpp"

namespace veritas::core {

/// How the posterior capacity sampler (paper Algorithm 1) chooses the
/// final chunk's state before backward sampling.
struct SamplerConfig {
  enum class LastState {
    kViterbi,    ///< paper Algorithm 1: pin to the MAP final state
    kPosterior,  ///< pure FFBS: sample from gamma(N-1, ·)
  };
  LastState last_state = LastState::kViterbi;
};

class Ehmm {
 public:
  /// Dense A^Δ table size built at construction; Δ beyond it falls back
  /// to the TransitionModel's mutex-guarded memo (still correct, slower).
  static constexpr std::size_t kDefaultPrecomputedPowers = 64;

  /// Cap on the multi-window emission span (kMultiWindow estimator).
  static constexpr std::size_t kMaxSpanWindows = 8;

  /// Requires matching state counts and delta_s > 0 (the paper's δ).
  Ehmm(StateSpace space, TransitionModel transition, EmissionModel emission,
       double delta_s,
       std::size_t precompute_powers = kDefaultPrecomputedPowers);

  const StateSpace& space() const noexcept { return space_; }
  const TransitionModel& transition() const noexcept { return transition_; }
  const EmissionModel& emission() const noexcept { return emission_; }
  double delta_s() const noexcept { return delta_s_; }

  /// Reusable per-session workspace. A default-constructed Scratch works
  /// for any session; buffers grow to the largest session seen and are
  /// reused, so the recursions allocate nothing in steady state. Use one
  /// Scratch per thread. After forward_backward the alpha/beta/em/deltas
  /// buffers hold that session's tables — sample_posterior and
  /// pair_posterior read them instead of materialized xi matrices.
  ///
  /// All N x K matrices here have rows padded/aligned to the SIMD lane
  /// quantum (math::kRowPadDoubles) with neutral pad values (0 for
  /// probability-domain rows, -inf for log rows), so the vector kernels
  /// load whole lanes without masking. Logical shape is unchanged;
  /// iterate cols() or use row_data() + col_stride().
  struct Scratch {
    math::Matrix log_emission;        ///< N x K emission log-probs
    math::Matrix em;                  ///< row-scaled emissions exp(logE - max)
    math::Matrix alpha;               ///< scaled forward table
    math::Matrix beta;                ///< scaled backward table
    std::vector<std::size_t> deltas;  ///< Δn per chunk
    std::vector<double> row_max;      ///< per-row emission log max
    std::vector<double> log_scale;    ///< forward scaling factors
    std::vector<double> row;          ///< padded-K recursion buffer
    std::vector<std::uint32_t> back;  ///< flat N*stride Viterbi backpointers
    /// The (W, S) estimator memo consulted by the emission phase. Owners
    /// that serve many sessions against one model point this at a shared
    /// cross-session cache (InferenceEngine and baum_welch_train do it
    /// automatically); left null, prepare() lazily creates a private one
    /// that persists across this scratch's sessions — strictly more
    /// reuse than the per-session EmissionMemo it replaces, with memory
    /// bounded by the cache's capacity. Entries are keyed by the owning
    /// model's candidate-table id, so one cache can serve any number of
    /// models without cross-talk.
    std::shared_ptr<EstimatorCache> estimator_cache;
    /// Lock-free L1 front-cache over `estimator_cache` (PR 7 tentpole):
    /// repeat (W, S) tuples inside this scratch's sessions resolve to
    /// their memoized rows without touching the shared memo's sharded
    /// locks. Re-keyed automatically (owner pointer + epoch) when the
    /// scratch hops engines or the shared cache is clear()ed.
    EstimatorCache::L1 estimator_l1;
    /// Zero-copy emission means of the current session: row n of the
    /// N x K mean matrix as a pointer straight into the owning cache
    /// entry's storage (only k readable doubles — not padded). Filled by
    /// prepare() via emission_mean_rows_into; `emission_refs` pins every
    /// row's entry for the session so L1 displacement or shard flushes
    /// cannot free a row mid-recursion.
    std::vector<const double*> emission_rows;
    std::vector<std::shared_ptr<const EstimatorCache::Entry>> emission_refs;
  };

  /// GTBW window index of wall-clock time t.
  std::size_t window_of(double t_s) const;

  /// Δn for n = 1..N-1 (Δ[0] is defined as 0 and unused). Requires
  /// non-decreasing start times.
  std::vector<std::size_t> window_deltas(
      std::span<const ChunkObservation> observations) const;
  void window_deltas_into(std::span<const ChunkObservation> observations,
                          std::vector<std::size_t>& out) const;

  /// N x K matrix of log emission probabilities:
  /// (n, i) -> log P(Y_n | W_sn, S_n, C = value(i)).
  math::Matrix emission_log_probs(
      std::span<const ChunkObservation> observations) const;
  void emission_log_probs_into(std::span<const ChunkObservation> observations,
                               math::Matrix& out) const;

  /// N x K matrix of emission means: (n, i) -> f(candidate_i, W_sn, S_n),
  /// span-averaged under kMultiWindow. Each distinct (TCP state, size)
  /// tuple runs the batched estimator once and is memoized in `cache` —
  /// within the session (the old EmissionMemo dedup), across sessions,
  /// and across threads when the cache is shared. When `plain_means` is
  /// non-null it receives the un-averaged f(value(i), W, S) matrix —
  /// what Baum-Welch's σ re-estimate consumes; identical to `means`
  /// except under kMultiWindow, and filled from the same estimator
  /// evaluations. Results are bit-identical whether a row came from a
  /// hit or a miss (under quantization both paths evaluate the quantized
  /// inputs). When `l1` is non-null it is sync()ed to `cache` and
  /// consulted before the shared memo — pure acceleration, same bits.
  void emission_means_into(std::span<const ChunkObservation> observations,
                           math::Matrix& means, EstimatorCache& cache,
                           math::Matrix* plain_means = nullptr,
                           EstimatorCache::L1* l1 = nullptr) const;

  /// Zero-copy variant of emission_means_into: instead of memcpying each
  /// memoized row into a dense matrix, fills `rows[n]` with a pointer
  /// into the cache entry's own storage (k readable doubles, unpadded)
  /// and pins each entry in `refs` so the pointers outlive L1
  /// displacement and shard capacity flushes for the whole session.
  /// An L1 hit here costs a probe and one shared_ptr copy — no shard
  /// lock, no hash-map lookup, no row copy. Row values are bit-identical
  /// to the matrix API's. Plain (un-averaged) means are not exposed —
  /// Baum-Welch's σ path keeps the matrix API.
  void emission_mean_rows_into(
      std::span<const ChunkObservation> observations, EstimatorCache& cache,
      EstimatorCache::L1& l1, std::vector<const double*>& rows,
      std::vector<std::shared_ptr<const EstimatorCache::Entry>>& refs) const;

  /// Fingerprint of everything an emission-mean row depends on besides
  /// (W, S): estimator kind, TCP config, candidate values, span table
  /// and δ. Two models agree on every row iff their ids match, so the
  /// id scopes EstimatorCache entries (config/epoch invalidation).
  std::uint64_t emission_table_id() const noexcept {
    return emission_table_id_;
  }

  /// Emission log-probs from precomputed means:
  /// out(n, i) = log Normal(Y_n; means(n, i), σ). Composing this with
  /// emission_means_into is bit-identical to emission_log_probs_into.
  void emission_log_probs_from_means_into(
      std::span<const ChunkObservation> observations,
      const math::Matrix& means, math::Matrix& out) const;

  /// emission_log_probs_from_means_into over row pointers (as produced
  /// by emission_mean_rows_into) instead of a dense matrix —
  /// bit-identical to the matrix overload for equal row values.
  void emission_log_probs_from_rows_into(
      std::span<const ChunkObservation> observations,
      std::span<const double* const> rows, math::Matrix& out) const;

  struct ViterbiResult {
    std::vector<std::size_t> states;  ///< MAP state index per chunk (I*)
    double log_likelihood = 0.0;      ///< log P(obs, I*) up to emission scaling
    /// viterbi_scores(n, i): best log score of any path ending in state i
    /// at chunk n. Column argmaxes give MAP end states for every prefix —
    /// used by interventional queries to avoid re-running per prefix.
    math::Matrix scores;
  };

  /// Paper Algorithm 3 (Viterbi with A^Δn), in log space.
  ViterbiResult viterbi(std::span<const ChunkObservation> observations) const;
  ViterbiResult viterbi(std::span<const ChunkObservation> observations,
                        Scratch& scratch) const;

  struct ForwardBackwardResult {
    /// gamma(n, i) = P(C_sn = value(i) | all observations).
    math::Matrix gamma;
    /// pair_totals[n] = Σ_{i,j} α_n(i) A^Δ(i,j) ẽ_{n+1}(j) β_{n+1}(j) for
    /// n = 0..N-2: the normalizer of the pair posterior Γ_n (paper
    /// Eq. 6). Γ itself is no longer materialized — the seed allocated
    /// N-1 k×k xi matrices that only the sampler and Baum-Welch read;
    /// both now consume the alpha/beta/emission rows in Scratch
    /// directly, and pair_posterior() rebuilds one Γ_n on demand.
    std::vector<double> pair_totals;
    /// log P(observations) under the model.
    double log_likelihood = 0.0;
  };

  /// Paper Algorithm 2 (scaled forward-backward with A^Δn).
  ForwardBackwardResult forward_backward(
      std::span<const ChunkObservation> observations) const;
  ForwardBackwardResult forward_backward(
      std::span<const ChunkObservation> observations, Scratch& scratch) const;

  /// Forward-backward with caller-supplied emission means (as produced
  /// by emission_means_into). The means are invariant in (A, u, σ), so
  /// Baum-Welch computes them once per session and reuses them across
  /// EM iterations. Bit-identical to forward_backward when the means
  /// match the model's.
  ForwardBackwardResult forward_backward_from_means(
      std::span<const ChunkObservation> observations,
      const math::Matrix& means, Scratch& scratch) const;

  /// One pair posterior Γ_n (k×k), rebuilt from the scratch arenas of
  /// the forward_backward call that produced `fb`. Bit-identical to the
  /// xi[n] matrix the seed materialized, degenerate fallback included.
  /// Compatibility accessor for tests/diagnostics; hot paths never
  /// build the matrix.
  math::Matrix pair_posterior(const ForwardBackwardResult& fb,
                              const Scratch& scratch, std::size_t n) const;

  /// Draws one posterior state sequence (paper Algorithm 1): pins or
  /// samples the final state, then samples backward through the pair
  /// posterior — reconstructed on the fly from alpha/beta/emission rows
  /// in `scratch`, never materializing Γ. Draws are bit-identical to the
  /// seed's xi-based sampler for the same Rng state. Requires viterbi,
  /// fb and scratch from the same observations (e.g. via infer_fused).
  std::vector<std::size_t> sample_posterior(
      const ViterbiResult& viterbi, const ForwardBackwardResult& fb,
      const Scratch& scratch, util::Rng& rng,
      const SamplerConfig& config = {}) const;

  /// Fused single pass: emission log-probs and window deltas are computed
  /// once and shared by the Viterbi and forward-backward recursions.
  /// Produces bit-identical results to running the two passes separately.
  struct InferencePass {
    ViterbiResult viterbi;
    ForwardBackwardResult forward_backward;
  };
  InferencePass infer_fused(std::span<const ChunkObservation> observations,
                            Scratch& scratch) const;

 private:
  /// Runs the batched estimator for one (already-quantized) observation
  /// and fills `entry`: `mean` always (k doubles), `plain` only under
  /// kMultiWindow. The three buffers are span-estimation scratch reused
  /// across rows. Shared by the matrix and row-span emission paths so
  /// both produce bit-identical entries.
  void compute_cache_entry(const ChunkObservation& obs,
                           EstimatorCache::Entry& entry,
                           std::vector<double>& y0_row,
                           std::vector<double>& span_cands,
                           std::vector<std::uint8_t>& span_gt1) const;

  /// Fills scratch.log_emission and scratch.deltas for `observations`.
  void prepare(std::span<const ChunkObservation> observations,
               Scratch& scratch) const;

  /// Recursions over the prepared scratch (log_emission + deltas).
  void viterbi_from(std::size_t n_obs, Scratch& scratch,
                    ViterbiResult& result) const;
  void forward_backward_from(std::size_t n_obs, Scratch& scratch,
                             ForwardBackwardResult& result) const;

  StateSpace space_;
  TransitionModel transition_;
  EmissionModel emission_;
  double delta_s_;
  bool multi_window_ = false;
  std::vector<double> candidate_values_;  ///< space_.values(), batch input
  std::uint64_t emission_table_id_ = 0;
  /// Precomputed kMultiWindow candidates: (i, span) -> expected average
  /// of E[C_{sn+m} | C_sn = value(i)] over m = 0..span-1. Columns 0 and 1
  /// hold the plain state value. Empty unless the estimator is
  /// kMultiWindow.
  math::Matrix span_candidates_;
};

}  // namespace veritas::core
