#include "core/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/expects.hpp"

namespace veritas::core {

trace::BandwidthTrace baseline_trace(const sim::SessionLog& log,
                                     double interval_s,
                                     double total_duration_s) {
  VERITAS_EXPECTS(!log.chunks.empty());
  VERITAS_EXPECTS(interval_s > 0.0);
  const auto& chunks = log.chunks;

  const double horizon =
      std::max(total_duration_s, chunks.back().end_s + interval_s);
  const auto windows = std::max<std::size_t>(
      static_cast<std::size_t>(std::ceil(horizon / interval_s)), 1);

  std::vector<double> values(windows, 0.0);
  std::size_t next_chunk = 0;
  for (std::size_t w = 0; w < windows; ++w) {
    const double t = (static_cast<double>(w) + 0.5) * interval_s;
    while (next_chunk < chunks.size() && chunks[next_chunk].end_s < t) {
      ++next_chunk;
    }
    // next_chunk is the first chunk with end_s >= t (or past the end).
    if (next_chunk >= chunks.size()) {
      values[w] = chunks.back().throughput_mbps();
      continue;
    }
    const sim::ChunkLog& chunk = chunks[next_chunk];
    if (t >= chunk.start_s) {
      // Inside the download interval: observed throughput holds.
      values[w] = chunk.throughput_mbps();
    } else if (next_chunk == 0) {
      values[w] = chunk.throughput_mbps();
    } else {
      // Off period between chunk (next_chunk-1) and next_chunk:
      // linear interpolation between the two observed throughputs.
      const sim::ChunkLog& prev = chunks[next_chunk - 1];
      const double gap = chunk.start_s - prev.end_s;
      const double fraction =
          gap > 0.0 ? std::clamp((t - prev.end_s) / gap, 0.0, 1.0) : 1.0;
      values[w] = prev.throughput_mbps() +
                  fraction * (chunk.throughput_mbps() - prev.throughput_mbps());
    }
  }
  return trace::BandwidthTrace(interval_s, std::move(values));
}

}  // namespace veritas::core
