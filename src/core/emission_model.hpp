// EHMM emission model (paper Eq. 3):
//
//   P(Y_n | W_sn, S_n, C_sn = c) = Normal(f(c, W_sn, S_n), σ²)
//
// where f is the domain-specific TCP throughput estimator
// (net/throughput_estimator.hpp). The Gaussian absorbs f's residual
// error (paper Fig. 5); σ is a hyperparameter (0.5 Mbps default).
#pragma once

#include "core/observation.hpp"
#include "net/tcp_state.hpp"

namespace veritas::core {

class EmissionModel {
 public:
  /// Which throughput estimator drives the emission mean.
  enum class Estimator {
    kFullTcp,      ///< paper Algorithm 4 (slow start + SSR + CA)
    kNoTcpState,   ///< ablation: ignores W_sn (steady-state assumption)
    /// Extension: accounts for the GTBW evolving during the download
    /// (paper Eq. 3 deliberately ignores C_{sn+1}..C_en; this variant
    /// replaces the candidate with its expected average over the
    /// download span under the transition dynamics — handled inside
    /// Ehmm::emission_log_probs, which owns the transition model).
    kMultiWindow,
  };

  /// Requires sigma_mbps > 0.
  explicit EmissionModel(double sigma_mbps = 0.5,
                         net::TcpConfig tcp_config = {},
                         Estimator estimator = Estimator::kFullTcp);

  /// f(c, W, S): expected observed throughput at candidate GTBW c.
  double mean_throughput_mbps(double candidate_mbps,
                              const ChunkObservation& obs) const;

  /// f evaluated for a whole candidate row: out[i] =
  /// mean_throughput_mbps(candidates[i], obs) for i < k, bit-identical
  /// to the per-candidate composition. kFullTcp (and kMultiWindow's
  /// shared f) route through net::estimate_throughput_batch — one
  /// slow-start-restart application and one vectorized window evolution
  /// for the whole row instead of k scalar estimator calls.
  void mean_throughput_row(const double* candidates_mbps, std::size_t k,
                           const ChunkObservation& obs, double* out) const;

  /// log P(Y_n | W_sn, S_n, C = candidate).
  double log_prob(double candidate_mbps, const ChunkObservation& obs) const;

  /// log P(Y_n | ...) when the emission mean f(candidate, W, S) is
  /// already known — lets callers that computed the mean for span
  /// estimation skip a second estimator evaluation.
  double log_prob_given_mean(double mean_mbps,
                             const ChunkObservation& obs) const;

  double sigma_mbps() const noexcept { return sigma_mbps_; }
  Estimator estimator() const noexcept { return estimator_; }
  const net::TcpConfig& tcp_config() const noexcept { return tcp_config_; }

 private:
  double sigma_mbps_;
  net::TcpConfig tcp_config_;
  Estimator estimator_;
};

}  // namespace veritas::core
