#include "core/sampler.hpp"

namespace veritas::core {

std::vector<std::size_t> sample_capacity_states(
    const Ehmm& ehmm, const Ehmm::ViterbiResult& viterbi,
    const Ehmm::ForwardBackwardResult& forward_backward,
    const Ehmm::Scratch& scratch, util::Rng& rng,
    const SamplerConfig& config) {
  return ehmm.sample_posterior(viterbi, forward_backward, scratch, rng,
                               config);
}

}  // namespace veritas::core
