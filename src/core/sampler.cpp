#include "core/sampler.hpp"

#include "math/distributions.hpp"
#include "util/expects.hpp"

namespace veritas::core {

std::vector<std::size_t> sample_capacity_states(
    const Ehmm::ViterbiResult& viterbi,
    const Ehmm::ForwardBackwardResult& forward_backward, util::Rng& rng,
    const SamplerConfig& config) {
  const std::size_t n_obs = viterbi.states.size();
  VERITAS_EXPECTS(n_obs >= 1);
  VERITAS_EXPECTS(forward_backward.xi.size() + 1 == n_obs);
  const std::size_t k = forward_backward.gamma.cols();

  std::vector<std::size_t> states(n_obs, 0);

  switch (config.last_state) {
    case SamplerConfig::LastState::kViterbi:
      states[n_obs - 1] = viterbi.states[n_obs - 1];
      break;
    case SamplerConfig::LastState::kPosterior: {
      states[n_obs - 1] = rng.categorical(forward_backward.gamma.row(n_obs - 1));
      break;
    }
  }

  // Backward sampling through the pair posterior Γ.
  std::vector<double> weights(k, 0.0);
  for (std::size_t n = n_obs - 1; n-- > 0;) {
    const math::Matrix& pair = forward_backward.xi[n];
    const std::size_t next = states[n + 1];
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      weights[i] = pair(i, next);
      total += weights[i];
    }
    if (total <= 0.0) {
      // Degenerate column (the pinned next state has zero pair mass,
      // possible when the Viterbi path disagrees with smoothing tails):
      // fall back to the smoothed marginal at n.
      for (std::size_t i = 0; i < k; ++i) {
        weights[i] = forward_backward.gamma(n, i);
      }
    }
    states[n] = rng.categorical(weights);
  }
  return states;
}

}  // namespace veritas::core
