// The Veritas facade: the library's primary public API.
//
// Given a deployed system's session log (chunk sizes, timings and TCP
// states — no ground-truth bandwidth), Veritas performs the paper's
// abduction step: it infers the posterior over the latent GTBW process
// via its EHMM and returns (a) the MAP trace and (b) K posterior sample
// traces that a counterfactual engine can replay under a new setting,
// plus (c) interventional next-chunk predictions.
//
// The facade holds the configuration and delegates all inference to a
// shared immutable InferenceEngine (core/inference_engine.hpp), built
// once at construction: state space, transition model with its dense A^Δ
// power table, and emission tables are precomputed and reused across
// queries and threads. Use engine() / infer_batch() to serve many
// sessions in parallel on the same model.
//
// Typical use:
//   veritas::core::Veritas veritas;                  // paper defaults
//   auto result = veritas.infer(session_log);
//   for (const auto& trace : result.samples) { /* replay Setting B */ }
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/baseline.hpp"
#include "core/inference_engine.hpp"

namespace veritas::core {

/// Interventional prediction for one hypothetical next chunk.
struct NextChunkPrediction {
  double expected_gtbw_mbps = 0.0;  ///< E[C at next start | history]
  double throughput_mbps = 0.0;     ///< f(E[C], W, S)
  double download_time_s = 0.0;     ///< S / throughput
};

/// Full posterior-predictive distribution for one hypothetical next
/// chunk (extension beyond the paper's single most-likely sample):
/// the smoothed posterior over the current GTBW state propagated through
/// A^Δ, mapped through the estimator f per candidate state.
struct NextChunkDistribution {
  std::vector<double> gtbw_mbps;        ///< state values (ascending)
  std::vector<double> probabilities;    ///< P(next GTBW = value | history)
  std::vector<double> download_time_s;  ///< per-state predicted time

  /// Weighted quantile of the predicted download time, q in [0, 1].
  double time_quantile_s(double q) const;

  /// Posterior-mean predicted download time (states with zero estimated
  /// throughput contribute the worst finite state's time).
  double mean_time_s() const;
};

class Veritas {
 public:
  explicit Veritas(VeritasConfig config = {});

  /// Wraps an already-built engine (non-null) instead of constructing a
  /// new one — the service layer uses this to put a facade over a shard's
  /// shared engine without re-deriving the EHMM tables.
  explicit Veritas(std::shared_ptr<const InferenceEngine> engine);

  /// Abduction (paper Eq. 1): posterior over GTBW given the log.
  /// Requires a non-empty log. Deterministic in config().seed.
  VeritasResult infer(const sim::SessionLog& log) const;

  /// Batch abduction over many logs on the shared engine; `num_threads`
  /// = 0 uses the hardware thread count. Results are identical to
  /// calling infer() per log, independent of thread count.
  std::vector<VeritasResult> infer_batch(
      std::span<const sim::SessionLog> logs,
      std::size_t num_threads = 0) const;

  /// Predicts the download time of a hypothetical next chunk of
  /// `next_size_bytes` starting at `next_start_s` in TCP state `w`,
  /// given the session so far (paper §4.4: a single most-likely GTBW
  /// sample advanced through the transition matrix).
  NextChunkPrediction predict_next(const sim::SessionLog& history,
                                   double next_start_s,
                                   const net::TcpState& w,
                                   double next_size_bytes) const;

  /// Posterior-predictive variant of predict_next: instead of a point
  /// estimate from the most-likely state, returns the full distribution
  /// over next-chunk GTBW (smoothed posterior at the last chunk pushed
  /// through A^Δ) with per-state download-time predictions.
  NextChunkDistribution predict_next_distribution(
      const sim::SessionLog& history, double next_start_s,
      const net::TcpState& w, double next_size_bytes) const;

  /// Batch interventional sweep for evaluation (paper Fig. 12): for each
  /// chunk n >= 1 of `log`, predicts its download time from the prefix
  /// [0, n) using the chunk's recorded start time, TCP state and size.
  /// Entry 0 is a prior-only prediction. Cost: one Viterbi pass total.
  /// The scratch overload reuses a caller arena across calls (and
  /// consults the engine's cross-session estimator cache) — the service
  /// worker-lane path.
  std::vector<NextChunkPrediction> predict_sequence(
      const sim::SessionLog& log) const;
  std::vector<NextChunkPrediction> predict_sequence(
      const sim::SessionLog& log, Ehmm::Scratch& scratch) const;

  /// The Baseline reconstruction for the same log (paper §4.1), exposed
  /// here for side-by-side comparisons.
  trace::BandwidthTrace baseline(const sim::SessionLog& log) const;

  /// A copy of the configured EHMM (for tests / advanced use). Prefer
  /// engine().ehmm() to borrow the shared instance without copying.
  Ehmm make_ehmm() const;

  /// The shared immutable inference engine backing this facade.
  const InferenceEngine& engine() const noexcept { return *engine_; }

  /// Shared ownership of the engine, e.g. to hand to worker threads that
  /// outlive this facade.
  std::shared_ptr<const InferenceEngine> engine_ptr() const noexcept {
    return engine_;
  }

  const VeritasConfig& config() const noexcept { return engine_->config(); }

 private:
  NextChunkPrediction predict_from_state(std::size_t state,
                                         std::size_t delta_windows,
                                         const net::TcpState& w,
                                         double next_size_bytes,
                                         const Ehmm& ehmm) const;

  std::shared_ptr<const InferenceEngine> engine_;
};

}  // namespace veritas::core
