// The Veritas facade: the library's primary public API.
//
// Given a deployed system's session log (chunk sizes, timings and TCP
// states — no ground-truth bandwidth), Veritas performs the paper's
// abduction step: it infers the posterior over the latent GTBW process
// via its EHMM and returns (a) the MAP trace and (b) K posterior sample
// traces that a counterfactual engine can replay under a new setting,
// plus (c) interventional next-chunk predictions.
//
// Typical use:
//   veritas::core::Veritas veritas;                  // paper defaults
//   auto result = veritas.infer(session_log);
//   for (const auto& trace : result.samples) { /* replay Setting B */ }
#pragma once

#include <cstdint>
#include <vector>

#include "core/baseline.hpp"
#include "core/ehmm.hpp"
#include "core/reconstruction.hpp"
#include "core/sampler.hpp"
#include "trace/bandwidth_trace.hpp"

namespace veritas::core {

/// Hyperparameters (defaults are the paper's §4.1 settings).
struct VeritasConfig {
  double delta_s = 5.0;          ///< GTBW transition interval δ
  double epsilon_mbps = 0.5;     ///< GTBW quantization ε
  double sigma_mbps = 0.5;       ///< emission noise σ
  double max_mbps = 10.0;        ///< top of the state space
  double transition_stay = 0.8;  ///< tridiagonal stay probability
  TransitionPrior prior = TransitionPrior::kTridiagonal;
  std::size_t band_width = 3;    ///< used when prior == kBanded
  std::size_t num_samples = 5;   ///< posterior samples per query
  Interpolation interpolation = Interpolation::kLinear;
  EmissionModel::Estimator estimator = EmissionModel::Estimator::kFullTcp;
  SamplerConfig sampler;
  net::TcpConfig tcp;
  std::uint64_t seed = 1234;
};

/// Output of the abduction step.
struct VeritasResult {
  trace::BandwidthTrace map_trace;             ///< Viterbi MAP GTBW trace
  std::vector<trace::BandwidthTrace> samples;  ///< K posterior samples
  std::vector<double> map_states_mbps;         ///< MAP GTBW per chunk
  math::Matrix posterior_marginals;            ///< gamma: N x K
  double log_likelihood = 0.0;                 ///< log P(observations)
};

/// Interventional prediction for one hypothetical next chunk.
struct NextChunkPrediction {
  double expected_gtbw_mbps = 0.0;  ///< E[C at next start | history]
  double throughput_mbps = 0.0;     ///< f(E[C], W, S)
  double download_time_s = 0.0;     ///< S / throughput
};

/// Full posterior-predictive distribution for one hypothetical next
/// chunk (extension beyond the paper's single most-likely sample):
/// the smoothed posterior over the current GTBW state propagated through
/// A^Δ, mapped through the estimator f per candidate state.
struct NextChunkDistribution {
  std::vector<double> gtbw_mbps;        ///< state values (ascending)
  std::vector<double> probabilities;    ///< P(next GTBW = value | history)
  std::vector<double> download_time_s;  ///< per-state predicted time

  /// Weighted quantile of the predicted download time, q in [0, 1].
  double time_quantile_s(double q) const;

  /// Posterior-mean predicted download time (states with zero estimated
  /// throughput contribute the worst finite state's time).
  double mean_time_s() const;
};

class Veritas {
 public:
  explicit Veritas(VeritasConfig config = {});

  /// Abduction (paper Eq. 1): posterior over GTBW given the log.
  /// Requires a non-empty log. Deterministic in config().seed.
  VeritasResult infer(const sim::SessionLog& log) const;

  /// Predicts the download time of a hypothetical next chunk of
  /// `next_size_bytes` starting at `next_start_s` in TCP state `w`,
  /// given the session so far (paper §4.4: a single most-likely GTBW
  /// sample advanced through the transition matrix).
  NextChunkPrediction predict_next(const sim::SessionLog& history,
                                   double next_start_s,
                                   const net::TcpState& w,
                                   double next_size_bytes) const;

  /// Posterior-predictive variant of predict_next: instead of a point
  /// estimate from the most-likely state, returns the full distribution
  /// over next-chunk GTBW (smoothed posterior at the last chunk pushed
  /// through A^Δ) with per-state download-time predictions.
  NextChunkDistribution predict_next_distribution(
      const sim::SessionLog& history, double next_start_s,
      const net::TcpState& w, double next_size_bytes) const;

  /// Batch interventional sweep for evaluation (paper Fig. 12): for each
  /// chunk n >= 1 of `log`, predicts its download time from the prefix
  /// [0, n) using the chunk's recorded start time, TCP state and size.
  /// Entry 0 is a prior-only prediction. Cost: one Viterbi pass total.
  std::vector<NextChunkPrediction> predict_sequence(
      const sim::SessionLog& log) const;

  /// The Baseline reconstruction for the same log (paper §4.1), exposed
  /// here for side-by-side comparisons.
  trace::BandwidthTrace baseline(const sim::SessionLog& log) const;

  /// Builds the configured EHMM (for tests / advanced use).
  Ehmm make_ehmm() const;

  const VeritasConfig& config() const noexcept { return config_; }

 private:
  NextChunkPrediction predict_from_state(std::size_t state,
                                         std::size_t delta_windows,
                                         const net::TcpState& w,
                                         double next_size_bytes,
                                         const Ehmm& ehmm) const;

  VeritasConfig config_;
};

}  // namespace veritas::core
