// The Baseline bandwidth reconstruction the paper compares against
// (§4.1): use each chunk's observed throughput over its download
// interval, and linearly interpolate between neighbouring chunks during
// off periods. No causal adjustment — when the ABR downloads small
// chunks, observed throughput (and hence this estimate) underestimates
// the true bandwidth.
#pragma once

#include "sim/session_log.hpp"
#include "trace/bandwidth_trace.hpp"

namespace veritas::core {

/// Builds the Baseline estimate on a uniform grid of `interval_s`.
/// The trace covers [0, max(last chunk end, total_duration_s)).
trace::BandwidthTrace baseline_trace(const sim::SessionLog& log,
                                     double interval_s = 1.0,
                                     double total_duration_s = 0.0);

}  // namespace veritas::core
