// Posterior capacity sampler (paper Algorithm 1).
//
// Pins the final chunk's state to the Viterbi MAP estimate, then samples
// backward using the pair posterior Γ from forward-backward:
//   C_sN = I*_N ;  C_sn ~ Multinomial( Γ_{·, C_s(n+1), n} / Z ).
// Each call yields one plausible GTBW assignment at the chunk starts,
// capturing the uncertainty inherent in the inversion; Veritas replays
// several samples to produce a range of what-if outcomes.
//
// The sampler is xi-free: Γ is never materialized. The needed column is
// rebuilt on the fly from the alpha/beta/emission rows left in
// Ehmm::Scratch by the forward_backward pass (Ehmm::sample_posterior);
// this header keeps the free-function spelling and re-exports
// SamplerConfig (now defined next to Ehmm).
#pragma once

#include <span>
#include <vector>

#include "core/ehmm.hpp"
#include "util/rng.hpp"

namespace veritas::core {

/// Draws one state-index sequence (length N) from the posterior.
/// Requires viterbi/forward_backward/scratch computed from the same
/// observations (e.g. one Ehmm::infer_fused call). Forwards to
/// Ehmm::sample_posterior.
std::vector<std::size_t> sample_capacity_states(
    const Ehmm& ehmm, const Ehmm::ViterbiResult& viterbi,
    const Ehmm::ForwardBackwardResult& forward_backward,
    const Ehmm::Scratch& scratch, util::Rng& rng,
    const SamplerConfig& config = {});

}  // namespace veritas::core
