// Posterior capacity sampler (paper Algorithm 1).
//
// Pins the final chunk's state to the Viterbi MAP estimate, then samples
// backward using the pair posterior Γ from forward-backward:
//   C_sN = I*_N ;  C_sn ~ Multinomial( Γ_{·, C_s(n+1), n} / Z ).
// Each call yields one plausible GTBW assignment at the chunk starts,
// capturing the uncertainty inherent in the inversion; Veritas replays
// several samples to produce a range of what-if outcomes.
#pragma once

#include <span>
#include <vector>

#include "core/ehmm.hpp"
#include "util/rng.hpp"

namespace veritas::core {

struct SamplerConfig {
  /// How the final chunk's state is chosen before backward sampling.
  enum class LastState {
    kViterbi,    ///< paper Algorithm 1: pin to the MAP final state
    kPosterior,  ///< pure FFBS: sample from gamma(N-1, ·)
  };
  LastState last_state = LastState::kViterbi;
};

/// Draws one state-index sequence (length N) from the posterior.
/// Requires viterbi/fb computed from the same observations.
std::vector<std::size_t> sample_capacity_states(
    const Ehmm::ViterbiResult& viterbi,
    const Ehmm::ForwardBackwardResult& forward_backward, util::Rng& rng,
    const SamplerConfig& config = {});

}  // namespace veritas::core
