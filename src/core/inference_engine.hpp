// The fused EHMM inference engine: one immutable model, many sessions.
//
// The engine owns a fully precomputed Ehmm (state space, transition model
// with its dense A^Δ power table, emission model with the multi-window
// span-candidate table) and processes each session in a single fused
// pass: emission log-probs and window deltas are computed once and shared
// by Viterbi, forward-backward and posterior sampling. Per-session
// buffers come from reusable Ehmm::Scratch arenas, so steady-state
// inference allocates only its results.
//
// Because the model is immutable after construction, one engine can be
// shared by any number of threads; infer_batch() fans a set of session
// logs across a worker pool (one scratch arena per lane) and returns
// results identical to the serial path regardless of thread count.
//
// Veritas (core/veritas.hpp) is a thin facade over this class; use the
// engine directly when serving many sessions against one configuration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/ehmm.hpp"
#include "core/reconstruction.hpp"
#include "core/sampler.hpp"
#include "net/tcp_state.hpp"
#include "trace/bandwidth_trace.hpp"

namespace veritas::core {

/// Hyperparameters (defaults are the paper's §4.1 settings).
struct VeritasConfig {
  double delta_s = 5.0;          ///< GTBW transition interval δ
  double epsilon_mbps = 0.5;     ///< GTBW quantization ε
  double sigma_mbps = 0.5;       ///< emission noise σ
  double max_mbps = 10.0;        ///< top of the state space
  double transition_stay = 0.8;  ///< tridiagonal stay probability
  TransitionPrior prior = TransitionPrior::kTridiagonal;
  std::size_t band_width = 3;    ///< used when prior == kBanded
  std::size_t num_samples = 5;   ///< posterior samples per query
  Interpolation interpolation = Interpolation::kLinear;
  EmissionModel::Estimator estimator = EmissionModel::Estimator::kFullTcp;
  SamplerConfig sampler;
  net::TcpConfig tcp;
  std::uint64_t seed = 1234;
  /// Dense A^Δ power-table size: window deltas below this are served
  /// lock-free from precomputed (padded) tables; deltas at or beyond it
  /// fall back to the transition model's mutex-guarded memo with the
  /// slower strided kernels (see bench_micro_core BM_TransitionPower*).
  /// Raise it for workloads with long in-session gaps, lower it to trim
  /// engine build time / memory for short sessions.
  std::size_t precomputed_powers = Ehmm::kDefaultPrecomputedPowers;
  /// Byte budget of the engine-owned cross-session (W, S) estimator
  /// cache shared by every scratch the engine serves (see
  /// core/estimator_cache.hpp; converted to an entry count from the
  /// state-space size, since each entry stores a k-double mean row —
  /// a fixed entry count would balloon on large grids). 0 disables
  /// caching for this engine: every infer call runs with a fresh
  /// per-session memo (the pre-PR 5 behavior). Exact keys by default,
  /// so the setting never changes results, only how often the TCP
  /// estimator actually runs.
  std::size_t estimator_cache_bytes = EstimatorCache::kDefaultByteBudget;
  /// Mantissa bits kept when quantizing estimator-cache inputs; 0 (the
  /// default) keys exact bit patterns and is bit-identical to no
  /// caching. Positive values collapse near-identical TCP snapshots
  /// onto shared entries (higher hit rate, bounded emission-mean error;
  /// hits remain bit-identical to the misses that filled them).
  unsigned estimator_cache_quant_bits = 0;
};

/// Output of the abduction step.
struct VeritasResult {
  trace::BandwidthTrace map_trace;             ///< Viterbi MAP GTBW trace
  std::vector<trace::BandwidthTrace> samples;  ///< K posterior samples
  std::vector<double> map_states_mbps;         ///< MAP GTBW per chunk
  math::Matrix posterior_marginals;            ///< gamma: N x K
  double log_likelihood = 0.0;                 ///< log P(observations)
};

/// Engine construction knobs (the config covers the model itself).
struct EngineOptions {
  /// Overrides VeritasConfig::precomputed_powers when non-zero; 0 (the
  /// default) defers to the config.
  std::size_t precomputed_powers = 0;
};

class InferenceEngine {
 public:
  /// Builds the immutable model. Validates the config (same contract as
  /// the Veritas facade).
  explicit InferenceEngine(VeritasConfig config, EngineOptions options = {});

  const VeritasConfig& config() const noexcept { return config_; }
  const Ehmm& ehmm() const noexcept { return ehmm_; }

  /// The engine's cross-session (W, S) estimator cache — shared by every
  /// scratch served through this engine (each infer path points the
  /// scratch at it); null when config().estimator_cache_bytes is 0.
  /// Thread-safe; exposed for stats and tests.
  const std::shared_ptr<EstimatorCache>& estimator_cache() const noexcept {
    return estimator_cache_;
  }

  /// Raw fused pass over one observation sequence: Viterbi + smoothing
  /// from a single emission/delta computation.
  Ehmm::InferencePass infer_session(
      std::span<const ChunkObservation> observations,
      Ehmm::Scratch& scratch) const;
  Ehmm::InferencePass infer_session(
      std::span<const ChunkObservation> observations) const;

  /// Full abduction for one session log (paper Eq. 1): MAP trace, K
  /// posterior sample traces, marginals. Deterministic in config().seed;
  /// identical to the seed two-pass Veritas::infer output. VeritasResult
  /// is a plain value type with no back-references into the engine, so a
  /// result can be cached and shared (e.g. behind shared_ptr<const>)
  /// independently of the engine's lifetime.
  VeritasResult infer(const sim::SessionLog& log, Ehmm::Scratch& scratch) const;
  VeritasResult infer(const sim::SessionLog& log) const;

  /// Sentinel for infer_with_seed's sample-count override: defer to
  /// config().num_samples.
  static constexpr std::size_t kConfigNumSamples = ~std::size_t{0};

  /// infer() with the posterior-sampling seed overridden: bit-identical
  /// to building an engine whose config differs only in `seed` and
  /// calling its infer() — the model itself is seed-independent. Lets a
  /// shared engine serve per-query seeds (e.g. per-session what-if
  /// queries) without rebuilding the EHMM tables.
  ///
  /// `num_samples` (kConfigNumSamples = the config's count) lets the
  /// service degrade gracefully under overload: samples are drawn from
  /// per-index forked RNG streams, so a result with m < K samples is
  /// bit-identical to the first m samples of the full K-sample result —
  /// degradation truncates the answer, it never changes it. 0 is
  /// allowed (MAP + marginals only).
  VeritasResult infer_with_seed(
      const sim::SessionLog& log, Ehmm::Scratch& scratch,
      std::uint64_t sample_seed,
      std::size_t num_samples = kConfigNumSamples) const;

  /// Abducts every log, fanning out over `num_threads` lanes (0 = the
  /// hardware thread count). Results are positionally identical to
  /// calling infer() per log — independent of thread count and schedule.
  std::vector<VeritasResult> infer_batch(
      std::span<const sim::SessionLog> logs,
      std::size_t num_threads = 0) const;

 private:
  /// Points `scratch` at the engine cache (when enabled) so the emission
  /// phase reuses rows across sessions, lanes and repeat queries.
  void attach_cache(Ehmm::Scratch& scratch) const;

  VeritasConfig config_;
  Ehmm ehmm_;
  std::shared_ptr<EstimatorCache> estimator_cache_;
};

}  // namespace veritas::core
