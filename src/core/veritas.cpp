#include "core/veritas.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "net/throughput_estimator.hpp"
#include "util/expects.hpp"

namespace veritas::core {

Veritas::Veritas(VeritasConfig config)
    : engine_(std::make_shared<const InferenceEngine>(config)) {}

Veritas::Veritas(std::shared_ptr<const InferenceEngine> engine)
    : engine_(std::move(engine)) {
  VERITAS_EXPECTS(engine_ != nullptr);
}

Ehmm Veritas::make_ehmm() const { return engine_->ehmm(); }

VeritasResult Veritas::infer(const sim::SessionLog& log) const {
  return engine_->infer(log);
}

std::vector<VeritasResult> Veritas::infer_batch(
    std::span<const sim::SessionLog> logs, std::size_t num_threads) const {
  return engine_->infer_batch(logs, num_threads);
}

NextChunkPrediction Veritas::predict_from_state(
    std::size_t state, std::size_t delta_windows, const net::TcpState& w,
    double next_size_bytes, const Ehmm& ehmm) const {
  // Expected GTBW after delta_windows transitions from `state`.
  const math::Matrix& a_delta = ehmm.transition().power(delta_windows);
  double expected = 0.0;
  for (std::size_t j = 0; j < ehmm.space().size(); ++j) {
    expected += a_delta(state, j) * ehmm.space().value(j);
  }
  NextChunkPrediction prediction;
  prediction.expected_gtbw_mbps = expected;
  prediction.throughput_mbps = net::estimate_throughput_mbps(
      expected, w, next_size_bytes, config().tcp);
  prediction.download_time_s =
      prediction.throughput_mbps > 0.0
          ? next_size_bytes * 8.0 / 1e6 / prediction.throughput_mbps
          : std::numeric_limits<double>::infinity();
  return prediction;
}

double NextChunkDistribution::time_quantile_s(double q) const {
  VERITAS_EXPECTS(q >= 0.0 && q <= 1.0);
  VERITAS_EXPECTS(!download_time_s.empty());
  // Sort states by predicted time and walk the cumulative mass.
  std::vector<std::size_t> order(download_time_s.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return download_time_s[a] < download_time_s[b];
  });
  double mass = 0.0;
  for (const std::size_t i : order) {
    mass += probabilities[i];
    if (mass >= q - 1e-12) return download_time_s[i];
  }
  return download_time_s[order.back()];
}

double NextChunkDistribution::mean_time_s() const {
  VERITAS_EXPECTS(!download_time_s.empty());
  // Substitute +inf entries (zero-throughput states) with the worst
  // finite prediction so the mean stays finite and conservative.
  double worst_finite = 0.0;
  for (const double t : download_time_s) {
    if (std::isfinite(t)) worst_finite = std::max(worst_finite, t);
  }
  double mean = 0.0;
  for (std::size_t i = 0; i < download_time_s.size(); ++i) {
    const double t =
        std::isfinite(download_time_s[i]) ? download_time_s[i] : worst_finite;
    mean += probabilities[i] * t;
  }
  return mean;
}

NextChunkDistribution Veritas::predict_next_distribution(
    const sim::SessionLog& history, double next_start_s,
    const net::TcpState& w, double next_size_bytes) const {
  VERITAS_EXPECTS(!history.chunks.empty());
  VERITAS_EXPECTS(next_size_bytes > 0.0);
  const std::vector<ChunkObservation> observations =
      observations_from_log(history);
  VERITAS_EXPECTS(next_start_s >= observations.back().start_s);
  const Ehmm& ehmm = engine_->ehmm();
  const std::size_t k = ehmm.space().size();

  // Smoothed posterior over the last chunk's state.
  const Ehmm::ForwardBackwardResult fb = ehmm.forward_backward(observations);
  const std::size_t last = observations.size() - 1;

  // Propagate through A^Δ to the next chunk's window.
  const std::size_t delta = ehmm.window_of(next_start_s) -
                            ehmm.window_of(observations.back().start_s);
  const math::Matrix& a_delta = ehmm.transition().power(delta);
  NextChunkDistribution dist;
  dist.gtbw_mbps = ehmm.space().values();
  dist.probabilities.assign(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    double p = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      p += fb.gamma(last, i) * a_delta(i, j);
    }
    dist.probabilities[j] = p;
  }

  dist.download_time_s.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    dist.download_time_s.push_back(net::estimate_download_time_s(
        dist.gtbw_mbps[j], w, next_size_bytes, config().tcp));
  }
  return dist;
}

NextChunkPrediction Veritas::predict_next(const sim::SessionLog& history,
                                          double next_start_s,
                                          const net::TcpState& w,
                                          double next_size_bytes) const {
  VERITAS_EXPECTS(!history.chunks.empty());
  VERITAS_EXPECTS(next_size_bytes > 0.0);
  const std::vector<ChunkObservation> observations =
      observations_from_log(history);
  VERITAS_EXPECTS(next_start_s >= observations.back().start_s);
  const Ehmm& ehmm = engine_->ehmm();
  const Ehmm::ViterbiResult viterbi = ehmm.viterbi(observations);
  const std::size_t delta = ehmm.window_of(next_start_s) -
                            ehmm.window_of(observations.back().start_s);
  return predict_from_state(viterbi.states.back(), delta, w, next_size_bytes,
                            ehmm);
}

std::vector<NextChunkPrediction> Veritas::predict_sequence(
    const sim::SessionLog& log) const {
  Ehmm::Scratch scratch;
  return predict_sequence(log, scratch);
}

std::vector<NextChunkPrediction> Veritas::predict_sequence(
    const sim::SessionLog& log, Ehmm::Scratch& scratch) const {
  const std::vector<ChunkObservation> observations =
      observations_from_log(log);
  const Ehmm& ehmm = engine_->ehmm();
  const std::size_t n_obs = observations.size();
  const std::size_t k = ehmm.space().size();

  // The emission phase of the Viterbi pass below goes through the
  // engine's cross-session (W, S) estimator cache, same as abduction —
  // assigned unconditionally (null clears any previous engine's cache a
  // reused lane scratch may still hold; see InferenceEngine::
  // attach_cache).
  scratch.estimator_cache = engine_->estimator_cache();

  // One full Viterbi pass; the prefix MAP end state at chunk n-1 is the
  // argmax of the scores column, because the Viterbi table of a prefix
  // equals the truncated full-run table.
  const Ehmm::ViterbiResult viterbi = ehmm.viterbi(observations, scratch);
  const std::vector<std::size_t> deltas = ehmm.window_deltas(observations);

  std::vector<NextChunkPrediction> predictions;
  predictions.reserve(n_obs);
  // Chunk 0: prior-only prediction (expected initial GTBW).
  {
    double expected = 0.0;
    const auto initial = ehmm.transition().initial();
    for (std::size_t j = 0; j < k; ++j) {
      expected += initial[j] * ehmm.space().value(j);
    }
    NextChunkPrediction p;
    p.expected_gtbw_mbps = expected;
    p.throughput_mbps = net::estimate_throughput_mbps(
        expected, observations[0].tcp, observations[0].size_bytes,
        config().tcp);
    p.download_time_s =
        p.throughput_mbps > 0.0
            ? observations[0].size_bytes * 8.0 / 1e6 / p.throughput_mbps
            : std::numeric_limits<double>::infinity();
    predictions.push_back(p);
  }
  for (std::size_t n = 1; n < n_obs; ++n) {
    std::size_t best_state = 0;
    double best_score = viterbi.scores(n - 1, 0);
    for (std::size_t i = 1; i < k; ++i) {
      if (viterbi.scores(n - 1, i) > best_score) {
        best_score = viterbi.scores(n - 1, i);
        best_state = i;
      }
    }
    predictions.push_back(predict_from_state(best_state, deltas[n],
                                             observations[n].tcp,
                                             observations[n].size_bytes, ehmm));
  }
  return predictions;
}

trace::BandwidthTrace Veritas::baseline(const sim::SessionLog& log) const {
  return baseline_trace(log);
}

}  // namespace veritas::core
