#include "core/baum_welch.hpp"

#include <cmath>
#include <limits>

#include "util/expects.hpp"

namespace veritas::core {

BaumWelchResult baum_welch_train(
    const Ehmm& initial,
    std::span<const std::vector<ChunkObservation>> sessions,
    const BaumWelchConfig& config) {
  VERITAS_EXPECTS(!sessions.empty());
  for (const auto& s : sessions) VERITAS_EXPECTS(!s.empty());
  VERITAS_EXPECTS(config.max_iterations >= 1);

  const std::size_t k = initial.space().size();
  math::Matrix a = initial.transition().matrix();
  std::vector<double> u(initial.transition().initial().begin(),
                        initial.transition().initial().end());
  double sigma = initial.emission().sigma_mbps();

  BaumWelchResult result{TransitionModel(a, u), sigma, {}, 0};

  double previous_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    const Ehmm model(initial.space(), TransitionModel(a, u),
                     EmissionModel(sigma, initial.emission().tcp_config(),
                                   initial.emission().estimator()),
                     initial.delta_s());

    math::Matrix transition_counts(k, k, config.smoothing);
    std::vector<double> initial_counts(k, config.smoothing);
    double residual_sq = 0.0;
    double residual_weight = 0.0;
    double total_ll = 0.0;

    for (const std::vector<ChunkObservation>& obs : sessions) {
      const Ehmm::ForwardBackwardResult fb = model.forward_backward(obs);
      total_ll += fb.log_likelihood;
      const std::vector<std::size_t> deltas = model.window_deltas(obs);

      for (std::size_t i = 0; i < k; ++i) {
        initial_counts[i] += fb.gamma(0, i);
      }
      for (std::size_t n = 0; n + 1 < obs.size(); ++n) {
        if (deltas[n + 1] != 1) continue;  // see header: Δ=1 pairs only
        for (std::size_t i = 0; i < k; ++i) {
          for (std::size_t j = 0; j < k; ++j) {
            transition_counts(i, j) += fb.xi[n](i, j);
          }
        }
      }
      if (config.update_sigma) {
        for (std::size_t n = 0; n < obs.size(); ++n) {
          for (std::size_t i = 0; i < k; ++i) {
            const double mean = model.emission().mean_throughput_mbps(
                model.space().value(i), obs[n]);
            const double r = obs[n].throughput_mbps - mean;
            residual_sq += fb.gamma(n, i) * r * r;
            residual_weight += fb.gamma(n, i);
          }
        }
      }
    }

    result.log_likelihoods.push_back(total_ll);
    result.iterations = iter + 1;

    // M-step.
    if (config.update_transition) {
      for (std::size_t i = 0; i < k; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < k; ++j) row_sum += transition_counts(i, j);
        for (std::size_t j = 0; j < k; ++j) {
          a(i, j) = transition_counts(i, j) / row_sum;
        }
      }
    }
    if (config.update_initial) {
      double sum = 0.0;
      for (const double c : initial_counts) sum += c;
      for (std::size_t i = 0; i < k; ++i) u[i] = initial_counts[i] / sum;
    }
    if (config.update_sigma && residual_weight > 0.0) {
      sigma = std::max(config.min_sigma_mbps,
                       std::sqrt(residual_sq / residual_weight));
    }

    result.transition = TransitionModel(a, u);
    result.sigma_mbps = sigma;

    if (std::isfinite(previous_ll) &&
        std::abs(total_ll - previous_ll) <=
            config.tolerance * (std::abs(previous_ll) + 1.0)) {
      break;
    }
    previous_ll = total_ll;
  }
  return result;
}

}  // namespace veritas::core
