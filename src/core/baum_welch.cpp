#include "core/baum_welch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expects.hpp"
#include "util/thread_pool.hpp"

namespace veritas::core {

namespace {

/// Expected sufficient statistics of one session, accumulated on its
/// E-step lane and merged into the global counts in session order.
struct SessionStats {
  math::Matrix transition_counts;  ///< k×k expected Δ=1 pair counts
  std::vector<double> initial;     ///< gamma(0, ·)
  double residual_sq = 0.0;
  double residual_weight = 0.0;
  double log_likelihood = 0.0;
};

/// Accumulates the session's statistics xi-free: the Δ=1 pair posterior
/// entries Γ_n(i,j) = α_n(i) A(i,j) ẽ_{n+1}(j) β_{n+1}(j) / Z_n are
/// formed term by term from the scratch arenas — the same values (same
/// operation order) the seed read out of materialized xi matrices.
void accumulate_session(const Ehmm& model,
                        std::span<const ChunkObservation> obs,
                        const Ehmm::ForwardBackwardResult& fb,
                        const Ehmm::Scratch& scratch,
                        const math::Matrix& plain_means,
                        const BaumWelchConfig& config, SessionStats& stats) {
  const std::size_t k = model.space().size();
  stats.transition_counts.resize(k, k, 0.0);
  stats.initial.assign(k, 0.0);
  stats.residual_sq = 0.0;
  stats.residual_weight = 0.0;
  stats.log_likelihood = fb.log_likelihood;

  for (std::size_t i = 0; i < k; ++i) {
    stats.initial[i] += fb.gamma(0, i);
  }

  const math::Matrix& a_one = model.transition().power(1);
  for (std::size_t n = 0; n + 1 < obs.size(); ++n) {
    if (scratch.deltas[n + 1] != 1) continue;  // see header: Δ=1 pairs only
    const double total = fb.pair_totals[n];
    if (total > 0.0) {
      const double* alpha_n = scratch.alpha.row_data(n);
      const double* em_next = scratch.em.row_data(n + 1);
      const double* beta_next = scratch.beta.row_data(n + 1);
      for (std::size_t i = 0; i < k; ++i) {
        const double alpha_i = alpha_n[i];
        const double* a_row = a_one.row_data(i);
        double* counts_row = stats.transition_counts.row_data(i);
        for (std::size_t j = 0; j < k; ++j) {
          counts_row[j] +=
              alpha_i * a_row[j] * em_next[j] * beta_next[j] / total;
        }
      }
    } else {
      // Degenerate pair: independent marginals (the seed's fallback).
      for (std::size_t i = 0; i < k; ++i) {
        double* counts_row = stats.transition_counts.row_data(i);
        for (std::size_t j = 0; j < k; ++j) {
          counts_row[j] += fb.gamma(n, i) * fb.gamma(n + 1, j);
        }
      }
    }
  }

  if (config.update_sigma) {
    for (std::size_t n = 0; n < obs.size(); ++n) {
      const double* mean_row = plain_means.row_data(n);
      for (std::size_t i = 0; i < k; ++i) {
        const double r = obs[n].throughput_mbps - mean_row[i];
        stats.residual_sq += fb.gamma(n, i) * r * r;
        stats.residual_weight += fb.gamma(n, i);
      }
    }
  }
}

}  // namespace

BaumWelchResult baum_welch_train(
    const Ehmm& initial,
    std::span<const std::vector<ChunkObservation>> sessions,
    const BaumWelchConfig& config) {
  VERITAS_EXPECTS(!sessions.empty());
  for (const auto& s : sessions) VERITAS_EXPECTS(!s.empty());
  VERITAS_EXPECTS(config.max_iterations >= 1);

  const std::size_t k = initial.space().size();
  const std::size_t n_sessions = sessions.size();
  math::Matrix a = initial.transition().matrix();
  std::vector<double> u(initial.transition().initial().begin(),
                        initial.transition().initial().end());
  double sigma = initial.emission().sigma_mbps();

  BaumWelchResult result{TransitionModel(a, u), sigma, {}, 0};

  // E-step lanes: `threads` total, pool workers plus the calling thread,
  // each with a private scratch arena. Session -> lane assignment is
  // dynamic; determinism comes from the ordered reduction below.
  std::size_t threads = config.num_threads == 0
                            ? util::ThreadPool::hardware_threads()
                            : config.num_threads;
  threads = std::clamp<std::size_t>(threads, 1, n_sessions);
  util::ThreadPool pool(threads - 1);
  std::vector<Ehmm::Scratch> scratch(pool.size() + 1);
  std::vector<SessionStats> stats(n_sessions);

  // One shared (W, S) estimator memo for the whole training run: rows
  // survive across E-step lanes and across EM iterations. The means are
  // invariant in (A, u, σ), so for the plain estimators every tuple is
  // computed exactly once per run; under kMultiWindow with
  // update_transition the candidate-table id moves with A each
  // iteration, making stale span-averaged rows unreachable by
  // construction. Sized from a byte budget so large state spaces don't
  // balloon resident memory.
  const bool multi_window_cache = initial.emission().estimator() ==
                                  EmissionModel::Estimator::kMultiWindow;
  EstimatorCache::Config cache_config;
  cache_config.capacity = EstimatorCache::entries_for_bytes(
      config.estimator_cache_bytes, initial.space().size(),
      multi_window_cache);
  auto estimator_cache = std::make_shared<EstimatorCache>(cache_config);
  for (Ehmm::Scratch& lane : scratch) {
    lane.estimator_cache = estimator_cache;
  }

  // The emission means f(candidate, W, S) do not depend on (A, u, σ), so
  // they are computed once per session and reused across iterations —
  // except under kMultiWindow with update_transition, where the
  // span-averaged candidates move with A. `plain` additionally holds the
  // un-averaged f(value(i)) matrix σ re-estimation needs; it aliases
  // `means` unless the estimator span-averages.
  const bool multi_window = initial.emission().estimator() ==
                            EmissionModel::Estimator::kMultiWindow;
  const bool reuse_means =
      config.reuse_emission_means &&
      !(multi_window && config.update_transition);
  const bool needs_plain = config.update_sigma && multi_window;
  std::vector<math::Matrix> means(n_sessions);
  std::vector<math::Matrix> plain(needs_plain ? n_sessions : 0);

  double previous_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    const Ehmm model(initial.space(), TransitionModel(a, u),
                     EmissionModel(sigma, initial.emission().tcp_config(),
                                   initial.emission().estimator()),
                     initial.delta_s());

    pool.parallel_for(n_sessions, [&](std::size_t worker, std::size_t idx) {
      const std::vector<ChunkObservation>& obs = sessions[idx];
      Ehmm::Scratch& lane = scratch[worker];
      if (iter == 0 || !reuse_means) {
        // The lane's L1 front-cache rides along: repeat tuples inside a
        // lane skip the shared memo's shard locks entirely. Rows are
        // bit-identical either way, so the thread-count determinism
        // argument is untouched.
        model.emission_means_into(obs, means[idx], *lane.estimator_cache,
                                  needs_plain ? &plain[idx] : nullptr,
                                  &lane.estimator_l1);
      }
      const Ehmm::ForwardBackwardResult fb =
          model.forward_backward_from_means(obs, means[idx], lane);
      accumulate_session(model, obs, fb, lane,
                         needs_plain ? plain[idx] : means[idx], config,
                         stats[idx]);
    });

    // Ordered reduction: session-index order, independent of which lane
    // produced each entry, so every thread count yields the same bits.
    math::Matrix transition_counts(k, k, config.smoothing);
    std::vector<double> initial_counts(k, config.smoothing);
    double residual_sq = 0.0;
    double residual_weight = 0.0;
    double total_ll = 0.0;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      const SessionStats& st = stats[s];
      total_ll += st.log_likelihood;
      for (std::size_t i = 0; i < k; ++i) {
        initial_counts[i] += st.initial[i];
        const double* counts_row = st.transition_counts.row_data(i);
        double* global_row = transition_counts.row_data(i);
        for (std::size_t j = 0; j < k; ++j) global_row[j] += counts_row[j];
      }
      residual_sq += st.residual_sq;
      residual_weight += st.residual_weight;
    }

    result.log_likelihoods.push_back(total_ll);
    result.iterations = iter + 1;

    // M-step.
    if (config.update_transition) {
      for (std::size_t i = 0; i < k; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < k; ++j) row_sum += transition_counts(i, j);
        for (std::size_t j = 0; j < k; ++j) {
          a(i, j) = transition_counts(i, j) / row_sum;
        }
      }
    }
    if (config.update_initial) {
      double sum = 0.0;
      for (const double c : initial_counts) sum += c;
      for (std::size_t i = 0; i < k; ++i) u[i] = initial_counts[i] / sum;
    }
    if (config.update_sigma && residual_weight > 0.0) {
      sigma = std::max(config.min_sigma_mbps,
                       std::sqrt(residual_sq / residual_weight));
    }

    result.transition = TransitionModel(a, u);
    result.sigma_mbps = sigma;

    if (std::isfinite(previous_ll) &&
        std::abs(total_ll - previous_ll) <=
            config.tolerance * (std::abs(previous_ll) + 1.0)) {
      break;
    }
    previous_ll = total_ll;
  }
  return result;
}

}  // namespace veritas::core
