// The per-chunk observation tuple the EHMM conditions on:
// (Y_n, W_sn, S_n, s_n, e_n). Converted from a deployed-system session
// log; deliberately excludes the ground-truth bandwidth.
#pragma once

#include <vector>

#include "net/tcp_state.hpp"
#include "sim/session_log.hpp"

namespace veritas::core {

struct ChunkObservation {
  double throughput_mbps = 0.0;  ///< Y_n = S_n / D_n
  net::TcpState tcp;             ///< W_sn
  double size_bytes = 0.0;       ///< S_n
  double start_s = 0.0;          ///< s_n
  double end_s = 0.0;            ///< e_n
};

/// Extracts observations from a session log. Requires a non-empty log
/// with strictly increasing chunk start times and end > start per chunk.
std::vector<ChunkObservation> observations_from_log(
    const sim::SessionLog& log);

}  // namespace veritas::core
