#include "core/transition_model.hpp"

#include <cmath>

#include "util/expects.hpp"

namespace veritas::core {

TransitionModel::TransitionModel(math::Matrix a, std::vector<double> initial)
    : a_(std::move(a)), initial_(std::move(initial)) {
  VERITAS_EXPECTS(a_.rows() == a_.cols());
  VERITAS_EXPECTS(a_.is_row_stochastic(1e-6));
  VERITAS_EXPECTS(initial_.size() == a_.rows());
  double sum = 0.0;
  for (const double p : initial_) {
    VERITAS_EXPECTS(p >= 0.0);
    sum += p;
  }
  VERITAS_EXPECTS(sum > 0.999 && sum < 1.001);
}

TransitionModel TransitionModel::tridiagonal(std::size_t states,
                                             double stay_prob) {
  VERITAS_EXPECTS(states >= 2);
  VERITAS_EXPECTS(stay_prob > 0.0 && stay_prob < 1.0);
  math::Matrix a(states, states, 0.0);
  const double step = (1.0 - stay_prob) / 2.0;
  for (std::size_t i = 0; i < states; ++i) {
    a(i, i) = stay_prob;
    if (i > 0) a(i, i - 1) = step;
    if (i + 1 < states) a(i, i + 1) = step;
    // Renormalize boundary rows.
    double row_sum = a(i, i);
    if (i > 0) row_sum += step;
    if (i + 1 < states) row_sum += step;
    a(i, i) += 1.0 - row_sum;
  }
  return TransitionModel(std::move(a),
                         std::vector<double>(states, 1.0 / double(states)));
}

TransitionModel TransitionModel::uniform(std::size_t states) {
  VERITAS_EXPECTS(states >= 2);
  const double p = 1.0 / static_cast<double>(states);
  return TransitionModel(math::Matrix(states, states, p),
                         std::vector<double>(states, p));
}

TransitionModel TransitionModel::banded(std::size_t states, std::size_t band,
                                        double decay) {
  VERITAS_EXPECTS(states >= 2);
  VERITAS_EXPECTS(band >= 1);
  VERITAS_EXPECTS(decay > 0.0 && decay < 1.0);
  math::Matrix a(states, states, 0.0);
  for (std::size_t i = 0; i < states; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < states; ++j) {
      const auto distance = i > j ? i - j : j - i;
      if (distance <= band) {
        a(i, j) = std::pow(decay, static_cast<double>(distance));
        row_sum += a(i, j);
      }
    }
    for (std::size_t j = 0; j < states; ++j) a(i, j) /= row_sum;
  }
  return TransitionModel(std::move(a),
                         std::vector<double>(states, 1.0 / double(states)));
}

const math::Matrix& TransitionModel::power(std::size_t delta) const {
  const auto it = power_cache_.find(delta);
  if (it != power_cache_.end()) return it->second;
  auto [inserted, ok] =
      power_cache_.emplace(delta, math::matrix_power(a_, delta));
  VERITAS_ENSURES(ok);
  return inserted->second;
}

}  // namespace veritas::core
