#include "core/transition_model.hpp"

#include <cmath>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "math/distributions.hpp"
#include "util/expects.hpp"

namespace veritas::core {

TransitionModel::TransitionModel(math::Matrix a, std::vector<double> initial)
    : a_(std::move(a)), initial_(std::move(initial)) {
  VERITAS_EXPECTS(a_.rows() == a_.cols());
  VERITAS_EXPECTS(a_.is_row_stochastic(1e-6));
  VERITAS_EXPECTS(initial_.size() == a_.rows());
  double sum = 0.0;
  for (const double p : initial_) {
    VERITAS_EXPECTS(p >= 0.0);
    sum += p;
  }
  VERITAS_EXPECTS(sum > 0.999 && sum < 1.001);
}

TransitionModel::TransitionModel(const TransitionModel& other)
    : a_(other.a_), initial_(other.initial_), dense_(other.dense_) {
  const std::shared_lock lock(other.overflow_mutex_);
  overflow_ = other.overflow_;
}

TransitionModel::TransitionModel(TransitionModel&& other) noexcept
    : a_(std::move(other.a_)),
      initial_(std::move(other.initial_)),
      dense_(std::move(other.dense_)) {
  // No lock: moving from a model concurrently served to other threads is
  // a caller bug regardless of the memo.
  overflow_ = std::move(other.overflow_);
}

TransitionModel& TransitionModel::operator=(const TransitionModel& other) {
  if (this == &other) return *this;
  TransitionModel copy(other);
  *this = std::move(copy);
  return *this;
}

TransitionModel& TransitionModel::operator=(TransitionModel&& other) noexcept {
  if (this == &other) return *this;
  a_ = std::move(other.a_);
  initial_ = std::move(other.initial_);
  dense_ = std::move(other.dense_);
  overflow_ = std::move(other.overflow_);
  return *this;
}

TransitionModel TransitionModel::tridiagonal(std::size_t states,
                                             double stay_prob) {
  VERITAS_EXPECTS(states >= 2);
  VERITAS_EXPECTS(stay_prob > 0.0 && stay_prob < 1.0);
  math::Matrix a(states, states, 0.0);
  const double step = (1.0 - stay_prob) / 2.0;
  for (std::size_t i = 0; i < states; ++i) {
    a(i, i) = stay_prob;
    if (i > 0) a(i, i - 1) = step;
    if (i + 1 < states) a(i, i + 1) = step;
    // Renormalize boundary rows.
    double row_sum = a(i, i);
    if (i > 0) row_sum += step;
    if (i + 1 < states) row_sum += step;
    a(i, i) += 1.0 - row_sum;
  }
  return TransitionModel(std::move(a),
                         std::vector<double>(states, 1.0 / double(states)));
}

TransitionModel TransitionModel::uniform(std::size_t states) {
  VERITAS_EXPECTS(states >= 2);
  const double p = 1.0 / static_cast<double>(states);
  return TransitionModel(math::Matrix(states, states, p),
                         std::vector<double>(states, p));
}

TransitionModel TransitionModel::banded(std::size_t states, std::size_t band,
                                        double decay) {
  VERITAS_EXPECTS(states >= 2);
  VERITAS_EXPECTS(band >= 1);
  VERITAS_EXPECTS(decay > 0.0 && decay < 1.0);
  math::Matrix a(states, states, 0.0);
  for (std::size_t i = 0; i < states; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < states; ++j) {
      const auto distance = i > j ? i - j : j - i;
      if (distance <= band) {
        a(i, j) = std::pow(decay, static_cast<double>(distance));
        row_sum += a(i, j);
      }
    }
    for (std::size_t j = 0; j < states; ++j) a(i, j) /= row_sum;
  }
  return TransitionModel(std::move(a),
                         std::vector<double>(states, 1.0 / double(states)));
}

void TransitionModel::precompute_powers(std::size_t max_delta) {
  if (dense_.size() > max_delta) return;
  const std::size_t k = states();
  // Padded copy: logical entries from `src` (optionally transposed),
  // pads filled with the operation's neutral element so SIMD kernels can
  // load full lanes past column k.
  const auto padded = [k](const math::Matrix& src, bool transpose,
                          bool log_of, double fill) {
    math::Matrix out;
    out.resize_padded(k, k, fill);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        const double v = transpose ? src(j, i) : src(i, j);
        out(i, j) = log_of ? math::safe_log(v) : v;
      }
    }
    return out;
  };
  dense_.reserve(max_delta + 1);
  for (std::size_t delta = dense_.size(); delta <= max_delta; ++delta) {
    const math::Matrix power = math::matrix_power(a_, delta);
    DenseEntry entry;
    entry.p = padded(power, false, false, 0.0);
    entry.transposed = padded(power, true, false, 0.0);
    entry.log_p = padded(power, false, true, math::kNegInf);
    entry.log_transposed = padded(power, true, true, math::kNegInf);
    dense_.push_back(std::move(entry));
  }
}

const math::Matrix& TransitionModel::power(std::size_t delta) const {
  if (delta < dense_.size()) return dense_[delta].p;
  // Read-mostly fast path: after a gap length is memoized once, every
  // later lookup shares the lock, so concurrent lanes replaying long-gap
  // sessions don't serialize. std::map node stability keeps the returned
  // reference valid across later insertions by other threads.
  {
    const std::shared_lock lock(overflow_mutex_);
    const auto it = overflow_.find(delta);
    if (it != overflow_.end()) return it->second;
  }
  const std::unique_lock lock(overflow_mutex_);
  // Re-check: another thread may have computed this delta between the
  // two locks; emplace would discard its (identical) matrix anyway, but
  // skipping the O(k³ log Δ) matrix_power is the point.
  const auto it = overflow_.find(delta);
  if (it != overflow_.end()) return it->second;
  const auto [inserted, ok] =
      overflow_.emplace(delta, math::matrix_power(a_, delta));
  VERITAS_ENSURES(ok);
  return inserted->second;
}

TransitionModel::PowerView TransitionModel::power_view(
    std::size_t delta) const {
  PowerView view;
  if (delta < dense_.size()) {
    const DenseEntry& entry = dense_[delta];
    view.p = &entry.p;
    view.transposed = &entry.transposed;
    view.log_p = &entry.log_p;
    view.log_transposed = &entry.log_transposed;
  } else {
    view.p = &power(delta);
  }
  return view;
}

}  // namespace veritas::core
