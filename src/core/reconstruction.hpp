// Reconstruction of a full GTBW time series from states at chunk starts.
//
// The sampler yields one GTBW state per *chunk*; the counterfactual
// replay needs a value for every δ-window of the session, including off
// periods with no downloads. The paper interpolates the intermediate
// windows from the sampled chunk-start states (§3.2, Algorithm 1).
#pragma once

#include <span>
#include <vector>

#include "core/observation.hpp"
#include "core/state_space.hpp"
#include "trace/bandwidth_trace.hpp"

namespace veritas::core {

/// How windows without chunk starts are filled.
enum class Interpolation {
  kLinear,  ///< linear in bandwidth between surrounding known windows
  kHold,    ///< hold the previous known value
};

/// Builds a δ-grid bandwidth trace covering [0, total_duration_s) from
/// per-chunk state indices. When several chunks start in one window the
/// last one wins. Requires states.size() == observations.size() >= 1.
trace::BandwidthTrace states_to_trace(
    const StateSpace& space, std::span<const std::size_t> states,
    std::span<const ChunkObservation> observations, double delta_s,
    double total_duration_s, Interpolation interpolation = Interpolation::kLinear);

}  // namespace veritas::core
