#include "core/state_space.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"

namespace veritas::core {

StateSpace::StateSpace(double epsilon_mbps, double max_mbps)
    : epsilon_mbps_(epsilon_mbps) {
  VERITAS_EXPECTS(epsilon_mbps > 0.0);
  VERITAS_EXPECTS(max_mbps >= epsilon_mbps);
  size_ = static_cast<std::size_t>(std::ceil(max_mbps / epsilon_mbps)) + 1;
  VERITAS_ENSURES(size_ >= 2);
}

double StateSpace::value(std::size_t i) const {
  VERITAS_EXPECTS(i < size_);
  return static_cast<double>(i) * epsilon_mbps_;
}

std::size_t StateSpace::nearest_index(double mbps) const {
  VERITAS_EXPECTS(mbps >= 0.0);
  const auto idx =
      static_cast<std::size_t>(std::llround(mbps / epsilon_mbps_));
  return std::min(idx, size_ - 1);
}

std::vector<double> StateSpace::values() const {
  std::vector<double> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(value(i));
  return out;
}

}  // namespace veritas::core
