#include "core/inference_engine.hpp"

#include <algorithm>
#include <utility>

#include "util/expects.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace veritas::core {

namespace {

Ehmm build_ehmm(const VeritasConfig& config, const EngineOptions& options) {
  StateSpace space(config.epsilon_mbps, config.max_mbps);
  TransitionModel transition = [&] {
    switch (config.prior) {
      case TransitionPrior::kUniform:
        return TransitionModel::uniform(space.size());
      case TransitionPrior::kBanded:
        return TransitionModel::banded(space.size(), config.band_width);
      case TransitionPrior::kTridiagonal:
      default:
        return TransitionModel::tridiagonal(space.size(),
                                            config.transition_stay);
    }
  }();
  EmissionModel emission(config.sigma_mbps, config.tcp, config.estimator);
  const std::size_t powers = options.precomputed_powers != 0
                                 ? options.precomputed_powers
                                 : config.precomputed_powers;
  return Ehmm(std::move(space), std::move(transition), std::move(emission),
              config.delta_s, powers);
}

}  // namespace

InferenceEngine::InferenceEngine(VeritasConfig config, EngineOptions options)
    : config_([&] {
        VERITAS_EXPECTS(config.delta_s > 0.0);
        VERITAS_EXPECTS(config.epsilon_mbps > 0.0);
        VERITAS_EXPECTS(config.sigma_mbps > 0.0);
        VERITAS_EXPECTS(config.max_mbps >= config.epsilon_mbps);
        VERITAS_EXPECTS(config.num_samples >= 1);
        return config;
      }()),
      ehmm_(build_ehmm(config_, options)) {
  if (config_.estimator_cache_bytes > 0) {
    EstimatorCache::Config cache_config;
    cache_config.capacity = EstimatorCache::entries_for_bytes(
        config_.estimator_cache_bytes, ehmm_.space().size(),
        config_.estimator == EmissionModel::Estimator::kMultiWindow);
    cache_config.quantize_mantissa_bits = config_.estimator_cache_quant_bits;
    estimator_cache_ = std::make_shared<EstimatorCache>(cache_config);
  }
}

void InferenceEngine::attach_cache(Ehmm::Scratch& scratch) const {
  // Overwrite unconditionally — including with null: a serving lane's
  // scratch hops between shards, and each job must consult exactly the
  // cache of the engine it pinned. Leaving a previous engine's cache
  // attached when this engine disabled its own would make results
  // depend on lane history (that cache may quantize), consume another
  // shard's budget, and pin a removed shard's memory. With null, the
  // Ehmm falls back to a fresh per-call private memo — the documented
  // cache-disabled semantics.
  scratch.estimator_cache = estimator_cache_;
}

Ehmm::InferencePass InferenceEngine::infer_session(
    std::span<const ChunkObservation> observations,
    Ehmm::Scratch& scratch) const {
  attach_cache(scratch);
  return ehmm_.infer_fused(observations, scratch);
}

Ehmm::InferencePass InferenceEngine::infer_session(
    std::span<const ChunkObservation> observations) const {
  Ehmm::Scratch scratch;
  return infer_session(observations, scratch);
}

VeritasResult InferenceEngine::infer(const sim::SessionLog& log,
                                     Ehmm::Scratch& scratch) const {
  return infer_with_seed(log, scratch, config_.seed);
}

VeritasResult InferenceEngine::infer_with_seed(
    const sim::SessionLog& log, Ehmm::Scratch& scratch,
    std::uint64_t sample_seed, std::size_t num_samples) const {
  VERITAS_TRACE_SPAN("engine.infer", "engine");
  if (num_samples == kConfigNumSamples) num_samples = config_.num_samples;
  attach_cache(scratch);
  const std::vector<ChunkObservation> observations =
      observations_from_log(log);
  const Ehmm::InferencePass pass = ehmm_.infer_fused(observations, scratch);
  const Ehmm::ViterbiResult& viterbi = pass.viterbi;
  const Ehmm::ForwardBackwardResult& fb = pass.forward_backward;

  const double total_duration = observations.back().end_s + config_.delta_s;

  VeritasResult result;
  result.log_likelihood = fb.log_likelihood;
  result.posterior_marginals = fb.gamma;
  result.map_states_mbps.reserve(observations.size());
  for (const std::size_t s : viterbi.states) {
    result.map_states_mbps.push_back(ehmm_.space().value(s));
  }
  result.map_trace =
      states_to_trace(ehmm_.space(), viterbi.states, observations,
                      config_.delta_s, total_duration, config_.interpolation);

  // Per-index forked streams: sample k is identical no matter how many
  // samples this call draws, which is what makes a degraded (truncated)
  // result a strict prefix of the full one.
  util::Rng rng(sample_seed);
  result.samples.reserve(num_samples);
  {
    VERITAS_TRACE_SPAN("engine.sample_posterior", "engine");
    for (std::size_t k = 0; k < num_samples; ++k) {
      util::Rng child = rng.fork(k);
      const std::vector<std::size_t> states =
          ehmm_.sample_posterior(viterbi, fb, scratch, child, config_.sampler);
      result.samples.push_back(
          states_to_trace(ehmm_.space(), states, observations, config_.delta_s,
                          total_duration, config_.interpolation));
    }
  }
  return result;
}

VeritasResult InferenceEngine::infer(const sim::SessionLog& log) const {
  Ehmm::Scratch scratch;
  return infer(log, scratch);
}

std::vector<VeritasResult> InferenceEngine::infer_batch(
    std::span<const sim::SessionLog> logs, std::size_t num_threads) const {
  std::vector<VeritasResult> results(logs.size());
  if (logs.empty()) return results;

  std::size_t threads = num_threads == 0
                            ? util::ThreadPool::hardware_threads()
                            : num_threads;
  threads = std::min(threads, logs.size());

  if (threads <= 1) {
    Ehmm::Scratch scratch;
    for (std::size_t i = 0; i < logs.size(); ++i) {
      results[i] = infer(logs[i], scratch);
    }
    return results;
  }

  // `threads` lanes total: threads - 1 workers plus the calling thread,
  // each with a private scratch arena against the shared immutable model.
  util::ThreadPool pool(threads - 1);
  std::vector<Ehmm::Scratch> scratch(pool.size() + 1);
  pool.parallel_for(logs.size(), [&](std::size_t worker, std::size_t index) {
    results[index] = infer(logs[index], scratch[worker]);
  });
  return results;
}

}  // namespace veritas::core
