#include "core/reconstruction.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"

namespace veritas::core {

trace::BandwidthTrace states_to_trace(
    const StateSpace& space, std::span<const std::size_t> states,
    std::span<const ChunkObservation> observations, double delta_s,
    double total_duration_s, Interpolation interpolation) {
  VERITAS_EXPECTS(!states.empty());
  VERITAS_EXPECTS(states.size() == observations.size());
  VERITAS_EXPECTS(delta_s > 0.0);
  VERITAS_EXPECTS(total_duration_s > 0.0);

  const auto total_windows = std::max<std::size_t>(
      static_cast<std::size_t>(std::ceil(total_duration_s / delta_s)), 1);

  // Known values at windows containing chunk starts (last chunk wins).
  constexpr double kUnknown = -1.0;
  std::vector<double> values(total_windows, kUnknown);
  for (std::size_t n = 0; n < states.size(); ++n) {
    VERITAS_EXPECTS(states[n] < space.size());
    const auto w = std::min(
        static_cast<std::size_t>(observations[n].start_s / delta_s),
        total_windows - 1);
    values[w] = space.value(states[n]);
  }

  // Fill leading unknowns with the first known value.
  std::size_t first_known = 0;
  while (values[first_known] == kUnknown) ++first_known;  // >= 1 known
  for (std::size_t w = 0; w < first_known; ++w) values[w] = values[first_known];

  // Fill interior gaps and the tail.
  std::size_t prev_known = first_known;
  for (std::size_t w = first_known + 1; w < total_windows; ++w) {
    if (values[w] == kUnknown) continue;
    const std::size_t gap = w - prev_known;
    if (gap > 1) {
      for (std::size_t g = 1; g < gap; ++g) {
        switch (interpolation) {
          case Interpolation::kLinear: {
            const double fraction =
                static_cast<double>(g) / static_cast<double>(gap);
            values[prev_known + g] =
                values[prev_known] +
                fraction * (values[w] - values[prev_known]);
            break;
          }
          case Interpolation::kHold:
            values[prev_known + g] = values[prev_known];
            break;
        }
      }
    }
    prev_known = w;
  }
  for (std::size_t w = prev_known + 1; w < total_windows; ++w) {
    values[w] = values[prev_known];
  }

  return trace::BandwidthTrace(delta_s, std::move(values));
}

}  // namespace veritas::core
