// Quantized GTBW state space (paper §3.2, "Hidden state transitions").
//
// Hidden states are bandwidth values on an ε grid:
// C = {0, ε, 2ε, ..., K·ε}. ε is the paper's "minimum GTBW discrepancy"
// hyperparameter (0.5 Mbps by default).
#pragma once

#include <cstddef>
#include <vector>

namespace veritas::core {

class StateSpace {
 public:
  /// States 0, ε, 2ε, ... up to at least max_mbps.
  /// Requires epsilon_mbps > 0 and max_mbps >= epsilon_mbps.
  StateSpace(double epsilon_mbps, double max_mbps);

  std::size_t size() const noexcept { return size_; }
  double epsilon_mbps() const noexcept { return epsilon_mbps_; }
  double max_mbps() const noexcept {
    return value(size_ - 1);
  }

  /// Bandwidth value of state i (= i * ε). Requires i < size().
  double value(std::size_t i) const;

  /// Index of the grid state nearest to `mbps` (clamped to the range).
  std::size_t nearest_index(double mbps) const;

  /// All state values, ascending.
  std::vector<double> values() const;

 private:
  double epsilon_mbps_;
  std::size_t size_;
};

}  // namespace veritas::core
