// GTBW transition model (paper Eq. 2): a row-stochastic matrix A over the
// quantized state space plus an initial distribution u.
//
// The paper's evaluation uses a tridiagonal A (bandwidth prefers to stay,
// may drift one ε step per δ window) and a uniform u. Embedded
// transitions between chunks separated by Δ windows use A^Δ (paper §3.2,
// "Evolution of the embedded GTBW"); powers are cached per distinct Δ.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "math/matrix.hpp"

namespace veritas::core {

/// Priors available for A (ablation bench: bench_ablate_transition).
enum class TransitionPrior {
  kTridiagonal,  ///< paper default: stay / +-1 step
  kUniform,      ///< no temporal structure (what Baseline implicitly assumes)
  kBanded,       ///< geometric decay over a wider band
};

class TransitionModel {
 public:
  /// Takes an arbitrary row-stochastic A and initial distribution u of
  /// matching size.
  TransitionModel(math::Matrix a, std::vector<double> initial);

  /// Paper default: P(stay) = stay_prob, P(+-ε) split evenly from the
  /// rest; rows renormalized at the boundaries. Uniform u.
  static TransitionModel tridiagonal(std::size_t states,
                                     double stay_prob = 0.8);

  /// Uniform A and u.
  static TransitionModel uniform(std::size_t states);

  /// Band of half-width `band` with geometric decay `decay` per step off
  /// the diagonal. Uniform u.
  static TransitionModel banded(std::size_t states, std::size_t band,
                                double decay = 0.5);

  std::size_t states() const noexcept { return a_.rows(); }
  const math::Matrix& matrix() const noexcept { return a_; }
  std::span<const double> initial() const noexcept { return initial_; }

  /// A^delta with caching (delta = 0 yields the identity).
  const math::Matrix& power(std::size_t delta) const;

 private:
  math::Matrix a_;
  std::vector<double> initial_;
  mutable std::map<std::size_t, math::Matrix> power_cache_;
};

}  // namespace veritas::core
