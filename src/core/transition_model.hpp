// GTBW transition model (paper Eq. 2): a row-stochastic matrix A over the
// quantized state space plus an initial distribution u.
//
// The paper's evaluation uses a tridiagonal A (bandwidth prefers to stay,
// may drift one ε step per δ window) and a uniform u. Embedded
// transitions between chunks separated by Δ windows use A^Δ (paper §3.2,
// "Evolution of the embedded GTBW").
//
// Powers are served from a dense immutable table built by
// precompute_powers(): entry Δ holds A^Δ plus transposed /
// elementwise-log variants, all with rows padded to the SIMD lane
// quantum (math::kRowPadDoubles) and pad columns holding neutral
// elements (0 for probabilities, -inf for logs) so vector kernels can
// load whole lanes without masking. The scalar recursions consume the
// transposed layouts with contiguous inner loops; the SIMD recursions
// stream the untransposed (or, backward, transposed) rows in
// column blocks. Lookups in the table are lock-free and safe to share
// across threads; deltas beyond the table fall back to a read-mostly
// shared_mutex memo (shared-lock hits, exclusive-lock first-compute) so
// arbitrarily long session gaps stay correct. The table size is
// configurable per engine (VeritasConfig::precomputed_powers).
#pragma once

#include <cstddef>
#include <map>
#include <shared_mutex>
#include <span>
#include <vector>

#include "math/matrix.hpp"

namespace veritas::core {

/// Priors available for A (ablation bench: bench_ablate_transition).
enum class TransitionPrior {
  kTridiagonal,  ///< paper default: stay / +-1 step
  kUniform,      ///< no temporal structure (what Baseline implicitly assumes)
  kBanded,       ///< geometric decay over a wider band
};

class TransitionModel {
 public:
  /// Takes an arbitrary row-stochastic A and initial distribution u of
  /// matching size.
  TransitionModel(math::Matrix a, std::vector<double> initial);

  TransitionModel(const TransitionModel& other);
  TransitionModel(TransitionModel&& other) noexcept;
  TransitionModel& operator=(const TransitionModel& other);
  TransitionModel& operator=(TransitionModel&& other) noexcept;

  /// Paper default: P(stay) = stay_prob, P(+-ε) split evenly from the
  /// rest; rows renormalized at the boundaries. Uniform u.
  static TransitionModel tridiagonal(std::size_t states,
                                     double stay_prob = 0.8);

  /// Uniform A and u.
  static TransitionModel uniform(std::size_t states);

  /// Band of half-width `band` with geometric decay `decay` per step off
  /// the diagonal. Uniform u.
  static TransitionModel banded(std::size_t states, std::size_t band,
                                double decay = 0.5);

  std::size_t states() const noexcept { return a_.rows(); }
  const math::Matrix& matrix() const noexcept { return a_; }
  std::span<const double> initial() const noexcept { return initial_; }

  /// Builds the dense power table for Δ = 0..max_delta. Not thread-safe;
  /// call once (e.g. at Ehmm construction) before sharing the model
  /// across threads. Idempotent: only grows the table.
  void precompute_powers(std::size_t max_delta);

  /// Number of dense entries (Δ < precomputed_powers() is lock-free).
  std::size_t precomputed_powers() const noexcept { return dense_.size(); }

  /// A^delta (delta = 0 yields the identity). Lock-free for deltas in the
  /// precomputed table (rows padded, see above); beyond it, a shared-lock
  /// memo find with exclusive-lock first-compute (rows unpadded).
  const math::Matrix& power(std::size_t delta) const;

  /// A^delta together with the precomputed transposed / log layouts. The
  /// non-`p` pointers are null for deltas beyond the dense table
  /// (callers fall back to the strided / log-on-the-fly loops).
  struct PowerView {
    const math::Matrix* p = nullptr;
    const math::Matrix* transposed = nullptr;      ///< T(i, j) = A^Δ(j, i)
    const math::Matrix* log_p = nullptr;           ///< log A^Δ(i, j)
    const math::Matrix* log_transposed = nullptr;  ///< L(i, j) = log A^Δ(j, i)
  };
  PowerView power_view(std::size_t delta) const;

 private:
  struct DenseEntry {
    math::Matrix p;
    math::Matrix transposed;
    math::Matrix log_p;
    math::Matrix log_transposed;
  };

  math::Matrix a_;
  std::vector<double> initial_;
  std::vector<DenseEntry> dense_;  ///< index = Δ; immutable once built
  /// Read-mostly memo guard: after a gap length is memoized once, every
  /// later lookup of it is a shared-lock map find, so concurrent serving
  /// lanes replaying long-gap sessions no longer serialize on each
  /// other. Writers (first sighting of a delta) take the exclusive lock
  /// and re-check under it.
  mutable std::shared_mutex overflow_mutex_;
  /// Memo for Δ beyond the dense table. std::map: node stability keeps
  /// returned references valid across later insertions.
  mutable std::map<std::size_t, math::Matrix> overflow_;
};

}  // namespace veritas::core
