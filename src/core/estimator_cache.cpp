#include "core/estimator_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <mutex>
#include <utility>

namespace veritas::core {

namespace {

/// splitmix64-style avalanche: the raw bit patterns that make up a key
/// are highly structured (shared exponents, trailing zeros), so mix
/// before folding.
std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::size_t EstimatorCache::KeyHash::operator()(
    const Key& key) const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t b : key.state_bits) {
    h = (h ^ mix(b)) * 0x2545f4914f6cdd1dULL;
  }
  h = (h ^ mix(key.size_bits)) * 0x2545f4914f6cdd1dULL;
  h = (h ^ mix(key.table_id)) * 0x2545f4914f6cdd1dULL;
  return static_cast<std::size_t>(h);
}

EstimatorCache::EstimatorCache(Config config)
    : config_(config),
      per_shard_capacity_(std::max<std::size_t>(
          1, std::max<std::size_t>(1, config.capacity) /
                 std::max<std::size_t>(1, config.shards))),
      shards_(std::make_unique<Shard[]>(
          std::max<std::size_t>(1, config.shards))) {
  config_.shards = std::max<std::size_t>(1, config.shards);
}

double EstimatorCache::quantize(double v) const noexcept {
  const unsigned bits = config_.quantize_mantissa_bits;
  if (bits == 0 || bits >= 52 || !std::isfinite(v)) return v;
  const std::uint64_t u = std::bit_cast<std::uint64_t>(v);
  const std::uint64_t mask = ~((std::uint64_t{1} << (52 - bits)) - 1);
  return std::bit_cast<double>(u & mask);
}

EstimatorCache::Key EstimatorCache::key_of(const net::TcpState& w,
                                           double size_bytes,
                                           std::uint64_t table_id) noexcept {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  Key key;
  key.state_bits = {bits(w.cwnd_segments), bits(w.ssthresh_segments),
                    bits(w.rto_s),         bits(w.min_rtt_s),
                    bits(w.rtt_s),         bits(w.last_send_gap_s),
                    0};
  // The seventh slot is reserved (kept zero) so the key layout can grow
  // a field without re-keying everything downstream.
  key.size_bits = bits(size_bytes);
  key.table_id = table_id;
  return key;
}

EstimatorCache::Shard& EstimatorCache::shard_for(
    const Key& key) const noexcept {
  return shards_[KeyHash{}(key) % config_.shards];
}

std::shared_ptr<const EstimatorCache::Entry> EstimatorCache::find(
    const Key& key) const {
  Shard& shard = shard_for(key);
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void EstimatorCache::insert(const Key& key,
                            std::shared_ptr<const Entry> entry) {
  Shard& shard = shard_for(key);
  std::unique_lock lock(shard.mutex);
  if (shard.map.size() >= per_shard_capacity_ &&
      shard.map.find(key) == shard.map.end()) {
    shard.map.clear();
    flushes_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto [it, inserted] = shard.map.try_emplace(key, std::move(entry));
  if (inserted) insertions_.fetch_add(1, std::memory_order_relaxed);
}

EstimatorCache::Stats EstimatorCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    std::shared_lock lock(shards_[i].mutex);
    s.entries += shards_[i].map.size();
  }
  return s;
}

void EstimatorCache::clear() {
  for (std::size_t i = 0; i < config_.shards; ++i) {
    std::unique_lock lock(shards_[i].mutex);
    shards_[i].map.clear();
  }
  // Published after the shards are empty so an L1 that syncs against the
  // new epoch can never re-pin a row the clear was meant to drop.
  epoch_.fetch_add(1, std::memory_order_release);
}

}  // namespace veritas::core
