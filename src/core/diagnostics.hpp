// Inference diagnostics: where is the abduction certain, and why?
//
// The paper's §4.2 explains Veritas's behaviour on an example trace: the
// posterior is tight where the deployed ABR downloaded chunks larger
// than the bandwidth-delay product (observed throughput ~ GTBW) and wide
// where chunks were small (many GTBW values explain the same
// observation). This module quantifies that per chunk — posterior
// entropy, informativeness (chunk size vs BDP at the MAP state) — and
// segments the session into certain/uncertain time spans, so users can
// judge how much to trust a what-if answer before acting on it.
#pragma once

#include <string>
#include <vector>

#include "core/veritas.hpp"

namespace veritas::core {

/// Per-chunk view of the posterior.
struct ChunkDiagnostic {
  std::size_t chunk = 0;
  double start_s = 0.0;
  double observed_throughput_mbps = 0.0;
  double map_gtbw_mbps = 0.0;
  double posterior_entropy_nats = 0.0;  ///< entropy of gamma(n, ·)
  double posterior_std_mbps = 0.0;      ///< std dev of the GTBW posterior
  /// True when the chunk carries strong evidence: its size exceeds the
  /// BDP at the MAP state, so the observation pins the bandwidth.
  bool informative = false;
};

/// A contiguous span of low-evidence chunks.
struct UncertainSpan {
  double begin_s = 0.0;
  double end_s = 0.0;
  double mean_entropy_nats = 0.0;
};

struct InferenceDiagnostics {
  std::vector<ChunkDiagnostic> chunks;
  std::vector<UncertainSpan> uncertain_spans;
  double mean_entropy_nats = 0.0;
  double max_entropy_nats = 0.0;        ///< log(K): fully uninformed
  double fraction_informative = 0.0;    ///< share of BDP-exceeding chunks

  /// Multi-line human-readable report.
  std::string summary() const;
};

/// Runs inference on the log and derives the diagnostics. The entropy
/// threshold (in units of the maximum log(K)) controls what counts as an
/// uncertain chunk when segmenting spans.
InferenceDiagnostics diagnose(const Veritas& veritas,
                              const sim::SessionLog& log,
                              double uncertain_entropy_fraction = 0.5);

}  // namespace veritas::core
