// Baum-Welch (EM) training of the EHMM hyperparameters from recorded
// sessions — an extension beyond the paper's fixed tridiagonal prior
// (the paper fixes A; its forward-backward variant is Algorithm 2).
//
// Embedded-chain caveat: transitions between chunks are A^Δn. The M-step
// accumulates expected transition counts only over consecutive-chunk
// pairs with Δ = 1 (exact sufficient statistics); Δ = 0 pairs carry no
// information about A and Δ > 1 pairs are skipped (documented
// approximation — exact EM would require conditional path expectations
// through A^Δ). With all Δ <= 1 this is exact EM and the likelihood is
// non-decreasing per iteration.
//
// The E-step is xi-free and parallel: each session's expected counts
// are accumulated straight from its alpha/beta/emission rows (no pair
// matrices materialized) on a util::ThreadPool lane, and the per-session
// statistics are reduced in session-index order — so the trained
// parameters are bit-identical for every thread count. Emission means
// (the TCP estimator f) are invariant in (A, u, σ) and are cached per
// session across EM iterations instead of recomputed each one.
#pragma once

#include <span>
#include <vector>

#include "core/ehmm.hpp"

namespace veritas::core {

struct BaumWelchConfig {
  std::size_t max_iterations = 30;
  double tolerance = 1e-4;        ///< relative log-likelihood improvement
  bool update_transition = true;
  bool update_initial = true;
  bool update_sigma = false;      ///< re-estimate emission noise σ
  double smoothing = 1e-6;        ///< additive smoothing of counts
  double min_sigma_mbps = 0.05;   ///< floor when update_sigma is on
  /// E-step lanes (sessions fan out across a util::ThreadPool); 0 means
  /// the hardware thread count. Any value yields bit-identical results:
  /// per-session statistics are merged in session order.
  std::size_t num_threads = 0;
  /// Cache each session's emission-mean matrix across EM iterations.
  /// Disabled automatically under kMultiWindow with update_transition
  /// (there the span-averaged means depend on A). The `false` setting is
  /// the bench ablation: re-run the TCP estimator every iteration.
  bool reuse_emission_means = true;
  /// Byte budget of the run-wide (W, S) estimator memo shared across
  /// E-step lanes and EM iterations (converted to entries from the
  /// state-space size; see core/estimator_cache.hpp).
  std::size_t estimator_cache_bytes = EstimatorCache::kDefaultByteBudget;
};

struct BaumWelchResult {
  TransitionModel transition;           ///< trained A and u
  double sigma_mbps = 0.0;              ///< trained (or original) σ
  std::vector<double> log_likelihoods;  ///< total LL per iteration
  std::size_t iterations = 0;
};

/// Trains from one or more sessions' observations, starting from the
/// parameters of `initial`. Requires at least one non-empty session.
BaumWelchResult baum_welch_train(
    const Ehmm& initial,
    std::span<const std::vector<ChunkObservation>> sessions,
    const BaumWelchConfig& config = {});

}  // namespace veritas::core
