// Shared experiment plumbing for benches, examples and integration tests:
// deployment runs over trace families, environment-variable scaling, and
// CSV artifact output.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "query/counterfactual.hpp"
#include "sim/session_log.hpp"
#include "trace/trace_generator.hpp"
#include "video/video.hpp"

namespace veritas::query {

/// A deployment: one setting run over every trace of a family.
struct DeploymentConfig {
  trace::TraceFamily family = trace::TraceFamily::kFccLike;
  std::size_t num_traces = 40;
  Setting setting;                ///< defaults to MPC / 5 s / default ladder
  double rtt_s = 0.08;
  std::uint64_t trace_seed = 2024;
  std::uint64_t session_seed = 9;
};

/// Runs the deployment and returns one session log per trace.
std::vector<sim::SessionLog> run_deployment(const DeploymentConfig& config,
                                            const video::Video& video);

/// Ground-truth traces for a deployment (same seeds as run_deployment).
std::vector<trace::BandwidthTrace> deployment_traces(
    const DeploymentConfig& config);

/// Number of traces benches should use: VERITAS_BENCH_TRACES if set,
/// else `fallback`; VERITAS_BENCH_FAST=1 caps it at 6.
std::size_t bench_trace_count(std::size_t fallback = 40);

/// True when VERITAS_BENCH_FAST=1 (shrinks sweeps for smoke runs).
bool bench_fast_mode();

/// Directory for bench CSV artifacts (bench_results/ under the current
/// directory); returns std::nullopt when it cannot be created.
std::optional<std::filesystem::path> bench_output_dir();

/// Writes `csv_text` to bench_results/<name> when possible; returns the
/// path written to, if any. Never throws.
std::optional<std::filesystem::path> write_bench_artifact(
    const std::string& name, const std::string& csv_text);

}  // namespace veritas::query
