// Counterfactual query engine (paper §3.3, Fig. 6 and §4.1-§4.3).
//
// Workflow per ground-truth trace:
//   1. run the deployed system (Setting A) on the GT trace -> session log;
//   2. Veritas abduction on the log -> K posterior GTBW sample traces;
//   3. build the Baseline reconstruction from the same log;
//   4. replay the counterfactual system (Setting B: different ABR, buffer
//      size or quality ladder) under (a) the GT trace — the true what-if
//      answer, (b) the Baseline trace, (c) each Veritas sample;
//   5. report QoE metrics; Veritas(Low)/(High) are the 2nd-lowest and
//      2nd-highest per-metric values across the K samples (paper §4.3).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/veritas.hpp"
#include "net/tcp_state.hpp"
#include "sim/metrics.hpp"
#include "trace/bandwidth_trace.hpp"
#include "video/video.hpp"

namespace veritas::service {
class VeritasService;  // service/veritas_service.hpp
}

namespace veritas::query {

/// A system design: which ABR, what buffer, which quality ladder.
struct Setting {
  std::string abr = "mpc";
  double buffer_capacity_s = 5.0;
  video::Ladder ladder;  ///< empty = keep the deployment video's ladder
};

/// What a production operator can compute from a log alone (no ground
/// truth): the Baseline answer and the Veritas posterior bracket.
struct WhatIfPrediction {
  sim::QoeMetrics baseline;  ///< Setting B on the Baseline reconstruction
  std::vector<sim::QoeMetrics> veritas_samples;
  sim::QoeMetrics veritas_low;   ///< per-metric 2nd-lowest across samples
  sim::QoeMetrics veritas_high;  ///< per-metric 2nd-highest across samples
};

/// Metrics for one replayed scheme, plus Veritas's per-metric bracket.
/// Extends WhatIfPrediction with the oracle answer, which only an
/// emulation study (where GT is known) can provide.
struct CounterfactualOutcome {
  sim::QoeMetrics actual;    ///< Setting B on the GT trace (oracle answer)
  sim::QoeMetrics setting_a; ///< deployed system's own metrics (context)
  sim::QoeMetrics baseline;  ///< Setting B on the Baseline reconstruction
  std::vector<sim::QoeMetrics> veritas_samples;
  sim::QoeMetrics veritas_low;   ///< per-metric 2nd-lowest across samples
  sim::QoeMetrics veritas_high;  ///< per-metric 2nd-highest across samples
};

/// Runs one session of `setting` on `bandwidth` and returns its metrics.
/// The setting's ladder (when non-empty) re-encodes the video with
/// identical per-chunk content.
sim::QoeMetrics run_under_setting(const trace::BandwidthTrace& bandwidth,
                                  const video::Video& video,
                                  const Setting& setting, double rtt_s,
                                  std::uint64_t seed);

class CounterfactualEngine {
 public:
  explicit CounterfactualEngine(core::VeritasConfig veritas_config = {},
                                double rtt_s = 0.08);

  /// Service-backed: abduction routes through `service`'s shard `shard`
  /// (non-null, must be registered), sharing that shard's prebuilt
  /// engine and result cache with every other query in the process —
  /// repeated what-ifs over one log abduct once. Replays still run
  /// locally. Metrics are bit-identical to the config-based constructor
  /// called with the shard's VeritasConfig.
  CounterfactualEngine(std::shared_ptr<service::VeritasService> service,
                       std::string shard, double rtt_s = 0.08);

  /// Full pipeline for one GT trace (steps 1-5 above). `seed` drives the
  /// stochastic pieces (posterior sampling, any stochastic ABR).
  CounterfactualOutcome evaluate(const trace::BandwidthTrace& gt_trace,
                                 const video::Video& video,
                                 const Setting& setting_a,
                                 const Setting& setting_b,
                                 std::uint64_t seed = 0) const;

  /// The production workflow: answers the what-if query from a recorded
  /// log alone (steps 2-5; no ground-truth bandwidth required). This is
  /// what an operator runs on real deployment logs.
  WhatIfPrediction predict_whatif(const sim::SessionLog& log,
                                  const video::Video& video,
                                  const Setting& setting_b,
                                  std::uint64_t seed = 0) const;

  const core::VeritasConfig& veritas_config() const noexcept {
    return veritas_config_;
  }
  double rtt_s() const noexcept { return rtt_s_; }

 private:
  /// Posterior abduction for one log: through the service when backed,
  /// else on a locally built engine. `seed` perturbs sampling only.
  std::shared_ptr<const core::VeritasResult> abduct(const sim::SessionLog& log,
                                                    std::uint64_t seed) const;

  core::VeritasConfig veritas_config_;
  double rtt_s_;
  std::shared_ptr<service::VeritasService> service_;  ///< null = local
  std::string shard_;
};

}  // namespace veritas::query
