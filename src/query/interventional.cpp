#include "query/interventional.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"
#include "util/stats.hpp"

namespace veritas::query {

PredictorErrors summarize_errors(const std::vector<PredictionRecord>& records,
                                 bool veritas) {
  VERITAS_EXPECTS(!records.empty());
  std::vector<double> signed_errors;
  std::vector<double> abs_errors;
  signed_errors.reserve(records.size());
  abs_errors.reserve(records.size());
  PredictorErrors e;
  for (const PredictionRecord& r : records) {
    const double predicted = veritas ? r.veritas_time_s : r.fugu_time_s;
    const double err = predicted - r.true_time_s;
    signed_errors.push_back(err);
    abs_errors.push_back(std::abs(err));
    e.worst_underestimate_s = std::max(e.worst_underestimate_s, -err);
    e.worst_overestimate_s = std::max(e.worst_overestimate_s, err);
  }
  e.mean_abs_error_s = util::mean(abs_errors);
  e.median_error_s = util::median(signed_errors);
  e.p10_error_s = util::quantile(signed_errors, 0.10);
  return e;
}

InterventionalResult run_interventional_study(
    std::vector<sim::SessionLog> train_logs,
    std::vector<sim::SessionLog> test_logs,
    const core::VeritasConfig& veritas_config,
    const ml::FuguConfig& fugu_config, std::size_t warmup) {
  VERITAS_EXPECTS(!train_logs.empty());
  VERITAS_EXPECTS(!test_logs.empty());

  ml::FuguNN fugu(fugu_config);
  fugu.fit(train_logs);

  const core::Veritas veritas(veritas_config);
  if (warmup == 0) warmup = fugu_config.past_chunks;
  VERITAS_EXPECTS(warmup >= 1);

  InterventionalResult result;
  for (std::size_t s = 0; s < test_logs.size(); ++s) {
    const sim::SessionLog& log = test_logs[s];
    if (log.size() <= warmup) continue;
    // One Viterbi pass per session covers all prefixes.
    const std::vector<core::NextChunkPrediction> veritas_predictions =
        veritas.predict_sequence(log);
    for (std::size_t n = warmup; n < log.size(); ++n) {
      PredictionRecord record;
      record.session = s;
      record.chunk = n;
      record.size_bytes = log.chunks[n].size_bytes;
      record.true_time_s = log.chunks[n].download_time_s();
      record.fugu_time_s = fugu.predict_chunk(log, n);
      record.veritas_time_s = veritas_predictions[n].download_time_s;
      result.records.push_back(record);
    }
  }
  VERITAS_EXPECTS(!result.records.empty());
  result.fugu = summarize_errors(result.records, false);
  result.veritas = summarize_errors(result.records, true);
  return result;
}

}  // namespace veritas::query
