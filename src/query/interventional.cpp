#include "query/interventional.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <memory>

#include "service/veritas_service.hpp"
#include "util/expects.hpp"
#include "util/stats.hpp"

namespace veritas::query {

PredictorErrors summarize_errors(const std::vector<PredictionRecord>& records,
                                 bool veritas) {
  VERITAS_EXPECTS(!records.empty());
  std::vector<double> signed_errors;
  std::vector<double> abs_errors;
  signed_errors.reserve(records.size());
  abs_errors.reserve(records.size());
  PredictorErrors e;
  for (const PredictionRecord& r : records) {
    const double predicted = veritas ? r.veritas_time_s : r.fugu_time_s;
    const double err = predicted - r.true_time_s;
    signed_errors.push_back(err);
    abs_errors.push_back(std::abs(err));
    e.worst_underestimate_s = std::max(e.worst_underestimate_s, -err);
    e.worst_overestimate_s = std::max(e.worst_overestimate_s, err);
  }
  e.mean_abs_error_s = util::mean(abs_errors);
  e.median_error_s = util::median(signed_errors);
  e.p10_error_s = util::quantile(signed_errors, 0.10);
  return e;
}

namespace {

/// The study skeleton, parameterized over how the Veritas prediction
/// sequence of test session `s` is obtained (locally or via a service
/// shard). Sessions no longer than `warmup` are skipped without asking.
InterventionalResult run_study_with(
    const std::vector<sim::SessionLog>& train_logs,
    const std::vector<sim::SessionLog>& test_logs,
    const ml::FuguConfig& fugu_config, std::size_t warmup,
    const std::function<
        std::shared_ptr<const std::vector<core::NextChunkPrediction>>(
            std::size_t)>& predictions_for) {
  VERITAS_EXPECTS(!train_logs.empty());
  VERITAS_EXPECTS(!test_logs.empty());

  ml::FuguNN fugu(fugu_config);
  fugu.fit(train_logs);

  InterventionalResult result;
  for (std::size_t s = 0; s < test_logs.size(); ++s) {
    const sim::SessionLog& log = test_logs[s];
    if (log.size() <= warmup) continue;
    const auto veritas_predictions = predictions_for(s);
    for (std::size_t n = warmup; n < log.size(); ++n) {
      PredictionRecord record;
      record.session = s;
      record.chunk = n;
      record.size_bytes = log.chunks[n].size_bytes;
      record.true_time_s = log.chunks[n].download_time_s();
      record.fugu_time_s = fugu.predict_chunk(log, n);
      record.veritas_time_s = (*veritas_predictions)[n].download_time_s;
      result.records.push_back(record);
    }
  }
  VERITAS_EXPECTS(!result.records.empty());
  result.fugu = summarize_errors(result.records, false);
  result.veritas = summarize_errors(result.records, true);
  return result;
}

std::size_t resolve_warmup(const ml::FuguConfig& fugu_config,
                           std::size_t warmup) {
  if (warmup == 0) warmup = fugu_config.past_chunks;
  VERITAS_EXPECTS(warmup >= 1);
  return warmup;
}

}  // namespace

InterventionalResult run_interventional_study(
    std::vector<sim::SessionLog> train_logs,
    std::vector<sim::SessionLog> test_logs,
    const core::VeritasConfig& veritas_config,
    const ml::FuguConfig& fugu_config, std::size_t warmup) {
  warmup = resolve_warmup(fugu_config, warmup);
  const core::Veritas veritas(veritas_config);
  return run_study_with(
      train_logs, test_logs, fugu_config, warmup, [&](std::size_t s) {
        // One Viterbi pass per session covers all prefixes.
        return std::make_shared<
            const std::vector<core::NextChunkPrediction>>(
            veritas.predict_sequence(test_logs[s]));
      });
}

InterventionalResult run_interventional_study(
    service::VeritasService& service, const std::string& shard,
    std::vector<sim::SessionLog> train_logs,
    std::vector<sim::SessionLog> test_logs,
    const ml::FuguConfig& fugu_config, std::size_t warmup) {
  warmup = resolve_warmup(fugu_config, warmup);

  // Submit every eligible session before Fugu training starts: the
  // service lanes fill the prediction futures in the background.
  std::vector<std::future<Expected<service::InferenceResult>>> futures(
      test_logs.size());
  for (std::size_t s = 0; s < test_logs.size(); ++s) {
    if (test_logs[s].size() <= warmup) continue;
    service::Query query;
    query.log = test_logs[s];
    query.shard = shard;
    query.kind = service::QueryKind::kPredictSequence;
    futures[s] = service.submit(std::move(query));
  }

  return run_study_with(train_logs, test_logs, fugu_config, warmup,
                        [&](std::size_t s) {
                          // A study needs every session; value() throws
                          // with the status text on a serving failure.
                          return futures[s].get().value().predictions;
                        });
}

}  // namespace veritas::query
