// Interventional query engine (paper §4.4, Fig. 12).
//
// Question: for a session in progress, what would the download time of
// the *next* chunk be for an arbitrary size — including sizes the
// deployed ABR would never have chosen? The study:
//   * train FuguNN on logs from the deployed ABR (MPC) over wide-range
//     traces (the associational predictor);
//   * test on sessions whose bitrates are chosen *randomly* (chunk-size
//     sequences off the training distribution);
//   * per test chunk, predict the download time with Fugu and with
//     Veritas (most-likely posterior state advanced through A^Δ) and
//     compare against the simulated truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/veritas.hpp"
#include "ml/fugu.hpp"
#include "sim/session_log.hpp"

namespace veritas::service {
class VeritasService;  // service/veritas_service.hpp
}

namespace veritas::query {

/// One prediction comparison point (one test chunk).
struct PredictionRecord {
  std::size_t session = 0;
  std::size_t chunk = 0;
  double size_bytes = 0.0;
  double true_time_s = 0.0;
  double fugu_time_s = 0.0;
  double veritas_time_s = 0.0;
};

/// Aggregate error statistics for one predictor.
struct PredictorErrors {
  double mean_abs_error_s = 0.0;
  double median_error_s = 0.0;          ///< signed (predicted - true)
  double p10_error_s = 0.0;             ///< signed 10th percentile
  double worst_underestimate_s = 0.0;   ///< max(true - predicted)
  double worst_overestimate_s = 0.0;    ///< max(predicted - true)
};

struct InterventionalResult {
  std::vector<PredictionRecord> records;
  PredictorErrors fugu;
  PredictorErrors veritas;
};

/// Runs the prediction comparison for pre-built training/test logs:
/// trains Fugu on `train_logs`, then for every chunk n >= warmup of each
/// test log predicts with both schemes. `warmup` defaults to Fugu's
/// history window.
InterventionalResult run_interventional_study(
    std::vector<sim::SessionLog> train_logs,
    std::vector<sim::SessionLog> test_logs,
    const core::VeritasConfig& veritas_config = {},
    const ml::FuguConfig& fugu_config = {}, std::size_t warmup = 0);

/// Service-routed variant: the Veritas per-session prediction sequences
/// are answered by `service`'s shard `shard` as kPredictSequence
/// queries — submitted up-front so the service lanes compute sessions
/// concurrently (and repeats hit the shard's result cache) while Fugu
/// trains and predicts on the calling thread. Records are bit-identical
/// to the direct overload run with the shard's VeritasConfig.
InterventionalResult run_interventional_study(
    service::VeritasService& service, const std::string& shard,
    std::vector<sim::SessionLog> train_logs,
    std::vector<sim::SessionLog> test_logs,
    const ml::FuguConfig& fugu_config = {}, std::size_t warmup = 0);

/// Computes signed-error statistics from records using the given
/// predictor accessor ("fugu" or "veritas").
PredictorErrors summarize_errors(const std::vector<PredictionRecord>& records,
                                 bool veritas);

}  // namespace veritas::query
