#include "query/counterfactual.hpp"

#include <algorithm>

#include "abr/abr_factory.hpp"
#include "core/baseline.hpp"
#include "net/network_path.hpp"
#include "service/veritas_service.hpp"
#include "sim/session.hpp"
#include "util/expects.hpp"

namespace veritas::query {

namespace {

/// Order statistic across sample metrics, applied field-by-field.
sim::QoeMetrics metric_order_statistic(
    const std::vector<sim::QoeMetrics>& samples, bool second_highest) {
  VERITAS_EXPECTS(!samples.empty());
  auto pick = [&](auto accessor) {
    std::vector<double> values;
    values.reserve(samples.size());
    for (const auto& m : samples) values.push_back(accessor(m));
    std::sort(values.begin(), values.end());
    if (values.size() < 3) {
      return second_highest ? values.back() : values.front();
    }
    // 2nd-lowest / 2nd-highest (paper §4.3 with K = 5 samples).
    return second_highest ? values[values.size() - 2] : values[1];
  };
  sim::QoeMetrics out;
  out.mean_ssim = pick([](const auto& m) { return m.mean_ssim; });
  out.mean_ssim_db = pick([](const auto& m) { return m.mean_ssim_db; });
  out.rebuffer_ratio_pct =
      pick([](const auto& m) { return m.rebuffer_ratio_pct; });
  out.avg_bitrate_mbps =
      pick([](const auto& m) { return m.avg_bitrate_mbps; });
  out.startup_delay_s = pick([](const auto& m) { return m.startup_delay_s; });
  out.quality_switches = static_cast<std::size_t>(
      pick([](const auto& m) { return double(m.quality_switches); }));
  return out;
}

}  // namespace

sim::QoeMetrics run_under_setting(const trace::BandwidthTrace& bandwidth,
                                  const video::Video& video,
                                  const Setting& setting, double rtt_s,
                                  std::uint64_t seed) {
  const video::Video replay_video =
      setting.ladder.empty() ? video : video.with_ladder(setting.ladder);
  const net::NetworkPath path(bandwidth, rtt_s);
  const auto abr = abr::make_abr(setting.abr, seed);
  sim::SessionConfig session_config;
  session_config.buffer_capacity_s = setting.buffer_capacity_s;
  const sim::SessionResult result =
      sim::run_session(replay_video, *abr, path, session_config);
  return sim::compute_metrics(replay_video, result);
}

CounterfactualEngine::CounterfactualEngine(core::VeritasConfig veritas_config,
                                           double rtt_s)
    : veritas_config_(veritas_config), rtt_s_(rtt_s) {
  VERITAS_EXPECTS(rtt_s > 0.0);
}

CounterfactualEngine::CounterfactualEngine(
    std::shared_ptr<service::VeritasService> service, std::string shard,
    double rtt_s)
    : rtt_s_(rtt_s), service_(std::move(service)), shard_(std::move(shard)) {
  VERITAS_EXPECTS(rtt_s > 0.0);
  VERITAS_EXPECTS(service_ != nullptr);
  // Snapshot for veritas_config(); abduction always resolves the shard's
  // live engine, so a later swap_shard takes effect on the next query.
  veritas_config_ = service_->shard_engine(shard_)->config();
}

std::shared_ptr<const core::VeritasResult> CounterfactualEngine::abduct(
    const sim::SessionLog& log, std::uint64_t seed) const {
  if (service_) {
    service::Query query;
    query.log = log;
    query.shard = shard_;
    query.kind = service::QueryKind::kAbduction;
    // Same sampling stream as the local path: config seed xor caller
    // seed — distinct per session, still deterministic and cacheable.
    // seed_xor resolves against the shard the service pins at submit,
    // so a concurrent swap can't mix one config's seed with another's
    // engine.
    query.seed_xor = seed;
    // value() throws ContractViolation with the status text if the
    // service rejected/shed/failed the query — counterfactual studies
    // need every abduction, so an error here is not recoverable.
    return service_->submit(std::move(query)).get().value().abduction;
  }
  core::VeritasConfig cfg = veritas_config_;
  cfg.seed ^= seed;
  return std::make_shared<const core::VeritasResult>(
      core::Veritas(cfg).infer(log));
}

WhatIfPrediction CounterfactualEngine::predict_whatif(
    const sim::SessionLog& log, const video::Video& video,
    const Setting& setting_b, std::uint64_t seed) const {
  // Abduction from the log alone (no ground truth)...
  const std::shared_ptr<const core::VeritasResult> inference_ptr =
      abduct(log, seed);
  const core::VeritasResult& inference = *inference_ptr;
  const trace::BandwidthTrace baseline = core::baseline_trace(log);

  // ...then replay Setting B under each bandwidth hypothesis.
  WhatIfPrediction prediction;
  prediction.baseline =
      run_under_setting(baseline, video, setting_b, rtt_s_, seed);
  prediction.veritas_samples.reserve(inference.samples.size());
  for (const trace::BandwidthTrace& sample : inference.samples) {
    prediction.veritas_samples.push_back(
        run_under_setting(sample, video, setting_b, rtt_s_, seed));
  }
  prediction.veritas_low =
      metric_order_statistic(prediction.veritas_samples, false);
  prediction.veritas_high =
      metric_order_statistic(prediction.veritas_samples, true);
  return prediction;
}

CounterfactualOutcome CounterfactualEngine::evaluate(
    const trace::BandwidthTrace& gt_trace, const video::Video& video,
    const Setting& setting_a, const Setting& setting_b,
    std::uint64_t seed) const {
  CounterfactualOutcome outcome;

  // 1. Deploy Setting A on the ground truth; keep its log.
  const video::Video video_a = setting_a.ladder.empty()
                                   ? video
                                   : video.with_ladder(setting_a.ladder);
  const net::NetworkPath path_a(gt_trace, rtt_s_);
  const auto abr_a = abr::make_abr(setting_a.abr, seed);
  sim::SessionConfig session_a;
  session_a.buffer_capacity_s = setting_a.buffer_capacity_s;
  const sim::SessionResult deployed =
      sim::run_session(video_a, *abr_a, path_a, session_a);
  outcome.setting_a = sim::compute_metrics(video_a, deployed);

  // 2-5. The operator-side pipeline on the log, plus the oracle answer
  // only an emulation study can compute.
  WhatIfPrediction prediction =
      predict_whatif(deployed.log, video, setting_b, seed);
  outcome.baseline = prediction.baseline;
  outcome.veritas_samples = std::move(prediction.veritas_samples);
  outcome.veritas_low = prediction.veritas_low;
  outcome.veritas_high = prediction.veritas_high;
  outcome.actual = run_under_setting(gt_trace, video, setting_b, rtt_s_, seed);
  return outcome;
}

}  // namespace veritas::query
