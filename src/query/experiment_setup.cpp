#include "query/experiment_setup.hpp"

#include <charconv>
#include <cstdlib>
#include <fstream>

#include "abr/abr_factory.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"
#include "util/expects.hpp"

namespace veritas::query {

std::vector<trace::BandwidthTrace> deployment_traces(
    const DeploymentConfig& config) {
  return trace::make_traces(config.family, config.num_traces,
                            config.trace_seed);
}

std::vector<sim::SessionLog> run_deployment(const DeploymentConfig& config,
                                            const video::Video& video) {
  const video::Video deployed_video =
      config.setting.ladder.empty() ? video
                                    : video.with_ladder(config.setting.ladder);
  const std::vector<trace::BandwidthTrace> traces =
      deployment_traces(config);
  std::vector<sim::SessionLog> logs;
  logs.reserve(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const net::NetworkPath path(traces[i], config.rtt_s);
    const auto abr =
        abr::make_abr(config.setting.abr, config.session_seed + i);
    sim::SessionConfig session_config;
    session_config.buffer_capacity_s = config.setting.buffer_capacity_s;
    logs.push_back(
        sim::run_session(deployed_video, *abr, path, session_config).log);
  }
  return logs;
}

std::size_t bench_trace_count(std::size_t fallback) {
  std::size_t count = fallback;
  if (const char* env = std::getenv("VERITAS_BENCH_TRACES")) {
    std::size_t parsed = 0;
    const std::string text(env);
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    if (ec == std::errc{} && ptr == text.data() + text.size() && parsed > 0) {
      count = parsed;
    }
  }
  if (bench_fast_mode()) count = std::min<std::size_t>(count, 6);
  return count;
}

bool bench_fast_mode() {
  const char* env = std::getenv("VERITAS_BENCH_FAST");
  return env != nullptr && std::string(env) == "1";
}

std::optional<std::filesystem::path> bench_output_dir() {
  std::error_code ec;
  const std::filesystem::path dir = "bench_results";
  std::filesystem::create_directories(dir, ec);
  if (ec) return std::nullopt;
  return dir;
}

std::optional<std::filesystem::path> write_bench_artifact(
    const std::string& name, const std::string& csv_text) {
  const auto dir = bench_output_dir();
  if (!dir) return std::nullopt;
  const std::filesystem::path path = *dir / name;
  std::ofstream out(path);
  if (!out) return std::nullopt;
  out << csv_text;
  return path;
}

}  // namespace veritas::query
