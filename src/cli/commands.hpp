// File-based command-line workflow around the library, so Veritas can be
// driven without writing C++:
//
//   veritas_cli generate-trace --family fcc_like --seed 7 --out gt.csv
//   veritas_cli simulate  --trace gt.csv --abr mpc --buffer 5 --out log.csv
//   veritas_cli infer     --log log.csv --samples 5 --out-prefix inferred
//   veritas_cli replay    --trace inferred_map.csv --abr bba --buffer 5
//   veritas_cli predict   --log log.csv --size 1000000
//   veritas_cli serve     --logs log.csv,log2.csv --repeat 2 --threads 4
//
// The dispatcher is a library function (testable without spawning a
// process); tools/veritas_cli.cpp is a thin main().
#pragma once

#include <map>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace veritas::cli {

/// Parsed command line: a subcommand plus --key value options.
struct CommandLine {
  std::string command;
  std::map<std::string, std::string> options;

  /// Option value or `fallback` when absent.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Numeric option; throws ContractViolation on malformed numbers.
  double number(const std::string& key, double fallback) const;

  /// Required option; throws ContractViolation when missing.
  std::string require(const std::string& key) const;
};

/// Parses ["cmd", "--k", "v", ...]. Flags must be --key value pairs.
/// Throws ContractViolation on malformed input.
CommandLine parse_command_line(std::span<const std::string> args);

/// Runs one CLI invocation. Returns the process exit code; writes
/// human-readable output to `out` and errors to `err`.
int run_cli(std::span<const std::string> args, std::ostream& out,
            std::ostream& err);

/// Multi-line usage text.
std::string usage();

}  // namespace veritas::cli
