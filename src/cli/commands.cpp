#include "cli/commands.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "abr/abr_factory.hpp"
#include "core/veritas.hpp"
#include "math/simd_kernels.hpp"
#include "net/network_path.hpp"
#include "query/counterfactual.hpp"
#include "service/veritas_service.hpp"
#include "sim/metrics.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "trace/trace_io.hpp"
#include "util/expects.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::cli {

namespace {

void write_text_file(const std::filesystem::path& path,
                     const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write: " + path.string());
  out << text;
}

std::string read_text_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read: " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

trace::TraceFamily family_from_name(const std::string& name) {
  using trace::TraceFamily;
  for (const auto family :
       {TraceFamily::kFccLike, TraceFamily::kPoor, TraceFamily::kGood,
        TraceFamily::kWideRange, TraceFamily::kSquareWave,
        TraceFamily::kConstant4}) {
    if (name == trace::family_name(family)) return family;
  }
  throw ContractViolation("unknown trace family: " + name);
}

video::Ladder ladder_from_name(const std::string& name) {
  if (name == "default") return video::default_ladder();
  if (name == "high") return video::high_ladder();
  throw ContractViolation("unknown ladder: " + name + " (default|high)");
}

/// The EHMM flags shared by infer and serve.
core::VeritasConfig config_from_flags(const CommandLine& cmd) {
  core::VeritasConfig cfg;
  cfg.num_samples = static_cast<std::size_t>(cmd.number("--samples", 5.0));
  cfg.delta_s = cmd.number("--delta", cfg.delta_s);
  cfg.epsilon_mbps = cmd.number("--epsilon", cfg.epsilon_mbps);
  cfg.sigma_mbps = cmd.number("--sigma", cfg.sigma_mbps);
  cfg.max_mbps = cmd.number("--max-mbps", cfg.max_mbps);
  cfg.seed = static_cast<std::uint64_t>(cmd.number("--seed", double(cfg.seed)));
  cfg.precomputed_powers = static_cast<std::size_t>(
      cmd.number("--powers", double(cfg.precomputed_powers)));
  return cfg;
}

int cmd_generate_trace(const CommandLine& cmd, std::ostream& out) {
  const auto family = family_from_name(cmd.get("--family", "fcc_like"));
  const auto seed = static_cast<std::uint64_t>(cmd.number("--seed", 1.0));
  const std::string path = cmd.require("--out");
  const auto traces = trace::make_traces(family, 1, seed);
  trace::write_csv_file(traces[0], path);
  out << "wrote " << path << " (" << traces[0].windows() << " windows of "
      << traces[0].interval_s() << " s, mean "
      << traces[0].average_mbps(0.0, traces[0].duration_s()) << " Mbps)\n";
  return 0;
}

int cmd_simulate(const CommandLine& cmd, std::ostream& out) {
  const auto gtbw = trace::read_csv_file(cmd.require("--trace"));
  const std::string abr_name = cmd.get("--abr", "mpc");
  const double buffer_s = cmd.number("--buffer", 5.0);
  const double rtt_s = cmd.number("--rtt", 0.08);
  const auto seed = static_cast<std::uint64_t>(cmd.number("--seed", 0.0));
  const std::string log_path = cmd.require("--out");

  video::VideoConfig vcfg = video::default_video_config();
  vcfg.ladder = ladder_from_name(cmd.get("--ladder", "default"));
  const video::Video video(vcfg);
  const auto abr = abr::make_abr(abr_name, seed);
  const net::NetworkPath path(gtbw, rtt_s);
  sim::SessionConfig session_config;
  session_config.buffer_capacity_s = buffer_s;
  const sim::SessionResult result =
      sim::run_session(video, *abr, path, session_config);
  write_text_file(log_path, sim::to_csv(result.log));

  const sim::QoeMetrics metrics = sim::compute_metrics(video, result);
  out << "wrote " << log_path << " (" << result.log.size() << " chunks)\n";
  out << "metrics: ssim=" << metrics.mean_ssim
      << " rebuffer_pct=" << metrics.rebuffer_ratio_pct
      << " avg_bitrate_mbps=" << metrics.avg_bitrate_mbps << "\n";
  return 0;
}

int cmd_infer(const CommandLine& cmd, std::ostream& out) {
  const sim::SessionLog log =
      sim::session_log_from_csv(read_text_file(cmd.require("--log")));
  const core::VeritasConfig cfg = config_from_flags(cmd);
  const std::string prefix = cmd.get("--out-prefix", "inferred");

  const core::Veritas veritas(cfg);
  const core::VeritasResult result = veritas.infer(log);
  trace::write_csv_file(result.map_trace, prefix + "_map.csv");
  trace::write_csv_file(veritas.baseline(log), prefix + "_baseline.csv");
  for (std::size_t k = 0; k < result.samples.size(); ++k) {
    trace::write_csv_file(result.samples[k],
                          prefix + "_sample" + std::to_string(k) + ".csv");
  }
  out << "log-likelihood: " << result.log_likelihood << "\n";
  out << "wrote " << prefix << "_map.csv, " << prefix << "_baseline.csv and "
      << result.samples.size() << " posterior samples\n";
  return 0;
}

int cmd_replay(const CommandLine& cmd, std::ostream& out) {
  const auto bandwidth = trace::read_csv_file(cmd.require("--trace"));
  query::Setting setting;
  setting.abr = cmd.get("--abr", "mpc");
  setting.buffer_capacity_s = cmd.number("--buffer", 5.0);
  const std::string ladder = cmd.get("--ladder", "default");
  if (ladder != "default") setting.ladder = ladder_from_name(ladder);

  const video::Video video(video::default_video_config());
  const sim::QoeMetrics metrics = query::run_under_setting(
      bandwidth, video, setting, cmd.number("--rtt", 0.08),
      static_cast<std::uint64_t>(cmd.number("--seed", 0.0)));
  out << "replay: abr=" << setting.abr
      << " buffer=" << setting.buffer_capacity_s << "s ladder=" << ladder
      << "\n";
  out << "metrics: ssim=" << metrics.mean_ssim
      << " rebuffer_pct=" << metrics.rebuffer_ratio_pct
      << " avg_bitrate_mbps=" << metrics.avg_bitrate_mbps
      << " switches=" << metrics.quality_switches << "\n";
  return 0;
}

int cmd_whatif(const CommandLine& cmd, std::ostream& out) {
  const sim::SessionLog log =
      sim::session_log_from_csv(read_text_file(cmd.require("--log")));
  query::Setting setting;
  setting.abr = cmd.get("--abr", "mpc");
  setting.buffer_capacity_s = cmd.number("--buffer", 5.0);
  const std::string ladder = cmd.get("--ladder", "default");
  if (ladder != "default") setting.ladder = ladder_from_name(ladder);

  const video::Video video(video::default_video_config());
  core::VeritasConfig cfg;
  cfg.num_samples = static_cast<std::size_t>(cmd.number("--samples", 5.0));
  const query::CounterfactualEngine engine(cfg,
                                           cmd.number("--rtt", 0.08));
  const query::WhatIfPrediction p = engine.predict_whatif(
      log, video, setting,
      static_cast<std::uint64_t>(cmd.number("--seed", 0.0)));

  out << "what-if: abr=" << setting.abr
      << " buffer=" << setting.buffer_capacity_s << "s ladder=" << ladder
      << " (" << p.veritas_samples.size() << " posterior samples)\n";
  out << "veritas ssim=[" << p.veritas_low.mean_ssim << ", "
      << p.veritas_high.mean_ssim << "] rebuffer_pct=["
      << p.veritas_low.rebuffer_ratio_pct << ", "
      << p.veritas_high.rebuffer_ratio_pct << "] bitrate=["
      << p.veritas_low.avg_bitrate_mbps << ", "
      << p.veritas_high.avg_bitrate_mbps << "]\n";
  out << "baseline (no causal adjustment): ssim=" << p.baseline.mean_ssim
      << " rebuffer_pct=" << p.baseline.rebuffer_ratio_pct
      << " bitrate=" << p.baseline.avg_bitrate_mbps << "\n";
  return 0;
}

int cmd_serve(const CommandLine& cmd, std::ostream& out) {
  // Load the workload: a comma-separated list of recorded session logs.
  std::vector<sim::SessionLog> logs;
  const std::string spec = cmd.require("--logs");
  for (std::size_t pos = 0; pos <= spec.size();) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string path = spec.substr(pos, comma - pos);
    if (!path.empty()) {
      logs.push_back(sim::session_log_from_csv(read_text_file(path)));
    }
    pos = comma + 1;
  }
  VERITAS_EXPECTS(!logs.empty());

  service::ServiceOptions options;
  options.num_threads = static_cast<std::size_t>(cmd.number("--threads", 0.0));
  options.queue_capacity =
      static_cast<std::size_t>(cmd.number("--queue", 256.0));
  options.cache_capacity =
      static_cast<std::size_t>(cmd.number("--cache", 1024.0));
  // Overload controls: bounded admission waits, and optional graceful
  // degradation (stale hits / reduced samples) instead of queueing.
  options.admission_timeout = std::chrono::milliseconds(
      static_cast<long>(cmd.number("--admission-timeout-ms", 0.0)));
  options.overload.serve_stale_hits = cmd.get("--serve-stale", "0") == "1";
  options.overload.degraded_num_samples =
      static_cast<std::size_t>(cmd.number("--degraded-samples", 0.0));
  // Observability sinks (PR 8): --metrics-out writes one Prometheus
  // text scrape after the run; --trace-out arms span tracing and writes
  // Chrome trace-event JSON (chrome://tracing / Perfetto); a nonzero
  // --slow-query-ms additionally retains and prints root spans at least
  // that long.
  const std::string metrics_out = cmd.get("--metrics-out", "");
  const std::string trace_out = cmd.get("--trace-out", "");
  const double slow_query_ms = cmd.number("--slow-query-ms", 0.0);
  const bool want_tracing = !trace_out.empty() || slow_query_ms > 0.0;
  if (want_tracing) {
    if (util::Tracer::kCompiledIn) {
      util::Tracer::clear();
      util::Tracer::set_slow_query_threshold_us(
          static_cast<std::uint64_t>(slow_query_ms * 1000.0));
      util::Tracer::set_enabled(true);
    } else {
      out << "tracing compiled out (-DVERITAS_TRACING=OFF): "
             "--trace-out/--slow-query-ms ignored\n";
    }
  }
  service::VeritasService service(options);
  const std::string shard = cmd.get("--shard", "default");
  service.add_shard(shard, config_from_flags(cmd));

  // Per-query serving options shared by the whole workload.
  service::QueryOptions qopts;
  const std::string priority = cmd.get("--priority", "batch");
  if (priority == "interactive") {
    qopts.priority = service::Priority::kInteractive;
  } else if (priority == "background") {
    qopts.priority = service::Priority::kBackground;
  } else {
    VERITAS_EXPECTS(priority == "batch");
  }
  const double deadline_ms = cmd.number("--deadline-ms", 0.0);

  const int repeat = std::max(1, static_cast<int>(cmd.number("--repeat", 2.0)));
  out << "serving " << logs.size() << " sessions on shard '" << shard
      << "' over " << service.num_lanes() << " lanes, " << repeat
      << " rounds (kernels: " << math::simd_kernels::backend_name() << ")\n";
  for (int round = 0; round < repeat; ++round) {
    const auto start = std::chrono::steady_clock::now();
    if (deadline_ms > 0.0) {
      qopts.deadline = start + std::chrono::microseconds(static_cast<long>(
                                   deadline_ms * 1000.0));
    }
    auto futures =
        service.submit_batch(logs, shard, service::QueryKind::kAbduction,
                             qopts);
    double total_ll = 0.0;
    std::uint64_t not_served = 0;
    for (auto& future : futures) {
      const Expected<service::InferenceResult> result = future.get();
      if (result.ok()) {
        total_ll += result.value().abduction->log_likelihood;
      } else {
        ++not_served;  // rejected / shed / deadline — counted, not fatal
      }
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    const service::ServiceStats stats = service.stats();
    out << "round " << round << ": wall_ms=" << wall_ms
        << " total_log_likelihood=" << total_ll
        << " cache_hits=" << stats.cache_hits
        << " cache_misses=" << stats.cache_misses;
    if (not_served > 0) out << " not_served=" << not_served;
    out << "\n";
  }
  const service::ServiceStats stats = service.stats();
  out << "served " << stats.submitted << " queries (" << stats.computed
      << " computed, " << stats.cache_hits << " from cache)"
      << " rejected=" << stats.rejected << " timed_out=" << stats.timed_out
      << " shed=" << stats.shed << " failed=" << stats.failed
      << " degraded=" << stats.degraded << " stale_hits=" << stats.stale_hits
      << " queue_depth=" << stats.queue_depth
      << (stats.reconciled() ? "" : " [counters NOT reconciled]") << "\n";
  for (const service::ShardStats& s : service.shard_stats()) {
    out << "shard '" << s.name << "' epoch=" << s.epoch
        << " submitted=" << s.submitted << " computed=" << s.computed
        << " hits=" << s.cache_hits << " misses=" << s.cache_misses
        << " rejected=" << s.rejected << " timed_out=" << s.timed_out
        << " shed=" << s.shed << " failed=" << s.failed
        << " degraded=" << s.degraded << " stale_hits=" << s.stale_hits
        << " latency_us(p50/p95/p99)=" << s.latency_p50_us << "/"
        << s.latency_p95_us << "/" << s.latency_p99_us << " (n="
        << s.latency_count << ")\n";
  }
  if (want_tracing && util::Tracer::kCompiledIn) {
    util::Tracer::set_enabled(false);
    if (!trace_out.empty()) {
      write_text_file(trace_out, util::Tracer::chrome_trace_json());
      out << "wrote trace (" << util::Tracer::events().size() << " spans, "
          << util::Tracer::dropped() << " dropped) to " << trace_out << "\n";
    }
    if (slow_query_ms > 0.0) out << util::Tracer::slow_query_log();
  }
  if (!metrics_out.empty()) {
    // Scraped while the service is alive: the registry callbacks borrow
    // its counters.
    util::MetricsRegistry registry;
    service.register_metrics(registry);
    write_text_file(metrics_out, registry.expose());
    out << "wrote metrics (" << registry.families() << " families) to "
        << metrics_out << "\n";
  }
  return 0;
}

int cmd_predict(const CommandLine& cmd, std::ostream& out) {
  const sim::SessionLog log =
      sim::session_log_from_csv(read_text_file(cmd.require("--log")));
  VERITAS_EXPECTS(!log.empty());
  const double size = cmd.number("--size", 0.0);
  VERITAS_EXPECTS(size > 0.0);

  const core::Veritas veritas;
  const auto& last = log.chunks.back();
  // Hypothetical next chunk right after the last recorded one.
  const double next_start = last.end_s + 0.1;
  net::TcpState w = last.tcp_at_start;
  w.last_send_gap_s = 0.1;
  const auto dist =
      veritas.predict_next_distribution(log, next_start, w, size);
  const auto point = veritas.predict_next(log, next_start, w, size);

  out << "next chunk of " << size << " bytes at t=" << next_start << " s\n";
  out << "expected GTBW: " << point.expected_gtbw_mbps << " Mbps\n";
  out << "download time: point=" << point.download_time_s
      << " s; quantiles p10=" << dist.time_quantile_s(0.10)
      << " p50=" << dist.time_quantile_s(0.50)
      << " p90=" << dist.time_quantile_s(0.90) << " s\n";
  return 0;
}

}  // namespace

std::string CommandLine::get(const std::string& key,
                             const std::string& fallback) const {
  const auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

double CommandLine::number(const std::string& key, double fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  double value = 0.0;
  const std::string& text = it->second;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ContractViolation("option " + key + " is not a number: " + text);
  }
  return value;
}

std::string CommandLine::require(const std::string& key) const {
  const auto it = options.find(key);
  if (it == options.end()) {
    throw ContractViolation("missing required option " + key);
  }
  return it->second;
}

CommandLine parse_command_line(std::span<const std::string> args) {
  VERITAS_EXPECTS(!args.empty());
  CommandLine cmd;
  cmd.command = args[0];
  for (std::size_t i = 1; i < args.size(); i += 2) {
    const std::string& key = args[i];
    if (key.rfind("--", 0) != 0) {
      throw ContractViolation("expected --option, got: " + key);
    }
    if (i + 1 >= args.size()) {
      throw ContractViolation("option " + key + " is missing a value");
    }
    cmd.options[key] = args[i + 1];
  }
  return cmd;
}

std::string usage() {
  return
      "veritas_cli <command> [--option value ...]\n"
      "\n"
      "commands:\n"
      "  generate-trace  --out FILE [--family fcc_like|poor|good|wide_range|\n"
      "                  square_wave|constant_4] [--seed N]\n"
      "  simulate        --trace FILE --out LOG [--abr mpc|bba|bola|rate_based|\n"
      "                  random|fixed:K] [--buffer S] [--rtt S] [--ladder default|high]\n"
      "  infer           --log LOG [--out-prefix P] [--samples K] [--delta S]\n"
      "                  [--epsilon MBPS] [--sigma MBPS] [--max-mbps MBPS]\n"
      "                  [--powers N]   (dense A^Δ table size)\n"
      "  replay          --trace FILE [--abr NAME] [--buffer S] [--ladder NAME]\n"
      "  whatif          --log LOG [--abr NAME] [--buffer S] [--ladder NAME]\n"
      "                  [--samples K]   (production what-if: no ground truth)\n"
      "  predict         --log LOG --size BYTES\n"
      "  serve           --logs LOG[,LOG...] [--repeat R] [--threads N]\n"
      "                  [--shard NAME] [--queue N] [--cache N] [--samples K]\n"
      "                  [--priority interactive|batch|background]\n"
      "                  [--deadline-ms MS] [--admission-timeout-ms MS]\n"
      "                  [--serve-stale 0|1] [--degraded-samples M]\n"
      "                  [--metrics-out FILE] [--trace-out FILE]\n"
      "                  [--slow-query-ms MS]\n"
      "                  (async shard service; repeat rounds show the cache;\n"
      "                  overload flags bound waits and degrade gracefully;\n"
      "                  metrics-out writes a Prometheus scrape, trace-out\n"
      "                  a Chrome trace JSON — needs -DVERITAS_TRACING=ON)\n";
}

int run_cli(std::span<const std::string> args, std::ostream& out,
            std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << usage();
    return args.empty() ? 2 : 0;
  }
  try {
    const CommandLine cmd = parse_command_line(args);
    if (cmd.command == "generate-trace") return cmd_generate_trace(cmd, out);
    if (cmd.command == "simulate") return cmd_simulate(cmd, out);
    if (cmd.command == "infer") return cmd_infer(cmd, out);
    if (cmd.command == "replay") return cmd_replay(cmd, out);
    if (cmd.command == "whatif") return cmd_whatif(cmd, out);
    if (cmd.command == "predict") return cmd_predict(cmd, out);
    if (cmd.command == "serve") return cmd_serve(cmd, out);
    err << "unknown command: " << cmd.command << "\n" << usage();
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace veritas::cli
