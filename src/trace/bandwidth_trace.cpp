#include "trace/bandwidth_trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expects.hpp"

namespace veritas::trace {

BandwidthTrace::BandwidthTrace(double interval_s,
                               std::vector<double> values_mbps)
    : interval_s_(interval_s), values_mbps_(std::move(values_mbps)) {
  VERITAS_EXPECTS(interval_s_ > 0.0);
  VERITAS_EXPECTS(!values_mbps_.empty());
  for (const double v : values_mbps_) VERITAS_EXPECTS(v >= 0.0);
}

BandwidthTrace BandwidthTrace::constant(double mbps, double duration_s,
                                        double interval_s) {
  VERITAS_EXPECTS(duration_s > 0.0 && interval_s > 0.0);
  const auto n = static_cast<std::size_t>(std::ceil(duration_s / interval_s));
  return BandwidthTrace(interval_s, std::vector<double>(std::max<std::size_t>(n, 1), mbps));
}

double BandwidthTrace::at(double t_s) const {
  VERITAS_EXPECTS(t_s >= 0.0);
  return values_mbps_[window_index(t_s)];
}

std::size_t BandwidthTrace::window_index(double t_s) const {
  VERITAS_EXPECTS(t_s >= 0.0);
  const auto idx = static_cast<std::size_t>(t_s / interval_s_);
  return std::min(idx, values_mbps_.size() - 1);
}

double BandwidthTrace::integrate_mbit(double a_s, double b_s) const {
  VERITAS_EXPECTS(a_s >= 0.0 && a_s <= b_s);
  double total = 0.0;
  double t = a_s;
  while (t < b_s) {
    const std::size_t idx = window_index(t);
    const double window_end =
        (idx + 1 == values_mbps_.size())
            ? std::numeric_limits<double>::infinity()  // hold last value
            : static_cast<double>(idx + 1) * interval_s_;
    const double seg_end = std::min(b_s, window_end);
    total += values_mbps_[idx] * (seg_end - t);
    t = seg_end;
  }
  return total;
}

double BandwidthTrace::average_mbps(double a_s, double b_s) const {
  VERITAS_EXPECTS(b_s > a_s);
  return integrate_mbit(a_s, b_s) / (b_s - a_s);
}

double BandwidthTrace::time_to_transfer_s(double mbits, double start_s) const {
  VERITAS_EXPECTS(mbits >= 0.0 && start_s >= 0.0);
  if (mbits == 0.0) return 0.0;
  double remaining = mbits;
  double t = start_s;
  for (;;) {
    const std::size_t idx = window_index(t);
    const double rate = values_mbps_[idx];
    const bool last = (idx + 1 == values_mbps_.size());
    const double window_end = static_cast<double>(idx + 1) * interval_s_;
    if (last) {
      if (rate <= 0.0) return std::numeric_limits<double>::infinity();
      return (t - start_s) + remaining / rate;
    }
    const double capacity = rate * (window_end - t);
    if (capacity >= remaining) {
      return (t - start_s) + (rate > 0.0
                                  ? remaining / rate
                                  : std::numeric_limits<double>::infinity());
    }
    remaining -= capacity;
    t = window_end;
  }
}

BandwidthTrace BandwidthTrace::resampled(double new_interval_s) const {
  VERITAS_EXPECTS(new_interval_s > 0.0);
  const auto n = static_cast<std::size_t>(
      std::ceil(duration_s() / new_interval_s));
  std::vector<double> values;
  values.reserve(std::max<std::size_t>(n, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(n, 1); ++i) {
    const double a = static_cast<double>(i) * new_interval_s;
    const double b = std::min(a + new_interval_s, duration_s());
    values.push_back(b > a ? average_mbps(a, b) : at(a));
  }
  return BandwidthTrace(new_interval_s, std::move(values));
}

double BandwidthTrace::mean_abs_diff_mbps(const BandwidthTrace& other,
                                          std::size_t samples) const {
  VERITAS_EXPECTS(samples >= 1);
  const double horizon = std::min(duration_s(), other.duration_s());
  double acc = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    // Sample window midpoints of a uniform grid over the overlap.
    const double t =
        horizon * (static_cast<double>(i) + 0.5) / static_cast<double>(samples);
    acc += std::abs(at(t) - other.at(t));
  }
  return acc / static_cast<double>(samples);
}

}  // namespace veritas::trace
