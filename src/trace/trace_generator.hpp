// Synthetic ground-truth bandwidth (GTBW) generation.
//
// Substitute for the FCC broadband traces used in the paper (see
// DESIGN.md §3): Markov-modulated piecewise-constant processes on an
// ε-grid with δ-second dwell windows, plus square-wave / constant /
// random-walk families for stress tests. Each experiment family in the
// paper maps to a preset below with the stated bandwidth range.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/bandwidth_trace.hpp"

namespace veritas::trace {

/// Parameters of the Markov-modulated generator.
struct MarkovTraceConfig {
  double duration_s = 600.0;   ///< paper sessions: 10-minute video
  double interval_s = 5.0;     ///< dwell window (matches EHMM δ by default)
  double min_mbps = 3.0;       ///< lower bound of the bandwidth range
  double max_mbps = 8.0;       ///< upper bound of the bandwidth range
  double grid_mbps = 0.5;      ///< values land on this grid (EHMM ε)
  double stay_prob = 0.70;     ///< P(no change at a window boundary)
  double step_prob = 0.25;     ///< P(move +-1 grid step)
  // Remaining mass (1 - stay - step) makes a uniform jump in range.
};

/// Generates one Markov-modulated trace. Deterministic in `seed`.
BandwidthTrace markov_trace(const MarkovTraceConfig& config,
                            std::uint64_t seed);

/// Parameters of the regime-switching generator: bandwidth alternates
/// between a low and a high plateau (long dwells, like residential FCC
/// traces), with small per-window jitter on top.
struct RegimeTraceConfig {
  double duration_s = 600.0;
  double interval_s = 5.0;
  double low_mbps = 2.5;        ///< low-regime centre
  double high_mbps = 6.0;       ///< high-regime centre
  double jitter_mbps = 0.5;     ///< +- jitter steps within a regime
  double grid_mbps = 0.5;
  double mean_dwell_s = 60.0;   ///< expected plateau length
  double absolute_min_mbps = 0.5;
  double absolute_max_mbps = 10.0;
};

/// Generates one regime-switching trace. Deterministic in `seed`.
BandwidthTrace regime_trace(const RegimeTraceConfig& config,
                            std::uint64_t seed);

/// Square wave alternating `low_mbps` / `high_mbps` every `period_s`.
BandwidthTrace square_wave_trace(double low_mbps, double high_mbps,
                                 double period_s, double duration_s,
                                 double interval_s = 1.0);

/// Named trace families matching the paper's experiment setups.
enum class TraceFamily {
  kFccLike,       ///< 3-8 Mbps (counterfactual evaluation, paper §4.1)
  kPoor,          ///< 0-0.3 Mbps (Fig. 2 bias demonstration)
  kGood,          ///< 9-10 Mbps (Fig. 2 bias demonstration)
  kWideRange,     ///< 0.5-10 Mbps (interventional evaluation, §4.4)
  kSquareWave,    ///< 1 <-> 6 Mbps square wave (stress test)
  kConstant4,     ///< constant 4 Mbps (sanity/oracle tests)
};

/// Generates `count` traces of the given family with seeds derived from
/// `seed`. Each trace is 600 s unless the family dictates otherwise.
std::vector<BandwidthTrace> make_traces(TraceFamily family, std::size_t count,
                                        std::uint64_t seed);

/// Human-readable family name (for bench output).
const char* family_name(TraceFamily family);

}  // namespace veritas::trace
