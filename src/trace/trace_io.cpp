#include "trace/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/expects.hpp"

namespace veritas::trace {

namespace {
constexpr double kMahimahiPacketBytes = 1500.0;
constexpr double kMahimahiPacketMbit = kMahimahiPacketBytes * 8.0 / 1e6;
}  // namespace

std::string to_csv(const BandwidthTrace& trace) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.header({"time_s", "mbps"});
  const auto values = trace.values_mbps();
  for (std::size_t i = 0; i < values.size(); ++i) {
    writer.row(std::vector<double>{static_cast<double>(i) * trace.interval_s(),
                                   values[i]});
  }
  return out.str();
}

BandwidthTrace from_csv(const std::string& text) {
  const util::CsvTable table = util::parse_csv(text);
  VERITAS_EXPECTS(!table.rows.empty());
  std::vector<double> values;
  values.reserve(table.rows.size());
  double interval = 1.0;
  double prev_time = 0.0;
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const double t = table.number(r, "time_s");
    const double v = table.number(r, "mbps");
    if (r == 1) {
      interval = t - prev_time;
      VERITAS_EXPECTS(interval > 0.0);
    } else if (r > 1) {
      VERITAS_EXPECTS(std::abs((t - prev_time) - interval) < 1e-6);
    }
    prev_time = t;
    values.push_back(v);
  }
  if (table.rows.size() == 1) interval = 1.0;
  return BandwidthTrace(interval, std::move(values));
}

void write_csv_file(const BandwidthTrace& trace,
                    const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace: " + path.string());
  out << to_csv(trace);
}

BandwidthTrace read_csv_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read trace: " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv(buffer.str());
}

std::string to_mahimahi(const BandwidthTrace& trace) {
  // Accumulate fractional packets so low rates still emit opportunities.
  std::ostringstream out;
  double credit_packets = 0.0;
  const auto total_ms =
      static_cast<long long>(std::llround(trace.duration_s() * 1000.0));
  for (long long ms = 1; ms <= total_ms; ++ms) {
    const double t = (static_cast<double>(ms) - 0.5) / 1000.0;
    credit_packets += trace.at(t) / 1000.0 / kMahimahiPacketMbit;
    while (credit_packets >= 1.0) {
      out << ms << '\n';
      credit_packets -= 1.0;
    }
  }
  return out.str();
}

BandwidthTrace from_mahimahi(const std::string& text, double interval_s) {
  VERITAS_EXPECTS(interval_s > 0.0);
  std::istringstream in(text);
  std::vector<std::size_t> packets_per_window;
  long long ms = 0;
  long long last_ms = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ms = std::stoll(line);
    VERITAS_EXPECTS(ms >= last_ms);
    last_ms = ms;
    const auto window =
        static_cast<std::size_t>(static_cast<double>(ms) / 1000.0 / interval_s);
    if (window >= packets_per_window.size()) {
      packets_per_window.resize(window + 1, 0);
    }
    ++packets_per_window[window];
  }
  VERITAS_EXPECTS(!packets_per_window.empty());
  std::vector<double> values;
  values.reserve(packets_per_window.size());
  for (const std::size_t count : packets_per_window) {
    values.push_back(static_cast<double>(count) * kMahimahiPacketMbit /
                     interval_s);
  }
  return BandwidthTrace(interval_s, std::move(values));
}

}  // namespace veritas::trace
