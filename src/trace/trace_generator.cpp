#include "trace/trace_generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"
#include "util/rng.hpp"

namespace veritas::trace {

namespace {

double snap_to_grid(double v, double grid, double lo, double hi) {
  const double snapped = std::round(v / grid) * grid;
  return std::clamp(snapped, lo, hi);
}

}  // namespace

BandwidthTrace markov_trace(const MarkovTraceConfig& config,
                            std::uint64_t seed) {
  VERITAS_EXPECTS(config.duration_s > 0.0 && config.interval_s > 0.0);
  VERITAS_EXPECTS(config.grid_mbps > 0.0);
  VERITAS_EXPECTS(config.min_mbps >= 0.0 &&
                  config.max_mbps >= config.min_mbps);
  VERITAS_EXPECTS(config.stay_prob >= 0.0 && config.step_prob >= 0.0 &&
                  config.stay_prob + config.step_prob <= 1.0);

  util::Rng rng(seed);
  const auto windows = static_cast<std::size_t>(
      std::ceil(config.duration_s / config.interval_s));
  std::vector<double> values;
  values.reserve(windows);

  double current = snap_to_grid(rng.uniform(config.min_mbps, config.max_mbps),
                                config.grid_mbps, config.min_mbps,
                                config.max_mbps);
  for (std::size_t w = 0; w < std::max<std::size_t>(windows, 1); ++w) {
    values.push_back(current);
    const double u = rng.uniform();
    if (u < config.stay_prob) {
      // hold
    } else if (u < config.stay_prob + config.step_prob) {
      const double direction = rng.bernoulli(0.5) ? 1.0 : -1.0;
      current = snap_to_grid(current + direction * config.grid_mbps,
                             config.grid_mbps, config.min_mbps,
                             config.max_mbps);
    } else {
      current = snap_to_grid(rng.uniform(config.min_mbps, config.max_mbps),
                             config.grid_mbps, config.min_mbps,
                             config.max_mbps);
    }
  }
  return BandwidthTrace(config.interval_s, std::move(values));
}

BandwidthTrace regime_trace(const RegimeTraceConfig& config,
                            std::uint64_t seed) {
  VERITAS_EXPECTS(config.duration_s > 0.0 && config.interval_s > 0.0);
  VERITAS_EXPECTS(config.grid_mbps > 0.0 && config.mean_dwell_s > 0.0);
  VERITAS_EXPECTS(config.low_mbps <= config.high_mbps);
  VERITAS_EXPECTS(config.absolute_min_mbps >= 0.0 &&
                  config.absolute_max_mbps >= config.absolute_min_mbps);

  util::Rng rng(seed);
  const auto windows = static_cast<std::size_t>(
      std::ceil(config.duration_s / config.interval_s));
  // P(regime switch per window) so dwell ~ Geometric(mean_dwell).
  const double switch_prob =
      std::min(1.0, config.interval_s / config.mean_dwell_s);

  std::vector<double> values;
  values.reserve(windows);
  bool high = rng.bernoulli(0.5);
  double jitter = 0.0;
  for (std::size_t w = 0; w < std::max<std::size_t>(windows, 1); ++w) {
    if (rng.bernoulli(switch_prob)) {
      high = !high;
      jitter = 0.0;
    } else if (rng.bernoulli(0.5)) {
      // Small drift within the regime.
      jitter += (rng.bernoulli(0.5) ? 1.0 : -1.0) * config.grid_mbps;
      jitter = std::clamp(jitter, -config.jitter_mbps, config.jitter_mbps);
    }
    const double centre = high ? config.high_mbps : config.low_mbps;
    values.push_back(snap_to_grid(centre + jitter, config.grid_mbps,
                                  config.absolute_min_mbps,
                                  config.absolute_max_mbps));
  }
  return BandwidthTrace(config.interval_s, std::move(values));
}

BandwidthTrace square_wave_trace(double low_mbps, double high_mbps,
                                 double period_s, double duration_s,
                                 double interval_s) {
  VERITAS_EXPECTS(low_mbps >= 0.0 && high_mbps >= low_mbps);
  VERITAS_EXPECTS(period_s > 0.0 && duration_s > 0.0 && interval_s > 0.0);
  const auto windows =
      static_cast<std::size_t>(std::ceil(duration_s / interval_s));
  std::vector<double> values;
  values.reserve(windows);
  for (std::size_t w = 0; w < std::max<std::size_t>(windows, 1); ++w) {
    const double t = static_cast<double>(w) * interval_s;
    const bool high = std::fmod(t, 2.0 * period_s) < period_s;
    values.push_back(high ? high_mbps : low_mbps);
  }
  return BandwidthTrace(interval_s, std::move(values));
}

std::vector<BandwidthTrace> make_traces(TraceFamily family, std::size_t count,
                                        std::uint64_t seed) {
  VERITAS_EXPECTS(count > 0);
  std::vector<BandwidthTrace> traces;
  traces.reserve(count);
  util::Rng root(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t child_seed = root.fork(i)();
    MarkovTraceConfig cfg;
    switch (family) {
      case TraceFamily::kFccLike: {
        // Each FCC trace alternates between a low and a high plateau
        // whose levels are drawn per trace from the 3-8 Mbps band the
        // paper states (§4.1), with dips allowed to reach 2 Mbps. Long
        // dwells (like residential broadband traces) produce both
        // stressed and comfortable stretches within each session — the
        // spread of per-trace outcomes seen in Figs. 8-11.
        util::Rng base_rng(child_seed);
        RegimeTraceConfig regime;
        regime.high_mbps = base_rng.uniform(4.5, 8.0);
        regime.low_mbps =
            std::max(2.0, regime.high_mbps - base_rng.uniform(1.5, 3.5));
        regime.absolute_min_mbps = 2.0;
        regime.absolute_max_mbps = 8.0;
        traces.push_back(regime_trace(regime, base_rng.fork(1)()));
        break;
      }
      case TraceFamily::kPoor:
        // Paper: [0-0.3 Mbps]. The floor is 0.1 rather than literal zero:
        // a trace that *ends* at 0 Mbps would stall a download forever
        // (real broadband traces bottom out, they do not flatline).
        cfg.min_mbps = 0.1;
        cfg.max_mbps = 0.3;
        cfg.grid_mbps = 0.1;
        traces.push_back(markov_trace(cfg, child_seed));
        break;
      case TraceFamily::kGood:
        cfg.min_mbps = 9.0;
        cfg.max_mbps = 10.0;
        traces.push_back(markov_trace(cfg, child_seed));
        break;
      case TraceFamily::kWideRange:
        cfg.min_mbps = 0.5;
        cfg.max_mbps = 10.0;
        traces.push_back(markov_trace(cfg, child_seed));
        break;
      case TraceFamily::kSquareWave: {
        // Vary period and levels per trace (bounds stay within [1, 6]).
        const double period = 40.0 + 10.0 * double(i % 5);
        const double low = 1.0 + 0.5 * double(i % 3);
        const double high = 5.0 + 0.5 * double(i % 3);
        traces.push_back(square_wave_trace(low, high, period, 600.0, 5.0));
        break;
      }
      case TraceFamily::kConstant4:
        traces.push_back(BandwidthTrace::constant(4.0, 600.0, 5.0));
        break;
    }
  }
  return traces;
}

const char* family_name(TraceFamily family) {
  switch (family) {
    case TraceFamily::kFccLike: return "fcc_like";
    case TraceFamily::kPoor: return "poor";
    case TraceFamily::kGood: return "good";
    case TraceFamily::kWideRange: return "wide_range";
    case TraceFamily::kSquareWave: return "square_wave";
    case TraceFamily::kConstant4: return "constant_4";
  }
  return "unknown";
}

}  // namespace veritas::trace
