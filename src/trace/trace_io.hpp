// Trace persistence: a simple CSV format (time_s, mbps) for analysis
// tooling, plus export/import of the mahimahi packet-delivery-opportunity
// format the paper's testbed consumed (one millisecond timestamp per
// 1500-byte packet delivery).
#pragma once

#include <filesystem>
#include <string>

#include "trace/bandwidth_trace.hpp"

namespace veritas::trace {

/// Serializes as CSV with header "time_s,mbps"; one row per window start.
std::string to_csv(const BandwidthTrace& trace);

/// Parses the to_csv() format. Windows must be uniformly spaced.
BandwidthTrace from_csv(const std::string& text);

/// Writes to_csv() output to a file. Throws std::runtime_error on failure.
void write_csv_file(const BandwidthTrace& trace,
                    const std::filesystem::path& path);

/// Reads a CSV trace file. Throws std::runtime_error on IO failure.
BandwidthTrace read_csv_file(const std::filesystem::path& path);

/// Serializes in mahimahi format: one line per packet-delivery opportunity,
/// giving the millisecond at which a 1500-byte packet could be delivered.
std::string to_mahimahi(const BandwidthTrace& trace);

/// Parses mahimahi format back into a piecewise-constant trace by binning
/// delivery opportunities into `interval_s` windows.
BandwidthTrace from_mahimahi(const std::string& text, double interval_s);

}  // namespace veritas::trace
