// Piecewise-constant bandwidth traces.
//
// The paper models ground-truth bandwidth (GTBW) as a discrete process:
// the rate is constant within each window of length `interval_s` (the
// paper's δ). The same representation also carries reconstructed traces
// (Veritas posterior samples, Baseline estimates), possibly on a finer
// grid. Queries beyond the last window hold the final value, mirroring
// how trace-driven emulators keep a session running past trace end.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace veritas::trace {

/// A bandwidth time series: `values_mbps[i]` is the rate over
/// [i * interval_s, (i+1) * interval_s).
class BandwidthTrace {
 public:
  BandwidthTrace() = default;

  /// Requires interval_s > 0, at least one window and non-negative rates.
  BandwidthTrace(double interval_s, std::vector<double> values_mbps);

  /// Constant-rate trace of the given duration.
  static BandwidthTrace constant(double mbps, double duration_s,
                                 double interval_s = 1.0);

  double interval_s() const noexcept { return interval_s_; }
  std::size_t windows() const noexcept { return values_mbps_.size(); }
  double duration_s() const noexcept {
    return interval_s_ * static_cast<double>(values_mbps_.size());
  }
  std::span<const double> values_mbps() const noexcept { return values_mbps_; }

  /// Rate (Mbps) at time t >= 0; holds the last value past the end.
  double at(double t_s) const;

  /// Window index containing time t (clamped to the last window).
  std::size_t window_index(double t_s) const;

  /// Integral of the rate over [a, b], in megabits. Requires a <= b.
  double integrate_mbit(double a_s, double b_s) const;

  /// Average rate (Mbps) over [a, b]. Requires a < b.
  double average_mbps(double a_s, double b_s) const;

  /// Time needed to transfer `mbits` starting at `start_s`, assuming the
  /// transfer consumes the full rate. Requires mbits >= 0. Returns +inf
  /// when the trace rate is 0 from some point on and data remains.
  double time_to_transfer_s(double mbits, double start_s) const;

  /// Resamples onto a new window size (averaging within new windows).
  BandwidthTrace resampled(double new_interval_s) const;

  /// Mean absolute difference in Mbps against another trace, evaluated on
  /// a uniform grid of `samples` points over the overlap of both traces.
  double mean_abs_diff_mbps(const BandwidthTrace& other,
                            std::size_t samples = 1000) const;

 private:
  double interval_s_ = 1.0;
  std::vector<double> values_mbps_;
};

}  // namespace veritas::trace
