// Scenario: before acting on a what-if answer, an operator wants to know
// HOW MUCH to trust the abduction for a given session — where the
// posterior is pinned by the data and where it is wide (the paper's §4.2
// discussion, automated). Prints a per-session diagnosis with an ASCII
// rendering of the inferred bandwidth and its uncertainty.
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "core/diagnostics.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/ascii_plot.hpp"
#include "video/ladder_presets.hpp"

int main() {
  using namespace veritas;

  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 99);
  const trace::BandwidthTrace& gtbw = traces[0];
  const video::Video video(video::default_video_config());
  auto abr = abr::make_abr("mpc");
  const net::NetworkPath path(gtbw, 0.08);
  const auto deployed = sim::run_session(video, *abr, path);

  const core::Veritas veritas;
  const core::InferenceDiagnostics report =
      core::diagnose(veritas, deployed.log);
  std::printf("%s\n", report.summary().c_str());

  // Visual: MAP estimate vs the (hidden in production) ground truth,
  // plus the per-chunk posterior standard deviation as an uncertainty
  // band proxy.
  const auto inference = veritas.infer(deployed.log);
  const double horizon = deployed.log.chunks.back().end_s;
  auto sample_trace = [&](const trace::BandwidthTrace& t) {
    std::vector<double> ys;
    for (double x = 0.0; x < horizon; x += 2.0) ys.push_back(t.at(x));
    return ys;
  };
  std::vector<util::PlotSeries> series{
      {"ground truth (hidden in production)", sample_trace(gtbw), '#'},
      {"Veritas MAP", sample_trace(inference.map_trace), 'o'}};
  std::printf("bandwidth (Mbps) over the session:\n%s\n",
              util::render_plot(series).c_str());

  std::vector<double> stds;
  for (const auto& c : report.chunks) stds.push_back(c.posterior_std_mbps);
  std::printf("posterior std per chunk (uncertainty): %s\n",
              util::sparkline(stds).c_str());
  std::printf("informative chunks (size > BDP):       ");
  std::string marks;
  for (const auto& c : report.chunks) marks += c.informative ? '#' : '.';
  std::printf("%s\n", marks.c_str());
  return 0;
}
