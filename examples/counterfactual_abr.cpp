// Scenario: a video publisher has MPC deployed and asks — "what would
// have happened to my sessions if I had shipped BBA instead?" (the
// paper's Fig. 9 question) — using only the logs the deployment already
// collects, no ground-truth bandwidth and no A/B test.
//
// Compares the oracle answer (replay on true GTBW — unavailable in
// production, shown here because the traces are synthetic) against the
// Baseline reconstruction and the Veritas posterior bracket.
#include <cstdio>

#include "query/counterfactual.hpp"
#include "trace/trace_generator.hpp"
#include "util/stats.hpp"
#include "video/ladder_presets.hpp"

int main() {
  using namespace veritas;

  const std::size_t num_sessions = 12;
  std::printf("what-if: replace MPC with BBA across %zu recorded sessions\n\n",
              num_sessions);

  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike,
                                         num_sessions, /*seed=*/515);
  const video::Video video(video::default_video_config());
  const query::Setting deployed;  // mpc / 5 s buffer / default ladder
  query::Setting candidate;
  candidate.abr = "bba";

  const query::CounterfactualEngine engine;
  std::vector<double> oracle_reb, baseline_reb, lo_reb, hi_reb;
  std::printf("%8s %14s %14s %22s\n", "session", "oracle reb(%)",
              "baseline reb(%)", "veritas reb(%) [lo, hi]");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto outcome =
        engine.evaluate(traces[i], video, deployed, candidate, i);
    oracle_reb.push_back(outcome.actual.rebuffer_ratio_pct);
    baseline_reb.push_back(outcome.baseline.rebuffer_ratio_pct);
    lo_reb.push_back(outcome.veritas_low.rebuffer_ratio_pct);
    hi_reb.push_back(outcome.veritas_high.rebuffer_ratio_pct);
    std::printf("%8zu %14.2f %14.2f %14.2f, %5.2f\n", i,
                outcome.actual.rebuffer_ratio_pct,
                outcome.baseline.rebuffer_ratio_pct,
                outcome.veritas_low.rebuffer_ratio_pct,
                outcome.veritas_high.rebuffer_ratio_pct);
  }
  std::printf(
      "\nmedians: oracle %.2f%%, baseline %.2f%%, veritas [%.2f%%, %.2f%%]\n",
      util::median(oracle_reb), util::median(baseline_reb),
      util::median(lo_reb), util::median(hi_reb));
  std::printf(
      "\nreading: the Baseline (raw observed throughput) would have scared "
      "the publisher away from BBA; Veritas correctly predicts the switch "
      "is nearly free.\n");
  return 0;
}
