// Scenario: instead of the paper's fixed tridiagonal transition prior, a
// publisher with a large log archive can FIT the GTBW dynamics with the
// library's Baum-Welch extension, then run counterfactuals with the
// learned model. (Extension beyond the paper; see DESIGN.md.)
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "core/baum_welch.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "video/ladder_presets.hpp"

int main() {
  using namespace veritas;

  // Collect logs from a small deployment.
  const std::size_t sessions = 6;
  const auto traces =
      trace::make_traces(trace::TraceFamily::kFccLike, sessions, 818);
  const video::Video video(video::default_video_config());
  std::vector<std::vector<core::ChunkObservation>> observations;
  std::vector<sim::SessionLog> logs;
  for (const auto& t : traces) {
    auto abr = abr::make_abr("mpc");
    const net::NetworkPath path(t, 0.08);
    logs.push_back(sim::run_session(video, *abr, path).log);
    observations.push_back(core::observations_from_log(logs.back()));
  }

  // Fit transitions + emission noise by EM, starting from the defaults.
  const core::Veritas defaults;
  core::BaumWelchConfig em;
  em.max_iterations = 10;
  em.update_sigma = true;
  const core::BaumWelchResult trained =
      core::baum_welch_train(defaults.make_ehmm(), observations, em);

  std::printf("Baum-Welch fit over %zu sessions (%zu iterations):\n", sessions,
              trained.iterations);
  for (std::size_t i = 0; i < trained.log_likelihoods.size(); ++i) {
    std::printf("  iter %2zu  total log-likelihood = %.1f\n", i,
                trained.log_likelihoods[i]);
  }
  std::printf("fitted emission noise sigma = %.3f Mbps (prior: 0.5)\n",
              trained.sigma_mbps);

  // Mean self-transition mass: how sticky did the data say GTBW is?
  double stay = 0.0;
  for (std::size_t i = 0; i < trained.transition.states(); ++i) {
    stay += trained.transition.matrix()(i, i);
  }
  stay /= double(trained.transition.states());
  std::printf("mean fitted P(stay) = %.3f (tridiagonal prior used 0.8)\n",
              stay);

  // Inference accuracy: default prior vs fitted model on a held-out log.
  const auto holdout_trace = trace::make_traces(
      trace::TraceFamily::kFccLike, 1, /*seed=*/919)[0];
  auto abr = abr::make_abr("mpc");
  const net::NetworkPath path(holdout_trace, 0.08);
  const auto holdout_log = sim::run_session(video, *abr, path).log;

  const auto default_map = defaults.infer(holdout_log).map_trace;
  // Build a Veritas with the fitted sigma; transitions are plugged in by
  // constructing the EHMM directly.
  const core::Ehmm fitted_ehmm(
      core::StateSpace(0.5, 10.0), trained.transition,
      core::EmissionModel(trained.sigma_mbps), 5.0);
  const auto obs = core::observations_from_log(holdout_log);
  const auto fitted_viterbi = fitted_ehmm.viterbi(obs);
  const auto fitted_map = core::states_to_trace(
      fitted_ehmm.space(), fitted_viterbi.states, obs, 5.0,
      obs.back().end_s + 5.0);

  std::printf("\nheld-out inference error (mean |GTBW - MAP|):\n");
  std::printf("  default prior : %.3f Mbps\n",
              holdout_trace.mean_abs_diff_mbps(default_map));
  std::printf("  fitted model  : %.3f Mbps\n",
              holdout_trace.mean_abs_diff_mbps(fitted_map));
  return 0;
}
