// Scenario: a live session is in progress and the ABR wants bias-free
// download-time predictions for EVERY candidate next-chunk size — the
// interventional query of paper §4.4 (what Fugu is used for in
// production, but answered causally).
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "video/ladder_presets.hpp"

int main() {
  using namespace veritas;

  // A session in progress: 80 chunks downloaded so far under MPC.
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 717);
  const video::Video video(video::default_video_config());
  auto abr = abr::make_abr("mpc");
  const net::NetworkPath path(traces[0], 0.08);
  const auto session = sim::run_session(video, *abr, path);
  const std::size_t now_chunk = 80;
  const sim::SessionLog history = session.log.prefix(now_chunk);

  const core::Veritas veritas;

  // The next chunk could be requested at any of the ladder's sizes; the
  // TCP state right now is what the kernel would report.
  const auto& next_truth = session.log.chunks[now_chunk];
  std::printf("session at chunk %zu, t = %.1f s; inferring GTBW from %zu chunks\n\n",
              now_chunk, next_truth.start_s, history.size());
  std::printf("%8s %12s %16s %18s\n", "quality", "size (KB)",
              "E[GTBW] (Mbps)", "pred. DL time (s)");
  for (std::size_t q = 0; q < video.num_qualities(); ++q) {
    const double size = video.chunk_size_bytes(now_chunk, q);
    const auto prediction = veritas.predict_next(
        history, next_truth.start_s, next_truth.tcp_at_start, size);
    std::printf("%8zu %12.0f %16.2f %18.2f\n", q, size / 1024.0,
                prediction.expected_gtbw_mbps, prediction.download_time_s);
  }

  // Ground truth for the size the deployed ABR actually picked.
  std::printf(
      "\nactual: the deployed ABR picked quality %zu (%.0f KB) and the "
      "download took %.2f s\n",
      next_truth.quality, next_truth.size_bytes / 1024.0,
      next_truth.download_time_s());
  std::printf(
      "note: unlike an associational predictor, these per-size answers stay "
      "valid even for sizes the deployed ABR would never have chosen "
      "(paper Fig. 2b / Fig. 12).\n");
  return 0;
}
