// Scenario: capacity planning for client buffer size (the paper's
// Fig. 10 question, extended to a sweep). A larger buffer improves
// quality/rebuffering but hurts liveness; the designer wants the
// smallest buffer that meets a QoE target — evaluated counterfactually
// from existing 5-second-buffer logs.
#include <cstdio>

#include "query/counterfactual.hpp"
#include "trace/trace_generator.hpp"
#include "util/stats.hpp"
#include "video/ladder_presets.hpp"

int main() {
  using namespace veritas;

  const std::size_t num_sessions = 8;
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike,
                                         num_sessions, /*seed=*/616);
  const video::Video video(video::default_video_config());
  const query::Setting deployed;  // mpc / 5 s
  const query::CounterfactualEngine engine;

  std::printf("buffer sizing sweep from %zu recorded 5-second-buffer sessions\n\n",
              num_sessions);
  std::printf("%10s %18s %18s %20s\n", "buffer(s)", "veritas SSIM[lo,hi]",
              "veritas reb%[lo,hi]", "oracle SSIM / reb%");
  for (const double buffer_s : {5.0, 10.0, 15.0, 30.0, 60.0}) {
    query::Setting candidate;
    candidate.buffer_capacity_s = buffer_s;
    std::vector<double> lo_ssim, hi_ssim, lo_reb, hi_reb, gt_ssim, gt_reb;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const auto o = engine.evaluate(traces[i], video, deployed, candidate, i);
      lo_ssim.push_back(o.veritas_low.mean_ssim);
      hi_ssim.push_back(o.veritas_high.mean_ssim);
      lo_reb.push_back(o.veritas_low.rebuffer_ratio_pct);
      hi_reb.push_back(o.veritas_high.rebuffer_ratio_pct);
      gt_ssim.push_back(o.actual.mean_ssim);
      gt_reb.push_back(o.actual.rebuffer_ratio_pct);
    }
    std::printf("%10.0f   [%6.4f, %6.4f]   [%5.2f, %5.2f]     %6.4f / %5.2f\n",
                buffer_s, util::median(lo_ssim), util::median(hi_ssim),
                util::median(lo_reb), util::median(hi_reb),
                util::median(gt_ssim), util::median(gt_reb));
  }
  std::printf(
      "\nreading: the marginal benefit of buffer beyond ~15 s is small for "
      "these sessions — and the decision was made without re-running a "
      "single live experiment.\n");
  return 0;
}
