// Quickstart: the complete Veritas loop on a single session.
//
//   1. emulate a deployment: MPC over a synthetic ground-truth bandwidth
//      (GTBW) trace -> session log (sizes, timings, TCP states);
//   2. abduction: infer the posterior over the latent GTBW from the log
//      alone; compare the MAP trace and the Baseline estimate to the GT;
//   3. counterfactual: "what if the buffer had been 30 s instead of 5 s?"
//      -> replay under GT (oracle), Baseline and Veritas samples.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "query/counterfactual.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "video/ladder_presets.hpp"

int main() {
  using namespace veritas;

  // --- 1. Deployment (Setting A): MPC, 5 s buffer, default ladder. ---
  trace::MarkovTraceConfig trace_config;  // 3-8 Mbps FCC-like process
  const trace::BandwidthTrace gtbw = trace::markov_trace(trace_config, 7);

  const video::Video video(video::default_video_config());
  const net::NetworkPath path(gtbw, /*rtt_s=*/0.08);
  const auto mpc = abr::make_abr("mpc");
  const sim::SessionResult deployed = sim::run_session(video, *mpc, path);
  const sim::QoeMetrics deployed_metrics =
      sim::compute_metrics(video, deployed);

  std::printf("deployed session (MPC, 5s buffer):\n");
  std::printf("  chunks=%zu  mean SSIM=%.4f  rebuffer=%.2f%%  bitrate=%.2f Mbps\n",
              deployed.log.size(), deployed_metrics.mean_ssim,
              deployed_metrics.rebuffer_ratio_pct,
              deployed_metrics.avg_bitrate_mbps);

  // --- 2. Abduction: invert the log into GTBW hypotheses. ---
  const core::Veritas veritas;  // paper defaults: δ=5s, ε=0.5, σ=0.5
  const core::VeritasResult inference = veritas.infer(deployed.log);
  const trace::BandwidthTrace baseline = veritas.baseline(deployed.log);

  std::printf("\nabduction over %zu posterior samples:\n",
              inference.samples.size());
  std::printf("  mean |GTBW - map|      = %.3f Mbps\n",
              gtbw.mean_abs_diff_mbps(inference.map_trace));
  std::printf("  mean |GTBW - baseline| = %.3f Mbps\n",
              gtbw.mean_abs_diff_mbps(baseline));
  for (std::size_t k = 0; k < inference.samples.size(); ++k) {
    std::printf("  mean |GTBW - sample %zu| = %.3f Mbps\n", k,
                gtbw.mean_abs_diff_mbps(inference.samples[k]));
  }

  // --- 3. Counterfactual: what if the buffer had been 30 s? ---
  query::Setting setting_a;  // mpc / 5 s
  query::Setting setting_b;
  setting_b.buffer_capacity_s = 30.0;

  const query::CounterfactualEngine engine;
  const query::CounterfactualOutcome outcome =
      engine.evaluate(gtbw, video, setting_a, setting_b, /*seed=*/1);

  std::printf("\ncounterfactual: buffer 5s -> 30s\n");
  std::printf("  %-18s SSIM=%.4f  rebuffer=%.2f%%  bitrate=%.2f\n", "oracle (GT):",
              outcome.actual.mean_ssim, outcome.actual.rebuffer_ratio_pct,
              outcome.actual.avg_bitrate_mbps);
  std::printf("  %-18s SSIM=%.4f  rebuffer=%.2f%%  bitrate=%.2f\n", "baseline:",
              outcome.baseline.mean_ssim, outcome.baseline.rebuffer_ratio_pct,
              outcome.baseline.avg_bitrate_mbps);
  std::printf("  %-18s SSIM=%.4f..%.4f  rebuffer=%.2f..%.2f%%\n",
              "veritas (low..high):", outcome.veritas_low.mean_ssim,
              outcome.veritas_high.mean_ssim,
              outcome.veritas_low.rebuffer_ratio_pct,
              outcome.veritas_high.rebuffer_ratio_pct);
  return 0;
}
