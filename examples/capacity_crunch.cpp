// Scenario from the paper's introduction: "during the COVID crisis, many
// video publishers restricted the maximum bit rate" — before doing that
// globally, a publisher wants to know, from existing logs alone, what
// capping the ladder would do to quality and rebuffering.
#include <cstdio>

#include "query/counterfactual.hpp"
#include "trace/trace_generator.hpp"
#include "util/stats.hpp"
#include "video/ladder_presets.hpp"

int main() {
  using namespace veritas;

  const std::size_t num_sessions = 8;
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike,
                                         num_sessions, /*seed=*/321);
  const video::Video video(video::default_video_config());
  const query::Setting deployed;  // mpc / 5 s / full 0.1-4.0 Mbps ladder

  // The capped ladder: drop the top rung(s).
  video::Ladder capped = video::default_ladder();
  capped.pop_back();  // remove 4.0 Mbps
  query::Setting crunch;
  crunch.ladder = capped;

  const query::CounterfactualEngine engine;
  std::vector<double> ssim_before, ssim_after_lo, ssim_after_hi;
  std::vector<double> reb_after_lo, reb_after_hi, bitrate_after_hi;
  std::vector<double> oracle_ssim, oracle_bitrate;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto o = engine.evaluate(traces[i], video, deployed, crunch, i);
    ssim_before.push_back(o.setting_a.mean_ssim);
    ssim_after_lo.push_back(o.veritas_low.mean_ssim);
    ssim_after_hi.push_back(o.veritas_high.mean_ssim);
    reb_after_lo.push_back(o.veritas_low.rebuffer_ratio_pct);
    reb_after_hi.push_back(o.veritas_high.rebuffer_ratio_pct);
    bitrate_after_hi.push_back(o.veritas_high.avg_bitrate_mbps);
    oracle_ssim.push_back(o.actual.mean_ssim);
    oracle_bitrate.push_back(o.actual.avg_bitrate_mbps);
  }

  std::printf("capacity crunch: cap the ladder at %.1f Mbps (was 4.0)\n\n",
              capped.back().bitrate_mbps);
  std::printf("deployed (uncapped) median SSIM : %.4f\n",
              util::median(ssim_before));
  std::printf("predicted capped SSIM (veritas) : [%.4f, %.4f]   oracle: %.4f\n",
              util::median(ssim_after_lo), util::median(ssim_after_hi),
              util::median(oracle_ssim));
  std::printf("predicted capped rebuffering    : [%.2f%%, %.2f%%]\n",
              util::median(reb_after_lo), util::median(reb_after_hi));
  std::printf("predicted capped avg bitrate    : %.2f Mbps   oracle: %.2f Mbps\n",
              util::median(bitrate_after_hi), util::median(oracle_bitrate));
  std::printf(
      "\nreading: the cap saves ~%.0f%% of bytes at a quantified, small "
      "SSIM cost — decided entirely from logs.\n",
      100.0 * (1.0 - util::median(bitrate_after_hi) / 4.0));
  return 0;
}
