// Ablation: transition prior — tridiagonal (paper default) vs uniform
// (memoryless) vs banded. The temporal prior propagates certainty from
// informative (large-chunk) windows into uncertain ones; it helps on
// smooth traces and costs a little at sharp regime jumps.
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"

using namespace veritas;

namespace {

double median_map_error(core::TransitionPrior prior,
                        const std::vector<trace::BandwidthTrace>& traces) {
  core::VeritasConfig cfg;
  cfg.prior = prior;
  const core::Veritas veritas(cfg);
  const video::Video video(video::default_video_config());
  std::vector<double> errors;
  for (const auto& gtbw : traces) {
    auto abr = abr::make_abr("mpc");
    const net::NetworkPath path(gtbw, 0.08);
    const auto log = sim::run_session(video, *abr, path).log;
    errors.push_back(gtbw.mean_abs_diff_mbps(veritas.infer(log).map_trace));
  }
  return util::median(errors);
}

}  // namespace

int main() {
  const std::size_t n = query::bench_trace_count(15);
  std::printf("== Ablation: transition prior (%zu traces per family) ==\n", n);
  for (const auto family :
       {trace::TraceFamily::kFccLike, trace::TraceFamily::kSquareWave}) {
    const auto traces = trace::make_traces(family, n, 4242);
    std::printf("\nfamily: %s\n", trace::family_name(family));
    std::printf("  %-12s median |GTBW - MAP| = %.3f Mbps\n", "tridiagonal",
                median_map_error(core::TransitionPrior::kTridiagonal, traces));
    std::printf("  %-12s median |GTBW - MAP| = %.3f Mbps\n", "banded",
                median_map_error(core::TransitionPrior::kBanded, traces));
    std::printf("  %-12s median |GTBW - MAP| = %.3f Mbps\n", "uniform",
                median_map_error(core::TransitionPrior::kUniform, traces));
  }
  return 0;
}
