// Shared plumbing for the figure-regeneration benches: each bench binary
// reruns one of the paper's experiments end-to-end, prints the figure's
// rows/series to stdout and (when possible) writes a CSV artifact under
// bench_results/. Scale with VERITAS_BENCH_TRACES / VERITAS_BENCH_FAST=1.
#pragma once

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "query/counterfactual.hpp"
#include "query/experiment_setup.hpp"
#include "trace/trace_generator.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::bench {

/// Runs the standard counterfactual pipeline (deploy MPC/5s/default
/// ladder on FCC-like traces, abduct, replay `setting_b`) over `count`
/// traces.
inline std::vector<query::CounterfactualOutcome> run_counterfactual_series(
    const query::Setting& setting_b, std::size_t count,
    std::uint64_t seed = 2024) {
  const auto traces =
      trace::make_traces(trace::TraceFamily::kFccLike, count, seed);
  const video::Video video(video::default_video_config());
  const query::Setting setting_a;  // the deployed system
  const query::CounterfactualEngine engine;
  std::vector<query::CounterfactualOutcome> outcomes;
  outcomes.reserve(count);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    outcomes.push_back(
        engine.evaluate(traces[i], video, setting_a, setting_b, i));
  }
  return outcomes;
}

using MetricAccessor = double (*)(const sim::QoeMetrics&);

inline double metric_ssim(const sim::QoeMetrics& m) { return m.mean_ssim; }
inline double metric_rebuffer(const sim::QoeMetrics& m) {
  return m.rebuffer_ratio_pct;
}
inline double metric_bitrate(const sim::QoeMetrics& m) {
  return m.avg_bitrate_mbps;
}

/// Prints one metric panel of a counterfactual figure (the paper plots
/// per-trace curves; we print per-trace rows sorted by the ground-truth
/// value plus the median summary) and returns the CSV text.
inline std::string print_counterfactual_panel(
    const char* title, const std::vector<query::CounterfactualOutcome>& outcomes,
    MetricAccessor metric, const char* unit) {
  std::printf("\n-- %s --\n", title);
  std::printf("%6s %12s %12s %12s %12s\n", "trace", "oracle(GT)", "baseline",
              "veritas_lo", "veritas_hi");

  std::vector<std::size_t> order(outcomes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return metric(outcomes[a].actual) < metric(outcomes[b].actual);
  });

  std::ostringstream csv_stream;
  util::CsvWriter csv(csv_stream);
  csv.header({"trace", "oracle", "baseline", "veritas_low", "veritas_high"});

  std::vector<double> gt, base, lo, hi;
  for (const std::size_t i : order) {
    const auto& o = outcomes[i];
    gt.push_back(metric(o.actual));
    base.push_back(metric(o.baseline));
    lo.push_back(metric(o.veritas_low));
    hi.push_back(metric(o.veritas_high));
    std::printf("%6zu %12.4f %12.4f %12.4f %12.4f\n", i, metric(o.actual),
                metric(o.baseline), metric(o.veritas_low),
                metric(o.veritas_high));
    csv.row(std::vector<double>{double(i), metric(o.actual),
                                metric(o.baseline), metric(o.veritas_low),
                                metric(o.veritas_high)});
  }
  std::printf("median [%s]: oracle=%.4f baseline=%.4f veritas=[%.4f, %.4f]\n",
              unit, util::median(gt), util::median(base), util::median(lo),
              util::median(hi));
  return csv_stream.str();
}

/// Writes an artifact and reports where it went.
inline void save_artifact(const std::string& name, const std::string& csv) {
  if (const auto path = query::write_bench_artifact(name, csv)) {
    std::printf("wrote %s\n", path->string().c_str());
  }
}

}  // namespace veritas::bench
