// Paper Fig. 14 (appendix): average bitrate for every counterfactual
// query — (a) true Setting A vs Setting B, (b) MPC->BBA, (c) MPC->BOLA,
// (d) buffer 5s->30s, (e) higher qualities.
#include "bench_common.hpp"

using namespace veritas;

namespace {

void bitrate_panel(const char* name, const char* artifact,
                   const query::Setting& setting_b, std::size_t n,
                   std::uint64_t seed) {
  const auto outcomes = bench::run_counterfactual_series(setting_b, n, seed);
  bench::save_artifact(artifact, bench::print_counterfactual_panel(
                                     name, outcomes, bench::metric_bitrate,
                                     "Mbps"));
  // Panel (a) context for this query: the deployed Setting A bitrates.
  std::vector<double> a, b;
  for (const auto& o : outcomes) {
    a.push_back(o.setting_a.avg_bitrate_mbps);
    b.push_back(o.actual.avg_bitrate_mbps);
  }
  std::printf("   setting A median = %.2f Mbps, true setting B median = %.2f Mbps\n",
              util::median(a), util::median(b));
}

}  // namespace

int main() {
  const std::size_t n = query::bench_trace_count(25);
  std::printf("== Fig. 14: average bitrate under each counterfactual (%zu traces) ==\n",
              n);

  query::Setting bba;
  bba.abr = "bba";
  bitrate_panel("(b) Avg. bitrate, MPC -> BBA", "fig14b_bitrate.csv", bba, n,
                2024);

  query::Setting bola;
  bola.abr = "bola";
  bitrate_panel("(c) Avg. bitrate, MPC -> BOLA", "fig14c_bitrate.csv", bola, n,
                2024);

  query::Setting buffer;
  buffer.buffer_capacity_s = 30.0;
  bitrate_panel("(d) Avg. bitrate, buffer 5 s -> 30 s", "fig14d_bitrate.csv",
                buffer, n, 2024);

  query::Setting high;
  high.ladder = video::high_ladder();
  bitrate_panel("(e) Avg. bitrate, higher qualities", "fig14e_bitrate.csv",
                high, n, 2024);
  return 0;
}
