// Paper Fig. 8: the TRUE impact of changing the ABR from MPC to BBA when
// both run on the same ground-truth traces — BBA is more aggressive:
// higher SSIM and higher rebuffering.
#include <cstdio>

#include "bench_common.hpp"

using namespace veritas;

int main() {
  const std::size_t n = query::bench_trace_count(40);
  std::printf("== Fig. 8: true impact of MPC -> BBA over %zu traces ==\n", n);
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, n, 2024);
  const video::Video video(video::default_video_config());

  std::ostringstream csv_stream;
  util::CsvWriter csv(csv_stream);
  csv.header({"trace", "mpc_ssim", "bba_ssim", "mpc_rebuffer", "bba_rebuffer"});
  std::printf("%6s %10s %10s %12s %12s\n", "trace", "MPC ssim", "BBA ssim",
              "MPC reb(%)", "BBA reb(%)");
  std::vector<double> mpc_ssim, bba_ssim, mpc_reb, bba_reb;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    query::Setting mpc;
    query::Setting bba;
    bba.abr = "bba";
    const auto m = query::run_under_setting(traces[i], video, mpc, 0.08, i);
    const auto b = query::run_under_setting(traces[i], video, bba, 0.08, i);
    mpc_ssim.push_back(m.mean_ssim);
    bba_ssim.push_back(b.mean_ssim);
    mpc_reb.push_back(m.rebuffer_ratio_pct);
    bba_reb.push_back(b.rebuffer_ratio_pct);
    std::printf("%6zu %10.4f %10.4f %12.3f %12.3f\n", i, m.mean_ssim,
                b.mean_ssim, m.rebuffer_ratio_pct, b.rebuffer_ratio_pct);
    csv.row(std::vector<double>{double(i), m.mean_ssim, b.mean_ssim,
                                m.rebuffer_ratio_pct, b.rebuffer_ratio_pct});
  }
  bench::save_artifact("fig8_true_abr_impact.csv", csv_stream.str());
  std::printf(
      "\nmedians: SSIM %.4f (MPC) vs %.4f (BBA); rebuffering %.3f%% (MPC) vs "
      "%.3f%% (BBA)\n",
      util::median(mpc_ssim), util::median(bba_ssim), util::median(mpc_reb),
      util::median(bba_reb));
  std::printf("shape (paper): BBA more aggressive — larger SSIM, more rebuffering.\n");
  return 0;
}
