// Baum-Welch training bench: EM wall-time across 1/2/4/hardware E-step
// threads, plus the emission ablation (per-iteration estimator recompute
// vs the per-session memoized means), with a bit-identity cross-check of
// every configuration against the 1-thread run.
//
// Usage: bench_train [--sessions N] [--iterations I] [--repeat R]
//                    [--json PATH]
// The optional JSON snapshot feeds tools/run_bench.sh (BENCH_2.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "abr/abr_factory.hpp"
#include "math/simd_kernels.hpp"
#include "core/baum_welch.hpp"
#include "core/inference_engine.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/thread_pool.hpp"
#include "video/ladder_presets.hpp"

namespace {

using namespace veritas;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::vector<core::ChunkObservation>> make_sessions(
    std::size_t count) {
  const auto traces =
      trace::make_traces(trace::TraceFamily::kFccLike, count, 2024);
  const video::Video video(video::default_video_config());
  std::vector<std::vector<core::ChunkObservation>> sessions;
  sessions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto abr = abr::make_abr(i % 2 == 0 ? "mpc" : "bba");
    const net::NetworkPath path(traces[i], 0.08);
    sessions.push_back(core::observations_from_log(
        sim::run_session(video, *abr, path).log));
  }
  return sessions;
}

bool results_identical(const core::BaumWelchResult& a,
                       const core::BaumWelchResult& b) {
  if (a.iterations != b.iterations) return false;
  if (a.log_likelihoods != b.log_likelihoods) return false;
  if (a.sigma_mbps != b.sigma_mbps) return false;
  if (a.transition.matrix().max_abs_diff(b.transition.matrix()) != 0.0) {
    return false;
  }
  for (std::size_t i = 0; i < a.transition.initial().size(); ++i) {
    if (a.transition.initial()[i] != b.transition.initial()[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_sessions = 16;
  std::size_t iterations = 5;
  int repeat = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      n_sessions = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--sessions N] [--iterations I] [--repeat R] "
          "[--json PATH]\n",
          argv[0]);
      return 2;
    }
  }

  std::printf("== Baum-Welch training bench ==\n");
  std::printf("generating %zu sessions...\n", n_sessions);
  const auto sessions = make_sessions(n_sessions);
  std::size_t total_chunks = 0;
  for (const auto& s : sessions) total_chunks += s.size();
  std::printf("total chunks: %zu, %zu EM iterations per run\n", total_chunks,
              iterations);

  const core::InferenceEngine engine{core::VeritasConfig{}};
  core::BaumWelchConfig base;
  base.max_iterations = iterations;
  base.tolerance = 0.0;  // force every iteration: wall-time comparability
  base.update_sigma = true;

  struct Mode {
    const char* name;
    std::size_t threads;
    bool reuse_means;
  };
  std::vector<Mode> modes{{"1 thread, recompute-f", 1, false},
                          {"1 thread, memoized-f", 1, true},
                          {"2 threads, memoized-f", 2, true},
                          {"4 threads, memoized-f", 4, true}};
  const std::size_t hw = util::ThreadPool::hardware_threads();
  if (hw > 4) modes.push_back({"hw threads, memoized-f", hw, true});

  core::BaumWelchResult reference{core::TransitionModel::uniform(2), 0.0,
                                  {}, 0};
  double base_ms = 0.0;
  bool deterministic = true;
  std::vector<std::pair<std::string, double>> timings;
  std::printf("\n%-24s %12s %10s\n", "mode", "train (ms)", "speedup");
  for (const Mode& mode : modes) {
    core::BaumWelchConfig cfg = base;
    cfg.num_threads = mode.threads;
    cfg.reuse_emission_means = mode.reuse_means;
    double best_ms = 1e300;
    core::BaumWelchResult result{core::TransitionModel::uniform(2), 0.0,
                                 {}, 0};
    for (int r = 0; r < repeat; ++r) {
      const auto start = Clock::now();
      result = core::baum_welch_train(engine.ehmm(), sessions, cfg);
      best_ms = std::min(best_ms, seconds_since(start) * 1e3);
    }
    if (timings.empty()) {
      reference = result;
      base_ms = best_ms;
    } else {
      deterministic &= results_identical(result, reference);
    }
    timings.emplace_back(mode.name, best_ms);
    std::printf("%-24s %12.1f %9.2fx\n", mode.name, best_ms,
                base_ms / best_ms);
  }
  std::printf("\nall modes bit-identical to the first: %s\n",
              deterministic ? "yes" : "NO (BUG)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"bench_train\",\n"
        << "  \"kernels\": \""
        << veritas::math::simd_kernels::backend_name() << "\",\n"
        << "  \"sessions\": " << n_sessions << ",\n"
        << "  \"total_chunks\": " << total_chunks << ",\n"
        << "  \"em_iterations\": " << iterations << ",\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"train_ms\": [\n";
    for (std::size_t i = 0; i < timings.size(); ++i) {
      out << "    {\"mode\": \"" << timings[i].first
          << "\", \"ms\": " << timings[i].second << "}"
          << (i + 1 < timings.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"deterministic_across_modes\": "
        << (deterministic ? "true" : "false") << "\n"
        << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return deterministic ? 0 : 1;
}
