// Paper Fig. 11 plus the §4.3 headline: predicted performance if a
// higher set of video qualities were used. Ground truth and Veritas show
// negligible rebuffering; Baseline predicts a large median ratio
// (paper: 6.7%).
#include "bench_common.hpp"

int main() {
  using namespace veritas;
  const std::size_t n = query::bench_trace_count(40);
  std::printf("== Fig. 11: counterfactual high-quality ladder over %zu traces ==\n",
              n);
  query::Setting high;
  high.ladder = video::high_ladder();
  const auto outcomes = bench::run_counterfactual_series(high, n);
  bench::save_artifact(
      "fig11_ssim.csv",
      bench::print_counterfactual_panel("(a) SSIM", outcomes,
                                        bench::metric_ssim, "ssim"));
  bench::save_artifact(
      "fig11_rebuffer.csv",
      bench::print_counterfactual_panel("(b) Rebuffering ratio (%)", outcomes,
                                        bench::metric_rebuffer, "%"));

  // Headline check (§4.3): median rebuffering, Baseline vs oracle/Veritas.
  std::vector<double> base, gt, hi;
  for (const auto& o : outcomes) {
    base.push_back(o.baseline.rebuffer_ratio_pct);
    gt.push_back(o.actual.rebuffer_ratio_pct);
    hi.push_back(o.veritas_high.rebuffer_ratio_pct);
  }
  std::printf(
      "\nheadline: baseline median rebuffering = %.2f%% (paper ~6.7%%), "
      "oracle = %.2f%%, veritas(high) = %.2f%% (paper ~0%%)\n",
      util::median(base), util::median(gt), util::median(hi));
  return 0;
}
