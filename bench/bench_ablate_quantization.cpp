// Ablation: quantization hyperparameters — GTBW grid ε and window δ.
// Finer grids improve accuracy at quadratic cost in the state count;
// smaller δ refines timing at linear cost in windows.
#include <chrono>
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"

using namespace veritas;

namespace {

struct Sweep {
  double epsilon, delta;
};

}  // namespace

int main() {
  const std::size_t n = query::bench_trace_count(8);
  std::printf("== Ablation: quantization (ε, δ) over %zu traces ==\n", n);
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, n, 31);
  const video::Video video(video::default_video_config());

  // Pre-run the deployments once.
  std::vector<sim::SessionLog> logs;
  for (const auto& gtbw : traces) {
    auto abr = abr::make_abr("mpc");
    const net::NetworkPath path(gtbw, 0.08);
    logs.push_back(sim::run_session(video, *abr, path).log);
  }

  std::printf("%8s %8s %10s %22s %14s\n", "ε (Mbps)", "δ (s)", "states",
              "median |GTBW-MAP| (Mbps)", "infer time (ms)");
  const std::vector<Sweep> sweeps{{0.25, 5.0}, {0.5, 5.0},  {1.0, 5.0},
                                  {2.0, 5.0},  {0.5, 1.0},  {0.5, 10.0}};
  for (const auto& s : sweeps) {
    core::VeritasConfig cfg;
    cfg.epsilon_mbps = s.epsilon;
    cfg.delta_s = s.delta;
    const core::Veritas veritas(cfg);
    std::vector<double> errors;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < logs.size(); ++i) {
      errors.push_back(
          traces[i].mean_abs_diff_mbps(veritas.infer(logs[i]).map_trace));
    }
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count() /
                         double(logs.size());
    const std::size_t states =
        core::StateSpace(s.epsilon, cfg.max_mbps).size();
    std::printf("%8.2f %8.1f %10zu %22.3f %14.2f\n", s.epsilon, s.delta,
                states, util::median(errors), elapsed);
  }
  return 0;
}
