// Extension experiment (paper §3.2 anticipates it): the deployed stack
// runs a BBR-like, rate-based congestion control instead of cubic.
// BBR keeps its rate estimate across idle periods, so the slow-start-
// restart bias largely disappears — the Baseline becomes less wrong for
// mid/large chunks, while small chunks stay RTT-bound. Veritas with a
// matching f still reconstructs GTBW best; Veritas with the *wrong*
// (cubic) emission model degrades, quantifying how much the f <-> stack
// match matters.
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"

using namespace veritas;

int main() {
  const std::size_t n = query::bench_trace_count(15);
  std::printf("== Extension: BBR-like deployed stack (%zu traces) ==\n", n);
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, n, 550);
  const video::Video video(video::default_video_config());

  net::TcpConfig bbr;
  bbr.congestion_control = net::CongestionControl::kBbrLike;

  core::VeritasConfig matched_cfg;
  matched_cfg.tcp = bbr;  // f models the BBR-like stack
  core::VeritasConfig mismatched_cfg;  // f models cubic (default)
  const core::Veritas matched(matched_cfg);
  const core::Veritas mismatched(mismatched_cfg);

  std::vector<double> base_err, matched_err, mismatched_err;
  for (const auto& gtbw : traces) {
    auto abr = abr::make_abr("mpc");
    const net::NetworkPath path(gtbw, 0.08, bbr);  // BBR ground truth
    const auto log = sim::run_session(video, *abr, path).log;
    base_err.push_back(gtbw.mean_abs_diff_mbps(matched.baseline(log)));
    matched_err.push_back(
        gtbw.mean_abs_diff_mbps(matched.infer(log).map_trace));
    mismatched_err.push_back(
        gtbw.mean_abs_diff_mbps(mismatched.infer(log).map_trace));
  }

  std::printf("%-38s %14s\n", "scheme", "median |GTBW - est| (Mbps)");
  std::printf("%-38s %14.3f\n", "Baseline (observed throughput)",
              util::median(base_err));
  std::printf("%-38s %14.3f\n", "Veritas, f matched to BBR stack",
              util::median(matched_err));
  std::printf("%-38s %14.3f\n", "Veritas, f mismatched (cubic model)",
              util::median(mismatched_err));

  // Reference: the cubic-stack numbers from the main experiments.
  std::vector<double> cubic_base_err, cubic_veritas_err;
  const core::Veritas cubic_veritas;  // defaults
  for (const auto& gtbw : traces) {
    auto abr = abr::make_abr("mpc");
    const net::NetworkPath path(gtbw, 0.08);  // cubic ground truth
    const auto log = sim::run_session(video, *abr, path).log;
    cubic_base_err.push_back(
        gtbw.mean_abs_diff_mbps(cubic_veritas.baseline(log)));
    cubic_veritas_err.push_back(
        gtbw.mean_abs_diff_mbps(cubic_veritas.infer(log).map_trace));
  }
  std::printf(
      "\nreference (cubic stack): baseline %.3f, veritas %.3f Mbps\n",
      util::median(cubic_base_err), util::median(cubic_veritas_err));
  std::printf(
      "\nreading: rate-based CC shrinks the observed-throughput bias (the "
      "paper's SSR confounder), and the emission model must match the "
      "deployed stack — exactly the paper's caveat that f is per-TCP-"
      "version.\n");
  return 0;
}
