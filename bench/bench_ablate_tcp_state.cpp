// Ablation: what happens when the emission model ignores the TCP state
// W_sn (no slow-start-restart / window modelling)? This is the paper's
// central design argument (§3.2): conditioning on W_sn is what makes the
// inversion well-posed. The ablated estimator treats every download as
// steady-state, so post-idle chunks look like low-bandwidth evidence and
// the inferred GTBW is biased low — approaching the Baseline.
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"

using namespace veritas;

int main() {
  const std::size_t n = query::bench_trace_count(20);
  std::printf("== Ablation: emission with vs without TCP-state control (%zu traces) ==\n",
              n);
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, n, 2024);
  const video::Video video(video::default_video_config());

  core::VeritasConfig full_cfg;
  core::VeritasConfig ablated_cfg;
  ablated_cfg.estimator = core::EmissionModel::Estimator::kNoTcpState;
  const core::Veritas full(full_cfg);
  const core::Veritas ablated(ablated_cfg);

  std::vector<double> full_err, ablated_err, baseline_err;
  for (const auto& gtbw : traces) {
    auto abr = abr::make_abr("mpc");
    const net::NetworkPath path(gtbw, 0.08);
    const auto log = sim::run_session(video, *abr, path).log;
    full_err.push_back(gtbw.mean_abs_diff_mbps(full.infer(log).map_trace));
    ablated_err.push_back(
        gtbw.mean_abs_diff_mbps(ablated.infer(log).map_trace));
    baseline_err.push_back(gtbw.mean_abs_diff_mbps(full.baseline(log)));
  }

  std::printf("%-28s %14s\n", "emission model", "median |GTBW - MAP| (Mbps)");
  std::printf("%-28s %14.3f\n", "full (f with W_sn)", util::median(full_err));
  std::printf("%-28s %14.3f\n", "ablated (no TCP state)",
              util::median(ablated_err));
  std::printf("%-28s %14.3f\n", "(Baseline, for reference)",
              util::median(baseline_err));
  std::printf(
      "\nconclusion: without the W_sn control the inversion inherits the "
      "slow-start bias the paper identifies.\n");
  return 0;
}
