// Paper Fig. 12 + §6 headline: interventional download-time prediction.
// Fugu trained on MPC logs (0.5-10 Mbps traces); tested on random-ABR
// sessions. Veritas predicts close to the truth; Fugu underestimates —
// the paper reports >= 5.8 s underestimation for 10% of chunks and up to
// ~35 s in the worst case.
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "net/network_path.hpp"
#include "query/interventional.hpp"
#include "sim/session.hpp"

using namespace veritas;

namespace {

std::vector<sim::SessionLog> make_logs(const std::string& abr_name,
                                       std::size_t count,
                                       std::uint64_t seed) {
  const video::Video video(video::default_video_config());
  const auto traces =
      trace::make_traces(trace::TraceFamily::kWideRange, count, seed);
  std::vector<sim::SessionLog> logs;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto abr = abr::make_abr(abr_name, seed + i);
    const net::NetworkPath path(traces[i], 0.08);
    logs.push_back(sim::run_session(video, *abr, path).log);
  }
  return logs;
}

}  // namespace

int main() {
  const std::size_t train_n = query::bench_trace_count(40);
  const std::size_t test_n = std::max<std::size_t>(train_n / 3, 2);
  std::printf(
      "== Fig. 12: interventional download-time prediction (%zu MPC train, "
      "%zu random-ABR test sessions) ==\n",
      train_n, test_n);

  ml::FuguConfig fugu_cfg;
  fugu_cfg.epochs = query::bench_fast_mode() ? 8 : 30;
  const auto result = query::run_interventional_study(
      make_logs("mpc", train_n, 9090), make_logs("random", test_n, 7070),
      core::VeritasConfig{}, fugu_cfg);

  // Scatter sample (the paper's Fig. 12 is a scatter of true vs
  // predicted): print every 8th record.
  std::printf("%8s %10s %10s %10s\n", "chunk", "true (s)", "Fugu (s)",
              "Veritas (s)");
  std::ostringstream csv_stream;
  util::CsvWriter csv(csv_stream);
  csv.header({"session", "chunk", "size_bytes", "true_s", "fugu_s",
              "veritas_s"});
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const auto& r = result.records[i];
    if (i % 8 == 0) {
      std::printf("%8zu %10.2f %10.2f %10.2f\n", r.chunk, r.true_time_s,
                  r.fugu_time_s, r.veritas_time_s);
    }
    csv.row(std::vector<double>{double(r.session), double(r.chunk),
                                r.size_bytes, r.true_time_s, r.fugu_time_s,
                                r.veritas_time_s});
  }
  bench::save_artifact("fig12_interventional.csv", csv_stream.str());

  const auto print_errors = [](const char* name,
                               const query::PredictorErrors& e) {
    std::printf(
        "%-8s mean|err| = %6.2f s; median signed = %+6.2f s; p10 signed = "
        "%+6.2f s; worst underestimate = %6.2f s; worst overestimate = %6.2f s\n",
        name, e.mean_abs_error_s, e.median_error_s, e.p10_error_s,
        e.worst_underestimate_s, e.worst_overestimate_s);
  };
  std::printf("\n(%zu prediction points)\n", result.records.size());
  print_errors("Fugu", result.fugu);
  print_errors("Veritas", result.veritas);
  std::printf(
      "\nheadline (paper §6): Fugu underestimates by >= 5.8 s for 10%% of "
      "chunks, worst ~35 s; Veritas close to truth.\n");
  return 0;
}
