// Ablation: how the final state is chosen before backward sampling —
// pinned to the Viterbi MAP state (paper Algorithm 1) vs drawn from the
// smoothed posterior (pure FFBS). FFBS yields properly calibrated
// posterior draws; the paper's pinning trades a bit of diversity for
// agreement with the MAP path.
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"

using namespace veritas;

int main() {
  const std::size_t n = query::bench_trace_count(12);
  std::printf("== Ablation: sampler last-state rule (%zu traces) ==\n", n);
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, n, 707);
  const video::Video video(video::default_video_config());

  for (const auto rule : {core::SamplerConfig::LastState::kViterbi,
                          core::SamplerConfig::LastState::kPosterior}) {
    core::VeritasConfig cfg;
    cfg.sampler.last_state = rule;
    const core::Veritas veritas(cfg);
    std::vector<double> sample_err, spread;
    for (const auto& gtbw : traces) {
      auto abr = abr::make_abr("mpc");
      const net::NetworkPath path(gtbw, 0.08);
      const auto log = sim::run_session(video, *abr, path).log;
      const auto result = veritas.infer(log);
      double err = 0.0;
      for (const auto& sample : result.samples) {
        err += gtbw.mean_abs_diff_mbps(sample) / double(result.samples.size());
      }
      sample_err.push_back(err);
      double pairwise = 0.0;
      int pairs = 0;
      for (std::size_t a = 0; a < result.samples.size(); ++a) {
        for (std::size_t b = a + 1; b < result.samples.size(); ++b) {
          pairwise += result.samples[a].mean_abs_diff_mbps(result.samples[b]);
          ++pairs;
        }
      }
      spread.push_back(pairwise / pairs);
    }
    std::printf(
        "  %-10s mean sample error = %.3f Mbps, sample diversity = %.3f "
        "Mbps\n",
        rule == core::SamplerConfig::LastState::kViterbi ? "viterbi"
                                                         : "posterior",
        util::median(sample_err), util::median(spread));
  }
  return 0;
}
