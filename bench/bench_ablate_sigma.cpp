// Ablation: emission noise σ. Too small -> overconfident, brittle to the
// estimator's residual error; too large -> the posterior flattens and
// samples scatter. The paper's 0.5 Mbps sits in the stable middle.
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"

using namespace veritas;

int main() {
  const std::size_t n = query::bench_trace_count(10);
  std::printf("== Ablation: emission noise σ over %zu traces ==\n", n);
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, n, 99);
  const video::Video video(video::default_video_config());

  std::vector<sim::SessionLog> logs;
  for (const auto& gtbw : traces) {
    auto abr = abr::make_abr("mpc");
    const net::NetworkPath path(gtbw, 0.08);
    logs.push_back(sim::run_session(video, *abr, path).log);
  }

  std::printf("%10s %24s %24s\n", "σ (Mbps)", "median |GTBW-MAP| (Mbps)",
              "median sample spread (Mbps)");
  for (const double sigma : {0.1, 0.25, 0.5, 1.0, 2.0}) {
    core::VeritasConfig cfg;
    cfg.sigma_mbps = sigma;
    const core::Veritas veritas(cfg);
    std::vector<double> errors, spreads;
    for (std::size_t i = 0; i < logs.size(); ++i) {
      const auto result = veritas.infer(logs[i]);
      errors.push_back(traces[i].mean_abs_diff_mbps(result.map_trace));
      // Spread: mean pairwise distance between posterior samples.
      double spread = 0.0;
      int pairs = 0;
      for (std::size_t a = 0; a < result.samples.size(); ++a) {
        for (std::size_t b = a + 1; b < result.samples.size(); ++b) {
          spread += result.samples[a].mean_abs_diff_mbps(result.samples[b]);
          ++pairs;
        }
      }
      spreads.push_back(pairs > 0 ? spread / pairs : 0.0);
    }
    std::printf("%10.2f %24.3f %24.3f\n", sigma, util::median(errors),
                util::median(spreads));
  }
  return 0;
}
