// Microbenchmarks (google-benchmark) for the core inference primitives:
// Viterbi, forward-backward, posterior sampling, transition powers, the
// TCP simulator and the estimator f, plus a full end-to-end infer().
#include <benchmark/benchmark.h>

#include "abr/abr_factory.hpp"
#include "core/inference_engine.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "net/throughput_estimator.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "video/ladder_presets.hpp"

namespace {

using namespace veritas;

const sim::SessionLog& shared_log() {
  static const sim::SessionLog log = [] {
    const auto traces =
        trace::make_traces(trace::TraceFamily::kFccLike, 1, 2024);
    const video::Video video(video::default_video_config());
    auto abr = abr::make_abr("mpc");
    const net::NetworkPath path(traces[0], 0.08);
    return sim::run_session(video, *abr, path).log;
  }();
  return log;
}

void BM_Viterbi(benchmark::State& state) {
  const core::Veritas veritas;
  const core::Ehmm ehmm = veritas.make_ehmm();
  const auto obs = core::observations_from_log(shared_log());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ehmm.viterbi(obs));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_Viterbi);

void BM_ForwardBackward(benchmark::State& state) {
  const core::Veritas veritas;
  const core::Ehmm ehmm = veritas.make_ehmm();
  const auto obs = core::observations_from_log(shared_log());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ehmm.forward_backward(obs));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_ForwardBackward);

void BM_PosteriorSample(benchmark::State& state) {
  const core::Veritas veritas;
  const core::Ehmm ehmm = veritas.make_ehmm();
  const auto obs = core::observations_from_log(shared_log());
  core::Ehmm::Scratch scratch;
  const auto pass = ehmm.infer_fused(obs, scratch);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sample_capacity_states(
        ehmm, pass.viterbi, pass.forward_backward, scratch, rng));
  }
}
BENCHMARK(BM_PosteriorSample);

void BM_FullInfer(benchmark::State& state) {
  const core::Veritas veritas;
  for (auto _ : state) {
    benchmark::DoNotOptimize(veritas.infer(shared_log()));
  }
}
BENCHMARK(BM_FullInfer);

core::VeritasConfig multi_window_config() {
  core::VeritasConfig cfg;
  cfg.estimator = core::EmissionModel::Estimator::kMultiWindow;
  return cfg;
}

void BM_FullInferMultiWindow(benchmark::State& state) {
  const core::Veritas veritas(multi_window_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(veritas.infer(shared_log()));
  }
}
BENCHMARK(BM_FullInferMultiWindow);

// The fused engine pass (emissions + deltas once, Viterbi + smoothing
// sharing them) with a reused scratch arena — the per-session hot path
// of InferenceEngine::infer_batch.
void BM_FusedSessionPass(benchmark::State& state) {
  const core::InferenceEngine engine{core::VeritasConfig{}};
  const auto obs = core::observations_from_log(shared_log());
  core::Ehmm::Scratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.infer_session(obs, scratch));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_FusedSessionPass);

void BM_FusedSessionPassMultiWindow(benchmark::State& state) {
  const core::InferenceEngine engine{multi_window_config()};
  const auto obs = core::observations_from_log(shared_log());
  core::Ehmm::Scratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.infer_session(obs, scratch));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_FusedSessionPassMultiWindow);

void BM_EmissionLogProbs(benchmark::State& state) {
  const core::InferenceEngine engine{
      state.range(0) == 0 ? core::VeritasConfig{} : multi_window_config()};
  const auto obs = core::observations_from_log(shared_log());
  math::Matrix logs;
  for (auto _ : state) {
    engine.ehmm().emission_log_probs_into(obs, logs);
    benchmark::DoNotOptimize(logs);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_EmissionLogProbs)->Arg(0)->Arg(1);

void BM_TransitionPower(benchmark::State& state) {
  const auto model = core::TransitionModel::tridiagonal(21);
  for (auto _ : state) {
    // Cold cache each round: build a fresh power via matrix_power.
    benchmark::DoNotOptimize(
        math::matrix_power(model.matrix(), std::size_t(state.range(0))));
  }
}
BENCHMARK(BM_TransitionPower)->Arg(2)->Arg(16)->Arg(128);

void BM_EstimatorF(benchmark::State& state) {
  net::TcpState w;
  w.cwnd_segments = 25.0;
  w.ssthresh_segments = 30.0;
  w.last_send_gap_s = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::estimate_throughput_mbps(4.0, w, double(state.range(0))));
  }
}
BENCHMARK(BM_EstimatorF)->Arg(25000)->Arg(250000)->Arg(1000000);

void BM_TcpDownload(benchmark::State& state) {
  const auto bw = trace::BandwidthTrace::constant(5.0, 100000.0, 5.0);
  for (auto _ : state) {
    net::TcpConnection conn(net::TcpConfig{}, 0.08);
    benchmark::DoNotOptimize(conn.download(bw, 0.0, double(state.range(0))));
  }
}
BENCHMARK(BM_TcpDownload)->Arg(25000)->Arg(1000000);

void BM_FullSession(benchmark::State& state) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 7);
  const video::Video video(video::default_video_config());
  const net::NetworkPath path(traces[0], 0.08);
  for (auto _ : state) {
    auto abr = abr::make_abr("mpc");
    benchmark::DoNotOptimize(sim::run_session(video, *abr, path));
  }
}
BENCHMARK(BM_FullSession);

}  // namespace

BENCHMARK_MAIN();
