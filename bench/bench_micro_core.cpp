// Microbenchmarks (google-benchmark) for the core inference primitives:
// Viterbi, forward-backward, posterior sampling, transition powers, the
// TCP simulator and the estimator f, plus a full end-to-end infer().
//
// Benchmarks that exercise the EHMM kernels take a `simd` argument:
// /simd:0 forces the scalar reference table, /simd:1 the default
// bit-exact vector table, /simd:2 the opt-in AVX-512/FMA tier (each
// skipped when the binary or CPU lacks that table), so one run records
// the full kernel-tier trajectory side by side (tools/run_bench.sh →
// BENCH_7.json). Every guarded benchmark labels itself with the
// *resolved* tier name so the JSON never reports a stale dispatch mode.
#include <benchmark/benchmark.h>

#include "abr/abr_factory.hpp"
#include "core/inference_engine.hpp"
#include "core/veritas.hpp"
#include "math/simd_kernels.hpp"
#include "net/network_path.hpp"
#include "net/throughput_estimator.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/trace.hpp"
#include "video/ladder_presets.hpp"

namespace {

using namespace veritas;
namespace sk = veritas::math::simd_kernels;

const sim::SessionLog& shared_log() {
  static const sim::SessionLog log = [] {
    const auto traces =
        trace::make_traces(trace::TraceFamily::kFccLike, 1, 2024);
    const video::Video video(video::default_video_config());
    auto abr = abr::make_abr("mpc");
    const net::NetworkPath path(traces[0], 0.08);
    return sim::run_session(video, *abr, path).log;
  }();
  return log;
}

/// Applies the benchmark's simd argument to the kernel dispatcher:
/// 0 = scalar reference, 1 = default bit-exact vector table, 2 = opt-in
/// AVX-512/FMA tier. Returns false (after flagging a skip) when the
/// requested table is absent, and labels the benchmark with the
/// *resolved* tier name (sk::backend_name()) so recorded runs identify
/// the kernels that actually executed.
class KernelModeGuard {
 public:
  explicit KernelModeGuard(benchmark::State& state) {
    const int tier = static_cast<int>(state.range(0));
    if (tier == 1 && sk::simd_ops() == nullptr) {
      state.SkipWithError("SIMD kernel table unavailable");
      ok_ = false;
      return;
    }
    if (tier == 2 && sk::avx512_ops() == nullptr) {
      state.SkipWithError("AVX-512 kernel table unavailable");
      ok_ = false;
      return;
    }
    sk::set_mode(tier == 2   ? sk::Mode::kForceAvx512
                 : tier == 1 ? sk::Mode::kForceSimd
                             : sk::Mode::kForceScalar);
    state.SetLabel(sk::backend_name());
  }
  ~KernelModeGuard() { sk::set_mode(sk::Mode::kAuto); }
  explicit operator bool() const { return ok_; }

 private:
  bool ok_ = true;
};

void BM_Viterbi(benchmark::State& state) {
  KernelModeGuard guard(state);
  if (!guard) return;
  const core::Veritas veritas;
  const core::Ehmm ehmm = veritas.make_ehmm();
  const auto obs = core::observations_from_log(shared_log());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ehmm.viterbi(obs));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_Viterbi)->ArgName("simd")->Arg(0)->Arg(1)->Arg(2);

void BM_ForwardBackward(benchmark::State& state) {
  KernelModeGuard guard(state);
  if (!guard) return;
  const core::Veritas veritas;
  const core::Ehmm ehmm = veritas.make_ehmm();
  const auto obs = core::observations_from_log(shared_log());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ehmm.forward_backward(obs));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_ForwardBackward)->ArgName("simd")->Arg(0)->Arg(1)->Arg(2);

// The forward-backward *recursion* phase: emission means precomputed
// once (the TCP estimator f is scalar and identical in both modes), so
// this isolates what the SIMD kernels actually touch — batched emission
// log-pdf, vectorized exp, forward/backward/pair sweeps.
void BM_ForwardBackwardRecursion(benchmark::State& state) {
  KernelModeGuard guard(state);
  if (!guard) return;
  const core::Veritas veritas;
  const core::Ehmm ehmm = veritas.make_ehmm();
  const auto obs = core::observations_from_log(shared_log());
  core::Ehmm::Scratch scratch;
  math::Matrix means;
  core::EstimatorCache means_cache;
  ehmm.emission_means_into(obs, means, means_cache);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ehmm.forward_backward_from_means(obs, means, scratch));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_ForwardBackwardRecursion)->ArgName("simd")->Arg(0)->Arg(1)->Arg(2);

void BM_PosteriorSample(benchmark::State& state) {
  const core::Veritas veritas;
  const core::Ehmm ehmm = veritas.make_ehmm();
  const auto obs = core::observations_from_log(shared_log());
  core::Ehmm::Scratch scratch;
  const auto pass = ehmm.infer_fused(obs, scratch);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sample_capacity_states(
        ehmm, pass.viterbi, pass.forward_backward, scratch, rng));
  }
}
BENCHMARK(BM_PosteriorSample);

void BM_FullInfer(benchmark::State& state) {
  KernelModeGuard guard(state);
  if (!guard) return;
  const core::Veritas veritas;
  for (auto _ : state) {
    benchmark::DoNotOptimize(veritas.infer(shared_log()));
  }
}
BENCHMARK(BM_FullInfer)->ArgName("simd")->Arg(0)->Arg(1)->Arg(2);

core::VeritasConfig multi_window_config() {
  core::VeritasConfig cfg;
  cfg.estimator = core::EmissionModel::Estimator::kMultiWindow;
  return cfg;
}

void BM_FullInferMultiWindow(benchmark::State& state) {
  const core::Veritas veritas(multi_window_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(veritas.infer(shared_log()));
  }
}
BENCHMARK(BM_FullInferMultiWindow);

// The fused engine pass (emissions + deltas once, Viterbi + smoothing
// sharing them) with a reused scratch arena — the per-session hot path
// of InferenceEngine::infer_batch.
void BM_FusedSessionPass(benchmark::State& state) {
  KernelModeGuard guard(state);
  if (!guard) return;
  const core::InferenceEngine engine{core::VeritasConfig{}};
  const auto obs = core::observations_from_log(shared_log());
  core::Ehmm::Scratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.infer_session(obs, scratch));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_FusedSessionPass)->ArgName("simd")->Arg(0)->Arg(1)->Arg(2);

void BM_FusedSessionPassMultiWindow(benchmark::State& state) {
  const core::InferenceEngine engine{multi_window_config()};
  const auto obs = core::observations_from_log(shared_log());
  core::Ehmm::Scratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.infer_session(obs, scratch));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_FusedSessionPassMultiWindow);

void BM_EmissionLogProbs(benchmark::State& state) {
  const core::InferenceEngine engine{
      state.range(0) == 0 ? core::VeritasConfig{} : multi_window_config()};
  const auto obs = core::observations_from_log(shared_log());
  math::Matrix logs;
  for (auto _ : state) {
    engine.ehmm().emission_log_probs_into(obs, logs);
    benchmark::DoNotOptimize(logs);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_EmissionLogProbs)->Arg(0)->Arg(1);

// ------------------------------------------------------- kernel-level

/// Shared fixture for the raw kernel benches: one prepared session
/// (padded scratch tables) plus the dense Δ=1 transition tables.
struct KernelFixture {
  core::Veritas veritas;
  core::Ehmm ehmm = veritas.make_ehmm();
  std::vector<core::ChunkObservation> obs =
      core::observations_from_log(shared_log());
  core::Ehmm::Scratch scratch;
  math::Matrix means;  ///< dense emission means (the Scratch path is
                       ///< zero-copy since PR 7, so build our own)
  sk::DeltaTables tables;
  std::size_t k = 0;
  std::size_t stride = 0;

  KernelFixture() {
    (void)ehmm.forward_backward(obs, scratch);
    core::EstimatorCache means_cache;
    ehmm.emission_means_into(obs, means, means_cache);
    const core::TransitionModel::PowerView view =
        ehmm.transition().power_view(1);
    tables.p = view.p->row_data(0);
    tables.t = view.transposed->row_data(0);
    tables.log_p = view.log_p->row_data(0);
    tables.log_t = view.log_transposed->row_data(0);
    tables.stride = view.p->col_stride();
    k = ehmm.space().size();
    stride = tables.stride;
  }
};

const KernelFixture& kernel_fixture() {
  static const KernelFixture fixture;
  return fixture;
}

const sk::KernelOps& bench_ops(const benchmark::State& state) {
  if (state.range(0) == 2) return *sk::avx512_ops();
  return state.range(0) == 1 ? *sk::simd_ops() : sk::scalar_ops();
}

bool skip_if_no_simd(benchmark::State& state) {
  if (state.range(0) == 1 && sk::simd_ops() == nullptr) {
    state.SkipWithError("SIMD kernel table unavailable");
    return true;
  }
  if (state.range(0) == 2 && sk::avx512_ops() == nullptr) {
    state.SkipWithError("AVX-512 kernel table unavailable");
    return true;
  }
  state.SetLabel(bench_ops(state).name);
  return false;
}

// One batched emission row: k Normal log-densities from a means row.
void BM_KernelEmissionRow(benchmark::State& state) {
  if (skip_if_no_simd(state)) return;
  const KernelFixture& f = kernel_fixture();
  const sk::KernelOps& ops = bench_ops(state);
  std::vector<double> out(f.stride, 0.0);
  const double* means = f.means.row_data(0);
  for (auto _ : state) {
    ops.emission_log_pdf_row(4.2, means, f.k, f.stride, 0.5,
                             -0.6931471805599453, 0.9189385332046727,
                             out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(f.k));
}
BENCHMARK(BM_KernelEmissionRow)->ArgName("simd")->Arg(0)->Arg(1)->Arg(2);

// One row of exp(log_e - max): the forward-backward emission rescale.
void BM_KernelExpRow(benchmark::State& state) {
  if (skip_if_no_simd(state)) return;
  const KernelFixture& f = kernel_fixture();
  const sk::KernelOps& ops = bench_ops(state);
  std::vector<double> out(f.stride, 0.0);
  const double* log_row = f.scratch.log_emission.row_data(0);
  for (auto _ : state) {
    ops.exp_rows(log_row, 1.5, f.stride, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(f.stride));
}
BENCHMARK(BM_KernelExpRow)->ArgName("simd")->Arg(0)->Arg(1)->Arg(2);

// One k² max-plus Viterbi step over the dense Δ=1 tables.
void BM_KernelViterbiStep(benchmark::State& state) {
  if (skip_if_no_simd(state)) return;
  const KernelFixture& f = kernel_fixture();
  const sk::KernelOps& ops = bench_ops(state);
  const double* prev = f.scratch.log_emission.row_data(0);
  const double* e_n = f.scratch.log_emission.row_data(1);
  std::vector<double> curr(f.stride, 0.0);
  std::vector<std::uint32_t> back(f.stride, 0);
  for (auto _ : state) {
    ops.viterbi_step(prev, f.tables, f.k, e_n, curr.data(), back.data());
    benchmark::DoNotOptimize(curr.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(f.k * f.k));
}
BENCHMARK(BM_KernelViterbiStep)->ArgName("simd")->Arg(0)->Arg(1)->Arg(2);

// One k² sum-product forward step.
void BM_KernelForwardStep(benchmark::State& state) {
  if (skip_if_no_simd(state)) return;
  const KernelFixture& f = kernel_fixture();
  const sk::KernelOps& ops = bench_ops(state);
  const double* prev = f.scratch.alpha.row_data(0);
  const double* em_n = f.scratch.em.row_data(1);
  std::vector<double> row(f.stride, 0.0);
  for (auto _ : state) {
    ops.forward_step(prev, f.tables, f.k, em_n, row.data());
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(f.k * f.k));
}
BENCHMARK(BM_KernelForwardStep)->ArgName("simd")->Arg(0)->Arg(1)->Arg(2);

// One k² backward step with the fused pair-posterior normalizer.
void BM_KernelBackwardPairStep(benchmark::State& state) {
  if (skip_if_no_simd(state)) return;
  const KernelFixture& f = kernel_fixture();
  const sk::KernelOps& ops = bench_ops(state);
  const double* em_next = f.scratch.em.row_data(1);
  const double* beta_next = f.scratch.beta.row_data(1);
  const double* alpha_n = f.scratch.alpha.row_data(0);
  std::vector<double> beta_n(f.stride, 0.0);
  double pair = 0.0;
  for (auto _ : state) {
    ops.backward_step(f.tables, f.k, em_next, beta_next, 1.25,
                      beta_n.data(), alpha_n, &pair);
    benchmark::DoNotOptimize(pair);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(f.k * f.k));
}
BENCHMARK(BM_KernelBackwardPairStep)->ArgName("simd")->Arg(0)->Arg(1)->Arg(2);

// --------------------------------------------------------- transition

void BM_TransitionPower(benchmark::State& state) {
  const auto model = core::TransitionModel::tridiagonal(21);
  for (auto _ : state) {
    // Cold cache each round: build a fresh power via matrix_power.
    benchmark::DoNotOptimize(
        math::matrix_power(model.matrix(), std::size_t(state.range(0))));
  }
}
BENCHMARK(BM_TransitionPower)->Arg(2)->Arg(16)->Arg(128);

// Serving a power from the precomputed window (lock-free dense lookup)
// vs falling back past it (mutex-guarded memo; delta 200 is memoized on
// the first call, so steady-state cost = lock + map find). Motivates
// sizing VeritasConfig::precomputed_powers to the workload's gap
// distribution.
void BM_TransitionPowerLookup(benchmark::State& state) {
  static const core::TransitionModel model = [] {
    core::TransitionModel m = core::TransitionModel::tridiagonal(21);
    m.precompute_powers(core::Ehmm::kDefaultPrecomputedPowers);
    return m;
  }();
  const auto delta = std::size_t(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(&model.power(delta));
  }
}
BENCHMARK(BM_TransitionPowerLookup)->ArgName("delta")->Arg(16)->Arg(200);

void BM_EstimatorF(benchmark::State& state) {
  net::TcpState w;
  w.cwnd_segments = 25.0;
  w.ssthresh_segments = 30.0;
  w.last_send_gap_s = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::estimate_throughput_mbps(4.0, w, double(state.range(0))));
  }
}
BENCHMARK(BM_EstimatorF)->Arg(25000)->Arg(250000)->Arg(1000000);

// ------------------------------------------ batched estimator (PR 5)

/// k = 17 states (ε = 0.5, max 8 Mbps): the candidate-count the PR 5
/// acceptance bar is written against.
core::VeritasConfig k17_config() {
  core::VeritasConfig cfg;
  cfg.max_mbps = 8.0;
  return cfg;
}

/// f over the whole 17-candidate row in one call. /simd:0 runs the
/// reference composition (17 scalar estimator calls — the PR 4 emission
/// path), /simd:1 the lane-parallel kernel.
void BM_EstimatorBatchK17(benchmark::State& state) {
  KernelModeGuard guard(state);
  if (!guard) return;
  std::vector<double> candidates;
  for (int i = 0; i < 17; ++i) candidates.push_back(0.5 * i);
  net::TcpState w;
  w.cwnd_segments = 25.0;
  w.ssthresh_segments = 30.0;
  w.last_send_gap_s = 1.0;
  std::vector<double> out(candidates.size(), 0.0);
  for (auto _ : state) {
    net::estimate_throughput_batch(candidates, w, 250000.0, net::TcpConfig{},
                                   out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(candidates.size()));
}
BENCHMARK(BM_EstimatorBatchK17)->ArgName("simd")->Arg(0)->Arg(1)->Arg(2);

/// CA-dominated batch: every candidate's pipe is wider than the opening
/// window (bdp > cwnd0 at min_rtt 80 ms needs gtbw > 1.8 Mbps, so no
/// lane short-circuits to the covered-pipe branch) and the window starts
/// above ssthresh (no slow start, no idle gap → no SSR) with a large
/// transfer, so every lane opens with a long congestion-avoidance run.
/// PR 6 drained each lane to the scalar per-candidate CA loop here;
/// PR 7 keeps the candidates in SoA lanes through the arithmetic-series
/// CA jump, which is where this bench's /simd:1-vs-/simd:0 gap comes
/// from.
void BM_EstimatorBatchCaHeavyK17(benchmark::State& state) {
  KernelModeGuard guard(state);
  if (!guard) return;
  std::vector<double> candidates;
  for (int i = 0; i < 17; ++i) candidates.push_back(4.0 + 4.0 * i);
  net::TcpState w;
  w.cwnd_segments = 12.0;
  w.ssthresh_segments = 6.0;
  w.last_send_gap_s = 0.0;
  std::vector<double> out(candidates.size(), 0.0);
  for (auto _ : state) {
    net::estimate_throughput_batch(candidates, w, 16000000.0,
                                   net::TcpConfig{}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(candidates.size()));
}
BENCHMARK(BM_EstimatorBatchCaHeavyK17)
    ->ArgName("simd")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

/// The emission-means phase of one session (the estimator-bound part of
/// prepare()): /warm:0 clears the (W, S) cache every iteration (every
/// tuple re-runs f — the cross-session-cache-less cost), /warm:1 leaves
/// it warm (every tuple is a row copy — the steady state of an engine
/// serving repeat traffic).
void BM_EmissionMeansK17(benchmark::State& state) {
  KernelModeGuard guard(state);
  if (!guard) return;
  const bool warm = state.range(1) == 1;
  const core::InferenceEngine engine{k17_config()};
  const auto obs = core::observations_from_log(shared_log());
  core::EstimatorCache cache;
  math::Matrix means;
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      cache.clear();
      state.ResumeTiming();
    }
    engine.ehmm().emission_means_into(obs, means, cache);
    benchmark::DoNotOptimize(means.row_data(0));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_EmissionMeansK17)
    ->ArgNames({"simd", "warm"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1});

/// The PR 5 headline: one full forward-backward call *including* the
/// estimator-driven emission phase, k = 17.
///
/// BM_FbWithEstimatorPr4BaselineK17 replays the PR 4 cost model in the
/// current binary: emission means through the scalar per-candidate
/// estimator with a per-session memo (cold cache each call), recursions
/// through the SIMD kernels — the exact composition PR 4 shipped.
/// BM_FbWithEstimatorK17 is the PR 5 path: batched estimator under the
/// dispatch mode of /simd, cross-session cache warm or cold per /warm.
void BM_FbWithEstimatorPr4BaselineK17(benchmark::State& state) {
  if (sk::simd_ops() == nullptr) {
    state.SkipWithError("SIMD kernel table unavailable");
    return;
  }
  const core::InferenceEngine engine{k17_config()};
  const auto obs = core::observations_from_log(shared_log());
  core::Ehmm::Scratch scratch;
  core::EstimatorCache cache;
  math::Matrix means;
  for (auto _ : state) {
    cache.clear();  // per-session memo semantics
    {
      sk::ScopedMode scalar_mode(sk::Mode::kForceScalar);
      engine.ehmm().emission_means_into(obs, means, cache);
    }
    sk::ScopedMode simd_mode(sk::Mode::kForceSimd);
    benchmark::DoNotOptimize(
        engine.ehmm().forward_backward_from_means(obs, means, scratch));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_FbWithEstimatorPr4BaselineK17);

void BM_FbWithEstimatorK17(benchmark::State& state) {
  KernelModeGuard guard(state);
  if (!guard) return;
  const bool warm = state.range(1) == 1;
  const core::InferenceEngine engine{k17_config()};
  const auto obs = core::observations_from_log(shared_log());
  core::Ehmm::Scratch scratch;
  scratch.estimator_cache = engine.estimator_cache();
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      scratch.estimator_cache->clear();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(engine.ehmm().forward_backward(obs, scratch));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(obs.size()));
}
BENCHMARK(BM_FbWithEstimatorK17)
    ->ArgNames({"simd", "warm"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1});

void BM_TcpDownload(benchmark::State& state) {
  const auto bw = trace::BandwidthTrace::constant(5.0, 100000.0, 5.0);
  for (auto _ : state) {
    net::TcpConnection conn(net::TcpConfig{}, 0.08);
    benchmark::DoNotOptimize(conn.download(bw, 0.0, double(state.range(0))));
  }
}
BENCHMARK(BM_TcpDownload)->Arg(25000)->Arg(1000000);

void BM_FullSession(benchmark::State& state) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 7);
  const video::Video video(video::default_video_config());
  const net::NetworkPath path(traces[0], 0.08);
  for (auto _ : state) {
    auto abr = abr::make_abr("mpc");
    benchmark::DoNotOptimize(sim::run_session(video, *abr, path));
  }
}
BENCHMARK(BM_FullSession);

// The observability tax (PR 8): a TraceSpan site when tracing is
// disabled costs one relaxed atomic load (or, with the macro compiled
// out under -DVERITAS_TRACING=OFF, nothing at all — this bench then
// measures the bare loop); when enabled it adds two steady_clock reads
// plus a mutex-guarded ring store. Both numbers feed the overhead table
// in docs/OBSERVABILITY.md.
void BM_TraceSpanDisabled(benchmark::State& state) {
  util::Tracer::set_enabled(false);
  for (auto _ : state) {
    VERITAS_TRACE_SPAN("bench.disabled", "bench");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  if (!util::Tracer::kCompiledIn) {
    state.SkipWithError("tracing compiled out (-DVERITAS_TRACING=OFF)");
    return;
  }
  util::Tracer::clear();
  util::Tracer::set_enabled(true);
  for (auto _ : state) {
    VERITAS_TRACE_SPAN("bench.enabled", "bench");
    benchmark::ClobberMemory();
  }
  util::Tracer::set_enabled(false);
  util::Tracer::clear();
}
BENCHMARK(BM_TraceSpanEnabled);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the run context records the
// *resolved* kernel tiers (what active_ops() dispatches to by default,
// and whether the opt-in AVX-512 table resolved on this host), so a
// recorded BENCH_*.json identifies the kernels that actually ran.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("kernels_default", sk::backend_name());
  benchmark::AddCustomContext(
      "kernels_avx512",
      sk::avx512_ops() != nullptr ? sk::avx512_ops()->name : "unavailable");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
