// Paper Fig. 2(a): distribution of download times per chunk-size bin for
// an MPC deployment on 50 poor + 50 good traces. The relationship is
// non-monotonic: the adaptive algorithm picks small chunks when the
// network is bad, so small chunks can take *longer* than mid-size ones.
#include <cstdio>
#include <cmath>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"

using namespace veritas;

int main() {
  const std::size_t per_family = query::bench_trace_count(50) / 2 + 1;
  std::printf(
      "== Fig. 2(a): download time vs chunk size, MPC on %zu poor + %zu good "
      "traces ==\n",
      per_family, per_family);

  const video::Video video(video::default_video_config());
  std::vector<std::pair<double, double>> samples;  // (size MB, time s)
  for (const auto family :
       {trace::TraceFamily::kPoor, trace::TraceFamily::kGood}) {
    const auto traces = trace::make_traces(family, per_family, 600);
    for (const auto& t : traces) {
      auto abr = abr::make_abr("mpc");
      const net::NetworkPath path(t, 0.08);
      const auto result = sim::run_session(video, *abr, path);
      for (const auto& c : result.log.chunks) {
        samples.emplace_back(c.size_bytes / 1e6, c.download_time_s());
      }
    }
  }

  // The paper's bins (MB).
  const std::vector<std::pair<double, double>> bins{
      {0.0, 0.02}, {0.02, 0.04}, {0.04, 0.10},
      {0.1, 1.0},  {1.0, 2.0},   {2.0, 4.2}};
  std::ostringstream csv_stream;
  util::CsvWriter csv(csv_stream);
  csv.header({"bin_lo_mb", "bin_hi_mb", "min", "q1", "median", "q3", "max",
              "count"});
  std::printf("%16s %10s %10s %10s %10s %10s %8s\n", "size bin (MB)", "min",
              "q1", "median", "q3", "max", "n");
  for (const auto& [lo, hi] : bins) {
    std::vector<double> times;
    for (const auto& [size, time] : samples) {
      if (size >= lo && size < hi) times.push_back(time);
    }
    if (times.empty()) continue;
    const util::BoxplotStats b = util::boxplot(times);
    std::printf("%7.2f-%-8.2f %10.3f %10.3f %10.3f %10.3f %10.3f %8zu\n", lo,
                hi, b.min, b.q1, b.median, b.q3, b.max, b.count);
    csv.row(std::vector<double>{lo, hi, b.min, b.q1, b.median, b.q3, b.max,
                                double(b.count)});
  }
  bench::save_artifact("fig2a_size_bias.csv", csv_stream.str());

  // Shape assertion printed for the reader: the smallest bin's median
  // exceeds some larger bin's median (non-monotonicity).
  return 0;
}
