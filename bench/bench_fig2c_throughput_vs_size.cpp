// Paper Fig. 2(c): observed throughput vs payload size under a constant
// 18 Mbps emulated link, payloads 2 KB - 4 MB with random 0.12 - 8 s
// gaps between transfers (so slow-start restart sometimes triggers).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "net/tcp_model.hpp"
#include "util/rng.hpp"

using namespace veritas;

int main() {
  std::printf(
      "== Fig. 2(c): throughput vs payload size (constant 18 Mbps, 80 ms "
      "RTT) ==\n");
  const auto bw = trace::BandwidthTrace::constant(18.0, 100000.0, 5.0);
  const net::TcpConfig cfg;

  std::ostringstream csv_stream;
  util::CsvWriter csv(csv_stream);
  csv.header({"log2_size_kb", "min", "q1", "median", "q3", "max"});
  std::printf("%14s %8s %8s %8s %8s %8s\n", "size", "min", "q1", "median",
              "q3", "max");

  const int reps = query::bench_fast_mode() ? 10 : 40;
  util::Rng rng(1812);
  for (int p = 1; p <= 12; ++p) {  // 2^1 .. 2^12 KB = 2 KB .. 4 MB
    const double size = std::pow(2.0, p) * 1024.0;
    std::vector<double> throughputs;
    net::TcpConnection conn(cfg, 0.08);
    double t = 1.0;
    // Warm the connection like a long-lived session.
    for (int i = 0; i < 10; ++i) {
      t = conn.download(bw, t, 500000.0).end_s + 0.3;
    }
    for (int rep = 0; rep < reps; ++rep) {
      t += rng.uniform(0.12, 8.0);
      const auto r = conn.download(bw, t, size);
      throughputs.push_back(r.throughput_mbps());
      t = r.end_s;
    }
    const util::BoxplotStats b = util::boxplot(throughputs);
    std::printf("2^%-2d KB %6s %8.2f %8.2f %8.2f %8.2f %8.2f\n", p, "",
                b.min, b.q1, b.median, b.q3, b.max);
    csv.row(std::vector<double>{double(p), b.min, b.q1, b.median, b.q3,
                                b.max});
  }
  bench::save_artifact("fig2c_throughput_vs_size.csv", csv_stream.str());
  std::printf(
      "\nshape: small payloads are RTT-bound far below 18 Mbps; mid sizes "
      "vary with the idle gap (SSR); large payloads approach the link.\n");
  return 0;
}
