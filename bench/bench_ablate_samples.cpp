// Ablation: number of posterior samples K. The paper uses K = 5 and
// reports the 2nd-lowest/2nd-highest metric; more samples widen the
// bracket slightly and increase the chance it covers the oracle value.
#include <cstdio>

#include "bench_common.hpp"

using namespace veritas;

int main() {
  const std::size_t n = query::bench_trace_count(12);
  std::printf("== Ablation: posterior sample count K (MPC -> BBA, %zu traces) ==\n",
              n);
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, n, 2024);
  const video::Video video(video::default_video_config());
  const query::Setting setting_a;
  query::Setting bba;
  bba.abr = "bba";

  std::printf("%4s %26s %26s\n", "K", "median SSIM bracket width",
              "oracle-in-bracket rate");
  for (const std::size_t k : {1ul, 3ul, 5ul, 10ul, 20ul}) {
    core::VeritasConfig cfg;
    cfg.num_samples = k;
    const query::CounterfactualEngine engine(cfg);
    std::vector<double> widths;
    int covered = 0;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const auto o = engine.evaluate(traces[i], video, setting_a, bba, i);
      widths.push_back(o.veritas_high.mean_ssim - o.veritas_low.mean_ssim);
      const double slack = 0.002;  // one SSIM "tick" of tolerance
      covered += (o.actual.mean_ssim >= o.veritas_low.mean_ssim - slack &&
                  o.actual.mean_ssim <= o.veritas_high.mean_ssim + slack);
    }
    std::printf("%4zu %26.5f %25.0f%%\n", k, util::median(widths),
                100.0 * covered / double(traces.size()));
  }
  return 0;
}
