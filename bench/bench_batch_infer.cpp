// Batch-session inference bench: single-session latency broken into
// phases (emissions, Viterbi, forward-backward, sampling; fused vs the
// seed two-pass shape) plus infer_batch throughput (sessions/sec) at
// 1/2/4/hardware threads, with a determinism cross-check against the
// serial path.
//
// Usage: bench_batch_infer [--sessions N] [--repeat R] [--json PATH]
// The optional JSON snapshot feeds tools/run_bench.sh (BENCH_1.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "abr/abr_factory.hpp"
#include "math/simd_kernels.hpp"
#include "core/inference_engine.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "video/ladder_presets.hpp"

namespace {

using namespace veritas;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<sim::SessionLog> make_logs(std::size_t count) {
  const auto traces =
      trace::make_traces(trace::TraceFamily::kFccLike, count, 2024);
  const video::Video video(video::default_video_config());
  std::vector<sim::SessionLog> logs;
  logs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto abr = abr::make_abr(i % 2 == 0 ? "mpc" : "bba");
    const net::NetworkPath path(traces[i], 0.08);
    logs.push_back(sim::run_session(video, *abr, path).log);
  }
  return logs;
}

/// Mean wall-time per session of `body(session_index)`, over `repeat`
/// sweeps of all sessions.
template <typename Body>
double mean_us_per_session(std::size_t sessions, int repeat,
                           const Body& body) {
  const auto start = Clock::now();
  for (int r = 0; r < repeat; ++r) {
    for (std::size_t i = 0; i < sessions; ++i) body(i);
  }
  return seconds_since(start) * 1e6 /
         (static_cast<double>(repeat) * static_cast<double>(sessions));
}

struct PhaseTimes {
  double emissions_us = 0.0;
  double viterbi_us = 0.0;
  double forward_backward_us = 0.0;
  double sampling_us = 0.0;
  double two_pass_us = 0.0;
  double fused_pass_us = 0.0;
  double full_infer_us = 0.0;
};

PhaseTimes time_phases(const core::InferenceEngine& engine,
                       const std::vector<std::vector<core::ChunkObservation>>&
                           observations,
                       const std::vector<sim::SessionLog>& logs, int repeat) {
  const std::size_t n = observations.size();
  const core::Ehmm& ehmm = engine.ehmm();
  core::Ehmm::Scratch scratch;
  PhaseTimes t;

  math::Matrix logs_matrix;
  t.emissions_us = mean_us_per_session(n, repeat, [&](std::size_t i) {
    ehmm.emission_log_probs_into(observations[i], logs_matrix);
  });
  t.viterbi_us = mean_us_per_session(n, repeat, [&](std::size_t i) {
    ehmm.viterbi(observations[i], scratch);
  });
  t.forward_backward_us = mean_us_per_session(n, repeat, [&](std::size_t i) {
    ehmm.forward_backward(observations[i], scratch);
  });

  // Sampling: amortize over precomputed passes, one per session (the
  // xi-free sampler reads the scratch arenas, so each session keeps the
  // arena that its pass filled) — same per-index workload shape as the
  // seed bench.
  std::vector<core::Ehmm::Scratch> sample_scratch(n);
  std::vector<core::Ehmm::InferencePass> passes;
  passes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    passes.push_back(ehmm.infer_fused(observations[i], sample_scratch[i]));
  }
  util::Rng rng(1);
  t.sampling_us = mean_us_per_session(n, repeat, [&](std::size_t i) {
    core::sample_capacity_states(ehmm, passes[i].viterbi,
                                 passes[i].forward_backward,
                                 sample_scratch[i], rng);
  });

  // Seed shape (independent passes, emissions recomputed) vs fused.
  t.two_pass_us = mean_us_per_session(n, repeat, [&](std::size_t i) {
    ehmm.viterbi(observations[i], scratch);
    ehmm.forward_backward(observations[i], scratch);
  });
  t.fused_pass_us = mean_us_per_session(n, repeat, [&](std::size_t i) {
    ehmm.infer_fused(observations[i], scratch);
  });
  t.full_infer_us = mean_us_per_session(n, repeat, [&](std::size_t i) {
    engine.infer(logs[i], scratch);
  });
  return t;
}

bool results_identical(const std::vector<core::VeritasResult>& a,
                       const std::vector<core::VeritasResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].log_likelihood != b[i].log_likelihood) return false;
    if (a[i].map_states_mbps != b[i].map_states_mbps) return false;
    if (a[i].samples.size() != b[i].samples.size()) return false;
    for (std::size_t s = 0; s < a[i].samples.size(); ++s) {
      const auto va = a[i].samples[s].values_mbps();
      const auto vb = b[i].samples[s].values_mbps();
      if (!std::equal(va.begin(), va.end(), vb.begin(), vb.end())) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 64;
  int repeat = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions N] [--repeat R] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("== batch inference bench ==\n");
  std::printf("generating %zu sessions...\n", sessions);
  const std::vector<sim::SessionLog> logs = make_logs(sessions);
  std::size_t total_chunks = 0;
  for (const auto& log : logs) total_chunks += log.chunks.size();
  std::printf("total chunks: %zu (%.1f per session)\n", total_chunks,
              double(total_chunks) / double(sessions));

  const core::InferenceEngine engine{core::VeritasConfig{}};
  std::vector<std::vector<core::ChunkObservation>> observations;
  observations.reserve(logs.size());
  for (const auto& log : logs) {
    observations.push_back(core::observations_from_log(log));
  }

  const PhaseTimes t = time_phases(engine, observations, logs, repeat);
  std::printf("\n-- single-session phases (us, mean over %zu sessions) --\n",
              sessions);
  std::printf("%-22s %10.1f\n", "emissions", t.emissions_us);
  std::printf("%-22s %10.1f\n", "viterbi", t.viterbi_us);
  std::printf("%-22s %10.1f\n", "forward_backward", t.forward_backward_us);
  std::printf("%-22s %10.1f\n", "sampling", t.sampling_us);
  std::printf("%-22s %10.1f\n", "two_pass (seed shape)", t.two_pass_us);
  std::printf("%-22s %10.1f  (%.2fx vs two-pass)\n", "fused_pass",
              t.fused_pass_us, t.two_pass_us / t.fused_pass_us);
  std::printf("%-22s %10.1f\n", "full_infer", t.full_infer_us);

  // Batch throughput at increasing thread counts.
  std::vector<std::size_t> thread_counts{1, 2, 4};
  const std::size_t hw = util::ThreadPool::hardware_threads();
  if (hw > 4) thread_counts.push_back(hw);
  std::printf("\n-- infer_batch throughput (%zu sessions, best of %d) --\n",
              sessions, repeat);
  std::printf("%8s %14s %10s\n", "threads", "sessions/sec", "speedup");

  const std::vector<core::VeritasResult> serial = engine.infer_batch(logs, 1);
  std::vector<std::pair<std::size_t, double>> throughput;
  double base_rate = 0.0;
  bool deterministic = true;
  for (const std::size_t threads : thread_counts) {
    double best_rate = 0.0;
    for (int r = 0; r < repeat; ++r) {
      const auto start = Clock::now();
      const auto batch = engine.infer_batch(logs, threads);
      const double elapsed = seconds_since(start);
      best_rate = std::max(best_rate, double(sessions) / elapsed);
      if (r == 0) deterministic &= results_identical(batch, serial);
    }
    if (threads == 1) base_rate = best_rate;
    throughput.emplace_back(threads, best_rate);
    std::printf("%8zu %14.1f %9.2fx\n", threads, best_rate,
                best_rate / base_rate);
  }
  std::printf("\nbatch results identical to serial path: %s\n",
              deterministic ? "yes" : "NO (BUG)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"bench_batch_infer\",\n"
        << "  \"kernels\": \""
        << veritas::math::simd_kernels::backend_name() << "\",\n"
        << "  \"sessions\": " << sessions << ",\n"
        << "  \"total_chunks\": " << total_chunks << ",\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"single_session_us\": {\n"
        << "    \"emissions\": " << t.emissions_us << ",\n"
        << "    \"viterbi\": " << t.viterbi_us << ",\n"
        << "    \"forward_backward\": " << t.forward_backward_us << ",\n"
        << "    \"sampling\": " << t.sampling_us << ",\n"
        << "    \"two_pass\": " << t.two_pass_us << ",\n"
        << "    \"fused_pass\": " << t.fused_pass_us << ",\n"
        << "    \"full_infer\": " << t.full_infer_us << "\n"
        << "  },\n"
        << "  \"batch_throughput\": [\n";
    for (std::size_t i = 0; i < throughput.size(); ++i) {
      out << "    {\"threads\": " << throughput[i].first
          << ", \"sessions_per_sec\": " << throughput[i].second << "}"
          << (i + 1 < throughput.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"deterministic_across_threads\": "
        << (deterministic ? "true" : "false") << "\n"
        << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return deterministic ? 0 : 1;
}
