// Paper Fig. 13 (appendix): counterfactual change of ABR from MPC to
// BOLA-Basic. Same qualitative story as Fig. 9.
#include "bench_common.hpp"

int main() {
  using namespace veritas;
  const std::size_t n = query::bench_trace_count(40);
  std::printf("== Fig. 13: counterfactual MPC -> BOLA over %zu traces ==\n", n);
  query::Setting bola;
  bola.abr = "bola";
  const auto outcomes = bench::run_counterfactual_series(bola, n);
  bench::save_artifact(
      "fig13_ssim.csv",
      bench::print_counterfactual_panel("(a) SSIM", outcomes,
                                        bench::metric_ssim, "ssim"));
  bench::save_artifact(
      "fig13_rebuffer.csv",
      bench::print_counterfactual_panel("(b) Rebuffering ratio (%)", outcomes,
                                        bench::metric_rebuffer, "%"));
  return 0;
}
