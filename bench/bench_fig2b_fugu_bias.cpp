// Paper Fig. 2(b): Fugu's associational bias on causal queries. Fugu is
// trained on MPC deployments over poor + good traces; on a fresh poor
// trace where the ABR has been picking low qualities, we ask: what would
// the download time be if the next chunk were (i) low quality, (ii) high
// quality? Fugu predicts the low case well but severely underestimates
// the forced high-quality case.
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "ml/fugu.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"

using namespace veritas;

int main() {
  const std::size_t per_family =
      std::max<std::size_t>(query::bench_trace_count(50) / 2, 3);
  std::printf(
      "== Fig. 2(b): Fugu causal-query bias (trained on %zu poor + %zu good "
      "MPC traces) ==\n",
      per_family, per_family);

  const video::Video video(video::default_video_config());

  // Train Fugu on the deployment logs.
  std::vector<sim::SessionLog> train_logs;
  for (const auto family :
       {trace::TraceFamily::kPoor, trace::TraceFamily::kGood}) {
    for (const auto& t : trace::make_traces(family, per_family, 600)) {
      auto abr = abr::make_abr("mpc");
      const net::NetworkPath path(t, 0.08);
      train_logs.push_back(sim::run_session(video, *abr, path).log);
    }
  }
  ml::FuguConfig fugu_cfg;
  fugu_cfg.epochs = query::bench_fast_mode() ? 8 : 30;
  ml::FuguNN fugu(fugu_cfg);
  fugu.fit(train_logs);

  // Fresh poor traces: run MPC (which picks low qualities), then probe.
  const auto test_traces = trace::make_traces(trace::TraceFamily::kPoor, 5, 77);
  std::vector<double> actual_low, predicted_low, actual_high, predicted_high;
  const std::size_t k = fugu_cfg.past_chunks;
  const std::size_t low_q = 0;
  const std::size_t high_q = video.num_qualities() - 1;

  for (const auto& gtbw : test_traces) {
    // Replay the session manually so the TCP connection can be forked at
    // each probe point (run both hypothetical next chunks).
    auto abr = abr::make_abr("mpc");
    abr->reset();
    const net::NetworkPath path(gtbw, 0.08);
    net::TcpConnection conn = path.make_connection();
    std::vector<abr::DownloadedChunk> history;
    double now = 0.0;
    for (std::size_t n = 0; n < 60; ++n) {
      abr::AbrContext ctx;
      ctx.video = &video;
      ctx.next_chunk = n;
      ctx.buffer_s = 2.0;  // fixed mid-level buffer for the probe session
      ctx.buffer_capacity_s = 5.0;
      ctx.history = history;
      const std::size_t q = abr->choose_quality(ctx);
      if (n >= k) {
        // Probe both hypothetical next chunks from an identical state.
        std::vector<double> sizes, times;
        for (std::size_t j = n - k; j < n; ++j) {
          sizes.push_back(history[j].size_bytes);
          times.push_back(history[j].duration_s);
        }
        const double size_low = video.chunk_size_bytes(n, low_q);
        const double size_high = video.chunk_size_bytes(n, high_q);
        net::TcpConnection fork_low = conn;
        net::TcpConnection fork_high = conn;
        actual_low.push_back(
            fork_low.download(gtbw, now, size_low).duration_s());
        actual_high.push_back(
            fork_high.download(gtbw, now, size_high).duration_s());
        predicted_low.push_back(
            fugu.predict_download_time_s(sizes, times, size_low));
        predicted_high.push_back(
            fugu.predict_download_time_s(sizes, times, size_high));
      }
      const double size = video.chunk_size_bytes(n, q);
      const auto r = conn.download(gtbw, now, size);
      abr::DownloadedChunk d;
      d.chunk_index = n;
      d.quality = q;
      d.size_bytes = size;
      d.duration_s = r.duration_s();
      history.push_back(d);
      now = r.end_s + 0.5;
    }
  }

  std::printf("\n%-22s %12s %12s\n", "next chunk", "actual (s)", "Fugu (s)");
  std::printf("%-22s %12.2f %12.2f\n", "low quality (median)",
              util::median(actual_low), util::median(predicted_low));
  std::printf("%-22s %12.2f %12.2f\n", "high quality (median)",
              util::median(actual_high), util::median(predicted_high));
  std::printf(
      "\nshape (paper): Fugu is accurate for the low-quality chunk the "
      "deployed ABR would pick, but underestimates the forced high-quality "
      "chunk (here: %.1fx too low).\n",
      util::median(actual_high) / std::max(util::median(predicted_high), 1e-9));

  std::ostringstream csv_stream;
  util::CsvWriter csv(csv_stream);
  csv.header({"case", "actual_median_s", "fugu_median_s"});
  csv.row(std::vector<std::string>{
      "low", util::format_double(util::median(actual_low)),
      util::format_double(util::median(predicted_low))});
  csv.row(std::vector<std::string>{
      "high", util::format_double(util::median(actual_high)),
      util::format_double(util::median(predicted_high))});
  bench::save_artifact("fig2b_fugu_bias.csv", csv_stream.str());
  return 0;
}
