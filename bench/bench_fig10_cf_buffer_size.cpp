// Paper Fig. 10: predicted performance if the buffer size were increased
// from 5 s to 30 s (same MPC algorithm, same ladder).
#include "bench_common.hpp"

int main() {
  using namespace veritas;
  const std::size_t n = query::bench_trace_count(40);
  std::printf("== Fig. 10: counterfactual buffer 5 s -> 30 s over %zu traces ==\n",
              n);
  query::Setting large_buffer;
  large_buffer.buffer_capacity_s = 30.0;
  const auto outcomes = bench::run_counterfactual_series(large_buffer, n);
  bench::save_artifact(
      "fig10_ssim.csv",
      bench::print_counterfactual_panel("(a) SSIM", outcomes,
                                        bench::metric_ssim, "ssim"));
  bench::save_artifact(
      "fig10_rebuffer.csv",
      bench::print_counterfactual_panel("(b) Rebuffering ratio (%)", outcomes,
                                        bench::metric_rebuffer, "%"));
  return 0;
}
