// Paper Fig. 9: predicted performance if the ABR were changed from MPC
// to BBA. Baseline over-predicts rebuffering / under-predicts SSIM;
// Veritas's (Low, High) bracket stays close to the oracle.
#include "bench_common.hpp"

int main() {
  using namespace veritas;
  const std::size_t n = query::bench_trace_count(40);
  std::printf("== Fig. 9: counterfactual MPC -> BBA over %zu FCC-like traces ==\n",
              n);
  query::Setting bba;
  bba.abr = "bba";
  const auto outcomes = bench::run_counterfactual_series(bba, n);
  bench::save_artifact(
      "fig9_ssim.csv",
      bench::print_counterfactual_panel("(a) SSIM", outcomes,
                                        bench::metric_ssim, "ssim"));
  bench::save_artifact(
      "fig9_rebuffer.csv",
      bench::print_counterfactual_panel("(b) Rebuffering ratio (%)", outcomes,
                                        bench::metric_rebuffer, "%"));
  return 0;
}
