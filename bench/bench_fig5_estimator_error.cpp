// Paper Fig. 5: CDF of the error of the throughput estimator f across a
// sweep of GTBW (0.5 - 10 Mbps) and end-to-end delay (5 - 40 ms), with
// payloads 2 KB - 4 MB and random 0.12 - 8 s inter-transfer gaps. The
// paper reports most estimates within ~1 Mbps of the observed value.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "net/tcp_model.hpp"
#include "net/throughput_estimator.hpp"
#include "util/rng.hpp"

using namespace veritas;

int main() {
  std::printf("== Fig. 5: estimator f error CDF (GTBW x delay sweep) ==\n");
  const net::TcpConfig cfg;
  std::vector<double> abs_errors;
  std::vector<double> rel_errors;

  const int payloads = query::bench_fast_mode() ? 10 : 30;
  for (double gtbw = 0.5; gtbw <= 10.0; gtbw += 0.5) {
    for (double delay_ms = 5.0; delay_ms <= 40.0; delay_ms += 5.0) {
      const double rtt = delay_ms / 1000.0;
      const auto bw = trace::BandwidthTrace::constant(gtbw, 100000.0, 5.0);
      net::TcpConnection conn(cfg, rtt);
      util::Rng rng(std::uint64_t(gtbw * 100) ^ std::uint64_t(delay_ms));
      double t = 1.0;
      for (int i = 0; i < payloads; ++i) {
        const double size = std::pow(2.0, rng.uniform(11.0, 22.0));
        t += rng.uniform(0.12, 8.0);
        const net::TcpState w = conn.snapshot(t);
        const auto r = conn.download(bw, t, size);
        const double estimated =
            net::estimate_throughput_mbps(gtbw, w, size, cfg);
        const double observed = r.throughput_mbps();
        abs_errors.push_back(std::abs(estimated - observed));
        if (observed > 0.0) {
          rel_errors.push_back(std::abs(estimated - observed) / observed);
        }
        t = r.end_s;
      }
    }
  }

  std::ostringstream csv_stream;
  util::CsvWriter csv(csv_stream);
  csv.header({"abs_error_mbps", "fraction"});
  std::printf("%16s %10s\n", "abs error (Mbps)", "CDF");
  for (const auto& point : util::empirical_cdf(abs_errors, 20)) {
    std::printf("%16.3f %10.3f\n", point.value, point.fraction);
    csv.row(std::vector<double>{point.value, point.fraction});
  }
  bench::save_artifact("fig5_estimator_error.csv", csv_stream.str());

  double within_1mbps = 0.0;
  for (const double e : abs_errors) within_1mbps += (e <= 1.0);
  within_1mbps /= double(abs_errors.size());
  std::printf(
      "\nsummary: %zu estimates; %.1f%% within 1 Mbps (paper: \"in most "
      "cases within 1 Mbps\"); median abs error %.3f Mbps; median relative "
      "error %.3f\n",
      abs_errors.size(), 100.0 * within_1mbps, util::median(abs_errors),
      util::median(rel_errors));
  return 0;
}
