// Service-layer bench: mixed-shard async throughput, cold vs warm cache.
//
// Workload: N recorded sessions split across two shards (different model
// configurations), submitted as async queries. The cold round computes
// every abduction; the warm round replays the identical workload and
// must be served from the result cache — the headline number is the
// warm/cold speedup (acceptance: >= 5x). A determinism cross-check
// compares every payload against the direct single-threaded
// InferenceEngine path at each lane count.
//
// Usage: bench_service [--sessions N] [--repeat R] [--json PATH]
// The optional JSON snapshot feeds tools/run_bench.sh (BENCH_3.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "abr/abr_factory.hpp"
#include "core/inference_engine.hpp"
#include "net/network_path.hpp"
#include "service/veritas_service.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/thread_pool.hpp"
#include "video/ladder_presets.hpp"

namespace {

using namespace veritas;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<sim::SessionLog> make_logs(std::size_t count) {
  const auto traces =
      trace::make_traces(trace::TraceFamily::kFccLike, count, 2024);
  const video::Video video(video::default_video_config());
  std::vector<sim::SessionLog> logs;
  logs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto abr = abr::make_abr(i % 2 == 0 ? "mpc" : "bba");
    const net::NetworkPath path(traces[i], 0.08);
    logs.push_back(sim::run_session(video, *abr, path).log);
  }
  return logs;
}

core::VeritasConfig shard_a_config() { return core::VeritasConfig{}; }

core::VeritasConfig shard_b_config() {
  core::VeritasConfig cfg;
  cfg.sigma_mbps = 0.25;  // a second deployment's model
  return cfg;
}

const char* shard_for(std::size_t i) { return i % 2 == 0 ? "a" : "b"; }

/// Submits the whole mixed-shard workload and blocks on every future.
/// Returns the wall seconds and whether every result was a cache hit.
struct RoundResult {
  double wall_s = 0.0;
  bool all_hits = true;
  std::vector<service::InferenceResult> results;
};

RoundResult run_round(service::VeritasService& service,
                      const std::vector<sim::SessionLog>& logs) {
  RoundResult round;
  const auto start = Clock::now();
  std::vector<std::future<service::InferenceResult>> futures;
  futures.reserve(logs.size());
  for (std::size_t i = 0; i < logs.size(); ++i) {
    service::Query query;
    query.log = logs[i];
    query.shard = shard_for(i);
    futures.push_back(service.submit(std::move(query)));
  }
  round.results.reserve(futures.size());
  for (auto& future : futures) round.results.push_back(future.get());
  round.wall_s = seconds_since(start);
  for (const auto& result : round.results) round.all_hits &= result.cache_hit;
  return round;
}

bool payloads_identical(const service::InferenceResult& a,
                        const core::VeritasResult& b) {
  const core::VeritasResult& r = *a.abduction;
  if (r.log_likelihood != b.log_likelihood) return false;
  if (r.map_states_mbps != b.map_states_mbps) return false;
  if (r.samples.size() != b.samples.size()) return false;
  for (std::size_t s = 0; s < r.samples.size(); ++s) {
    const auto va = r.samples[s].values_mbps();
    const auto vb = b.samples[s].values_mbps();
    if (va.size() != vb.size() ||
        !std::equal(va.begin(), va.end(), vb.begin())) {
      return false;
    }
  }
  return true;
}

struct LanePoint {
  std::size_t threads = 0;
  double cold_sessions_per_sec = 0.0;
  double warm_sessions_per_sec = 0.0;
  double warm_speedup = 0.0;
  bool deterministic = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 64;
  int repeat = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions N] [--repeat R] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("== service bench (mixed-shard async, cold vs warm) ==\n");
  std::printf("generating %zu sessions...\n", sessions);
  const std::vector<sim::SessionLog> logs = make_logs(sessions);

  // Ground truth for the determinism cross-check.
  const core::InferenceEngine engine_a{shard_a_config()};
  const core::InferenceEngine engine_b{shard_b_config()};
  std::vector<core::VeritasResult> expected;
  expected.reserve(logs.size());
  for (std::size_t i = 0; i < logs.size(); ++i) {
    expected.push_back((i % 2 == 0 ? engine_a : engine_b).infer(logs[i]));
  }

  std::vector<std::size_t> thread_counts{1, 2, 4};
  const std::size_t hw = util::ThreadPool::hardware_threads();
  if (hw > 4) thread_counts.push_back(hw);

  std::printf("\n%8s %16s %16s %12s %8s\n", "lanes", "cold sess/sec",
              "warm sess/sec", "warm/cold", "exact");
  std::vector<LanePoint> points;
  bool deterministic = true;
  for (const std::size_t threads : thread_counts) {
    LanePoint point;
    point.threads = threads;
    double best_cold = 0.0;
    double best_warm = 0.0;
    for (int r = 0; r < repeat; ++r) {
      // Fresh service per measurement: the cold round really is cold.
      service::ServiceOptions options;
      options.num_threads = threads;
      options.cache_capacity = 2 * sessions;
      // One LRU shard: the all-hits warm-round gate must not depend on
      // how keys happen to distribute over sharded slices.
      options.cache_shards = 1;
      service::VeritasService service(options);
      service.add_shard("a", shard_a_config());
      service.add_shard("b", shard_b_config());

      const RoundResult cold = run_round(service, logs);
      const RoundResult warm = run_round(service, logs);
      best_cold = std::max(best_cold, double(sessions) / cold.wall_s);
      best_warm = std::max(best_warm, double(sessions) / warm.wall_s);
      if (r == 0) {
        for (std::size_t i = 0; i < logs.size(); ++i) {
          point.deterministic &= payloads_identical(cold.results[i],
                                                    expected[i]);
          point.deterministic &= payloads_identical(warm.results[i],
                                                    expected[i]);
        }
        point.deterministic &= !cold.all_hits && warm.all_hits;
        const service::ServiceStats stats = service.stats();
        point.deterministic &= stats.cache_hits == sessions &&
                               stats.cache_misses == sessions;
      }
    }
    point.cold_sessions_per_sec = best_cold;
    point.warm_sessions_per_sec = best_warm;
    point.warm_speedup = best_warm / best_cold;
    deterministic &= point.deterministic;
    points.push_back(point);
    std::printf("%8zu %16.1f %16.1f %11.1fx %8s\n", threads, best_cold,
                best_warm, point.warm_speedup,
                point.deterministic ? "yes" : "NO");
  }

  const LanePoint& headline = points.back();
  std::printf("\nwarm cache replay: %.1fx faster than cold at %zu lanes "
              "(acceptance: >= 5x)\n",
              headline.warm_speedup, headline.threads);
  std::printf("payloads identical to direct engine path: %s\n",
              deterministic ? "yes" : "NO (BUG)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"bench_service\",\n"
        << "  \"sessions\": " << sessions << ",\n"
        << "  \"shards\": 2,\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"lanes\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      out << "    {\"threads\": " << points[i].threads
          << ", \"cold_sessions_per_sec\": " << points[i].cold_sessions_per_sec
          << ", \"warm_sessions_per_sec\": " << points[i].warm_sessions_per_sec
          << ", \"warm_speedup\": " << points[i].warm_speedup << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"warm_speedup\": " << headline.warm_speedup << ",\n"
        << "  \"deterministic_vs_direct_engine\": "
        << (deterministic ? "true" : "false") << "\n"
        << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return deterministic ? 0 : 1;
}
