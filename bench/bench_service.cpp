// Service-layer bench: mixed-shard async throughput, cold vs warm cache,
// and behavior under deliberate overload.
//
// Workload: N recorded sessions split across two shards (different model
// configurations), submitted as async queries. The cold round computes
// every abduction; the warm round replays the identical workload and
// must be served from the result cache — the headline number is the
// warm/cold speedup (acceptance: >= 5x). A determinism cross-check
// compares every payload against the direct single-threaded
// InferenceEngine path at each lane count.
//
// The overload scenario then offers work at ~2x the measured capacity
// (open loop, mixed priorities, per-query deadlines, a small queue) and
// reports what the admission layer did about it: goodput, shed /
// rejected / timed-out / degraded counts, interactive p99 turnaround,
// and whether the outcome counters reconcile exactly. Acceptance: no
// submit() call blocks unboundedly, and the books balance.
//
// Usage: bench_service [--sessions N] [--repeat R] [--json PATH]
// The optional JSON snapshot feeds tools/run_bench.sh (BENCH_6.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "abr/abr_factory.hpp"
#include "core/inference_engine.hpp"
#include "net/network_path.hpp"
#include "service/veritas_service.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/thread_pool.hpp"
#include "video/ladder_presets.hpp"
#include "math/simd_kernels.hpp"

namespace {

using namespace veritas;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<sim::SessionLog> make_logs(std::size_t count) {
  const auto traces =
      trace::make_traces(trace::TraceFamily::kFccLike, count, 2024);
  const video::Video video(video::default_video_config());
  std::vector<sim::SessionLog> logs;
  logs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto abr = abr::make_abr(i % 2 == 0 ? "mpc" : "bba");
    const net::NetworkPath path(traces[i], 0.08);
    logs.push_back(sim::run_session(video, *abr, path).log);
  }
  return logs;
}

core::VeritasConfig shard_a_config() { return core::VeritasConfig{}; }

core::VeritasConfig shard_b_config() {
  core::VeritasConfig cfg;
  cfg.sigma_mbps = 0.25;  // a second deployment's model
  return cfg;
}

const char* shard_for(std::size_t i) { return i % 2 == 0 ? "a" : "b"; }

/// Submits the whole mixed-shard workload and blocks on every future.
/// Returns the wall seconds and whether every result was a cache hit.
struct RoundResult {
  double wall_s = 0.0;
  bool all_hits = true;
  std::vector<service::InferenceResult> results;
};

RoundResult run_round(service::VeritasService& service,
                      const std::vector<sim::SessionLog>& logs) {
  RoundResult round;
  const auto start = Clock::now();
  std::vector<std::future<Expected<service::InferenceResult>>> futures;
  futures.reserve(logs.size());
  for (std::size_t i = 0; i < logs.size(); ++i) {
    service::Query query;
    query.log = logs[i];
    query.shard = shard_for(i);
    futures.push_back(service.submit(std::move(query)));
  }
  round.results.reserve(futures.size());
  for (auto& future : futures) {
    // The happy path must actually be happy: value() throws on any
    // serving error, which fails the bench loudly.
    round.results.push_back(future.get().value());
  }
  round.wall_s = seconds_since(start);
  for (const auto& result : round.results) round.all_hits &= result.cache_hit;
  return round;
}

bool payloads_identical(const service::InferenceResult& a,
                        const core::VeritasResult& b) {
  const core::VeritasResult& r = *a.abduction;
  if (r.log_likelihood != b.log_likelihood) return false;
  if (r.map_states_mbps != b.map_states_mbps) return false;
  if (r.samples.size() != b.samples.size()) return false;
  for (std::size_t s = 0; s < r.samples.size(); ++s) {
    const auto va = r.samples[s].values_mbps();
    const auto vb = b.samples[s].values_mbps();
    if (va.size() != vb.size() ||
        !std::equal(va.begin(), va.end(), vb.begin())) {
      return false;
    }
  }
  return true;
}

struct LanePoint {
  std::size_t threads = 0;
  double cold_sessions_per_sec = 0.0;
  double warm_sessions_per_sec = 0.0;
  double warm_speedup = 0.0;
  bool deterministic = true;
};

// ------------------------------------------------------------- overload

struct OverloadOutcome {
  std::size_t offered = 0;          ///< queries submitted
  double offered_per_sec = 0.0;     ///< open-loop arrival rate
  double goodput_per_sec = 0.0;     ///< ok results / wall time
  std::uint64_t ok = 0;
  std::uint64_t degraded_results = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t failed = 0;
  double max_submit_block_ms = 0.0;  ///< worst single submit() stall
  double interactive_p99_ms = 0.0;   ///< arrival -> future resolved
  bool reconciled = false;           ///< counters balance exactly
};

/// Offers `total` queries at 2x the measured capacity through a small
/// queue with mixed priorities and deadlines, then reports what the
/// overload machinery did.
OverloadOutcome run_overload(const std::vector<sim::SessionLog>& logs,
                             double capacity_sessions_per_sec,
                             std::size_t threads) {
  OverloadOutcome outcome;

  service::ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = 16;  // shallow on purpose: pressure, fast
  options.cache_capacity = 4 * logs.size();
  options.admission_timeout = std::chrono::milliseconds(50);
  options.overload.queue_high_watermark = 0.5;
  options.overload.shed_lowest_priority = true;
  options.overload.degraded_num_samples = 1;
  service::VeritasService service(options);
  service.add_shard("a", shard_a_config());
  service.add_shard("b", shard_b_config());

  const std::size_t total = 4 * logs.size();
  const double offered_rate = 2.0 * std::max(capacity_sessions_per_sec, 1.0);
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / offered_rate));

  struct Tracked {
    std::future<Expected<service::InferenceResult>> future;
    Clock::time_point arrival;
    service::Priority priority = service::Priority::kBatch;
    bool resolved = false;
    double latency_ms = 0.0;
  };
  std::vector<Tracked> tracked(total);

  const auto start = Clock::now();
  for (std::size_t i = 0; i < total; ++i) {
    const auto arrival = start + interval * static_cast<long>(i);
    std::this_thread::sleep_until(arrival);
    service::Query query;
    query.log = logs[i % logs.size()];
    query.shard = shard_for(i);
    // A distinct seed per arrival: every query is a genuine computation,
    // never a repeat served from the cache.
    query.seed = 0x5eed0000 + i;
    query.options.priority = static_cast<service::Priority>(i % 3);
    // Interactive work carries a deadline; the rest rely on the
    // admission timeout for bounded waits.
    if (query.options.priority == service::Priority::kInteractive) {
      query.options.deadline = Clock::now() + std::chrono::milliseconds(500);
    }
    tracked[i].arrival = Clock::now();
    tracked[i].priority = query.options.priority;
    const auto before = Clock::now();
    tracked[i].future = service.submit(std::move(query));
    outcome.max_submit_block_ms =
        std::max(outcome.max_submit_block_ms,
                 std::chrono::duration<double, std::milli>(Clock::now() -
                                                           before)
                     .count());
  }
  outcome.offered = total;
  outcome.offered_per_sec = offered_rate;

  // Collector: sweep the outstanding futures so each resolution is
  // timestamped close to when it happened (not when a serial join
  // reached it).
  std::size_t remaining = total;
  while (remaining > 0) {
    for (auto& t : tracked) {
      if (t.resolved) continue;
      if (t.future.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        t.resolved = true;
        t.latency_ms = std::chrono::duration<double, std::milli>(
                           Clock::now() - t.arrival)
                           .count();
        --remaining;
      }
    }
    if (remaining > 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double wall_s = seconds_since(start);

  std::vector<double> interactive_latencies;
  for (auto& t : tracked) {
    const Expected<service::InferenceResult> result = t.future.get();
    if (result.ok()) {
      ++outcome.ok;
      if (result.value().degraded) ++outcome.degraded_results;
      if (t.priority == service::Priority::kInteractive) {
        interactive_latencies.push_back(t.latency_ms);
      }
    }
  }
  if (!interactive_latencies.empty()) {
    std::sort(interactive_latencies.begin(), interactive_latencies.end());
    const std::size_t idx = std::min(
        interactive_latencies.size() - 1,
        static_cast<std::size_t>(0.99 * double(interactive_latencies.size())));
    outcome.interactive_p99_ms = interactive_latencies[idx];
  }
  const service::ServiceStats stats = service.stats();
  outcome.rejected = stats.rejected;
  outcome.shed = stats.shed;
  outcome.timed_out = stats.timed_out;
  outcome.failed = stats.failed;
  outcome.goodput_per_sec = double(outcome.ok) / wall_s;
  outcome.reconciled = stats.reconciled();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 64;
  int repeat = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions N] [--repeat R] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("== service bench (mixed-shard async, cold vs warm) ==\n");
  std::printf("generating %zu sessions...\n", sessions);
  const std::vector<sim::SessionLog> logs = make_logs(sessions);

  // Ground truth for the determinism cross-check.
  const core::InferenceEngine engine_a{shard_a_config()};
  const core::InferenceEngine engine_b{shard_b_config()};
  std::vector<core::VeritasResult> expected;
  expected.reserve(logs.size());
  for (std::size_t i = 0; i < logs.size(); ++i) {
    expected.push_back((i % 2 == 0 ? engine_a : engine_b).infer(logs[i]));
  }

  std::vector<std::size_t> thread_counts{1, 2, 4};
  const std::size_t hw = util::ThreadPool::hardware_threads();
  if (hw > 4) thread_counts.push_back(hw);

  std::printf("\n%8s %16s %16s %12s %8s\n", "lanes", "cold sess/sec",
              "warm sess/sec", "warm/cold", "exact");
  std::vector<LanePoint> points;
  bool deterministic = true;
  for (const std::size_t threads : thread_counts) {
    LanePoint point;
    point.threads = threads;
    double best_cold = 0.0;
    double best_warm = 0.0;
    for (int r = 0; r < repeat; ++r) {
      // Fresh service per measurement: the cold round really is cold.
      service::ServiceOptions options;
      options.num_threads = threads;
      options.cache_capacity = 2 * sessions;
      // One LRU shard: the all-hits warm-round gate must not depend on
      // how keys happen to distribute over sharded slices.
      options.cache_shards = 1;
      service::VeritasService service(options);
      service.add_shard("a", shard_a_config());
      service.add_shard("b", shard_b_config());

      const RoundResult cold = run_round(service, logs);
      const RoundResult warm = run_round(service, logs);
      best_cold = std::max(best_cold, double(sessions) / cold.wall_s);
      best_warm = std::max(best_warm, double(sessions) / warm.wall_s);
      if (r == 0) {
        for (std::size_t i = 0; i < logs.size(); ++i) {
          point.deterministic &= payloads_identical(cold.results[i],
                                                    expected[i]);
          point.deterministic &= payloads_identical(warm.results[i],
                                                    expected[i]);
        }
        point.deterministic &= !cold.all_hits && warm.all_hits;
        const service::ServiceStats stats = service.stats();
        point.deterministic &= stats.cache_hits == sessions &&
                               stats.cache_misses == sessions;
      }
    }
    point.cold_sessions_per_sec = best_cold;
    point.warm_sessions_per_sec = best_warm;
    point.warm_speedup = best_warm / best_cold;
    deterministic &= point.deterministic;
    points.push_back(point);
    std::printf("%8zu %16.1f %16.1f %11.1fx %8s\n", threads, best_cold,
                best_warm, point.warm_speedup,
                point.deterministic ? "yes" : "NO");
  }

  const LanePoint& headline = points.back();
  std::printf("\nwarm cache replay: %.1fx faster than cold at %zu lanes "
              "(acceptance: >= 5x)\n",
              headline.warm_speedup, headline.threads);
  std::printf("payloads identical to direct engine path: %s\n",
              deterministic ? "yes" : "NO (BUG)");

  // Overload scenario: offer 2x the capacity a small lane count just
  // demonstrated, through a shallow queue.
  const std::size_t overload_threads = std::min<std::size_t>(
      4, std::max<std::size_t>(1, hw));
  double capacity = 0.0;
  for (const LanePoint& p : points) {
    if (p.threads == overload_threads) capacity = p.cold_sessions_per_sec;
  }
  if (capacity == 0.0) capacity = points.front().cold_sessions_per_sec;
  std::printf("\n== overload scenario (offered ~2x capacity of %.1f/s, "
              "%zu lanes, queue=16) ==\n",
              capacity, overload_threads);
  const OverloadOutcome overload =
      run_overload(logs, capacity, overload_threads);
  std::printf("offered %zu @ %.1f/s -> goodput %.1f/s | ok=%llu "
              "(degraded=%llu) rejected=%llu shed=%llu timed_out=%llu "
              "failed=%llu\n",
              overload.offered, overload.offered_per_sec,
              overload.goodput_per_sec,
              static_cast<unsigned long long>(overload.ok),
              static_cast<unsigned long long>(overload.degraded_results),
              static_cast<unsigned long long>(overload.rejected),
              static_cast<unsigned long long>(overload.shed),
              static_cast<unsigned long long>(overload.timed_out),
              static_cast<unsigned long long>(overload.failed));
  std::printf("max submit() stall: %.1f ms (acceptance: bounded, << 1s) | "
              "interactive p99: %.1f ms | counters reconciled: %s\n",
              overload.max_submit_block_ms, overload.interactive_p99_ms,
              overload.reconciled ? "yes" : "NO (BUG)");
  const bool overload_ok =
      overload.reconciled && overload.max_submit_block_ms < 1000.0;

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"bench_service\",\n"
        << "  \"kernels\": \""
        << veritas::math::simd_kernels::backend_name() << "\",\n"
        << "  \"sessions\": " << sessions << ",\n"
        << "  \"shards\": 2,\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"lanes\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      out << "    {\"threads\": " << points[i].threads
          << ", \"cold_sessions_per_sec\": " << points[i].cold_sessions_per_sec
          << ", \"warm_sessions_per_sec\": " << points[i].warm_sessions_per_sec
          << ", \"warm_speedup\": " << points[i].warm_speedup << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"warm_speedup\": " << headline.warm_speedup << ",\n"
        << "  \"deterministic_vs_direct_engine\": "
        << (deterministic ? "true" : "false") << ",\n"
        << "  \"overload\": {\n"
        << "    \"offered\": " << overload.offered << ",\n"
        << "    \"offered_per_sec\": " << overload.offered_per_sec << ",\n"
        << "    \"goodput_per_sec\": " << overload.goodput_per_sec << ",\n"
        << "    \"ok\": " << overload.ok << ",\n"
        << "    \"degraded\": " << overload.degraded_results << ",\n"
        << "    \"rejected\": " << overload.rejected << ",\n"
        << "    \"shed\": " << overload.shed << ",\n"
        << "    \"timed_out\": " << overload.timed_out << ",\n"
        << "    \"failed\": " << overload.failed << ",\n"
        << "    \"max_submit_block_ms\": " << overload.max_submit_block_ms
        << ",\n"
        << "    \"interactive_p99_ms\": " << overload.interactive_p99_ms
        << ",\n"
        << "    \"counters_reconciled\": "
        << (overload.reconciled ? "true" : "false") << "\n"
        << "  }\n"
        << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return (deterministic && overload_ok) ? 0 : 1;
}
