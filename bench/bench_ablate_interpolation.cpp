// Ablation: how sampled chunk-start states are extended to a full trace
// (paper Algorithm 1 "interpolated from sampled C_s1:N"): linear
// interpolation vs hold-previous, evaluated on smooth and on
// square-wave bandwidth.
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"

using namespace veritas;

int main() {
  const std::size_t n = query::bench_trace_count(12);
  std::printf("== Ablation: off-period interpolation (%zu traces/family) ==\n",
              n);
  const video::Video video(video::default_video_config());
  for (const auto family :
       {trace::TraceFamily::kFccLike, trace::TraceFamily::kSquareWave}) {
    const auto traces = trace::make_traces(family, n, 606);
    std::printf("\nfamily: %s\n", trace::family_name(family));
    for (const auto interpolation :
         {core::Interpolation::kLinear, core::Interpolation::kHold}) {
      core::VeritasConfig cfg;
      cfg.interpolation = interpolation;
      // delta = 1 s so windows between chunk starts actually exist
      // (at the paper's 5 s every window contains a chunk start and
      // interpolation is a no-op).
      cfg.delta_s = 1.0;
      const core::Veritas veritas(cfg);
      std::vector<double> errors;
      for (const auto& gtbw : traces) {
        auto abr = abr::make_abr("mpc");
        const net::NetworkPath path(gtbw, 0.08);
        const auto log = sim::run_session(video, *abr, path).log;
        errors.push_back(
            gtbw.mean_abs_diff_mbps(veritas.infer(log).map_trace));
      }
      std::printf("  %-8s median |GTBW - MAP| = %.3f Mbps\n",
                  interpolation == core::Interpolation::kLinear ? "linear"
                                                                : "hold",
                  util::median(errors));
    }
  }
  return 0;
}
