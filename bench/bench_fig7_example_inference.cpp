// Paper Fig. 7: one example trace — (a) GTBW vs the Baseline estimate,
// (b) GTBW vs five Veritas posterior samples. Baseline is conservative
// in stretches where the deployed ABR picked small chunks; Veritas
// samples track GTBW and widen only where the data is uninformative.
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"
#include "util/ascii_plot.hpp"

using namespace veritas;

int main() {
  std::printf("== Fig. 7: example GTBW inference ==\n");
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 3, 2024);
  const trace::BandwidthTrace& gtbw = traces[2];
  const video::Video video(video::default_video_config());
  auto abr = abr::make_abr("mpc");
  const net::NetworkPath path(gtbw, 0.08);
  const auto deployed = sim::run_session(video, *abr, path);

  const core::Veritas veritas;
  const core::VeritasResult inference = veritas.infer(deployed.log);
  const auto baseline = veritas.baseline(deployed.log);

  std::ostringstream csv_stream;
  util::CsvWriter csv(csv_stream);
  csv.header({"time_s", "gtbw", "baseline", "map", "s0", "s1", "s2", "s3",
              "s4"});
  std::printf("%8s %8s %10s %8s %40s\n", "time", "GTBW", "baseline", "MAP",
              "samples 0..4");
  const double horizon = deployed.log.chunks.back().end_s;
  for (double t = 0.0; t < horizon; t += 10.0) {
    std::printf("%8.0f %8.2f %10.2f %8.2f   ", t, gtbw.at(t), baseline.at(t),
                inference.map_trace.at(t));
    std::vector<double> row{t, gtbw.at(t), baseline.at(t),
                            inference.map_trace.at(t)};
    for (const auto& sample : inference.samples) {
      std::printf("%7.2f", sample.at(t));
      row.push_back(sample.at(t));
    }
    std::printf("\n");
    csv.row(row);
  }
  bench::save_artifact("fig7_example_inference.csv", csv_stream.str());

  // Render the two panels the way the paper draws them.
  auto sample_trace = [&](const trace::BandwidthTrace& trace) {
    std::vector<double> ys;
    for (double t = 0.0; t < horizon; t += 2.0) ys.push_back(trace.at(t));
    return ys;
  };
  {
    std::vector<util::PlotSeries> panel_a{
        {"GTBW", sample_trace(gtbw), '#'},
        {"Baseline", sample_trace(baseline), 'o'}};
    std::printf("\n(a) GTBW vs Baseline (x: 0..%.0f s, y: Mbps)\n%s", horizon,
                util::render_plot(panel_a).c_str());
  }
  {
    std::vector<util::PlotSeries> panel_b{
        {"GTBW", sample_trace(gtbw), '#'},
        {"Veritas samples", {}, '.'}};
    // Overlay all five samples under one glyph, like the paper's panel.
    panel_b[1].values = sample_trace(inference.samples[0]);
    std::vector<util::PlotSeries> series{panel_b[0]};
    for (const auto& sample : inference.samples) {
      series.push_back({"Veritas samples", sample_trace(sample), '.'});
    }
    std::printf("\n(b) GTBW vs Veritas samples (x: 0..%.0f s, y: Mbps)\n%s",
                horizon, util::render_plot(series).c_str());
  }

  std::printf("\nmean |GTBW - baseline| = %.3f Mbps\n",
              gtbw.mean_abs_diff_mbps(baseline));
  std::printf("mean |GTBW - MAP|      = %.3f Mbps\n",
              gtbw.mean_abs_diff_mbps(inference.map_trace));
  for (std::size_t k = 0; k < inference.samples.size(); ++k) {
    std::printf("mean |GTBW - sample %zu| = %.3f Mbps\n", k,
                gtbw.mean_abs_diff_mbps(inference.samples[k]));
  }
  return 0;
}
