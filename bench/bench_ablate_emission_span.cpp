// Ablation that TESTS a claim the paper makes but does not measure:
// Eq. 3's emission ignores the GTBW values during the download
// (C_{sn+1}..C_en); the paper asserts "this simplification does not have
// a significant impact". The kMultiWindow emission variant accounts for
// the expected bandwidth drift over the download span — if the paper is
// right, its accuracy gain should be marginal.
#include <cstdio>

#include "abr/abr_factory.hpp"
#include "bench_common.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"

using namespace veritas;

int main() {
  const std::size_t n = query::bench_trace_count(15);
  std::printf(
      "== Ablation: single-window (paper Eq. 3) vs multi-window emission "
      "(%zu traces/family) ==\n",
      n);
  const video::Video video(video::default_video_config());
  for (const auto family :
       {trace::TraceFamily::kFccLike, trace::TraceFamily::kSquareWave}) {
    const auto traces = trace::make_traces(family, n, 808);
    std::printf("\nfamily: %s\n", trace::family_name(family));
    for (const auto estimator :
         {core::EmissionModel::Estimator::kFullTcp,
          core::EmissionModel::Estimator::kMultiWindow}) {
      core::VeritasConfig cfg;
      cfg.estimator = estimator;
      const core::Veritas veritas(cfg);
      std::vector<double> errors;
      for (const auto& gtbw : traces) {
        auto abr = abr::make_abr("mpc");
        const net::NetworkPath path(gtbw, 0.08);
        const auto log = sim::run_session(video, *abr, path).log;
        errors.push_back(
            gtbw.mean_abs_diff_mbps(veritas.infer(log).map_trace));
      }
      std::printf("  %-14s median |GTBW - MAP| = %.3f Mbps\n",
                  estimator == core::EmissionModel::Estimator::kFullTcp
                      ? "single-window"
                      : "multi-window",
                  util::median(errors));
    }
  }
  std::printf(
      "\nreading: if the two rows are close, the paper's Eq. 3 "
      "simplification is validated.\n");
  return 0;
}
