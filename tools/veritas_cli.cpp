// Thin entry point; all logic lives in src/cli (testable in-process).
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return veritas::cli::run_cli(args, std::cout, std::cerr);
}
