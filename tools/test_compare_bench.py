#!/usr/bin/env python3
"""Unit tests for tools/compare_bench.py (run: python3 tools/test_compare_bench.py)."""

import json
import os
import sys
import tempfile
import unittest
from unittest import mock

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_bench  # noqa: E402


def snapshot(micro_ns=100.0, batch_us=50.0, throughput=200.0,
             train_ms=30.0, cold=10.0, warm=40.0, goodput=25.0):
    return {
        "micro": {"benchmarks": [
            {"name": "BM_Forward/simd:1", "run_type": "iteration",
             "cpu_time": micro_ns},
            {"name": "BM_Forward/simd:1_mean", "run_type": "aggregate",
             "cpu_time": micro_ns},
        ]},
        "batch": {
            "single_session_us": {"forward": batch_us},
            "batch_throughput": [
                {"threads": 2, "sessions_per_sec": throughput}],
        },
        "train": {"train_ms": [{"mode": "baum", "ms": train_ms}]},
        "service": {
            "lanes": [{"threads": 2, "cold_sessions_per_sec": cold,
                       "warm_sessions_per_sec": warm}],
            "overload": {"goodput_per_sec": goodput},
        },
    }


class CollectTest(unittest.TestCase):
    def test_flattens_every_tracked_block_with_directions(self):
        metrics = compare_bench.collect(snapshot())
        self.assertEqual(metrics["micro:BM_Forward/simd:1:cpu_time"],
                         (100.0, -1))
        self.assertEqual(metrics["batch:single_session_us:forward"],
                         (50.0, -1))
        self.assertEqual(metrics["batch:sessions_per_sec:threads=2"],
                         (200.0, +1))
        self.assertEqual(metrics["train:train_ms:baum"], (30.0, -1))
        self.assertEqual(metrics["service:cold_sessions_per_sec:threads=2"],
                         (10.0, +1))
        self.assertEqual(metrics["service:warm_sessions_per_sec:threads=2"],
                         (40.0, +1))
        self.assertEqual(metrics["service:overload:goodput_per_sec"],
                         (25.0, +1))

    def test_skips_aggregate_rows_and_missing_blocks(self):
        metrics = compare_bench.collect(snapshot())
        self.assertNotIn("micro:BM_Forward/simd:1_mean:cpu_time", metrics)
        self.assertEqual(compare_bench.collect({}), {})
        self.assertEqual(compare_bench.collect({"micro": None}), {})


class MainTest(unittest.TestCase):
    def run_main(self, new, old, threshold=None):
        with tempfile.TemporaryDirectory() as tmp:
            new_path = os.path.join(tmp, "new.json")
            old_path = os.path.join(tmp, "old.json")
            with open(new_path, "w") as f:
                json.dump(new, f)
            with open(old_path, "w") as f:
                json.dump(old, f)
            argv = ["compare_bench.py", new_path, old_path]
            if threshold is not None:
                argv += ["--threshold", str(threshold)]
            with mock.patch.object(sys, "argv", argv):
                return compare_bench.main()

    def test_identical_snapshots_pass(self):
        self.assertEqual(self.run_main(snapshot(), snapshot()), 0)

    def test_lower_is_better_regression_fails(self):
        # micro cpu_time up 50% — a lower-is-better metric regressing.
        self.assertEqual(
            self.run_main(snapshot(micro_ns=150.0), snapshot()), 1)

    def test_higher_is_better_regression_fails(self):
        # throughput down 50% — a higher-is-better metric regressing.
        self.assertEqual(
            self.run_main(snapshot(throughput=100.0), snapshot()), 1)

    def test_improvements_never_fail(self):
        improved = snapshot(micro_ns=50.0, throughput=400.0, goodput=50.0)
        self.assertEqual(self.run_main(improved, snapshot()), 0)

    def test_threshold_is_respected(self):
        # 5% worse: fails at 1%, passes at 10%.
        worse = snapshot(micro_ns=105.0)
        self.assertEqual(self.run_main(worse, snapshot(), threshold=0.01), 1)
        self.assertEqual(self.run_main(worse, snapshot(), threshold=0.10), 0)

    def test_new_and_retired_metrics_never_fail(self):
        new = snapshot()
        new["micro"]["benchmarks"].append(
            {"name": "BM_Forward/simd:2", "run_type": "iteration",
             "cpu_time": 60.0})
        old = snapshot()
        old["train"]["train_ms"].append({"mode": "viterbi", "ms": 20.0})
        self.assertEqual(self.run_main(new, old), 0)

    def test_zero_baseline_is_skipped(self):
        self.assertEqual(
            self.run_main(snapshot(train_ms=5.0), snapshot(train_ms=0.0)), 0)


if __name__ == "__main__":
    unittest.main()
