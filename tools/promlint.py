#!/usr/bin/env python3
"""Lint a Prometheus text-exposition (0.0.4) file.

Usage: tools/promlint.py METRICS.prom [METRICS.prom ...]

Checks the output of `veritas serve --metrics-out` (or any exposition
text) without needing promtool installed:

  * structure: every sample belongs to a family introduced by
    `# HELP name ...` then `# TYPE name counter|gauge|histogram|summary|
    untyped`, in that order, each family appearing once.
  * names: metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names
    match [a-zA-Z_][a-zA-Z0-9_]* and never start with the reserved
    `__`; counter families end in `_total`.
  * values: parse as floats (inf/NaN included); no duplicate series
    (same name + same label set).
  * histograms: `_bucket` series carry an `le` label, bucket counts are
    cumulative (non-decreasing in file order), the `+Inf` bucket equals
    `_count`, and `_sum` / `_count` are present per label set.

Exits non-zero after printing every finding, so CI surfaces all the
problems in one run.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  |  name value   (timestamps are not emitted by us)
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$")
LABEL_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_labels(raw, errors, where):
    """Parses the inside of {...} into an ordered (key, value) tuple."""
    labels = []
    pos = 0
    while pos < len(raw):
        match = LABEL_RE.match(raw, pos)
        if not match:
            errors.append(f"{where}: malformed label block at '{raw[pos:]}'")
            return tuple(labels)
        key = match.group("key")
        if not LABEL_NAME_RE.match(key) or key.startswith("__"):
            errors.append(f"{where}: invalid label name '{key}'")
        labels.append((key, match.group("value")))
        pos = match.end()
    return tuple(labels)


def base_family(name):
    """The family a sample line belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint(path):
    errors = []
    with open(path) as f:
        lines = f.read().splitlines()

    helped = {}        # family -> help line number
    typed = {}         # family -> declared type
    last_comment = {}  # family -> last comment kind seen ("help"/"type")
    seen_series = set()
    # histogram family -> labelset(without le) -> state
    hist = {}

    def err(line_no, message):
        errors.append(f"{path}:{line_no}: {message}")

    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment
            kind, name = parts[1], parts[2]
            if not NAME_RE.match(name):
                err(i, f"invalid metric name '{name}' in # {kind}")
                continue
            if kind == "HELP":
                if name in helped:
                    err(i, f"duplicate # HELP for '{name}'")
                helped[name] = i
                last_comment[name] = "help"
            else:
                mtype = parts[3].strip() if len(parts) > 3 else ""
                if mtype not in VALID_TYPES:
                    err(i, f"invalid type '{mtype}' for '{name}'")
                if name in typed:
                    err(i, f"duplicate # TYPE for '{name}'")
                if last_comment.get(name) != "help":
                    err(i, f"# TYPE for '{name}' not preceded by # HELP")
                typed[name] = mtype
                last_comment[name] = "type"
                if mtype == "counter" and not name.endswith("_total"):
                    err(i, f"counter '{name}' should end in _total")
                if mtype == "histogram":
                    hist[name] = {}
            continue

        match = SAMPLE_RE.match(line)
        if not match:
            err(i, f"unparseable sample line: '{line}'")
            continue
        name = match.group("name")
        family = base_family(name)
        if family not in typed and name in typed:
            family = name  # e.g. a gauge literally named *_count
        if family not in typed:
            err(i, f"sample '{name}' has no preceding # TYPE")
            family = None
        elif typed[family] != "histogram" and name != family:
            # _bucket/_sum/_count suffixes only mean something for
            # histograms; for other types the full name is the family.
            if name not in typed:
                err(i, f"sample '{name}' has no preceding # TYPE")
        labels = parse_labels(match.group("labels") or "", errors,
                              f"{path}:{i}")
        try:
            value = float(match.group("value"))
        except ValueError:
            err(i, f"unparseable value '{match.group('value')}'")
            continue
        series = (name, labels)
        if series in seen_series:
            err(i, f"duplicate series {name}{dict(labels)}")
        seen_series.add(series)

        if family in hist:
            key = tuple(kv for kv in labels if kv[0] != "le")
            state = hist[family].setdefault(
                key, {"last_bucket": None, "inf": None, "sum": False,
                      "count": None, "line": i})
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    err(i, f"histogram bucket '{name}' missing le label")
                elif le == "+Inf":
                    state["inf"] = value
                else:
                    try:
                        float(le)
                    except ValueError:
                        err(i, f"non-numeric le '{le}'")
                if state["last_bucket"] is not None \
                        and value < state["last_bucket"]:
                    err(i, f"histogram '{family}' buckets not cumulative "
                           f"({value} < {state['last_bucket']})")
                state["last_bucket"] = value
            elif name.endswith("_sum"):
                state["sum"] = True
            elif name.endswith("_count"):
                state["count"] = value

    for family in helped:
        if family not in typed:
            errors.append(f"{path}: '{family}' has # HELP but no # TYPE")
    for family, series in hist.items():
        for key, state in series.items():
            where = f"{path}: histogram '{family}'{dict(key)}"
            if state["inf"] is None:
                errors.append(f"{where}: missing +Inf bucket")
            if not state["sum"]:
                errors.append(f"{where}: missing _sum")
            if state["count"] is None:
                errors.append(f"{where}: missing _count")
            elif state["inf"] is not None and state["inf"] != state["count"]:
                errors.append(f"{where}: +Inf bucket {state['inf']} != "
                              f"_count {state['count']}")
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in sys.argv[1:]:
        all_errors.extend(lint(path))
    for error in all_errors:
        print(error, file=sys.stderr)
    if all_errors:
        print(f"FAIL: {len(all_errors)} problem(s)", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
