#!/usr/bin/env bash
# Runs the core perf benches and emits a BENCH_N.json snapshot of the
# repo's perf trajectory: google-benchmark microbenches
# (bench_micro_core), the batch/phase bench (bench_batch_infer,
# wall-time per phase and sessions/sec at 1/2/4/N threads), the
# Baum-Welch training bench (bench_train, EM wall-time across thread
# counts and the memoized-emission ablation) and the service bench
# (bench_service, mixed-shard async throughput/latency, cold vs warm
# result cache).
#
# The micro benches run the EHMM kernel benchmarks at /simd:0 (forced
# scalar reference), /simd:1 (default bit-exact vector table) and
# /simd:2 (opt-in AVX-512/FMA tier; skipped when the binary or CPU lacks
# it), so the snapshot records the whole kernel-tier trajectory from a
# single binary — compare e.g. BM_ForwardBackwardRecursion/simd:0 vs
# /simd:1 vs /simd:2. Each guarded benchmark carries the *resolved* tier
# name as its label, and every bench JSON records a "kernels" field. The
# PR 5 estimator benches additionally split on /warm:0|1 (cross-session
# (W, S) estimator cache cold vs warm); the headline pair is
# BM_FbWithEstimatorPr4BaselineK17 vs BM_FbWithEstimatorK17/simd:1/warm:1
# (forward-backward with the estimator included, k = 17). PR 7 adds
# BM_EstimatorBatchCaHeavyK17 (congestion-avoidance-dominated batch, the
# vectorized CA jump) and the /simd:2 column everywhere. PR 8 adds
# BM_TraceSpanDisabled / BM_TraceSpanEnabled (the observability tax of a
# span site; Enabled self-skips in default -DVERITAS_TRACING=OFF builds).
#
# The PR 6 service bench additionally runs an overload scenario (2x the
# measured cold capacity, mixed priorities, deadlines, shed + degraded
# policies armed) and records the `overload` block: offered vs goodput
# rates, per-status breakdown, interactive p99, max submit stall, and
# the counter-reconciliation bit. The bench exits non-zero if a
# submitter ever blocked >= 1 s or the books don't balance.
#
# Usage: tools/run_bench.sh [output.json]   (default: BENCH_8.json)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out_json="${1:-${repo_root}/BENCH_8.json}"

cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
cmake --build "${build_dir}" -j \
  --target bench_micro_core bench_batch_infer bench_train \
  bench_service >/dev/null

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

echo "== bench_micro_core =="
"${build_dir}/bench/bench_micro_core" \
  --benchmark_min_time=0.5 \
  --benchmark_out="${tmp_dir}/micro.json" \
  --benchmark_out_format=json

echo
echo "== bench_batch_infer =="
"${build_dir}/bench/bench_batch_infer" \
  --sessions "${VERITAS_BENCH_SESSIONS:-64}" \
  --repeat "${VERITAS_BENCH_REPEAT:-3}" \
  --json "${tmp_dir}/batch.json"

echo
echo "== bench_train =="
"${build_dir}/bench/bench_train" \
  --sessions "${VERITAS_BENCH_TRAIN_SESSIONS:-16}" \
  --repeat "${VERITAS_BENCH_REPEAT:-3}" \
  --json "${tmp_dir}/train.json"

echo
echo "== bench_service =="
"${build_dir}/bench/bench_service" \
  --sessions "${VERITAS_BENCH_SESSIONS:-64}" \
  --repeat "${VERITAS_BENCH_REPEAT:-3}" \
  --json "${tmp_dir}/service.json"

if command -v jq >/dev/null 2>&1; then
  jq -n \
    --slurpfile micro "${tmp_dir}/micro.json" \
    --slurpfile batch "${tmp_dir}/batch.json" \
    --slurpfile train "${tmp_dir}/train.json" \
    --slurpfile service "${tmp_dir}/service.json" \
    '{micro: $micro[0], batch: $batch[0], train: $train[0],
      service: $service[0]}' > "${out_json}"
else
  # No jq: merge the plain snapshots by hand; they carry the headline
  # numbers.
  {
    echo '{'
    echo '"batch":'
    cat "${tmp_dir}/batch.json"
    echo ', "train":'
    cat "${tmp_dir}/train.json"
    echo ', "service":'
    cat "${tmp_dir}/service.json"
    echo '}'
  } > "${out_json}"
fi
echo
echo "wrote ${out_json}"
