#!/usr/bin/env bash
# Runs the core perf benches and emits a BENCH_1.json snapshot seeding
# the repo's perf trajectory: google-benchmark microbenches
# (bench_micro_core) plus the batch/phase bench (bench_batch_infer,
# wall-time per phase and sessions/sec at 1/2/4/N threads).
#
# Usage: tools/run_bench.sh [output.json]   (default: BENCH_1.json)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out_json="${1:-${repo_root}/BENCH_1.json}"

cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
cmake --build "${build_dir}" -j --target bench_micro_core bench_batch_infer \
  >/dev/null

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

echo "== bench_micro_core =="
"${build_dir}/bench/bench_micro_core" \
  --benchmark_min_time=0.5 \
  --benchmark_out="${tmp_dir}/micro.json" \
  --benchmark_out_format=json

echo
echo "== bench_batch_infer =="
"${build_dir}/bench/bench_batch_infer" \
  --sessions "${VERITAS_BENCH_SESSIONS:-64}" \
  --repeat "${VERITAS_BENCH_REPEAT:-3}" \
  --json "${tmp_dir}/batch.json"

if command -v jq >/dev/null 2>&1; then
  jq -n \
    --slurpfile micro "${tmp_dir}/micro.json" \
    --slurpfile batch "${tmp_dir}/batch.json" \
    '{micro: $micro[0], batch: $batch[0]}' > "${out_json}"
else
  # No jq: the batch snapshot alone still carries the headline numbers.
  cp "${tmp_dir}/batch.json" "${out_json}"
fi
echo
echo "wrote ${out_json}"
