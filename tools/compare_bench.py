#!/usr/bin/env python3
"""Diff two BENCH_N.json perf snapshots and fail on regressions.

Usage: tools/compare_bench.py NEW.json OLD.json [--threshold 0.10]

Compares every tracked metric present in BOTH snapshots and exits
non-zero when any regresses by more than the threshold (default 10%).
Tracked metrics:

  * micro:   per-benchmark cpu_time from the google-benchmark block
             (lower is better), matched by full name incl. /simd:N
             and /warm:N args — new tiers (e.g. /simd:2) only appear
             in the newer snapshot and are reported as "new".
  * batch:   single_session_us phases (lower), batch_throughput
             sessions_per_sec per thread count (higher).
  * train:   train_ms per mode (lower).
  * service: per-lane cold/warm sessions_per_sec (higher) and the
             overload goodput_per_sec (higher).

Improvements and new/retired metrics never fail the run; only
tracked-metric regressions beyond the threshold do. The micro block is
the noisiest — pass a looser --threshold when comparing runs from
loaded machines.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def collect(snapshot):
    """Flattens a BENCH_N.json into {metric_name: (value, direction)}
    where direction is +1 when higher is better, -1 when lower is."""
    metrics = {}

    micro = snapshot.get("micro") or {}
    for bench in micro.get("benchmarks", []):
        if bench.get("run_type") != "iteration":
            continue
        name = bench["name"]
        metrics[f"micro:{name}:cpu_time"] = (bench["cpu_time"], -1)

    batch = snapshot.get("batch") or {}
    for phase, us in (batch.get("single_session_us") or {}).items():
        metrics[f"batch:single_session_us:{phase}"] = (us, -1)
    for lane in batch.get("batch_throughput", []):
        metrics[f"batch:sessions_per_sec:threads={lane['threads']}"] = (
            lane["sessions_per_sec"], +1)

    train = snapshot.get("train") or {}
    for mode in train.get("train_ms", []):
        metrics[f"train:train_ms:{mode['mode']}"] = (mode["ms"], -1)

    service = snapshot.get("service") or {}
    for lane in service.get("lanes", []):
        threads = lane["threads"]
        metrics[f"service:cold_sessions_per_sec:threads={threads}"] = (
            lane["cold_sessions_per_sec"], +1)
        metrics[f"service:warm_sessions_per_sec:threads={threads}"] = (
            lane["warm_sessions_per_sec"], +1)
    overload = service.get("overload") or {}
    if "goodput_per_sec" in overload:
        metrics["service:overload:goodput_per_sec"] = (
            overload["goodput_per_sec"], +1)

    return metrics


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_N.json snapshots.")
    parser.add_argument("new_json", help="the candidate snapshot")
    parser.add_argument("old_json", help="the baseline snapshot")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max tolerated relative regression "
                             "(default 0.10 = 10%%)")
    args = parser.parse_args()

    new_metrics = collect(load(args.new_json))
    old_metrics = collect(load(args.old_json))

    regressions = []
    improvements = 0
    compared = 0
    for name in sorted(new_metrics):
        if name not in old_metrics:
            print(f"  new      {name}")
            continue
        new_value, direction = new_metrics[name]
        old_value, _ = old_metrics[name]
        if old_value <= 0:
            continue
        compared += 1
        # Positive change = better, in either direction convention.
        change = direction * (new_value - old_value) / old_value
        if change < -args.threshold:
            regressions.append((name, old_value, new_value, change))
            print(f"  REGRESS  {name}: {old_value:.6g} -> {new_value:.6g} "
                  f"({change * 100.0:+.1f}%)")
        elif change > args.threshold:
            improvements += 1
            print(f"  improve  {name}: {old_value:.6g} -> {new_value:.6g} "
                  f"({change * 100.0:+.1f}%)")
    for name in sorted(set(old_metrics) - set(new_metrics)):
        print(f"  retired  {name}")

    print(f"\ncompared {compared} metrics: {len(regressions)} regression(s) "
          f"beyond {args.threshold * 100.0:.0f}%, "
          f"{improvements} improvement(s) beyond it")
    if regressions:
        print("FAIL", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
