#include <gtest/gtest.h>

#include <vector>

#include "abr/abr.hpp"
#include "abr/abr_factory.hpp"
#include "abr/bba.hpp"
#include "abr/bola.hpp"
#include "abr/fixed_abr.hpp"
#include "abr/mpc.hpp"
#include "abr/random_abr.hpp"
#include "abr/rate_based.hpp"
#include "util/expects.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::abr {
namespace {

video::Video test_video() { return video::Video(video::default_video_config()); }

DownloadedChunk chunk_with_throughput(double mbps, std::size_t index = 0) {
  DownloadedChunk c;
  c.chunk_index = index;
  c.size_bytes = 250000.0;
  c.duration_s = c.size_bytes * 8.0 / 1e6 / mbps;
  return c;
}

AbrContext make_context(const video::Video& video, double buffer_s,
                        std::span<const DownloadedChunk> history = {}) {
  AbrContext ctx;
  ctx.video = &video;
  ctx.next_chunk = 10;
  ctx.buffer_s = buffer_s;
  ctx.buffer_capacity_s = 5.0;
  ctx.history = history;
  return ctx;
}

TEST(HarmonicMean, MatchesDefinition) {
  std::vector<DownloadedChunk> history{chunk_with_throughput(2.0),
                                       chunk_with_throughput(4.0)};
  // Harmonic mean of {2, 4} = 8/3.
  EXPECT_NEAR(harmonic_mean_throughput(history, 5, 1.0), 8.0 / 3.0, 1e-9);
}

TEST(HarmonicMean, UsesOnlyRecentWindow) {
  std::vector<DownloadedChunk> history{chunk_with_throughput(100.0),
                                       chunk_with_throughput(2.0),
                                       chunk_with_throughput(2.0)};
  EXPECT_NEAR(harmonic_mean_throughput(history, 2, 1.0), 2.0, 1e-9);
}

TEST(HarmonicMean, FallbackWithNoHistory) {
  EXPECT_DOUBLE_EQ(harmonic_mean_throughput({}, 5, 1.5), 1.5);
}

TEST(Bba, LowBufferPicksLowest) {
  const video::Video v = test_video();
  Bba bba;
  EXPECT_EQ(bba.choose_quality(make_context(v, 0.2)), 0u);
}

TEST(Bba, HighBufferPicksHighest) {
  const video::Video v = test_video();
  Bba bba;
  EXPECT_EQ(bba.choose_quality(make_context(v, 4.8)), v.num_qualities() - 1);
}

TEST(Bba, MonotoneInBuffer) {
  const video::Video v = test_video();
  Bba bba;
  std::size_t prev = 0;
  for (double buffer = 0.0; buffer <= 5.0; buffer += 0.25) {
    const std::size_t q = bba.choose_quality(make_context(v, buffer));
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(Bba, IgnoresThroughputHistory) {
  const video::Video v = test_video();
  Bba bba;
  std::vector<DownloadedChunk> fast{chunk_with_throughput(100.0)};
  std::vector<DownloadedChunk> slow{chunk_with_throughput(0.1)};
  EXPECT_EQ(bba.choose_quality(make_context(v, 2.5, fast)),
            bba.choose_quality(make_context(v, 2.5, slow)));
}

TEST(Mpc, HighThroughputPicksTopQuality) {
  const video::Video v = test_video();
  Mpc mpc;
  std::vector<DownloadedChunk> history;
  for (int i = 0; i < 5; ++i) history.push_back(chunk_with_throughput(50.0, i));
  EXPECT_EQ(mpc.choose_quality(make_context(v, 4.0, history)),
            v.num_qualities() - 1);
}

TEST(Mpc, LowThroughputPicksLowQuality) {
  const video::Video v = test_video();
  Mpc mpc;
  std::vector<DownloadedChunk> history;
  for (int i = 0; i < 5; ++i) history.push_back(chunk_with_throughput(0.05, i));
  EXPECT_EQ(mpc.choose_quality(make_context(v, 1.0, history)), 0u);
}

TEST(Mpc, EmptyBufferMoreConservativeThanFullBuffer) {
  const video::Video v = test_video();
  std::vector<DownloadedChunk> history;
  for (int i = 0; i < 5; ++i) history.push_back(chunk_with_throughput(2.0, i));
  Mpc mpc_low;
  const std::size_t q_low = mpc_low.choose_quality(make_context(v, 0.0, history));
  Mpc mpc_high;
  const std::size_t q_high =
      mpc_high.choose_quality(make_context(v, 4.5, history));
  EXPECT_LE(q_low, q_high);
}

TEST(Mpc, ResetClearsState) {
  const video::Video v = test_video();
  Mpc mpc;
  std::vector<DownloadedChunk> history{chunk_with_throughput(10.0)};
  (void)mpc.choose_quality(make_context(v, 3.0, history));
  mpc.reset();
  // After reset, behaves like a fresh instance.
  Mpc fresh;
  EXPECT_EQ(mpc.choose_quality(make_context(v, 3.0, history)),
            fresh.choose_quality(make_context(v, 3.0, history)));
}

TEST(Mpc, RobustDiscountLowersChoice) {
  const video::Video v = test_video();
  // Volatile history -> robust MPC discounts its prediction.
  std::vector<DownloadedChunk> volatile_history;
  for (int i = 0; i < 6; ++i) {
    volatile_history.push_back(chunk_with_throughput(i % 2 ? 8.0 : 1.0, i));
  }
  MpcConfig robust_cfg;
  robust_cfg.robust = true;
  MpcConfig plain_cfg;
  plain_cfg.robust = false;
  Mpc robust(robust_cfg), plain(plain_cfg);
  // Feed the same history one chunk at a time so the robust error
  // tracker sees the prediction misses.
  std::size_t q_robust = 0, q_plain = 0;
  for (std::size_t n = 1; n <= volatile_history.size(); ++n) {
    std::span<const DownloadedChunk> h(volatile_history.data(), n);
    q_robust = robust.choose_quality(make_context(v, 3.0, h));
    q_plain = plain.choose_quality(make_context(v, 3.0, h));
  }
  EXPECT_LE(q_robust, q_plain);
}

TEST(Bola, LowBufferPicksLowest) {
  const video::Video v = test_video();
  Bola bola;
  EXPECT_EQ(bola.choose_quality(make_context(v, 0.1)), 0u);
}

TEST(Bola, FullBufferPicksHigh) {
  const video::Video v = test_video();
  Bola bola;
  const std::size_t q = bola.choose_quality(make_context(v, 5.0));
  EXPECT_GE(q, v.num_qualities() - 2);
}

TEST(Bola, MonotoneInBuffer) {
  const video::Video v = test_video();
  Bola bola;
  std::size_t prev = 0;
  for (double buffer = 0.0; buffer <= 5.0; buffer += 0.5) {
    const std::size_t q = bola.choose_quality(make_context(v, buffer));
    EXPECT_GE(q, prev) << "buffer " << buffer;
    prev = q;
  }
}

TEST(RateBased, PicksHighestSustainableRung) {
  const video::Video v = test_video();
  RateBased rb;
  std::vector<DownloadedChunk> history{chunk_with_throughput(2.0)};
  // 0.9 * 2.0 = 1.8 -> highest rung <= 1.8 is 1.0 Mbps (index 2).
  EXPECT_EQ(rb.choose_quality(make_context(v, 3.0, history)), 2u);
}

TEST(RateBased, FallbackWithNoHistory) {
  const video::Video v = test_video();
  RateBased rb;
  // fallback 1.0 * 0.9 = 0.9 -> rung 0.4 (index 1).
  EXPECT_EQ(rb.choose_quality(make_context(v, 3.0)), 1u);
}

TEST(RandomAbr, DeterministicAfterReset) {
  const video::Video v = test_video();
  RandomAbr r(77);
  std::vector<std::size_t> first;
  for (int i = 0; i < 20; ++i) {
    first.push_back(r.choose_quality(make_context(v, 2.0)));
  }
  r.reset();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(r.choose_quality(make_context(v, 2.0)), first[i]);
  }
}

TEST(RandomAbr, CoversAllQualities) {
  const video::Video v = test_video();
  RandomAbr r(78);
  std::vector<bool> seen(v.num_qualities(), false);
  for (int i = 0; i < 200; ++i) {
    seen[r.choose_quality(make_context(v, 2.0))] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(FixedAbr, AlwaysSameQuality) {
  const video::Video v = test_video();
  FixedAbr f(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(f.choose_quality(make_context(v, double(i) / 2)), 3u);
  }
}

TEST(FixedAbr, ClampsToLadder) {
  const video::Video v = test_video();
  FixedAbr f(99);
  EXPECT_EQ(f.choose_quality(make_context(v, 2.0)), v.num_qualities() - 1);
}

TEST(Factory, CreatesAllNamedAlgorithms) {
  EXPECT_EQ(make_abr("mpc")->name(), "mpc");
  EXPECT_EQ(make_abr("bba")->name(), "bba");
  EXPECT_EQ(make_abr("bola")->name(), "bola");
  EXPECT_EQ(make_abr("rate_based")->name(), "rate_based");
  EXPECT_EQ(make_abr("random", 1)->name(), "random");
  EXPECT_EQ(make_abr("fixed:2")->name(), "fixed");
}

TEST(Factory, FixedParsesLevel) {
  const video::Video v = test_video();
  auto abr = make_abr("fixed:1");
  AbrContext ctx;
  ctx.video = &v;
  EXPECT_EQ(abr->choose_quality(ctx), 1u);
}

TEST(Factory, RejectsUnknownNames) {
  EXPECT_THROW(make_abr("pensieve"), veritas::ContractViolation);
  EXPECT_THROW(make_abr("fixed:abc"), veritas::ContractViolation);
}

}  // namespace
}  // namespace veritas::abr
