#include "abr/oracle_abr.hpp"

#include <gtest/gtest.h>

#include "abr/abr_factory.hpp"
#include "net/network_path.hpp"
#include "sim/metrics.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/expects.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::abr {
namespace {

video::Video short_video(std::size_t chunks = 60) {
  video::VideoConfig cfg = video::default_video_config();
  cfg.duration_s = double(chunks) * cfg.chunk_duration_s;
  return video::Video(cfg);
}

TEST(OracleAbr, RejectsNullTrace) {
  EXPECT_THROW(OracleAbr(nullptr), veritas::ContractViolation);
}

TEST(OracleAbr, HighBandwidthPicksTopQuality) {
  const auto gtbw = trace::BandwidthTrace::constant(50.0, 1000.0, 5.0);
  const video::Video v = short_video();
  OracleAbr oracle(&gtbw);
  oracle.reset();
  AbrContext ctx;
  ctx.video = &v;
  ctx.next_chunk = 0;
  ctx.buffer_s = 4.0;
  ctx.buffer_capacity_s = 5.0;
  EXPECT_EQ(oracle.choose_quality(ctx), v.num_qualities() - 1);
}

TEST(OracleAbr, LowBandwidthPicksLowQuality) {
  const auto gtbw = trace::BandwidthTrace::constant(0.15, 1000.0, 5.0);
  const video::Video v = short_video();
  OracleAbr oracle(&gtbw);
  oracle.reset();
  AbrContext ctx;
  ctx.video = &v;
  ctx.next_chunk = 0;
  ctx.buffer_s = 1.0;
  ctx.buffer_capacity_s = 5.0;
  EXPECT_EQ(oracle.choose_quality(ctx), 0u);
}

TEST(OracleAbr, SessionRunsCleanly) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 41);
  const video::Video v = short_video();
  OracleAbr oracle(&traces[0]);
  const net::NetworkPath path(traces[0], 0.08);
  const sim::SessionResult result = sim::run_session(v, oracle, path);
  EXPECT_EQ(result.log.size(), v.num_chunks());
  const sim::QoeMetrics m = sim::compute_metrics(v, result);
  EXPECT_GT(m.mean_ssim, 0.9);
}

TEST(OracleAbr, NoWorseQoeThanMpcOnAverage) {
  // The point of an oracle: with perfect foresight it should match or
  // beat the deployable algorithm on the same QoE terms (bitrate minus
  // stall penalty), averaged over traces.
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 4, 43);
  const video::Video v = short_video(100);
  double oracle_qoe = 0.0, mpc_qoe = 0.0;
  for (const auto& gtbw : traces) {
    const net::NetworkPath path(gtbw, 0.08);
    OracleAbr oracle(&gtbw);
    const auto r_oracle = sim::run_session(v, oracle, path);
    const auto m_oracle = sim::compute_metrics(v, r_oracle);
    auto mpc = make_abr("mpc");
    const auto r_mpc = sim::run_session(v, *mpc, path);
    const auto m_mpc = sim::compute_metrics(v, r_mpc);
    const double stall_oracle = r_oracle.total_stall_s;
    const double stall_mpc = r_mpc.total_stall_s;
    oracle_qoe += m_oracle.avg_bitrate_mbps - 8.0 * stall_oracle / 100.0;
    mpc_qoe += m_mpc.avg_bitrate_mbps - 8.0 * stall_mpc / 100.0;
  }
  EXPECT_GE(oracle_qoe, mpc_qoe - 0.1);
}

TEST(OracleAbr, ResetRestoresInitialBehavior) {
  const auto gtbw = trace::BandwidthTrace::constant(5.0, 1000.0, 5.0);
  const video::Video v = short_video();
  OracleAbr oracle(&gtbw);
  oracle.reset();
  AbrContext ctx;
  ctx.video = &v;
  ctx.next_chunk = 0;
  ctx.buffer_s = 2.0;
  ctx.buffer_capacity_s = 5.0;
  const std::size_t first = oracle.choose_quality(ctx);
  (void)oracle.choose_quality(ctx);
  oracle.reset();
  EXPECT_EQ(oracle.choose_quality(ctx), first);
}

}  // namespace
}  // namespace veritas::abr
