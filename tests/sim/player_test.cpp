#include "sim/player.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

namespace veritas::sim {
namespace {

TEST(PlayerBuffer, StartsEmptyNotPlaying) {
  PlayerBuffer b(5.0);
  EXPECT_DOUBLE_EQ(b.level_s(), 0.0);
  EXPECT_FALSE(b.playback_started());
  EXPECT_DOUBLE_EQ(b.total_stall_s(), 0.0);
}

TEST(PlayerBuffer, RejectsNonPositiveCapacity) {
  EXPECT_THROW(PlayerBuffer(0.0), veritas::ContractViolation);
}

TEST(PlayerBuffer, NoDrainBeforePlayback) {
  PlayerBuffer b(5.0);
  b.push_chunk(2.0);
  EXPECT_DOUBLE_EQ(b.advance(10.0), 0.0);
  EXPECT_DOUBLE_EQ(b.level_s(), 2.0);
}

TEST(PlayerBuffer, DrainsWhilePlaying) {
  PlayerBuffer b(5.0);
  b.push_chunk(2.0);
  b.start_playback();
  EXPECT_DOUBLE_EQ(b.advance(1.5), 0.0);
  EXPECT_DOUBLE_EQ(b.level_s(), 0.5);
}

TEST(PlayerBuffer, StallWhenEmpty) {
  PlayerBuffer b(5.0);
  b.push_chunk(2.0);
  b.start_playback();
  EXPECT_DOUBLE_EQ(b.advance(3.0), 1.0);  // 2 s played, 1 s stalled
  EXPECT_DOUBLE_EQ(b.level_s(), 0.0);
  EXPECT_DOUBLE_EQ(b.total_stall_s(), 1.0);
}

TEST(PlayerBuffer, StallAccumulates) {
  PlayerBuffer b(5.0);
  b.start_playback();
  b.advance(0.5);
  b.advance(0.25);
  EXPECT_DOUBLE_EQ(b.total_stall_s(), 0.75);
}

TEST(PlayerBuffer, HasRoomAtCapacityBoundary) {
  PlayerBuffer b(5.0);
  b.push_chunk(2.0);
  EXPECT_TRUE(b.has_room(2.0));
  b.push_chunk(2.0);
  // 4 + 2 > 5: no room.
  EXPECT_FALSE(b.has_room(2.0));
  EXPECT_TRUE(b.has_room(1.0));
}

TEST(PlayerBuffer, TimeUntilRoom) {
  PlayerBuffer b(5.0);
  b.push_chunk(2.0);
  b.push_chunk(2.0);
  EXPECT_DOUBLE_EQ(b.time_until_room(2.0), 1.0);
  EXPECT_DOUBLE_EQ(b.time_until_room(1.0), 0.0);
}

TEST(PlayerBuffer, PushWithoutRoomRejected) {
  PlayerBuffer b(3.0);
  b.push_chunk(2.0);
  EXPECT_THROW(b.push_chunk(2.0), veritas::ContractViolation);
}

TEST(PlayerBuffer, AdvanceRejectsNegative) {
  PlayerBuffer b(3.0);
  EXPECT_THROW(b.advance(-0.1), veritas::ContractViolation);
}

TEST(PlayerBuffer, TypicalCycle) {
  // download (1.2 s) -> push -> repeat; no stall when downloads are
  // faster than playback.
  PlayerBuffer b(5.0);
  double stall = 0.0;
  for (int i = 0; i < 10; ++i) {
    stall += b.advance(1.2);
    if (!b.has_room(2.0)) {
      const double wait = b.time_until_room(2.0);
      stall += b.advance(wait);
    }
    b.push_chunk(2.0);
    if (i == 0) b.start_playback();
  }
  EXPECT_DOUBLE_EQ(stall, 0.0);
  EXPECT_DOUBLE_EQ(b.total_stall_s(), 0.0);
}

}  // namespace
}  // namespace veritas::sim
