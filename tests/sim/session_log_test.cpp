#include "sim/session_log.hpp"

#include <gtest/gtest.h>

#include "abr/abr_factory.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/expects.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::sim {
namespace {

SessionLog make_log() {
  video::VideoConfig cfg = video::default_video_config();
  cfg.duration_s = 60.0;
  const video::Video v(cfg);
  auto abr = abr::make_abr("mpc");
  const net::NetworkPath path(
      trace::markov_trace(trace::MarkovTraceConfig{}, 3), 0.08);
  return run_session(v, *abr, path).log;
}

TEST(SessionLog, CsvRoundTrip) {
  const SessionLog log = make_log();
  const SessionLog parsed = session_log_from_csv(to_csv(log));
  ASSERT_EQ(parsed.size(), log.size());
  EXPECT_DOUBLE_EQ(parsed.chunk_duration_s, log.chunk_duration_s);
  EXPECT_DOUBLE_EQ(parsed.rtt_s, log.rtt_s);
  for (std::size_t i = 0; i < log.size(); ++i) {
    const ChunkLog& a = log.chunks[i];
    const ChunkLog& b = parsed.chunks[i];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.quality, b.quality);
    EXPECT_DOUBLE_EQ(a.size_bytes, b.size_bytes);
    EXPECT_DOUBLE_EQ(a.start_s, b.start_s);
    EXPECT_DOUBLE_EQ(a.end_s, b.end_s);
    EXPECT_DOUBLE_EQ(a.tcp_at_start.cwnd_segments,
                     b.tcp_at_start.cwnd_segments);
    EXPECT_DOUBLE_EQ(a.tcp_at_start.last_send_gap_s,
                     b.tcp_at_start.last_send_gap_s);
  }
}

TEST(SessionLog, ThroughputDefinition) {
  ChunkLog c;
  c.size_bytes = 1e6;
  c.start_s = 1.0;
  c.end_s = 2.0;
  EXPECT_DOUBLE_EQ(c.throughput_mbps(), 8.0);
  EXPECT_DOUBLE_EQ(c.download_time_s(), 1.0);
}

TEST(SessionLog, PrefixKeepsMetadata) {
  const SessionLog log = make_log();
  const SessionLog p = log.prefix(5);
  EXPECT_EQ(p.size(), 5u);
  EXPECT_DOUBLE_EQ(p.chunk_duration_s, log.chunk_duration_s);
  EXPECT_EQ(p.chunks[4].index, log.chunks[4].index);
}

TEST(SessionLog, PrefixBoundsChecked) {
  const SessionLog log = make_log();
  EXPECT_THROW(log.prefix(log.size() + 1), veritas::ContractViolation);
  EXPECT_EQ(log.prefix(log.size()).size(), log.size());
  EXPECT_TRUE(log.prefix(0).empty());
}

TEST(SessionLog, EmptyLogSerializesHeaderOnly) {
  SessionLog log;
  const std::string csv = to_csv(log);
  EXPECT_NE(csv.find("index,quality"), std::string::npos);
  EXPECT_TRUE(session_log_from_csv(csv).empty());
}

}  // namespace
}  // namespace veritas::sim
