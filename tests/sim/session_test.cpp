#include "sim/session.hpp"

#include <gtest/gtest.h>

#include "abr/abr_factory.hpp"
#include "sim/metrics.hpp"
#include "trace/trace_generator.hpp"
#include "util/expects.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::sim {
namespace {

video::Video short_video(std::size_t chunks = 30) {
  video::VideoConfig cfg = video::default_video_config();
  cfg.duration_s = double(chunks) * cfg.chunk_duration_s;
  return video::Video(cfg);
}

net::NetworkPath path_with(double mbps) {
  return net::NetworkPath(trace::BandwidthTrace::constant(mbps, 10000.0, 5.0),
                          0.08);
}

TEST(Session, DownloadsEveryChunk) {
  const video::Video v = short_video();
  auto abr = abr::make_abr("bba");
  const SessionResult r = run_session(v, *abr, path_with(5.0));
  EXPECT_EQ(r.log.size(), v.num_chunks());
  EXPECT_EQ(r.qualities.size(), v.num_chunks());
}

TEST(Session, LogTimesAreOrderedAndConsistent) {
  const video::Video v = short_video();
  auto abr = abr::make_abr("mpc");
  const SessionResult r = run_session(v, *abr, path_with(4.0));
  double prev_end = 0.0;
  for (const ChunkLog& c : r.log.chunks) {
    EXPECT_GT(c.end_s, c.start_s);
    EXPECT_GE(c.start_s, prev_end - 1e-9);
    prev_end = c.end_s;
  }
}

TEST(Session, AbundantBandwidthNoRebuffering) {
  const video::Video v = short_video();
  auto abr = abr::make_abr("mpc");
  const SessionResult r = run_session(v, *abr, path_with(100.0));
  EXPECT_DOUBLE_EQ(r.total_stall_s, 0.0);
}

TEST(Session, StarvedBandwidthRebuffers) {
  const video::Video v = short_video();
  auto abr = abr::make_abr("fixed:4");  // top quality on a 0.5 Mbps link
  const SessionResult r = run_session(v, *abr, path_with(0.5));
  EXPECT_GT(r.total_stall_s, 1.0);
}

TEST(Session, BufferNeverExceedsCapacity) {
  const video::Video v = short_video();
  auto abr = abr::make_abr("bba");
  SessionConfig cfg;
  cfg.buffer_capacity_s = 5.0;
  const SessionResult r = run_session(v, *abr, path_with(50.0), cfg);
  // Buffer-at-start must respect the request pacing rule.
  for (const ChunkLog& c : r.log.chunks) {
    EXPECT_LE(c.buffer_at_start_s,
              cfg.buffer_capacity_s - v.chunk_duration_s() + 1e-9);
  }
}

TEST(Session, StartupDelayIsFirstChunkArrival) {
  const video::Video v = short_video();
  auto abr = abr::make_abr("bba");
  const SessionResult r = run_session(v, *abr, path_with(5.0));
  EXPECT_DOUBLE_EQ(r.startup_delay_s, r.log.chunks.front().end_s);
}

TEST(Session, SessionEndCoversAllPlayback) {
  const video::Video v = short_video();
  auto abr = abr::make_abr("bba");
  const SessionResult r = run_session(v, *abr, path_with(5.0));
  // Total played content = video duration; the session cannot end before
  // startup + content.
  EXPECT_GE(r.session_end_s, r.startup_delay_s + v.duration_s() - 1e-6);
}

TEST(Session, IdleGapsTriggerSlowStartRestartInLogs) {
  // Fast link -> pacing gaps between chunks -> recorded TCP states
  // should show post-idle (decayed) windows on some chunks.
  const video::Video v = short_video(60);
  auto abr = abr::make_abr("fixed:2");
  const SessionResult r = run_session(v, *abr, path_with(8.0));
  int idle_chunks = 0;
  for (const ChunkLog& c : r.log.chunks) {
    if (c.tcp_at_start.last_send_gap_s > c.tcp_at_start.rto_s) ++idle_chunks;
  }
  EXPECT_GT(idle_chunks, 10);
}

TEST(Session, RejectsBufferSmallerThanChunk) {
  const video::Video v = short_video();
  auto abr = abr::make_abr("bba");
  SessionConfig cfg;
  cfg.buffer_capacity_s = 1.0;  // < 2 s chunk
  EXPECT_THROW(run_session(v, *abr, path_with(5.0), cfg),
               veritas::ContractViolation);
}

TEST(Session, LargerBufferNeverHurtsRebuffering) {
  const video::Video v = short_video(60);
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 3, 5);
  for (const auto& t : traces) {
    const net::NetworkPath path(t, 0.08);
    auto abr_small = abr::make_abr("mpc");
    SessionConfig small;
    small.buffer_capacity_s = 5.0;
    const double stall_small =
        run_session(v, *abr_small, path, small).total_stall_s;
    auto abr_large = abr::make_abr("mpc");
    SessionConfig large;
    large.buffer_capacity_s = 30.0;
    const double stall_large =
        run_session(v, *abr_large, path, large).total_stall_s;
    EXPECT_LE(stall_large, stall_small + 0.5);
  }
}

TEST(SessionMetrics, ComputesAverages) {
  const video::Video v = short_video();
  auto abr = abr::make_abr("fixed:0");
  const SessionResult r = run_session(v, *abr, path_with(5.0));
  const QoeMetrics m = compute_metrics(v, r);
  EXPECT_NEAR(m.avg_bitrate_mbps, 0.1, 1e-9);
  EXPECT_NEAR(m.mean_ssim, 0.908, 0.01);
  EXPECT_EQ(m.quality_switches, 0u);
}

TEST(SessionMetrics, CountsSwitches) {
  const video::Video v = short_video();
  auto abr = abr::make_abr("random", 3);
  const SessionResult r = run_session(v, *abr, path_with(5.0));
  const QoeMetrics m = compute_metrics(v, r);
  std::size_t expected = 0;
  for (std::size_t i = 1; i < r.qualities.size(); ++i) {
    expected += r.qualities[i] != r.qualities[i - 1];
  }
  EXPECT_EQ(m.quality_switches, expected);
}

TEST(SessionMetrics, RebufferRatioDefinition) {
  const video::Video v = short_video();
  auto abr = abr::make_abr("fixed:4");
  const SessionResult r = run_session(v, *abr, path_with(0.8));
  const QoeMetrics m = compute_metrics(v, r);
  EXPECT_NEAR(m.rebuffer_ratio_pct,
              100.0 * r.total_stall_s / r.session_end_s, 1e-9);
  EXPECT_GT(m.rebuffer_ratio_pct, 0.0);
}

TEST(SessionMetrics, HigherQualityHigherSsim) {
  const video::Video v = short_video();
  auto low = abr::make_abr("fixed:0");
  auto high = abr::make_abr("fixed:4");
  const QoeMetrics m_low =
      compute_metrics(v, run_session(v, *low, path_with(50.0)));
  const QoeMetrics m_high =
      compute_metrics(v, run_session(v, *high, path_with(50.0)));
  EXPECT_GT(m_high.mean_ssim, m_low.mean_ssim);
  EXPECT_GT(m_high.mean_ssim_db, m_low.mean_ssim_db);
}

TEST(Session, DeterministicForSameInputs) {
  const video::Video v = short_video();
  auto abr1 = abr::make_abr("mpc");
  auto abr2 = abr::make_abr("mpc");
  const SessionResult a = run_session(v, *abr1, path_with(4.0));
  const SessionResult b = run_session(v, *abr2, path_with(4.0));
  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.log.chunks[i].end_s, b.log.chunks[i].end_s);
    EXPECT_EQ(a.qualities[i], b.qualities[i]);
  }
}

}  // namespace
}  // namespace veritas::sim
