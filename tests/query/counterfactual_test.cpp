#include "query/counterfactual.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "abr/abr_factory.hpp"
#include "net/network_path.hpp"
#include "query/experiment_setup.hpp"
#include "service/veritas_service.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/expects.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::query {
namespace {

video::Video short_video(std::size_t chunks = 90) {
  video::VideoConfig cfg = video::default_video_config();
  cfg.duration_s = double(chunks) * cfg.chunk_duration_s;
  return video::Video(cfg);
}

TEST(RunUnderSetting, IdentityReplayMatchesDirectRun) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const video::Video v = short_video();
  Setting s;  // mpc / 5 s / deployment ladder
  const sim::QoeMetrics a = run_under_setting(gtbw, v, s, 0.08, 1);
  const sim::QoeMetrics b = run_under_setting(gtbw, v, s, 0.08, 1);
  EXPECT_DOUBLE_EQ(a.mean_ssim, b.mean_ssim);
  EXPECT_DOUBLE_EQ(a.rebuffer_ratio_pct, b.rebuffer_ratio_pct);
}

TEST(RunUnderSetting, LadderOverrideApplies) {
  const auto gtbw = trace::BandwidthTrace::constant(6.0, 600.0, 5.0);
  const video::Video v = short_video();
  Setting high;
  high.ladder = video::high_ladder();
  const sim::QoeMetrics m = run_under_setting(gtbw, v, high, 0.08, 1);
  // The high ladder's floor is 2.5 Mbps: average bitrate must be >= 2.5.
  EXPECT_GE(m.avg_bitrate_mbps, 2.5);
}

TEST(RunUnderSetting, BufferOverrideApplies) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 51);
  const video::Video v = short_video();
  Setting small, large;
  small.buffer_capacity_s = 5.0;
  large.buffer_capacity_s = 30.0;
  const sim::QoeMetrics m_small = run_under_setting(traces[0], v, small, 0.08, 1);
  const sim::QoeMetrics m_large = run_under_setting(traces[0], v, large, 0.08, 1);
  // A larger buffer cannot increase rebuffering for MPC here.
  EXPECT_LE(m_large.rebuffer_ratio_pct, m_small.rebuffer_ratio_pct + 0.2);
}

TEST(CounterfactualEngine, OutcomeFieldsPopulated) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 53);
  const video::Video v = short_video();
  Setting a;
  Setting b;
  b.abr = "bba";
  const CounterfactualEngine engine;
  const CounterfactualOutcome outcome =
      engine.evaluate(traces[0], v, a, b, 1);
  EXPECT_EQ(outcome.veritas_samples.size(),
            engine.veritas_config().num_samples);
  EXPECT_GT(outcome.actual.mean_ssim, 0.8);
  EXPECT_GT(outcome.setting_a.mean_ssim, 0.8);
  EXPECT_GT(outcome.baseline.mean_ssim, 0.8);
}

TEST(CounterfactualEngine, LowHighBracketSamples) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 57);
  const video::Video v = short_video();
  Setting a, b;
  b.buffer_capacity_s = 30.0;
  const CounterfactualEngine engine;
  const CounterfactualOutcome outcome =
      engine.evaluate(traces[0], v, a, b, 2);
  EXPECT_LE(outcome.veritas_low.mean_ssim, outcome.veritas_high.mean_ssim);
  EXPECT_LE(outcome.veritas_low.rebuffer_ratio_pct,
            outcome.veritas_high.rebuffer_ratio_pct);
  // Low/high are order statistics of the samples: bounded by min/max.
  for (const auto& s : outcome.veritas_samples) {
    EXPECT_GE(s.mean_ssim, 0.0);
  }
}

TEST(CounterfactualEngine, SecondOrderStatisticWithFiveSamples) {
  // With K = 5, low is the 2nd smallest: at least one sample <= low and
  // at least one sample >= high.
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 59);
  const video::Video v = short_video();
  Setting a, b;
  b.abr = "bba";
  const CounterfactualEngine engine;
  const CounterfactualOutcome o = engine.evaluate(traces[0], v, a, b, 3);
  int below = 0, above = 0;
  for (const auto& s : o.veritas_samples) {
    below += s.mean_ssim <= o.veritas_low.mean_ssim + 1e-12;
    above += s.mean_ssim >= o.veritas_high.mean_ssim - 1e-12;
  }
  EXPECT_GE(below, 1);
  EXPECT_GE(above, 1);
}

TEST(CounterfactualEngine, DeterministicPerSeed) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 61);
  const video::Video v = short_video();
  Setting a, b;
  b.abr = "bola";
  const CounterfactualEngine engine;
  const auto o1 = engine.evaluate(traces[0], v, a, b, 7);
  const auto o2 = engine.evaluate(traces[0], v, a, b, 7);
  EXPECT_DOUBLE_EQ(o1.veritas_low.mean_ssim, o2.veritas_low.mean_ssim);
  EXPECT_DOUBLE_EQ(o1.baseline.rebuffer_ratio_pct,
                   o2.baseline.rebuffer_ratio_pct);
}

TEST(CounterfactualEngine, PredictWhatIfMatchesEvaluate) {
  // evaluate() must produce exactly the operator-side numbers that
  // predict_whatif() yields from the same log.
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 63);
  const video::Video v = short_video();
  Setting a, b;
  b.abr = "bba";
  const CounterfactualEngine engine;
  const auto full = engine.evaluate(traces[0], v, a, b, 5);

  // Recreate the deployment log the engine used internally.
  DeploymentConfig dc;
  dc.num_traces = 1;
  const net::NetworkPath path(traces[0], 0.08);
  auto abr = abr::make_abr(a.abr, 5);
  sim::SessionConfig sc;
  sc.buffer_capacity_s = a.buffer_capacity_s;
  const auto log = sim::run_session(v, *abr, path, sc).log;
  const auto operator_side = engine.predict_whatif(log, v, b, 5);

  EXPECT_DOUBLE_EQ(operator_side.baseline.mean_ssim,
                   full.baseline.mean_ssim);
  EXPECT_DOUBLE_EQ(operator_side.veritas_low.rebuffer_ratio_pct,
                   full.veritas_low.rebuffer_ratio_pct);
  EXPECT_DOUBLE_EQ(operator_side.veritas_high.mean_ssim,
                   full.veritas_high.mean_ssim);
}

TEST(CounterfactualEngine, PredictWhatIfNeedsNoGroundTruth) {
  // The signature itself proves it, but verify the output is sane for a
  // log whose GT trace we deliberately discard.
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 67);
  const video::Video v = short_video();
  const net::NetworkPath path(traces[0], 0.08);
  auto abr = abr::make_abr("mpc");
  const auto log = sim::run_session(v, *abr, path).log;

  Setting b;
  b.buffer_capacity_s = 30.0;
  const CounterfactualEngine engine;
  const auto p = engine.predict_whatif(log, v, b, 1);
  EXPECT_EQ(p.veritas_samples.size(), engine.veritas_config().num_samples);
  EXPECT_GT(p.veritas_low.mean_ssim, 0.85);
  EXPECT_LE(p.veritas_low.mean_ssim, p.veritas_high.mean_ssim);
}

TEST(CounterfactualEngine, ServiceBackedMatchesLocalBitForBit) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 71);
  const video::Video v = short_video();
  const net::NetworkPath path(traces[0], 0.08);
  auto abr = abr::make_abr("mpc");
  const auto log = sim::run_session(v, *abr, path).log;
  Setting b;
  b.abr = "bba";

  const core::VeritasConfig cfg;  // paper defaults
  const CounterfactualEngine local(cfg);
  auto service = std::make_shared<service::VeritasService>();
  service->add_shard("prod", cfg);
  const CounterfactualEngine backed(service, "prod");
  EXPECT_EQ(backed.veritas_config().sigma_mbps, cfg.sigma_mbps);

  for (const std::uint64_t seed : {0ULL, 5ULL}) {
    const auto expected = local.predict_whatif(log, v, b, seed);
    const auto actual = backed.predict_whatif(log, v, b, seed);
    EXPECT_EQ(actual.baseline.mean_ssim, expected.baseline.mean_ssim);
    EXPECT_EQ(actual.veritas_low.mean_ssim, expected.veritas_low.mean_ssim);
    EXPECT_EQ(actual.veritas_high.rebuffer_ratio_pct,
              expected.veritas_high.rebuffer_ratio_pct);
    EXPECT_EQ(actual.veritas_low.avg_bitrate_mbps,
              expected.veritas_low.avg_bitrate_mbps);
    ASSERT_EQ(actual.veritas_samples.size(), expected.veritas_samples.size());
    for (std::size_t k = 0; k < actual.veritas_samples.size(); ++k) {
      EXPECT_EQ(actual.veritas_samples[k].mean_ssim,
                expected.veritas_samples[k].mean_ssim);
    }
  }

  // The repeated what-if sweep hit the shard's cache: one abduction per
  // distinct (log, seed), not per call.
  const auto again = backed.predict_whatif(log, v, b, 5);
  EXPECT_EQ(again.veritas_low.mean_ssim,
            local.predict_whatif(log, v, b, 5).veritas_low.mean_ssim);
  EXPECT_GE(service->stats().cache_hits, 1u);
  EXPECT_EQ(service->stats().computed, 2u);  // seeds 0 and 5 only
}

TEST(ExperimentSetup, DeploymentProducesOneLogPerTrace) {
  DeploymentConfig cfg;
  cfg.num_traces = 3;
  const video::Video v = short_video();
  const auto logs = run_deployment(cfg, v);
  ASSERT_EQ(logs.size(), 3u);
  for (const auto& log : logs) EXPECT_EQ(log.size(), v.num_chunks());
}

TEST(ExperimentSetup, TraceCountEnvOverride) {
  // No env set in tests: fallback applies (fast mode may cap it).
  const std::size_t n = bench_trace_count(12);
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 12u);
}

}  // namespace
}  // namespace veritas::query
