#include "query/interventional.hpp"

#include <gtest/gtest.h>

#include "abr/abr_factory.hpp"
#include "net/network_path.hpp"
#include "query/experiment_setup.hpp"
#include "service/veritas_service.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/expects.hpp"
#include "util/stats.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::query {
namespace {

std::vector<sim::SessionLog> logs_for(const std::string& abr_name,
                                      std::size_t count, std::uint64_t seed,
                                      std::size_t chunks = 70) {
  video::VideoConfig vcfg = video::default_video_config();
  vcfg.duration_s = double(chunks) * vcfg.chunk_duration_s;
  const video::Video video(vcfg);
  const auto traces =
      trace::make_traces(trace::TraceFamily::kWideRange, count, seed);
  std::vector<sim::SessionLog> logs;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    auto abr = abr::make_abr(abr_name, seed + i);
    const net::NetworkPath path(traces[i], 0.08);
    logs.push_back(sim::run_session(video, *abr, path).log);
  }
  return logs;
}

ml::FuguConfig fast_fugu() {
  ml::FuguConfig cfg;
  cfg.epochs = 12;
  cfg.hidden = {32, 32};
  return cfg;
}

TEST(SummarizeErrors, SignedStatistics) {
  std::vector<PredictionRecord> records;
  for (int i = 0; i < 10; ++i) {
    PredictionRecord r;
    r.true_time_s = 10.0;
    r.fugu_time_s = 10.0 - double(i);       // underestimates grow
    r.veritas_time_s = 10.0 + 0.5;          // constant overestimate
    records.push_back(r);
  }
  const PredictorErrors fugu = summarize_errors(records, false);
  EXPECT_DOUBLE_EQ(fugu.worst_underestimate_s, 9.0);
  EXPECT_DOUBLE_EQ(fugu.worst_overestimate_s, 0.0);
  EXPECT_LT(fugu.median_error_s, 0.0);
  const PredictorErrors veritas = summarize_errors(records, true);
  EXPECT_DOUBLE_EQ(veritas.worst_underestimate_s, 0.0);
  EXPECT_DOUBLE_EQ(veritas.mean_abs_error_s, 0.5);
}

TEST(SummarizeErrors, RejectsEmpty) {
  EXPECT_THROW(summarize_errors({}, true), veritas::ContractViolation);
}

TEST(InterventionalStudy, ProducesRecordsForEveryEligibleChunk) {
  const auto train = logs_for("mpc", 4, 81);
  const auto test = logs_for("random", 2, 97);
  const InterventionalResult result =
      run_interventional_study(train, test, core::VeritasConfig{},
                               fast_fugu());
  // Each test session contributes (chunks - warmup) records.
  const std::size_t expected =
      2 * (test[0].size() - fast_fugu().past_chunks);
  EXPECT_EQ(result.records.size(), expected);
  for (const auto& r : result.records) {
    EXPECT_GT(r.true_time_s, 0.0);
    EXPECT_GT(r.fugu_time_s, 0.0);
    EXPECT_GT(r.veritas_time_s, 0.0);
  }
}

TEST(InterventionalStudy, VeritasBeatsFuguOffPolicy) {
  // The paper's Fig. 12 claim: on random-ABR test sessions (off the MPC
  // training distribution), Veritas's causal predictions beat Fugu's
  // associational ones.
  const auto train = logs_for("mpc", 8, 83);
  const auto test = logs_for("random", 4, 89);
  const InterventionalResult result =
      run_interventional_study(train, test, core::VeritasConfig{},
                               fast_fugu());
  EXPECT_LT(result.veritas.mean_abs_error_s, result.fugu.mean_abs_error_s);
}

TEST(InterventionalStudy, FuguHasUnderestimationTailVeritasDoesNot) {
  // The paper's §6 headline: Fugu underestimates download times for 10%
  // of chunks by several seconds (worst case tens of seconds), while
  // Veritas predicts close to the truth.
  const auto train = logs_for("mpc", 8, 83);
  const auto test = logs_for("random", 4, 89);
  const InterventionalResult result =
      run_interventional_study(train, test, core::VeritasConfig{},
                               fast_fugu());
  // Clear underestimation tail for the associational predictor...
  EXPECT_LT(result.fugu.p10_error_s, -0.5);
  EXPECT_GT(result.fugu.worst_underestimate_s, 5.0);
  // ...which Veritas largely avoids.
  EXPECT_GT(result.veritas.p10_error_s, result.fugu.p10_error_s / 2.0);
  EXPECT_LT(result.veritas.worst_underestimate_s,
            result.fugu.worst_underestimate_s);
}

TEST(InterventionalStudy, ServiceRoutedMatchesDirectBitForBit) {
  const auto train = logs_for("mpc", 3, 81, 40);
  const auto test = logs_for("random", 2, 97, 40);
  const core::VeritasConfig cfg;

  const InterventionalResult direct =
      run_interventional_study(train, test, cfg, fast_fugu());

  service::VeritasService service;
  service.add_shard("prod", cfg);
  const InterventionalResult routed =
      run_interventional_study(service, "prod", train, test, fast_fugu());

  ASSERT_EQ(routed.records.size(), direct.records.size());
  for (std::size_t i = 0; i < routed.records.size(); ++i) {
    EXPECT_EQ(routed.records[i].session, direct.records[i].session);
    EXPECT_EQ(routed.records[i].chunk, direct.records[i].chunk);
    EXPECT_EQ(routed.records[i].veritas_time_s,
              direct.records[i].veritas_time_s);
    EXPECT_EQ(routed.records[i].fugu_time_s, direct.records[i].fugu_time_s);
  }
  EXPECT_EQ(routed.veritas.mean_abs_error_s, direct.veritas.mean_abs_error_s);
  EXPECT_EQ(service.stats().computed, test.size());  // one query per session

  // Running the study again is answered from the shard's cache.
  (void)run_interventional_study(service, "prod", train, test, fast_fugu());
  EXPECT_EQ(service.stats().computed, test.size());
  EXPECT_GE(service.stats().cache_hits, test.size());
}

TEST(InterventionalStudy, RejectsEmptyInputs) {
  const auto train = logs_for("mpc", 1, 91);
  EXPECT_THROW(run_interventional_study({}, train), veritas::ContractViolation);
  EXPECT_THROW(run_interventional_study(train, {}), veritas::ContractViolation);
}

}  // namespace
}  // namespace veritas::query
