// Integration tests asserting the *shape* of the paper's headline
// results at reduced scale: who wins, in which direction, with sane
// magnitudes. The full-scale regenerations live in bench/.
#include <gtest/gtest.h>

#include "query/counterfactual.hpp"
#include "query/experiment_setup.hpp"
#include "trace/trace_generator.hpp"
#include "util/stats.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::query {
namespace {

struct Medians {
  double gt_rebuffer = 0.0, baseline_rebuffer = 0.0;
  double veritas_low_rebuffer = 0.0, veritas_high_rebuffer = 0.0;
  double gt_ssim = 0.0, baseline_ssim = 0.0;
  double veritas_low_ssim = 0.0, veritas_high_ssim = 0.0;
};

Medians run_counterfactual(const Setting& setting_b, std::size_t traces_n,
                           std::uint64_t seed) {
  const auto traces =
      trace::make_traces(trace::TraceFamily::kFccLike, traces_n, seed);
  const video::Video video(video::default_video_config());
  const Setting setting_a;  // mpc / 5 s / default ladder
  const CounterfactualEngine engine;

  std::vector<double> gt_reb, base_reb, vlo_reb, vhi_reb;
  std::vector<double> gt_ssim, base_ssim, vlo_ssim, vhi_ssim;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const CounterfactualOutcome o =
        engine.evaluate(traces[i], video, setting_a, setting_b, i);
    gt_reb.push_back(o.actual.rebuffer_ratio_pct);
    base_reb.push_back(o.baseline.rebuffer_ratio_pct);
    vlo_reb.push_back(o.veritas_low.rebuffer_ratio_pct);
    vhi_reb.push_back(o.veritas_high.rebuffer_ratio_pct);
    gt_ssim.push_back(o.actual.mean_ssim);
    base_ssim.push_back(o.baseline.mean_ssim);
    vlo_ssim.push_back(o.veritas_low.mean_ssim);
    vhi_ssim.push_back(o.veritas_high.mean_ssim);
  }
  Medians m;
  m.gt_rebuffer = util::median(gt_reb);
  m.baseline_rebuffer = util::median(base_reb);
  m.veritas_low_rebuffer = util::median(vlo_reb);
  m.veritas_high_rebuffer = util::median(vhi_reb);
  m.gt_ssim = util::median(gt_ssim);
  m.baseline_ssim = util::median(base_ssim);
  m.veritas_low_ssim = util::median(vlo_ssim);
  m.veritas_high_ssim = util::median(vhi_ssim);
  return m;
}

TEST(PaperShape, Fig9AbrChangeBaselinePessimisticVeritasClose) {
  Setting bba;
  bba.abr = "bba";
  const Medians m = run_counterfactual(bba, 8, 2024);
  // Baseline over-predicts rebuffering by a wide margin...
  EXPECT_GT(m.baseline_rebuffer, m.gt_rebuffer + 1.0);
  // ...while Veritas's bracket stays near the truth.
  EXPECT_LT(m.veritas_high_rebuffer, m.baseline_rebuffer / 2.0);
  // Baseline underestimates SSIM; Veritas does not underestimate more.
  EXPECT_LT(m.baseline_ssim, m.gt_ssim);
  EXPECT_GE(m.veritas_high_ssim, m.baseline_ssim);
}

TEST(PaperShape, Fig11HighQualitiesHeadline) {
  Setting high;
  high.ladder = video::high_ladder();
  const Medians m = run_counterfactual(high, 8, 4048);
  // Paper §4.3: GT and Veritas rebuffering ~0; Baseline median ~6.7%.
  EXPECT_LT(m.gt_rebuffer, 0.5);
  EXPECT_LT(m.veritas_high_rebuffer, 1.0);
  EXPECT_GT(m.baseline_rebuffer, 2.0);
}

TEST(PaperShape, Fig10BufferIncreaseWellPredicted) {
  Setting large;
  large.buffer_capacity_s = 30.0;
  const Medians m = run_counterfactual(large, 6, 6072);
  // Truth: bigger buffer, negligible rebuffering.
  EXPECT_LT(m.gt_rebuffer, 0.5);
  // Veritas close to GT on both metrics.
  EXPECT_LT(m.veritas_high_rebuffer, m.gt_rebuffer + 1.0);
  EXPECT_NEAR(m.veritas_low_ssim, m.gt_ssim, 0.01);
  // Baseline underestimates SSIM (conservative bandwidth estimate).
  EXPECT_LE(m.baseline_ssim, m.gt_ssim + 1e-12);
}

TEST(PaperShape, Fig8BbaMoreAggressiveThanMpc) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 8, 88);
  const video::Video video(video::default_video_config());
  std::vector<double> mpc_ssim, bba_ssim, mpc_reb, bba_reb;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    Setting mpc;
    Setting bba;
    bba.abr = "bba";
    const auto m_mpc = run_under_setting(traces[i], video, mpc, 0.08, i);
    const auto m_bba = run_under_setting(traces[i], video, bba, 0.08, i);
    mpc_ssim.push_back(m_mpc.mean_ssim);
    bba_ssim.push_back(m_bba.mean_ssim);
    mpc_reb.push_back(m_mpc.rebuffer_ratio_pct);
    bba_reb.push_back(m_bba.rebuffer_ratio_pct);
  }
  // BBA: higher quality, more rebuffering (paper Fig. 8).
  EXPECT_GT(util::median(bba_ssim), util::median(mpc_ssim));
  EXPECT_GE(util::median(bba_reb), util::median(mpc_reb));
}

}  // namespace
}  // namespace veritas::query
