// Cross-cutting property sweeps (TEST_P) over the configuration grid:
// the invariants every (trace family x ABR x buffer x CC) combination
// must satisfy, end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "abr/abr_factory.hpp"
#include "core/veritas.hpp"
#include "net/network_path.hpp"
#include "sim/metrics.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "video/ladder_presets.hpp"

namespace veritas {
namespace {

struct SweepCase {
  trace::TraceFamily family;
  const char* abr;
  double buffer_s;
  net::CongestionControl cc;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = trace::family_name(info.param.family);
  name += "_";
  name += info.param.abr;
  name += "_b";
  name += std::to_string(int(info.param.buffer_s));
  name += info.param.cc == net::CongestionControl::kBbrLike ? "_bbr" : "_cubic";
  // gtest names must be alphanumeric.
  for (char& c : name) {
    if (c == ':') c = '_';
  }
  return name;
}

class SessionSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  sim::SessionResult run(std::size_t chunks = 80) {
    const SweepCase& param = GetParam();
    video::VideoConfig vcfg = video::default_video_config();
    vcfg.duration_s = double(chunks) * vcfg.chunk_duration_s;
    const video::Video video(vcfg);
    const auto traces = trace::make_traces(param.family, 1, 1234);
    net::TcpConfig tcp;
    tcp.congestion_control = param.cc;
    const net::NetworkPath path(traces[0], 0.08, tcp);
    auto abr = abr::make_abr(param.abr, 5);
    sim::SessionConfig cfg;
    cfg.buffer_capacity_s = param.buffer_s;
    video_ = video;
    return sim::run_session(video, *abr, path, cfg);
  }

  std::optional<video::Video> video_;
};

TEST_P(SessionSweep, LogInvariantsHold) {
  const sim::SessionResult result = run();
  double prev_end = 0.0;
  for (const sim::ChunkLog& c : result.log.chunks) {
    EXPECT_GT(c.end_s, c.start_s);
    EXPECT_GE(c.start_s, prev_end - 1e-9);
    EXPECT_GT(c.size_bytes, 0.0);
    EXPECT_TRUE(std::isfinite(c.throughput_mbps()));
    EXPECT_GT(c.throughput_mbps(), 0.0);
    EXPECT_GE(c.tcp_at_start.cwnd_segments, 1.0);
    EXPECT_GE(c.tcp_at_start.last_send_gap_s, 0.0);
    prev_end = c.end_s;
  }
}

TEST_P(SessionSweep, MetricsInValidRanges) {
  const sim::SessionResult result = run();
  const sim::QoeMetrics m = sim::compute_metrics(*video_, result);
  EXPECT_GT(m.mean_ssim, 0.85);
  EXPECT_LT(m.mean_ssim, 1.0);
  EXPECT_GE(m.rebuffer_ratio_pct, 0.0);
  EXPECT_LT(m.rebuffer_ratio_pct, 100.0);
  EXPECT_GE(m.avg_bitrate_mbps, video_->bitrate_mbps(0) - 1e-9);
  EXPECT_LE(m.avg_bitrate_mbps,
            video_->bitrate_mbps(video_->num_qualities() - 1) + 1e-9);
  EXPECT_GE(m.startup_delay_s, 0.0);
  EXPECT_LT(m.quality_switches, result.qualities.size());
}

TEST_P(SessionSweep, InferenceProducesValidTraces) {
  const sim::SessionResult result = run();
  core::VeritasConfig cfg;
  net::TcpConfig tcp;
  tcp.congestion_control = GetParam().cc;
  cfg.tcp = tcp;
  cfg.num_samples = 3;
  const core::Veritas veritas(cfg);
  const core::VeritasResult inference = veritas.infer(result.log);
  auto check_trace = [&](const trace::BandwidthTrace& t) {
    EXPECT_GE(t.duration_s(), result.log.chunks.back().end_s - cfg.delta_s);
    for (const double v : t.values_mbps()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, cfg.max_mbps + 1e-9);
      EXPECT_TRUE(std::isfinite(v));
    }
  };
  check_trace(inference.map_trace);
  for (const auto& sample : inference.samples) check_trace(sample);
  EXPECT_TRUE(std::isfinite(inference.log_likelihood));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SessionSweep,
    ::testing::Values(
        SweepCase{trace::TraceFamily::kFccLike, "mpc", 5.0,
                  net::CongestionControl::kCubicLike},
        SweepCase{trace::TraceFamily::kFccLike, "bba", 5.0,
                  net::CongestionControl::kCubicLike},
        SweepCase{trace::TraceFamily::kFccLike, "bola", 5.0,
                  net::CongestionControl::kCubicLike},
        SweepCase{trace::TraceFamily::kFccLike, "rate_based", 5.0,
                  net::CongestionControl::kCubicLike},
        SweepCase{trace::TraceFamily::kFccLike, "random", 5.0,
                  net::CongestionControl::kCubicLike},
        SweepCase{trace::TraceFamily::kFccLike, "mpc", 30.0,
                  net::CongestionControl::kCubicLike},
        SweepCase{trace::TraceFamily::kFccLike, "mpc", 5.0,
                  net::CongestionControl::kBbrLike},
        SweepCase{trace::TraceFamily::kPoor, "mpc", 5.0,
                  net::CongestionControl::kCubicLike},
        SweepCase{trace::TraceFamily::kGood, "bba", 5.0,
                  net::CongestionControl::kCubicLike},
        SweepCase{trace::TraceFamily::kWideRange, "random", 5.0,
                  net::CongestionControl::kCubicLike},
        SweepCase{trace::TraceFamily::kSquareWave, "mpc", 5.0,
                  net::CongestionControl::kCubicLike},
        SweepCase{trace::TraceFamily::kSquareWave, "bola", 30.0,
                  net::CongestionControl::kBbrLike},
        SweepCase{trace::TraceFamily::kConstant4, "rate_based", 5.0,
                  net::CongestionControl::kCubicLike},
        SweepCase{trace::TraceFamily::kConstant4, "mpc", 5.0,
                  net::CongestionControl::kBbrLike}),
    case_name);

// Hyperparameter sweep: inference stays sane across (ε, σ) settings.
struct HyperCase {
  double epsilon, sigma;
};

class HyperSweep : public ::testing::TestWithParam<HyperCase> {};

TEST_P(HyperSweep, ConstantBandwidthRecoveredWithinEpsilon) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 400.0, 5.0);
  video::VideoConfig vcfg = video::default_video_config();
  vcfg.duration_s = 200.0;
  const video::Video video(vcfg);
  auto abr = abr::make_abr("mpc");
  const net::NetworkPath path(gtbw, 0.08);
  const auto log = sim::run_session(video, *abr, path).log;

  core::VeritasConfig cfg;
  cfg.epsilon_mbps = GetParam().epsilon;
  cfg.sigma_mbps = GetParam().sigma;
  const core::Veritas veritas(cfg);
  const auto result = veritas.infer(log);
  EXPECT_LT(gtbw.mean_abs_diff_mbps(result.map_trace),
            std::max(1.0, 2.0 * GetParam().epsilon))
      << "epsilon " << GetParam().epsilon << " sigma " << GetParam().sigma;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HyperSweep,
    ::testing::Values(HyperCase{0.25, 0.5}, HyperCase{0.5, 0.25},
                      HyperCase{0.5, 0.5}, HyperCase{0.5, 1.0},
                      HyperCase{1.0, 0.5}, HyperCase{2.0, 0.5},
                      HyperCase{1.0, 2.0}));

}  // namespace
}  // namespace veritas
