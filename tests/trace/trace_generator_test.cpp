#include "trace/trace_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace veritas::trace {
namespace {

TEST(MarkovTrace, DeterministicInSeed) {
  MarkovTraceConfig cfg;
  const BandwidthTrace a = markov_trace(cfg, 5);
  const BandwidthTrace b = markov_trace(cfg, 5);
  EXPECT_DOUBLE_EQ(a.mean_abs_diff_mbps(b), 0.0);
}

TEST(MarkovTrace, DifferentSeedsDiffer) {
  MarkovTraceConfig cfg;
  const BandwidthTrace a = markov_trace(cfg, 1);
  const BandwidthTrace b = markov_trace(cfg, 2);
  EXPECT_GT(a.mean_abs_diff_mbps(b), 0.0);
}

TEST(MarkovTrace, RespectsBounds) {
  MarkovTraceConfig cfg;
  cfg.min_mbps = 1.0;
  cfg.max_mbps = 2.5;
  const BandwidthTrace t = markov_trace(cfg, 3);
  for (const double v : t.values_mbps()) {
    EXPECT_GE(v, cfg.min_mbps);
    EXPECT_LE(v, cfg.max_mbps);
  }
}

TEST(MarkovTrace, ValuesOnGrid) {
  MarkovTraceConfig cfg;
  cfg.grid_mbps = 0.5;
  const BandwidthTrace t = markov_trace(cfg, 4);
  for (const double v : t.values_mbps()) {
    const double steps = v / cfg.grid_mbps;
    EXPECT_NEAR(steps, std::round(steps), 1e-9);
  }
}

TEST(MarkovTrace, CorrectWindowCount) {
  MarkovTraceConfig cfg;
  cfg.duration_s = 600.0;
  cfg.interval_s = 5.0;
  EXPECT_EQ(markov_trace(cfg, 1).windows(), 120u);
}

TEST(RegimeTrace, RespectsAbsoluteBounds) {
  RegimeTraceConfig cfg;
  cfg.absolute_min_mbps = 2.0;
  cfg.absolute_max_mbps = 8.0;
  const BandwidthTrace t = regime_trace(cfg, 7);
  for (const double v : t.values_mbps()) {
    EXPECT_GE(v, 2.0);
    EXPECT_LE(v, 8.0);
  }
}

TEST(RegimeTrace, VisitsBothRegimes) {
  RegimeTraceConfig cfg;
  cfg.low_mbps = 2.5;
  cfg.high_mbps = 6.5;
  const BandwidthTrace t = regime_trace(cfg, 11);
  bool saw_low = false, saw_high = false;
  for (const double v : t.values_mbps()) {
    saw_low |= v < 4.0;
    saw_high |= v > 5.0;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(RegimeTrace, HasPlateaus) {
  RegimeTraceConfig cfg;
  cfg.mean_dwell_s = 60.0;
  const BandwidthTrace t = regime_trace(cfg, 13);
  // With 60 s dwell and 5 s windows, most adjacent windows should be
  // within one jitter step of each other.
  std::size_t small_moves = 0;
  const auto values = t.values_mbps();
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (std::abs(values[i] - values[i - 1]) <= cfg.grid_mbps + 1e-12) {
      ++small_moves;
    }
  }
  EXPECT_GT(static_cast<double>(small_moves) /
                static_cast<double>(values.size() - 1),
            0.8);
}

TEST(SquareWave, AlternatesAtPeriod) {
  const BandwidthTrace t = square_wave_trace(1.0, 5.0, 10.0, 40.0, 1.0);
  EXPECT_DOUBLE_EQ(t.at(0.5), 5.0);   // first half-period high
  EXPECT_DOUBLE_EQ(t.at(10.5), 1.0);  // second half-period low
  EXPECT_DOUBLE_EQ(t.at(20.5), 5.0);
  EXPECT_DOUBLE_EQ(t.at(30.5), 1.0);
}

TEST(MakeTraces, CountAndDeterminism) {
  const auto a = make_traces(TraceFamily::kFccLike, 5, 99);
  const auto b = make_traces(TraceFamily::kFccLike, 5, 99);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean_abs_diff_mbps(b[i]), 0.0);
  }
}

TEST(MakeTraces, TracesWithinFamilyDiffer) {
  const auto traces = make_traces(TraceFamily::kFccLike, 3, 123);
  EXPECT_GT(traces[0].mean_abs_diff_mbps(traces[1]), 0.0);
  EXPECT_GT(traces[1].mean_abs_diff_mbps(traces[2]), 0.0);
}

struct FamilyRange {
  TraceFamily family;
  double min, max;
};

class FamilyBounds : public ::testing::TestWithParam<FamilyRange> {};

TEST_P(FamilyBounds, AllValuesInRange) {
  const auto param = GetParam();
  const auto traces = make_traces(param.family, 4, 7);
  for (const auto& t : traces) {
    for (const double v : t.values_mbps()) {
      EXPECT_GE(v, param.min) << family_name(param.family);
      EXPECT_LE(v, param.max) << family_name(param.family);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilyBounds,
    ::testing::Values(FamilyRange{TraceFamily::kFccLike, 2.0, 8.0},
                      FamilyRange{TraceFamily::kPoor, 0.0, 0.3},
                      FamilyRange{TraceFamily::kGood, 9.0, 10.0},
                      FamilyRange{TraceFamily::kWideRange, 0.5, 10.0},
                      FamilyRange{TraceFamily::kSquareWave, 1.0, 6.0},
                      FamilyRange{TraceFamily::kConstant4, 4.0, 4.0}));

TEST(FamilyName, AllNamed) {
  EXPECT_STREQ(family_name(TraceFamily::kFccLike), "fcc_like");
  EXPECT_STREQ(family_name(TraceFamily::kPoor), "poor");
  EXPECT_STREQ(family_name(TraceFamily::kGood), "good");
  EXPECT_STREQ(family_name(TraceFamily::kWideRange), "wide_range");
  EXPECT_STREQ(family_name(TraceFamily::kSquareWave), "square_wave");
  EXPECT_STREQ(family_name(TraceFamily::kConstant4), "constant_4");
}

}  // namespace
}  // namespace veritas::trace
