#include "trace/bandwidth_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/expects.hpp"

namespace veritas::trace {
namespace {

TEST(BandwidthTrace, BasicAccessors) {
  const BandwidthTrace t(5.0, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.interval_s(), 5.0);
  EXPECT_EQ(t.windows(), 3u);
  EXPECT_DOUBLE_EQ(t.duration_s(), 15.0);
}

TEST(BandwidthTrace, AtPicksWindow) {
  const BandwidthTrace t(5.0, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(4.999), 1.0);
  EXPECT_DOUBLE_EQ(t.at(5.0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(14.0), 3.0);
}

TEST(BandwidthTrace, HoldsLastValuePastEnd) {
  const BandwidthTrace t(5.0, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(t.at(1000.0), 2.0);
}

TEST(BandwidthTrace, RejectsBadConstruction) {
  EXPECT_THROW(BandwidthTrace(0.0, {1.0}), veritas::ContractViolation);
  EXPECT_THROW(BandwidthTrace(1.0, {}), veritas::ContractViolation);
  EXPECT_THROW(BandwidthTrace(1.0, {-1.0}), veritas::ContractViolation);
}

TEST(BandwidthTrace, ConstantFactory) {
  const BandwidthTrace t = BandwidthTrace::constant(4.0, 10.0, 2.0);
  EXPECT_EQ(t.windows(), 5u);
  EXPECT_DOUBLE_EQ(t.at(7.0), 4.0);
}

TEST(BandwidthTrace, IntegrateWithinOneWindow) {
  const BandwidthTrace t(5.0, {2.0, 4.0});
  EXPECT_DOUBLE_EQ(t.integrate_mbit(1.0, 3.0), 4.0);  // 2 Mbps * 2 s
}

TEST(BandwidthTrace, IntegrateAcrossWindows) {
  const BandwidthTrace t(5.0, {2.0, 4.0});
  // [3, 7]: 2s at 2 Mbps + 2s at 4 Mbps = 12 Mbit.
  EXPECT_DOUBLE_EQ(t.integrate_mbit(3.0, 7.0), 12.0);
}

TEST(BandwidthTrace, IntegratePastEndUsesLastValue) {
  const BandwidthTrace t(5.0, {2.0, 4.0});
  EXPECT_DOUBLE_EQ(t.integrate_mbit(10.0, 12.0), 8.0);
}

TEST(BandwidthTrace, IntegrateEmptyIntervalIsZero) {
  const BandwidthTrace t(5.0, {2.0});
  EXPECT_DOUBLE_EQ(t.integrate_mbit(3.0, 3.0), 0.0);
}

TEST(BandwidthTrace, AverageMbps) {
  const BandwidthTrace t(5.0, {2.0, 4.0});
  EXPECT_DOUBLE_EQ(t.average_mbps(0.0, 10.0), 3.0);
}

TEST(BandwidthTrace, TimeToTransferSimple) {
  const BandwidthTrace t(5.0, {8.0});
  // 8 Mbps, 4 Mbit -> 0.5 s.
  EXPECT_DOUBLE_EQ(t.time_to_transfer_s(4.0, 0.0), 0.5);
}

TEST(BandwidthTrace, TimeToTransferAcrossWindows) {
  const BandwidthTrace t(1.0, {1.0, 10.0});
  // 1 Mbit in window 0 takes the whole 1 s (capacity exactly 1 Mbit);
  // then 5 Mbit at 10 Mbps takes 0.5 s.
  EXPECT_NEAR(t.time_to_transfer_s(6.0, 0.0), 1.5, 1e-12);
}

TEST(BandwidthTrace, TimeToTransferZeroTailIsInfinite) {
  const BandwidthTrace t(1.0, {1.0, 0.0});
  EXPECT_EQ(t.time_to_transfer_s(5.0, 0.0),
            std::numeric_limits<double>::infinity());
}

TEST(BandwidthTrace, TimeToTransferZeroBits) {
  const BandwidthTrace t(1.0, {1.0});
  EXPECT_DOUBLE_EQ(t.time_to_transfer_s(0.0, 3.0), 0.0);
}

TEST(BandwidthTrace, ResampleCoarser) {
  const BandwidthTrace t(1.0, {2.0, 4.0, 6.0, 8.0});
  const BandwidthTrace r = t.resampled(2.0);
  EXPECT_EQ(r.windows(), 2u);
  EXPECT_DOUBLE_EQ(r.at(0.5), 3.0);
  EXPECT_DOUBLE_EQ(r.at(2.5), 7.0);
}

TEST(BandwidthTrace, ResampleFiner) {
  const BandwidthTrace t(2.0, {2.0, 4.0});
  const BandwidthTrace r = t.resampled(1.0);
  EXPECT_EQ(r.windows(), 4u);
  EXPECT_DOUBLE_EQ(r.at(0.5), 2.0);
  EXPECT_DOUBLE_EQ(r.at(3.5), 4.0);
}

TEST(BandwidthTrace, MeanAbsDiffZeroForSelf) {
  const BandwidthTrace t(5.0, {1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(t.mean_abs_diff_mbps(t), 0.0);
}

TEST(BandwidthTrace, MeanAbsDiffConstantOffset) {
  const BandwidthTrace a = BandwidthTrace::constant(3.0, 100.0);
  const BandwidthTrace b = BandwidthTrace::constant(5.0, 100.0);
  EXPECT_NEAR(a.mean_abs_diff_mbps(b), 2.0, 1e-12);
}

TEST(BandwidthTrace, WindowIndexClamped) {
  const BandwidthTrace t(5.0, {1.0, 2.0});
  EXPECT_EQ(t.window_index(100.0), 1u);
}

}  // namespace
}  // namespace veritas::trace
