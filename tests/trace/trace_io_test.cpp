#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/trace_generator.hpp"

namespace veritas::trace {
namespace {

TEST(TraceCsv, RoundTrip) {
  const BandwidthTrace t(5.0, {1.0, 2.5, 0.5});
  const BandwidthTrace r = from_csv(to_csv(t));
  EXPECT_DOUBLE_EQ(r.interval_s(), 5.0);
  EXPECT_EQ(r.windows(), 3u);
  EXPECT_DOUBLE_EQ(t.mean_abs_diff_mbps(r), 0.0);
}

TEST(TraceCsv, SingleWindow) {
  const BandwidthTrace t(2.0, {3.0});
  const BandwidthTrace r = from_csv(to_csv(t));
  EXPECT_EQ(r.windows(), 1u);
  EXPECT_DOUBLE_EQ(r.at(0.0), 3.0);
}

TEST(TraceCsv, GeneratedTraceRoundTrip) {
  MarkovTraceConfig cfg;
  const BandwidthTrace t = markov_trace(cfg, 21);
  const BandwidthTrace r = from_csv(to_csv(t));
  EXPECT_DOUBLE_EQ(t.mean_abs_diff_mbps(r), 0.0);
}

TEST(TraceCsv, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "veritas_trace_io_test.csv";
  const BandwidthTrace t(1.0, {4.0, 5.0});
  write_csv_file(t, path);
  const BandwidthTrace r = read_csv_file(path);
  EXPECT_DOUBLE_EQ(t.mean_abs_diff_mbps(r), 0.0);
  std::filesystem::remove(path);
}

TEST(TraceCsv, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/veritas.csv"), std::runtime_error);
}

TEST(Mahimahi, ConstantRateRoundTrip) {
  // 12 Mbps = 1 x 1500B packet per ms exactly.
  const BandwidthTrace t = BandwidthTrace::constant(12.0, 10.0, 1.0);
  const std::string text = to_mahimahi(t);
  const BandwidthTrace r = from_mahimahi(text, 1.0);
  EXPECT_NEAR(r.average_mbps(0.0, 10.0), 12.0, 0.1);
}

TEST(Mahimahi, LowRateAccumulatesCredit) {
  // 0.6 Mbps = one packet every 20 ms; binning at 1 s must see ~50 pkts.
  const BandwidthTrace t = BandwidthTrace::constant(0.6, 5.0, 1.0);
  const BandwidthTrace r = from_mahimahi(to_mahimahi(t), 1.0);
  EXPECT_NEAR(r.average_mbps(0.0, 5.0), 0.6, 0.05);
}

TEST(Mahimahi, VaryingRatePreservesShape) {
  const BandwidthTrace t(1.0, {2.0, 8.0, 2.0});
  const BandwidthTrace r = from_mahimahi(to_mahimahi(t), 1.0);
  EXPECT_NEAR(r.at(0.5), 2.0, 0.3);
  EXPECT_NEAR(r.at(1.5), 8.0, 0.3);
  EXPECT_NEAR(r.at(2.5), 2.0, 0.3);
}

TEST(Mahimahi, TimestampsAreSorted) {
  const BandwidthTrace t(1.0, {1.0, 6.0});
  const std::string text = to_mahimahi(t);
  long long prev = 0;
  for (std::size_t pos = 0; pos < text.size();) {
    const std::size_t eol = text.find('\n', pos);
    const long long ms = std::stoll(text.substr(pos, eol - pos));
    EXPECT_GE(ms, prev);
    prev = ms;
    pos = eol + 1;
  }
}

}  // namespace
}  // namespace veritas::trace
