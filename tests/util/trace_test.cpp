// Tracer: ring-buffer wraparound and drop accounting, Chrome
// trace-event JSON shape, the slow-query log, thread-local query
// attribution (ScopedQueryId nesting), RAII spans in enabled and
// disabled states, and concurrent recording (run under TSan in CI).
//
// The Tracer class itself is compiled in every build; only the macro
// sites fold away under -DVERITAS_TRACING=OFF. Tests that need
// enabled() == true skip when the subsystem is compiled out, the rest
// drive record() directly and run everywhere.
#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace {

using veritas::util::ScopedQueryId;
using veritas::util::TraceSpan;
using veritas::util::Tracer;

/// The tracer is process-global; reset it around every test so suites
/// that trace (CLI serve, service metrics) can run in any order.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    Tracer::set_enabled(false);
    Tracer::set_slow_query_threshold_us(0);
    Tracer::set_capacity(Tracer::kDefaultCapacity);
    Tracer::clear();
  }

  static Tracer::Event make_event(const char* name, std::uint64_t query,
                                  std::uint64_t start_ns,
                                  std::uint64_t dur_ns, bool root = false) {
    Tracer::Event event;
    event.name = name;
    event.category = "test";
    event.query_id = query;
    event.start_ns = start_ns;
    event.duration_ns = dur_ns;
    event.thread_id = Tracer::thread_id();
    event.root = root;
    return event;
  }
};

TEST_F(TracerTest, RingKeepsNewestAndCountsDropped) {
  Tracer::set_capacity(4);
  static const char* const kNames[] = {"e0", "e1", "e2", "e3",
                                       "e4", "e5", "e6"};
  for (std::uint64_t i = 0; i < 7; ++i) {
    Tracer::record(make_event(kNames[i], i, i * 10, 1));
  }
  // Capacity 4, 7 recorded: the oldest 3 were overwritten.
  EXPECT_EQ(Tracer::dropped(), 3u);
  const std::vector<Tracer::Event> events = Tracer::events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_STREQ(events[i].name, kNames[3 + i]);  // oldest first
    EXPECT_EQ(events[i].query_id, 3 + i);
  }
}

TEST_F(TracerTest, PartialRingIsOldestFirstWithNoDrops) {
  Tracer::set_capacity(8);
  Tracer::record(make_event("a", 1, 0, 1));
  Tracer::record(make_event("b", 2, 5, 1));
  EXPECT_EQ(Tracer::dropped(), 0u);
  const std::vector<Tracer::Event> events = Tracer::events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
}

TEST_F(TracerTest, ClearDropsEventsAndResetsDropCounter) {
  Tracer::set_capacity(2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    Tracer::record(make_event("x", i, 0, 1));
  }
  EXPECT_EQ(Tracer::dropped(), 3u);
  Tracer::clear();
  EXPECT_EQ(Tracer::dropped(), 0u);
  EXPECT_TRUE(Tracer::events().empty());
}

TEST_F(TracerTest, ChromeTraceJsonShape) {
  // 1500 ns start / 2500 ns duration exercise the sub-µs formatting:
  // ts and dur are µs with three fractional digits.
  Tracer::record(make_event("ehmm.forward", 7, 1500, 2500));
  const std::string json = Tracer::chrome_trace_json();
  EXPECT_NE(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ehmm.forward\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"query\":7}"), std::string::npos);
  // Valid JSON even when empty.
  Tracer::clear();
  EXPECT_EQ(Tracer::chrome_trace_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

TEST_F(TracerTest, SlowQueryLogRetainsOnlySlowRootSpans) {
  Tracer::set_slow_query_threshold_us(10);  // 10 µs
  Tracer::record(make_event("service.execute", 1, 0, 5'000, true));
  Tracer::record(make_event("service.execute", 2, 0, 50'000, true));
  Tracer::record(make_event("ehmm.forward", 3, 0, 50'000, false));
  const std::vector<Tracer::Event> slow = Tracer::slow_queries();
  ASSERT_EQ(slow.size(), 1u);  // only the slow *root* span
  EXPECT_EQ(slow[0].query_id, 2u);
  const std::string log = Tracer::slow_query_log();
  EXPECT_NE(log.find("slow-query name=service.execute query=2 "
                     "dur_ms=0.050"),
            std::string::npos);
}

TEST_F(TracerTest, ZeroThresholdDisablesSlowLog) {
  Tracer::record(make_event("service.execute", 1, 0, 1'000'000'000, true));
  EXPECT_TRUE(Tracer::slow_queries().empty());
  EXPECT_EQ(Tracer::slow_query_log(), "");
}

TEST_F(TracerTest, ScopedQueryIdNestsAndRestores) {
  EXPECT_EQ(Tracer::current_query(), 0u);
  {
    ScopedQueryId outer(11);
    EXPECT_EQ(Tracer::current_query(), 11u);
    {
      ScopedQueryId inner(22);
      EXPECT_EQ(Tracer::current_query(), 22u);
    }
    EXPECT_EQ(Tracer::current_query(), 11u);
  }
  EXPECT_EQ(Tracer::current_query(), 0u);
}

TEST_F(TracerTest, DisabledSpanRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    TraceSpan span("should.not.appear", "test");
  }
  EXPECT_TRUE(Tracer::events().empty());
}

TEST_F(TracerTest, EnabledSpanRecordsWithQueryAttribution) {
  if (!Tracer::kCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (-DVERITAS_TRACING=OFF)";
  }
  Tracer::set_enabled(true);
  {
    ScopedQueryId query(42);
    TraceSpan span("engine.infer", "engine");
  }
  Tracer::set_enabled(false);
  const std::vector<Tracer::Event> events = Tracer::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "engine.infer");
  EXPECT_STREQ(events[0].category, "engine");
  EXPECT_EQ(events[0].query_id, 42u);
  EXPECT_FALSE(events[0].root);
  EXPECT_EQ(events[0].thread_id, Tracer::thread_id());
}

TEST_F(TracerTest, SetEnabledIsRefusedWhenCompiledOut) {
  if (Tracer::kCompiledIn) {
    GTEST_SKIP() << "tracing compiled in";
  }
  Tracer::set_enabled(true);
  EXPECT_FALSE(Tracer::enabled());
}

TEST_F(TracerTest, RecordSpanClampsNegativeDurations) {
  // A span whose end precedes its start (clock adjustment, bad caller)
  // must not wrap to a huge unsigned duration.
  const auto now = std::chrono::steady_clock::now();
  Tracer::record_span("backwards", "test", now,
                      now - std::chrono::milliseconds(5), 1);
  const std::vector<Tracer::Event> events = Tracer::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].duration_ns, 0u);
}

TEST_F(TracerTest, ThreadIdsAreSmallAndStable) {
  const std::uint32_t mine = Tracer::thread_id();
  EXPECT_GT(mine, 0u);
  EXPECT_EQ(Tracer::thread_id(), mine);  // stable on the same thread
  std::uint32_t other = 0;
  std::thread([&other] { other = Tracer::thread_id(); }).join();
  EXPECT_GT(other, 0u);
  EXPECT_NE(other, mine);
}

// Concurrent recording into the shared ring; run under TSan in CI.
TEST_F(TracerTest, ConcurrentRecordIsRaceFree) {
  Tracer::set_capacity(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        Tracer::record(
            make_event("churn", static_cast<std::uint64_t>(t), 0, 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(Tracer::events().size(), 64u);
  EXPECT_EQ(Tracer::dropped(),
            static_cast<std::uint64_t>(kThreads * kPerThread - 64));
}

}  // namespace
