#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/expects.hpp"

namespace veritas::util {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"a", "b"});
  writer.row(std::vector<std::string>{"1", "2"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
  EXPECT_EQ(writer.rows_written(), 1u);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.row(std::vector<std::string>{"x,y", "he said \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriter, NumericRowsRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"v"});
  writer.row(std::vector<double>{0.1234567890123456789});
  const CsvTable table = parse_csv(out.str());
  EXPECT_DOUBLE_EQ(table.number(0, "v"), 0.1234567890123456789);
}

TEST(CsvWriter, RejectsWidthMismatch) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"a", "b"});
  EXPECT_THROW(writer.row(std::vector<std::string>{"only-one"}),
               ContractViolation);
}

TEST(CsvWriter, RejectsLateHeader) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.row(std::vector<std::string>{"1"});
  EXPECT_THROW(writer.header({"a"}), ContractViolation);
}

TEST(CsvParse, SimpleTable) {
  const CsvTable t = parse_csv("a,b\n1,2\n3,4\n");
  ASSERT_EQ(t.header.size(), 2u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "4");
}

TEST(CsvParse, HandlesCrLf) {
  const CsvTable t = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(CsvParse, MissingFinalNewline) {
  const CsvTable t = parse_csv("a\n1");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(CsvParse, QuotedFieldWithComma) {
  const CsvTable t = parse_csv("a,b\n\"x,y\",z\n");
  EXPECT_EQ(t.rows[0][0], "x,y");
}

TEST(CsvParse, EscapedQuotes) {
  const CsvTable t = parse_csv("a\n\"say \"\"hi\"\"\"\n");
  EXPECT_EQ(t.rows[0][0], "say \"hi\"");
}

TEST(CsvParse, QuotedNewline) {
  const CsvTable t = parse_csv("a,b\n\"multi\nline\",2\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "multi\nline");
}

TEST(CsvParse, RejectsRaggedRows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), ContractViolation);
}

TEST(CsvTable, ColumnLookup) {
  const CsvTable t = parse_csv("x,y\n1,2\n");
  EXPECT_EQ(t.column("y"), 1u);
  EXPECT_THROW(t.column("z"), ContractViolation);
}

TEST(CsvTable, NumberParsesAndRejects) {
  const CsvTable t = parse_csv("v\n1.5\nnot-a-number\n");
  EXPECT_DOUBLE_EQ(t.number(0, "v"), 1.5);
  EXPECT_THROW(t.number(1, "v"), ContractViolation);
}

TEST(CsvRoundTrip, WriterThenParser) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"name", "value"});
  writer.row(std::vector<std::string>{"alpha, beta", "1"});
  writer.row(std::vector<std::string>{"q\"q", "2"});
  const CsvTable t = parse_csv(out.str());
  EXPECT_EQ(t.rows[0][0], "alpha, beta");
  EXPECT_EQ(t.rows[1][0], "q\"q");
}

}  // namespace
}  // namespace veritas::util
