#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace veritas::util {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t, std::size_t index) {
    hits[index].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, LaneIdsAreWithinRangeAndLanesAreSerial) {
  ThreadPool pool(2);
  // Each lane owns a slot; lanes never run two bodies concurrently, so
  // unsynchronized per-lane accumulation must still add up.
  std::vector<std::size_t> per_lane(pool.size() + 1, 0);
  constexpr std::size_t kCount = 500;
  pool.parallel_for(kCount, [&](std::size_t lane, std::size_t) {
    ASSERT_LE(lane, pool.size());
    ++per_lane[lane];
  });
  EXPECT_EQ(std::accumulate(per_lane.begin(), per_lane.end(), std::size_t{0}),
            kCount);
}

TEST(ThreadPool, ZeroWorkersRunsOnCaller) {
  ThreadPool pool(0);
  std::size_t calls = 0;
  pool.parallel_for(10, [&](std::size_t lane, std::size_t) {
    EXPECT_EQ(lane, 0u);  // caller lane == size() == 0
    ++calls;              // single-threaded: no synchronization needed
  });
  EXPECT_EQ(calls, 10u);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t, std::size_t index) {
      sum.fetch_add(index);
    });
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

TEST(ThreadPool, BodyExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(50,
                        [&](std::size_t, std::size_t index) {
                          if (index == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(10, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ThrowingSubmitJobIsRethrownOnWaitIdleNotTerminate) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  // A fire-and-forget job that throws must not take the process (or the
  // worker) down; the error surfaces at the next wait_idle().
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] { done.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(done.load(), 10);  // workers survived and kept draining

  // The error was collected: the pool is clean and reusable.
  pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 11);
}

TEST(ThreadPool, OnlyFirstPendingErrorIsKept) {
  ThreadPool pool(1);  // one worker: jobs run in submission order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  pool.wait_idle();  // "second" was dropped, not queued behind "first"
}

TEST(ThreadPool, SubmitTaskDeliversResultThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit_task([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitTaskDeliversExceptionThroughFutureOnly) {
  ThreadPool pool(2);
  auto future =
      pool.submit_task([]() -> int { throw std::runtime_error("task"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The packaged task absorbed the exception: nothing pends on wait_idle.
  pool.wait_idle();
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace veritas::util
