// LatencyHistogram percentile edge cases (PR 8 regressions): empty
// snapshots return 0, a single sample returns exactly that sample, and
// percentiles landing in a wide power-of-two bucket are clamped to the
// observed maximum instead of reporting the bucket's upper bound.
#include "util/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace {

using veritas::util::LatencyHistogram;

TEST(LatencyHistogramEdges, EmptySnapshotIsAllZero) {
  const LatencyHistogram::Snapshot snap = LatencyHistogram{}.snapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.sum_us, 0u);
  EXPECT_EQ(snap.max_us, 0u);
  EXPECT_EQ(snap.percentile_us(0.0), 0.0);
  EXPECT_EQ(snap.percentile_us(0.5), 0.0);
  EXPECT_EQ(snap.percentile_us(1.0), 0.0);
}

TEST(LatencyHistogramEdges, SingleSampleReturnsExactValue) {
  // 1000 µs lands in bucket 10 (upper bound 1023 µs). Every percentile
  // must report the exact sample 1000, not the bucket bound 1023.
  LatencyHistogram h;
  h.record_us(1000);
  const LatencyHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.total, 1u);
  EXPECT_EQ(snap.sum_us, 1000u);
  EXPECT_EQ(snap.max_us, 1000u);
  EXPECT_EQ(snap.percentile_us(0.5), 1000.0);
  EXPECT_EQ(snap.percentile_us(0.99), 1000.0);
  EXPECT_EQ(snap.percentile_us(1.0), 1000.0);
}

TEST(LatencyHistogramEdges, SingleZeroSample) {
  LatencyHistogram h;
  h.record_us(0);
  const LatencyHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.total, 1u);
  EXPECT_EQ(snap.max_us, 0u);
  EXPECT_EQ(snap.percentile_us(0.5), 0.0);
  EXPECT_EQ(snap.percentile_us(1.0), 0.0);
}

TEST(LatencyHistogramEdges, MaxClampOnlyAffectsTheTopBucket) {
  // bucket_of(3) = 2 (bound 3), bucket_of(5) = 3 (bound 7). p50
  // resolves to bucket 2 and keeps its bound (3, below the global max);
  // p100 resolves to bucket 3 and is clamped to the observed max 5
  // rather than reporting the bound 7.
  LatencyHistogram h;
  h.record_us(3);
  h.record_us(5);
  const LatencyHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.max_us, 5u);
  EXPECT_EQ(snap.percentile_us(0.5), 3.0);
  EXPECT_EQ(snap.percentile_us(1.0), 5.0);
}

TEST(LatencyHistogramEdges, LowerBucketsStillReportBucketBounds) {
  // With samples in two buckets, a percentile resolving to the *lower*
  // bucket keeps its upper bound (the max lives elsewhere).
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record_us(100);  // bucket bound 127
  h.record_us(1 << 20);
  const LatencyHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.percentile_us(0.5), 127.0);
  EXPECT_EQ(snap.percentile_us(1.0), static_cast<double>(1 << 20));
}

TEST(LatencyHistogramEdges, TopBucketSaturation) {
  // Values past the last bucket's range all land in the final bucket;
  // the max clamp keeps the percentile honest instead of reporting the
  // bucket's (astronomical) upper bound.
  LatencyHistogram h;
  const std::uint64_t huge = ~std::uint64_t{0} / 2;
  h.record_us(huge);
  const LatencyHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.max_us, huge);
  EXPECT_EQ(snap.percentile_us(1.0), static_cast<double>(huge));
}

TEST(LatencyHistogramEdges, SumAndMaxAccumulateAcrossThreads) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record_us(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LatencyHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.total, kThreads * kPerThread);
  EXPECT_EQ(snap.sum_us, kPerThread * (1u + 2u + 3u + 4u));
  EXPECT_EQ(snap.max_us, 4u);
}

}  // namespace
