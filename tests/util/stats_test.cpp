#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/expects.hpp"

namespace veritas::util {
namespace {

const std::vector<double> kSample{4.0, 1.0, 3.0, 2.0, 5.0};

TEST(Stats, Mean) { EXPECT_DOUBLE_EQ(mean(kSample), 3.0); }

TEST(Stats, MeanSingleElement) {
  const std::vector<double> one{7.5};
  EXPECT_DOUBLE_EQ(mean(one), 7.5);
}

TEST(Stats, MeanRejectsEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), ContractViolation);
}

TEST(Stats, VarianceUnbiased) {
  // Known: sample variance of {1..5} is 2.5.
  EXPECT_DOUBLE_EQ(variance(kSample), 2.5);
}

TEST(Stats, VarianceNeedsTwo) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(variance(one), ContractViolation);
}

TEST(Stats, StddevIsSqrtVariance) {
  EXPECT_DOUBLE_EQ(stddev(kSample) * stddev(kSample), 2.5);
}

TEST(Stats, MedianOdd) { EXPECT_DOUBLE_EQ(median(kSample), 3.0); }

TEST(Stats, MedianEvenInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Stats, QuantileEndpoints) {
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(kSample, 1.0), 5.0);
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Stats, QuantileRejectsOutOfRange) {
  EXPECT_THROW(quantile(kSample, 1.5), ContractViolation);
  EXPECT_THROW(quantile(kSample, -0.1), ContractViolation);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min(kSample), 1.0);
  EXPECT_DOUBLE_EQ(max(kSample), 5.0);
}

TEST(Stats, BoxplotFiveNumbers) {
  const BoxplotStats b = boxplot(kSample);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_DOUBLE_EQ(b.max, 5.0);
  EXPECT_EQ(b.count, 5u);
}

TEST(Stats, BoxplotToString) {
  const BoxplotStats b = boxplot(kSample);
  EXPECT_EQ(to_string(b), "1/2/3/4/5 (n=5)");
}

TEST(Stats, EmpiricalCdfEndpoints) {
  const auto cdf = empirical_cdf(kSample, 5);
  ASSERT_EQ(cdf.size(), 5u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Stats, EmpiricalCdfMonotone) {
  const std::vector<double> v{5, 1, 4, 1, 3, 9, 2, 6, 8, 7};
  const auto cdf = empirical_cdf(v, 7);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].fraction, cdf[i].fraction);
  }
}

TEST(Stats, EmpiricalCdfDownsamples) {
  std::vector<double> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = double(i);
  EXPECT_LE(empirical_cdf(v, 50).size(), 50u);
}

TEST(Stats, MaeAndRmse) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, b), 1.0);
  EXPECT_NEAR(rmse(a, b), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, MaeRejectsMismatch) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(mean_absolute_error(a, b), ContractViolation);
}

// Property sweep: quantile is monotone in q for arbitrary data.
class QuantileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotone, MonotoneInQ) {
  std::vector<double> v;
  int x = GetParam();
  for (int i = 0; i < 50; ++i) {
    x = (x * 1103515245 + 12345) & 0x7fffffff;
    v.push_back(double(x % 1000));
  }
  double prev = quantile(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(v, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace veritas::util
