#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/session_log.hpp"

namespace veritas::util {
namespace {

sim::SessionLog small_log() {
  sim::SessionLog log;
  log.chunk_duration_s = 2.0;
  log.rtt_s = 0.08;
  for (std::size_t i = 0; i < 4; ++i) {
    sim::ChunkLog c;
    c.index = i;
    c.quality = i % 2;
    c.size_bytes = 1e6 + 1000.0 * double(i);
    c.start_s = 2.0 * double(i);
    c.end_s = c.start_s + 1.0;
    c.buffer_at_start_s = 3.0;
    c.tcp_at_start.cwnd_segments = 20.0 + double(i);
    log.chunks.push_back(c);
  }
  return log;
}

TEST(Hash, MatchesKnownFnv1aVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(hash_bytes("", 0), 14695981039346656037ULL);
  EXPECT_EQ(hash_string("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(hash_string("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, HasherIsIncremental) {
  const std::uint64_t whole = hash_string("foobar");
  Fnv1aHasher h;
  h.bytes("foo", 3).bytes("bar", 3);
  EXPECT_EQ(h.digest(), whole);
}

TEST(Hash, U64FeedIsBytewiseLittleEndian) {
  // u64(v) must equal feeding v's 8 little-endian bytes, which is what
  // makes the digest platform-independent.
  const std::uint64_t v = 0x0123456789abcdefULL;
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFFu);
  }
  EXPECT_EQ(Fnv1aHasher{}.u64(v).digest(), hash_bytes(bytes, 8));
}

TEST(Hash, F64DistinguishesSignedZero) {
  EXPECT_NE(Fnv1aHasher{}.f64(0.0).digest(), Fnv1aHasher{}.f64(-0.0).digest());
}

TEST(Hash, StrIsLengthPrefixed) {
  // ("ab", "c") and ("a", "bc") must not collide.
  EXPECT_NE(Fnv1aHasher{}.str("ab").str("c").digest(),
            Fnv1aHasher{}.str("a").str("bc").digest());
}

TEST(Hash, SessionLogHashIsDeterministic) {
  EXPECT_EQ(hash_session_log(small_log()), hash_session_log(small_log()));
}

TEST(Hash, SessionLogHashCoversEveryField) {
  const std::uint64_t base = hash_session_log(small_log());
  std::set<std::uint64_t> digests{base};

  // Perturb each field of one chunk (and the session constants) in turn;
  // every perturbation must change the digest, and all must differ.
  auto perturbed = [&](auto&& mutate) {
    sim::SessionLog log = small_log();
    mutate(log);
    const std::uint64_t digest = hash_session_log(log);
    EXPECT_NE(digest, base);
    return digest;
  };
  digests.insert(perturbed([](auto& l) { l.chunk_duration_s = 4.0; }));
  digests.insert(perturbed([](auto& l) { l.rtt_s = 0.1; }));
  digests.insert(perturbed([](auto& l) { l.chunks[2].index = 9; }));
  digests.insert(perturbed([](auto& l) { l.chunks[2].quality = 5; }));
  digests.insert(perturbed([](auto& l) { l.chunks[2].size_bytes += 1.0; }));
  digests.insert(perturbed([](auto& l) { l.chunks[2].start_s += 1e-9; }));
  digests.insert(perturbed([](auto& l) { l.chunks[2].end_s += 1e-9; }));
  digests.insert(
      perturbed([](auto& l) { l.chunks[2].buffer_at_start_s = 0.0; }));
  digests.insert(
      perturbed([](auto& l) { l.chunks[2].tcp_at_start.cwnd_segments = 1.0; }));
  digests.insert(perturbed(
      [](auto& l) { l.chunks[2].tcp_at_start.ssthresh_segments = 7.0; }));
  digests.insert(
      perturbed([](auto& l) { l.chunks[2].tcp_at_start.rto_s = 0.3; }));
  digests.insert(
      perturbed([](auto& l) { l.chunks[2].tcp_at_start.min_rtt_s = 0.01; }));
  digests.insert(
      perturbed([](auto& l) { l.chunks[2].tcp_at_start.rtt_s = 0.2; }));
  digests.insert(perturbed(
      [](auto& l) { l.chunks[2].tcp_at_start.last_send_gap_s = 1.0; }));
  digests.insert(perturbed([](auto& l) { l.chunks.pop_back(); }));
  EXPECT_EQ(digests.size(), 16u);  // base + 15 distinct perturbations
}

}  // namespace
}  // namespace veritas::util
