#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/expects.hpp"

namespace veritas::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(29);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 2.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(41);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalProportionalToWeights) {
  Rng rng(47);
  const std::vector<double> weights{1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.7, 0.01);
}

TEST(Rng, CategoricalSkipsZeroWeights) {
  Rng rng(53);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(59);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(rng.categorical(weights), ContractViolation);
}

TEST(Rng, CategoricalRejectsNegative) {
  Rng rng(61);
  const std::vector<double> weights{0.5, -0.1};
  EXPECT_THROW(rng.categorical(weights), ContractViolation);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng root(67);
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  Rng a2 = root.fork(0);
  EXPECT_EQ(a(), a2());
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(71), b(71);
  (void)a.fork(3);
  (void)a.fork(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(73);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleDeterministic) {
  std::vector<int> v1{1, 2, 3, 4, 5}, v2{1, 2, 3, 4, 5};
  Rng r1(79), r2(79);
  shuffle(v1, r1);
  shuffle(v2, r2);
  EXPECT_EQ(v1, v2);
}

TEST(Rng, SplitMixDistinctOutputs) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace veritas::util
