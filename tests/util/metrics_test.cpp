// MetricsRegistry: Prometheus text-exposition golden output (HELP/TYPE
// lines, label escaping, histogram _bucket/_sum/_count series),
// registration validation, the LatencyHistogram bridge, and concurrent
// registration/scrape/update churn (run under TSan in CI).
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/expects.hpp"
#include "util/latency_histogram.hpp"

namespace {

using veritas::ContractViolation;
using veritas::util::LatencyHistogram;
using veritas::util::MetricsRegistry;

TEST(MetricsRegistry, GoldenExposition) {
  MetricsRegistry registry;
  registry.add_counter("test_requests_total", "Total requests.", {},
                       [] { return 42.0; });
  registry.add_gauge("test_queue_depth", "Pending jobs.", [] {
    return std::vector<MetricsRegistry::Sample>{
        {{{"priority", "interactive"}}, 3.0},
        {{{"priority", "batch"}}, 1.5},
    };
  });
  LatencyHistogram h;
  h.record_us(0);
  h.record_us(5);
  h.record_us(5);
  registry.add_histogram("test_latency_us", "Latency.", [&h] {
    return std::vector<MetricsRegistry::HistogramSample>{
        MetricsRegistry::from_latency_snapshot(h.snapshot(), {})};
  });

  // Buckets: 0 µs -> bucket 0 (bound 0), 5 µs -> bucket 3 (bound 7);
  // cumulative counts run through the last non-empty bucket, then +Inf.
  const std::string expected =
      "# HELP test_requests_total Total requests.\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total 42\n"
      "# HELP test_queue_depth Pending jobs.\n"
      "# TYPE test_queue_depth gauge\n"
      "test_queue_depth{priority=\"interactive\"} 3\n"
      "test_queue_depth{priority=\"batch\"} 1.5\n"
      "# HELP test_latency_us Latency.\n"
      "# TYPE test_latency_us histogram\n"
      "test_latency_us_bucket{le=\"0\"} 1\n"
      "test_latency_us_bucket{le=\"1\"} 1\n"
      "test_latency_us_bucket{le=\"3\"} 1\n"
      "test_latency_us_bucket{le=\"7\"} 3\n"
      "test_latency_us_bucket{le=\"+Inf\"} 3\n"
      "test_latency_us_sum 10\n"
      "test_latency_us_count 3\n";
  EXPECT_EQ(registry.expose(), expected);
  EXPECT_EQ(registry.families(), 3u);
}

TEST(MetricsRegistry, ScrapesAreLiveReads) {
  MetricsRegistry registry;
  std::atomic<std::uint64_t> counter{0};
  registry.add_counter("test_live_total", "Live.", {}, [&counter] {
    return static_cast<double>(counter.load(std::memory_order_relaxed));
  });
  EXPECT_NE(registry.expose().find("test_live_total 0\n"), std::string::npos);
  counter.store(7, std::memory_order_relaxed);
  EXPECT_NE(registry.expose().find("test_live_total 7\n"), std::string::npos);
}

TEST(MetricsRegistry, LabelValueEscaping) {
  MetricsRegistry registry;
  registry.add_gauge("test_info", "Escapes.", [] {
    return std::vector<MetricsRegistry::Sample>{
        {{{"path", "a\\b"}, {"quote", "say \"hi\""}, {"line", "x\ny"}}, 1.0}};
  });
  const std::string text = registry.expose();
  EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos);
  EXPECT_NE(text.find("quote=\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(text.find("line=\"x\\ny\""), std::string::npos);
}

TEST(MetricsRegistry, HelpTextEscaping) {
  MetricsRegistry registry;
  registry.add_counter("test_total", "line one\nline two \\ done", {},
                       [] { return 0.0; });
  EXPECT_NE(registry.expose().find(
                "# HELP test_total line one\\nline two \\\\ done\n"),
            std::string::npos);
}

TEST(MetricsRegistry, RejectsInvalidAndDuplicateNames) {
  MetricsRegistry registry;
  EXPECT_THROW(
      registry.add_counter("0bad", "x", {}, [] { return 0.0; }),
      ContractViolation);
  EXPECT_THROW(
      registry.add_counter("has-dash", "x", {}, [] { return 0.0; }),
      ContractViolation);
  registry.add_counter("test_dup_total", "x", {}, [] { return 0.0; });
  EXPECT_THROW(
      registry.add_gauge("test_dup_total", "x", {}, [] { return 0.0; }),
      ContractViolation);
}

TEST(MetricsRegistry, RejectsInvalidLabelNamesAtScrape) {
  MetricsRegistry registry;
  registry.add_gauge("test_bad_label", "x", [] {
    return std::vector<MetricsRegistry::Sample>{{{{"__reserved", "v"}}, 1.0}};
  });
  EXPECT_THROW(registry.expose(), ContractViolation);
}

TEST(MetricsRegistry, NameValidators) {
  EXPECT_TRUE(MetricsRegistry::valid_metric_name("veritas_queries_total"));
  EXPECT_TRUE(MetricsRegistry::valid_metric_name("ns:sub_total"));
  EXPECT_FALSE(MetricsRegistry::valid_metric_name(""));
  EXPECT_FALSE(MetricsRegistry::valid_metric_name("9lives"));
  EXPECT_TRUE(MetricsRegistry::valid_label_name("shard"));
  EXPECT_FALSE(MetricsRegistry::valid_label_name("le:colon"));
  EXPECT_FALSE(MetricsRegistry::valid_label_name("__reserved"));
}

TEST(MetricsRegistry, EmptyHistogramHasOnlyInfBucket) {
  const auto series =
      MetricsRegistry::from_latency_snapshot(LatencyHistogram{}.snapshot(), {});
  EXPECT_TRUE(series.cumulative.empty());
  EXPECT_EQ(series.count, 0u);
  EXPECT_EQ(series.sum, 0.0);

  MetricsRegistry registry;
  registry.add_histogram("test_empty_us", "Empty.", [series] {
    return std::vector<MetricsRegistry::HistogramSample>{series};
  });
  const std::string text = registry.expose();
  EXPECT_NE(text.find("test_empty_us_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_empty_us_count 0\n"), std::string::npos);
}

TEST(MetricsRegistry, ValueFormattingIsDeterministic) {
  EXPECT_EQ(MetricsRegistry::format_value(0.0), "0");
  EXPECT_EQ(MetricsRegistry::format_value(42.0), "42");
  EXPECT_EQ(MetricsRegistry::format_value(-3.0), "-3");
  EXPECT_EQ(MetricsRegistry::format_value(1.5), "1.5");
  // Round-trips exactly through %.17g.
  EXPECT_EQ(std::stod(MetricsRegistry::format_value(0.1)), 0.1);
}

// Concurrent churn: writers bump the counters the collectors read,
// registrars add new families, scrapers render — all at once. Run under
// TSan in CI; the assertion here is only "no crash, sane output".
TEST(MetricsRegistry, ConcurrentChurn) {
  MetricsRegistry registry;
  std::atomic<std::uint64_t> hits{0};
  registry.add_counter("test_churn_hits_total", "x", {}, [&hits] {
    return static_cast<double>(hits.load(std::memory_order_relaxed));
  });

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Writers: the lock-free update path.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        hits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Registrars: one new family each, racing the scrapers.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&registry, &hits, r] {
      registry.add_gauge("test_churn_gauge_" + std::to_string(r), "x", {},
                         [&hits] {
                           return static_cast<double>(
                               hits.load(std::memory_order_relaxed));
                         });
    });
  }
  // Scrapers.
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 50; ++i) {
        const std::string text = registry.expose();
        EXPECT_NE(text.find("test_churn_hits_total"), std::string::npos);
      }
    });
  }
  for (std::size_t i = 2; i < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_relaxed);
  threads[0].join();
  threads[1].join();
  EXPECT_EQ(registry.families(), 3u);
}

}  // namespace
