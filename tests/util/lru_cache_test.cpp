#include "util/lru_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace veritas::util {
namespace {

/// Single shard makes eviction order fully deterministic.
using SingleShard = ShardedLruCache<int, std::string>;

TEST(ShardedLruCache, GetReturnsWhatPutStored) {
  SingleShard cache(4, 1);
  cache.put(1, "one");
  cache.put(2, "two");
  EXPECT_EQ(cache.get(1).value(), "one");
  EXPECT_EQ(cache.get(2).value(), "two");
  EXPECT_FALSE(cache.get(3).has_value());
}

TEST(ShardedLruCache, PutRefreshesExistingKey) {
  SingleShard cache(4, 1);
  cache.put(1, "old");
  cache.put(1, "new");
  EXPECT_EQ(cache.get(1).value(), "new");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsed) {
  SingleShard cache(2, 1);
  cache.put(1, "one");
  cache.put(2, "two");
  cache.put(3, "three");  // evicts 1
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLruCache, GetPromotesAgainstEviction) {
  SingleShard cache(2, 1);
  cache.put(1, "one");
  cache.put(2, "two");
  EXPECT_TRUE(cache.get(1).has_value());  // 1 is now most recent
  cache.put(3, "three");                  // evicts 2, not 1
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(ShardedLruCache, CountsHitsAndMisses) {
  SingleShard cache(4, 1);
  cache.put(1, "one");
  (void)cache.get(1);  // hit
  (void)cache.get(1);  // hit
  (void)cache.get(9);  // miss
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ShardedLruCache, ClearKeepsCounters) {
  SingleShard cache(4, 1);
  cache.put(1, "one");
  (void)cache.get(1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ShardedLruCache, CapacityIsSplitAcrossShards) {
  // 8 entries over 4 shards: each shard holds at most 2, so inserting
  // many keys keeps the total bounded by 8 regardless of distribution.
  ShardedLruCache<int, int> cache(8, 4);
  for (int i = 0; i < 100; ++i) cache.put(i, i);
  EXPECT_LE(cache.size(), 8u);
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_GE(cache.stats().evictions, 92u);
}

TEST(ShardedLruCache, RejectsZeroCapacityOrShards) {
  EXPECT_THROW((ShardedLruCache<int, int>(0, 1)), ContractViolation);
  EXPECT_THROW((ShardedLruCache<int, int>(1, 0)), ContractViolation);
}

TEST(ShardedLruCache, ConcurrentMixedAccessIsSafe) {
  ShardedLruCache<int, int> cache(64, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const int key = (t * 37 + i) % 128;
        if (i % 3 == 0) {
          cache.put(key, key * 2);
        } else if (const auto v = cache.get(key)) {
          EXPECT_EQ(*v, key * 2);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  // Each thread does 1333 gets (the 2000 - 667 iterations with i%3 != 0).
  EXPECT_EQ(stats.hits + stats.misses, 4u * 1333u);
  EXPECT_LE(cache.size(), 64u);
}

}  // namespace
}  // namespace veritas::util
