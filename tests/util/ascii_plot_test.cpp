#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

namespace veritas::util {
namespace {

TEST(AsciiPlot, RendersAllSeriesGlyphs) {
  const std::vector<PlotSeries> series{
      {"rising", {0.0, 1.0, 2.0, 3.0}, '#'},
      {"falling", {3.0, 2.0, 1.0, 0.0}, 'o'},
  };
  const std::string plot = render_plot(series);
  EXPECT_NE(plot.find('#'), std::string::npos);
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_NE(plot.find("legend"), std::string::npos);
  EXPECT_NE(plot.find("rising"), std::string::npos);
}

TEST(AsciiPlot, RespectsCanvasSize) {
  const std::vector<PlotSeries> series{{"s", {1.0, 2.0}, '*'}};
  PlotOptions opt;
  opt.width = 20;
  opt.height = 5;
  const std::string plot = render_plot(series, opt);
  // 5 canvas rows + axis + legend = 7 lines.
  std::size_t lines = 0;
  for (const char c : plot) lines += (c == '\n');
  EXPECT_EQ(lines, 7u);
}

TEST(AsciiPlot, ConstantSeriesStillRenders) {
  const std::vector<PlotSeries> series{{"flat", {2.0, 2.0, 2.0}, '='}};
  EXPECT_NE(render_plot(series).find('='), std::string::npos);
}

TEST(AsciiPlot, FixedRangeClamps) {
  const std::vector<PlotSeries> series{{"s", {-10.0, 10.0}, '*'}};
  PlotOptions opt;
  opt.y_auto = false;
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  EXPECT_NO_THROW(render_plot(series, opt));
}

TEST(AsciiPlot, RejectsEmptyInput) {
  const std::vector<PlotSeries> none;
  EXPECT_THROW(render_plot(none), veritas::ContractViolation);
  const std::vector<PlotSeries> empty_series{{"s", {}, '*'}};
  EXPECT_THROW(render_plot(empty_series), veritas::ContractViolation);
}

TEST(Sparkline, MonotoneRamp) {
  const std::vector<double> ramp{0, 1, 2, 3, 4, 5, 6, 7, 8};
  const std::string line = sparkline(ramp);
  EXPECT_EQ(line.size(), ramp.size());
  EXPECT_EQ(line.front(), ' ');
  EXPECT_EQ(line.back(), '@');
}

TEST(Sparkline, FlatSeriesMidLevel) {
  const std::vector<double> flat{5.0, 5.0, 5.0};
  const std::string line = sparkline(flat);
  EXPECT_EQ(line, std::string(3, '='));
}

}  // namespace
}  // namespace veritas::util
