#include "util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

namespace veritas::util {
namespace {

TEST(BoundedQueue, FifoSingleThread) {
  BoundedQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.push(i));
  EXPECT_EQ(queue.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto value = queue.pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> queue(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(queue.try_push(std::move(a)));
  EXPECT_TRUE(queue.try_push(std::move(b)));
  EXPECT_FALSE(queue.try_push(std::move(c)));  // full; c not consumed
  EXPECT_EQ(c, 3);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_TRUE(queue.try_push(std::move(c)));
}

// The regression the rvalue try_push signature exists to prevent: a
// rejected push must leave the caller's value intact — moved from only
// on the accept path — so the caller can retry or fail it explicitly.
TEST(BoundedQueue, TryPushFailureIsNonDestructive) {
  struct MoveTracker {
    std::shared_ptr<int> payload;  // null after a real move
  };
  BoundedQueue<MoveTracker> queue(1);
  ASSERT_TRUE(queue.try_push(MoveTracker{std::make_shared<int>(1)}));

  MoveTracker rejected{std::make_shared<int>(2)};
  EXPECT_FALSE(queue.try_push(std::move(rejected)));
  ASSERT_NE(rejected.payload, nullptr) << "rejected value was moved from";
  EXPECT_EQ(*rejected.payload, 2);

  // Also when the failure reason is close, not capacity.
  queue.close();
  EXPECT_FALSE(queue.try_push(std::move(rejected)));
  ASSERT_NE(rejected.payload, nullptr);
  EXPECT_EQ(*rejected.payload, 2);
}

TEST(BoundedQueue, TryPopOnEmptyReturnsNullopt) {
  BoundedQueue<int> queue(2);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2));  // blocks: queue is full
    pushed.store(true);
  });

  // The producer must be parked on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());

  EXPECT_EQ(queue.pop().value(), 1);  // makes room, wakes the producer
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedQueue<int> queue(1);
  std::atomic<int> got{0};
  std::thread consumer([&] { got.store(queue.pop().value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), 0);
  EXPECT_TRUE(queue.push(7));
  consumer.join();
  EXPECT_EQ(got.load(), 7);
}

TEST(BoundedQueue, CloseDrainsAcceptedItemsThenEnds) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));  // closed: rejected
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.pop().has_value());  // drained
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.push(1));
  BoundedQueue<int> empty(1);

  std::thread producer([&] { EXPECT_FALSE(full.push(2)); });
  std::thread consumer([&] { EXPECT_FALSE(empty.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  full.close();
  empty.close();
  producer.join();
  consumer.join();
  EXPECT_EQ(full.pop().value(), 1);  // accepted before close: still drained
}

TEST(BoundedQueue, ManyProducersManyConsumersDeliverEachItemOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(8);  // far smaller than the item count

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }

  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (const auto value = queue.pop()) {
        const std::lock_guard<std::mutex> lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*value).second) << "duplicate " << *value;
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), std::size_t{kProducers} * kPerProducer);
}

TEST(BoundedQueue, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> queue(2);
  EXPECT_TRUE(queue.push(std::make_unique<int>(42)));
  const auto value = queue.pop();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(**value, 42);
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), ContractViolation);
}

}  // namespace
}  // namespace veritas::util
