#include "util/priority_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

namespace veritas::util {
namespace {

using namespace std::chrono_literals;

TEST(BoundedPriorityQueue, StrictPriorityThenFifo) {
  BoundedPriorityQueue<int> queue(8);
  EXPECT_EQ(queue.push(10, 1), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(20, 2), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(0, 0), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(11, 1), PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(1, 0), PushOutcome::kAccepted);
  // Urgent class drains first; FIFO within each class.
  EXPECT_EQ(queue.pop().value(), 0);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 10);
  EXPECT_EQ(queue.pop().value(), 11);
  EXPECT_EQ(queue.pop().value(), 20);
}

TEST(BoundedPriorityQueue, CapacityIsSharedAcrossClasses) {
  BoundedPriorityQueue<int> queue(2);
  EXPECT_EQ(queue.try_push(1, 0), PushOutcome::kAccepted);
  EXPECT_EQ(queue.try_push(2, 2), PushOutcome::kAccepted);
  EXPECT_EQ(queue.try_push(3, 1), PushOutcome::kFull);
  EXPECT_EQ(queue.size(), 2u);
  const auto depths = queue.depths();
  EXPECT_EQ(depths[0], 1u);
  EXPECT_EQ(depths[1], 0u);
  EXPECT_EQ(depths[2], 1u);
}

TEST(BoundedPriorityQueue, PushUntilTimesOutNonDestructively) {
  BoundedPriorityQueue<std::shared_ptr<int>> queue(1);
  ASSERT_EQ(queue.push(std::make_shared<int>(1), 0), PushOutcome::kAccepted);
  std::shared_ptr<int> value = std::make_shared<int>(2);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.push_until(std::move(value), 0, start + 30ms),
            PushOutcome::kTimedOut);
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
  // The timed-out value is untouched: the caller still owns it.
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 2);
}

TEST(BoundedPriorityQueue, PushUntilAdmitsWhenRoomAppears) {
  BoundedPriorityQueue<int> queue(1);
  ASSERT_EQ(queue.push(1, 0), PushOutcome::kAccepted);
  std::thread popper([&queue] {
    std::this_thread::sleep_for(20ms);
    EXPECT_EQ(queue.pop().value(), 1);
  });
  EXPECT_EQ(queue.push_until(2, 0, std::chrono::steady_clock::now() + 5s),
            PushOutcome::kAccepted);
  popper.join();
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(BoundedPriorityQueue, DisplacingEvictsOldestOfLowestClass) {
  BoundedPriorityQueue<int> queue(3);
  ASSERT_EQ(queue.push(20, 2), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(21, 2), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(10, 1), PushOutcome::kAccepted);
  std::optional<int> displaced;
  EXPECT_EQ(queue.push_displacing(0, 0, displaced), PushOutcome::kAccepted);
  // The *oldest* item of the *lowest* class below the arrival went.
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(*displaced, 20);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop().value(), 0);
  EXPECT_EQ(queue.pop().value(), 10);
  EXPECT_EQ(queue.pop().value(), 21);
}

TEST(BoundedPriorityQueue, DisplacingNeedsAStrictlyLowerVictim) {
  BoundedPriorityQueue<int> queue(2);
  ASSERT_EQ(queue.push(1, 0), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(2, 0), PushOutcome::kAccepted);
  std::optional<int> displaced;
  // Full of same-priority work: nothing to displace, value untouched.
  EXPECT_EQ(queue.push_displacing(3, 0, displaced), PushOutcome::kFull);
  EXPECT_FALSE(displaced.has_value());
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedPriorityQueue, DisplacingDoesNotWaitWithRoom) {
  BoundedPriorityQueue<int> queue(2);
  std::optional<int> displaced;
  EXPECT_EQ(queue.push_displacing(1, 0, displaced), PushOutcome::kAccepted);
  EXPECT_FALSE(displaced.has_value());
}

TEST(BoundedPriorityQueue, PopIfSkipsIneligibleWithoutReordering) {
  BoundedPriorityQueue<int> queue(8);
  ASSERT_EQ(queue.push(1, 1), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(2, 1), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(3, 1), PushOutcome::kAccepted);
  // Skip even values: 1 then 3, leaving 2 at the front of its class.
  const auto odd = [](const int& v) { return v % 2 == 1; };
  EXPECT_EQ(queue.pop_if(odd).value(), 1);
  EXPECT_EQ(queue.pop_if(odd).value(), 3);
  EXPECT_EQ(queue.try_pop_if(odd), std::nullopt);
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(BoundedPriorityQueue, PopIfWakesOnNotifyWaiters) {
  BoundedPriorityQueue<int> queue(4);
  ASSERT_EQ(queue.push(2, 0), PushOutcome::kAccepted);
  std::atomic<bool> eligible{false};
  std::atomic<int> got{0};
  std::thread popper([&] {
    got.store(queue
                  .pop_if([&eligible](const int&) {
                    return eligible.load(std::memory_order_relaxed);
                  })
                  .value());
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(got.load(), 0);  // parked: nothing eligible
  eligible.store(true);
  queue.notify_waiters();
  popper.join();
  EXPECT_EQ(got.load(), 2);
}

TEST(BoundedPriorityQueue, CloseDrainsIgnoringPredicate) {
  // The shutdown guarantee: once closed, a quota predicate cannot strand
  // accepted items (or deadlock the popper).
  BoundedPriorityQueue<int> queue(4);
  ASSERT_EQ(queue.push(1, 1), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(2, 0), PushOutcome::kAccepted);
  queue.close();
  const auto nothing = [](const int&) { return false; };
  EXPECT_EQ(queue.pop_if(nothing).value(), 2);  // priority order kept
  EXPECT_EQ(queue.pop_if(nothing).value(), 1);
  EXPECT_EQ(queue.pop_if(nothing), std::nullopt);
}

TEST(BoundedPriorityQueue, CloseFailsPushesAndWakesWaiters) {
  BoundedPriorityQueue<int> full(1);
  ASSERT_EQ(full.push(1, 0), PushOutcome::kAccepted);
  BoundedPriorityQueue<int> empty(1);
  std::thread producer([&full] {
    EXPECT_EQ(full.push(2, 0), PushOutcome::kClosed);
  });
  std::thread consumer([&empty] {
    EXPECT_EQ(empty.pop(), std::nullopt);
  });
  std::this_thread::sleep_for(20ms);
  full.close();
  empty.close();
  producer.join();
  consumer.join();
  EXPECT_EQ(full.pop().value(), 1);  // accepted before close: drained
  EXPECT_EQ(full.try_push(3, 0), PushOutcome::kClosed);
}

TEST(BoundedPriorityQueue, ManyProducersManyConsumersDeliverEachOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 400;
  BoundedPriorityQueue<int> queue(8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        ASSERT_EQ(queue.push(int{value}, static_cast<std::size_t>(value % 3)),
                  PushOutcome::kAccepted);
      }
    });
  }

  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (const auto value = queue.pop()) {
        const std::lock_guard<std::mutex> lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*value).second) << "duplicate " << *value;
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), std::size_t{kProducers} * kPerProducer);
}

TEST(BoundedPriorityQueue, MoveOnlyPayload) {
  BoundedPriorityQueue<std::unique_ptr<int>> queue(2);
  EXPECT_EQ(queue.push(std::make_unique<int>(42), 0), PushOutcome::kAccepted);
  const auto value = queue.pop();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(**value, 42);
}

TEST(BoundedPriorityQueue, RejectsZeroCapacityAndBadPriority) {
  EXPECT_THROW(BoundedPriorityQueue<int>(0), ContractViolation);
  BoundedPriorityQueue<int> queue(1);
  EXPECT_THROW(queue.push(1, 3), ContractViolation);
}

}  // namespace
}  // namespace veritas::util
