#include "util/status.hpp"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <utility>

namespace veritas {
namespace {

TEST(Status, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status rejected = Status::rejected("queue full");
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kRejected);
  EXPECT_EQ(rejected.message(), "queue full");
  EXPECT_EQ(rejected.to_string(), "rejected: queue full");

  EXPECT_EQ(Status::shed("x").code(), StatusCode::kShed);
  EXPECT_EQ(Status::deadline_exceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kRejected), "rejected");
  EXPECT_STREQ(status_code_name(StatusCode::kShed), "shed");
  EXPECT_STREQ(status_code_name(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(status_code_name(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "internal");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::rejected("a"), Status::rejected("a"));
  EXPECT_NE(Status::rejected("a"), Status::rejected("b"));
  EXPECT_NE(Status::rejected("a"), Status::shed("a"));
}

TEST(Expected, HoldsValue) {
  Expected<int> expected(42);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(static_cast<bool>(expected));
  EXPECT_EQ(expected.value(), 42);
  EXPECT_EQ(*expected, 42);
  EXPECT_TRUE(expected.status().ok());
  EXPECT_EQ(expected.value_or(0), 42);
}

TEST(Expected, HoldsError) {
  const Expected<int> expected(Status::shed("overload"));
  EXPECT_FALSE(expected.ok());
  EXPECT_FALSE(static_cast<bool>(expected));
  EXPECT_EQ(expected.status().code(), StatusCode::kShed);
  EXPECT_EQ(expected.value_or(-1), -1);
}

TEST(Expected, ValueOnErrorThrowsWithStatusText) {
  const Expected<int> expected(Status::deadline_exceeded("too late"));
  try {
    (void)expected.value();
    FAIL() << "value() on error must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadline_exceeded"), std::string::npos);
    EXPECT_NE(what.find("too late"), std::string::npos);
  }
}

TEST(Expected, OkStatusIsAContractViolation) {
  EXPECT_THROW(Expected<int>(Status::ok_status()), ContractViolation);
}

TEST(Expected, ArrowReachesMembers) {
  struct Payload {
    int x = 7;
  };
  Expected<Payload> expected(Payload{});
  EXPECT_EQ(expected->x, 7);
}

TEST(Expected, MovesThroughFutures) {
  // The exact shape the service relies on: promise/future transport of
  // both arms without ever breaking a promise.
  std::promise<Expected<std::string>> ok_promise;
  auto ok_future = ok_promise.get_future();
  ok_promise.set_value(Expected<std::string>(std::string("payload")));
  EXPECT_EQ(ok_future.get().value(), "payload");

  std::promise<Expected<std::string>> err_promise;
  auto err_future = err_promise.get_future();
  err_promise.set_value(Expected<std::string>(Status::rejected("full")));
  const Expected<std::string> result = err_future.get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status(), Status::rejected("full"));
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> expected(std::string("long enough to allocate"));
  const std::string taken = std::move(expected).value();
  EXPECT_EQ(taken, "long enough to allocate");
}

}  // namespace
}  // namespace veritas
