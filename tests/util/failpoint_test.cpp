#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace veritas::util {
namespace {

// Every test disarms on exit (ScopedFailpoint or explicit disable_all)
// so an assertion failure can't leak an armed site into another test.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::disable_all(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(VERITAS_FAILPOINT("test.never.armed"));
  }
  EXPECT_EQ(Failpoints::hits("test.never.armed"), 0u);
}

TEST_F(FailpointTest, ErrorModeFiresAndCounts) {
  ScopedFailpoint fp("test.error", {});
  EXPECT_TRUE(VERITAS_FAILPOINT("test.error"));
  EXPECT_TRUE(VERITAS_FAILPOINT("test.error"));
  EXPECT_EQ(fp.hits(), 2u);
}

TEST_F(FailpointTest, ThrowModeThrowsFailpointTriggered) {
  Failpoints::Config config;
  config.mode = Failpoints::Config::Mode::kThrow;
  ScopedFailpoint fp("test.throw", config);
  EXPECT_THROW(VERITAS_FAILPOINT("test.throw"), FailpointTriggered);
  EXPECT_EQ(fp.hits(), 1u);
}

TEST_F(FailpointTest, SleepModeDelaysThenPasses) {
  Failpoints::Config config;
  config.mode = Failpoints::Config::Mode::kSleep;
  config.sleep_ms = 30;
  ScopedFailpoint fp("test.sleep", config);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(VERITAS_FAILPOINT("test.sleep"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
  EXPECT_EQ(fp.hits(), 1u);
}

TEST_F(FailpointTest, SkipLetsEarlyEvaluationsPass) {
  Failpoints::Config config;
  config.skip = 3;
  ScopedFailpoint fp("test.skip", config);
  EXPECT_FALSE(VERITAS_FAILPOINT("test.skip"));
  EXPECT_FALSE(VERITAS_FAILPOINT("test.skip"));
  EXPECT_FALSE(VERITAS_FAILPOINT("test.skip"));
  EXPECT_TRUE(VERITAS_FAILPOINT("test.skip"));
  EXPECT_EQ(fp.hits(), 1u);
}

TEST_F(FailpointTest, MaxHitsSpendsTheSite) {
  Failpoints::Config config;
  config.max_hits = 2;
  ScopedFailpoint fp("test.max", config);
  EXPECT_TRUE(VERITAS_FAILPOINT("test.max"));
  EXPECT_TRUE(VERITAS_FAILPOINT("test.max"));
  EXPECT_FALSE(VERITAS_FAILPOINT("test.max"));  // spent
  EXPECT_FALSE(VERITAS_FAILPOINT("test.max"));
  EXPECT_EQ(fp.hits(), 2u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicInSeedAndIndex) {
  // Two identical runs over a fresh site must produce the identical
  // trigger pattern: the hash depends only on (seed, evaluation index).
  const auto run = [] {
    Failpoints::Config config;
    config.probability = 0.3;
    config.seed = 42;
    Failpoints::enable("test.prob", config);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(VERITAS_FAILPOINT("test.prob"));
    }
    Failpoints::disable("test.prob");
    return fired;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // And ~30% of 200 should have fired — loose sanity bounds.
  const auto count =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(count, 30u);
  EXPECT_LT(count, 100u);
}

TEST_F(FailpointTest, ReenableRestartsCounters) {
  ScopedFailpoint fp("test.reenable", {});
  EXPECT_TRUE(VERITAS_FAILPOINT("test.reenable"));
  EXPECT_EQ(Failpoints::hits("test.reenable"), 1u);
  Failpoints::enable("test.reenable", {});
  EXPECT_EQ(Failpoints::hits("test.reenable"), 0u);
}

TEST_F(FailpointTest, ActiveSitesAreSorted) {
  ScopedFailpoint b("test.list.b", {});
  ScopedFailpoint a("test.list.a", {});
  const std::vector<std::string> sites = Failpoints::active_sites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "test.list.a");
  EXPECT_EQ(sites[1], "test.list.b");
}

TEST_F(FailpointTest, ArmFromSpecParsesTheGrammar) {
  Failpoints::arm_from_spec(
      "test.spec.a=error:p=1:max=3;test.spec.b=sleep:ms=1;garbage;=bad;"
      "test.spec.c=unknownmode");
  const std::vector<std::string> sites = Failpoints::active_sites();
  // Malformed entries and unknown modes are skipped, never fatal.
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "test.spec.a");
  EXPECT_EQ(sites[1], "test.spec.b");
  EXPECT_TRUE(VERITAS_FAILPOINT("test.spec.a"));
  EXPECT_TRUE(VERITAS_FAILPOINT("test.spec.a"));
  EXPECT_TRUE(VERITAS_FAILPOINT("test.spec.a"));
  EXPECT_FALSE(VERITAS_FAILPOINT("test.spec.a"));  // max=3 spent
}

TEST_F(FailpointTest, ConcurrentEvaluateAndDisableIsSafe) {
  // Hammer one site from several threads while the main thread arms and
  // disarms it; the shared_ptr pin means no use-after-free and no lost
  // counters (TSan covers the rest).
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)VERITAS_FAILPOINT("test.race");
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    Failpoints::enable("test.race", {});
    Failpoints::disable("test.race");
  }
  stop.store(true);
  for (auto& thread : threads) thread.join();
}

TEST_F(FailpointTest, MaxHitsIsExactUnderContention) {
  Failpoints::Config config;
  config.max_hits = 100;
  ScopedFailpoint fp("test.contended", config);
  std::atomic<std::uint64_t> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fired] {
      for (int i = 0; i < 1000; ++i) {
        if (VERITAS_FAILPOINT("test.contended")) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // The CAS hit-claim loop makes the cap exact, not approximate.
  EXPECT_EQ(fired.load(), 100u);
  EXPECT_EQ(fp.hits(), 100u);
}

}  // namespace
}  // namespace veritas::util
