#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/expects.hpp"
#include "util/trace.hpp"

namespace veritas::cli {
namespace {

namespace fs = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("veritas_cli_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run(std::initializer_list<std::string> args) {
    out_.str("");
    err_.str("");
    const std::vector<std::string> argv(args);
    return run_cli(argv, out_, err_);
  }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  static std::string slurp(const std::string& file) {
    std::ifstream in(file);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  fs::path dir_;
  std::ostringstream out_, err_;
};

TEST_F(CliTest, ParseCommandLine) {
  const std::vector<std::string> args{"simulate", "--abr", "bba", "--buffer",
                                      "30"};
  const CommandLine cmd = parse_command_line(args);
  EXPECT_EQ(cmd.command, "simulate");
  EXPECT_EQ(cmd.get("--abr", "mpc"), "bba");
  EXPECT_DOUBLE_EQ(cmd.number("--buffer", 5.0), 30.0);
  EXPECT_EQ(cmd.get("--missing", "fallback"), "fallback");
  EXPECT_THROW(cmd.require("--missing"), ContractViolation);
}

TEST_F(CliTest, ParseRejectsMalformedOptions) {
  const std::vector<std::string> bad_flag{"simulate", "abr", "bba"};
  EXPECT_THROW(parse_command_line(bad_flag), ContractViolation);
  const std::vector<std::string> missing_value{"simulate", "--abr"};
  EXPECT_THROW(parse_command_line(missing_value), ContractViolation);
}

TEST_F(CliTest, NumberOptionValidation) {
  const std::vector<std::string> args{"x", "--n", "abc"};
  const CommandLine cmd = parse_command_line(args);
  EXPECT_THROW(cmd.number("--n", 0.0), ContractViolation);
}

TEST_F(CliTest, HelpAndUnknownCommand) {
  EXPECT_EQ(run({"help"}), 0);
  EXPECT_NE(out_.str().find("generate-trace"), std::string::npos);
  EXPECT_EQ(run({"frobnicate"}), 2);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, MissingRequiredOptionIsError) {
  EXPECT_EQ(run({"generate-trace"}), 1);
  EXPECT_NE(err_.str().find("--out"), std::string::npos);
}

TEST_F(CliTest, GenerateTraceWritesCsv) {
  EXPECT_EQ(run({"generate-trace", "--out", path("gt.csv"), "--seed", "3"}),
            0);
  EXPECT_TRUE(fs::exists(path("gt.csv")));
  EXPECT_NE(out_.str().find("windows"), std::string::npos);
}

TEST_F(CliTest, GenerateTraceRejectsUnknownFamily) {
  EXPECT_EQ(run({"generate-trace", "--out", path("gt.csv"), "--family",
                 "nope"}),
            1);
}

TEST_F(CliTest, FullPipelineEndToEnd) {
  ASSERT_EQ(run({"generate-trace", "--out", path("gt.csv"), "--seed", "9"}),
            0);
  ASSERT_EQ(run({"simulate", "--trace", path("gt.csv"), "--out",
                 path("log.csv")}),
            0);
  EXPECT_NE(out_.str().find("metrics:"), std::string::npos);

  ASSERT_EQ(run({"infer", "--log", path("log.csv"), "--out-prefix",
                 path("inf"), "--samples", "3"}),
            0);
  EXPECT_TRUE(fs::exists(path("inf_map.csv")));
  EXPECT_TRUE(fs::exists(path("inf_baseline.csv")));
  EXPECT_TRUE(fs::exists(path("inf_sample2.csv")));

  ASSERT_EQ(run({"replay", "--trace", path("inf_map.csv"), "--abr", "bba"}),
            0);
  EXPECT_NE(out_.str().find("rebuffer_pct"), std::string::npos);

  ASSERT_EQ(run({"predict", "--log", path("log.csv"), "--size", "1000000"}),
            0);
  EXPECT_NE(out_.str().find("p50="), std::string::npos);
}

TEST_F(CliTest, SimulateHonorsAbrAndLadder) {
  ASSERT_EQ(run({"generate-trace", "--out", path("gt.csv")}), 0);
  ASSERT_EQ(run({"simulate", "--trace", path("gt.csv"), "--out",
                 path("log.csv"), "--abr", "fixed:0", "--ladder", "high"}),
            0);
  // fixed:0 on the high ladder -> avg bitrate equals its floor (2.5).
  EXPECT_NE(out_.str().find("avg_bitrate_mbps=2.5"), std::string::npos);
}

TEST_F(CliTest, WhatIfRunsFromLogAlone) {
  ASSERT_EQ(run({"generate-trace", "--out", path("gt.csv")}), 0);
  ASSERT_EQ(run({"simulate", "--trace", path("gt.csv"), "--out",
                 path("log.csv")}),
            0);
  ASSERT_EQ(run({"whatif", "--log", path("log.csv"), "--abr", "bba",
                 "--samples", "3"}),
            0);
  EXPECT_NE(out_.str().find("veritas ssim=["), std::string::npos);
  EXPECT_NE(out_.str().find("baseline"), std::string::npos);
}

TEST_F(CliTest, ServeRunsRoundsAndReportsCache) {
  ASSERT_EQ(run({"generate-trace", "--out", path("gt.csv")}), 0);
  ASSERT_EQ(run({"simulate", "--trace", path("gt.csv"), "--out",
                 path("log1.csv")}),
            0);
  ASSERT_EQ(run({"simulate", "--trace", path("gt.csv"), "--out",
                 path("log2.csv"), "--abr", "bba"}),
            0);
  ASSERT_EQ(run({"serve", "--logs", path("log1.csv") + "," + path("log2.csv"),
                 "--repeat", "2", "--threads", "2", "--samples", "2"}),
            0);
  const std::string text = out_.str();
  EXPECT_NE(text.find("serving 2 sessions"), std::string::npos);
  EXPECT_NE(text.find("round 0:"), std::string::npos);
  EXPECT_NE(text.find("round 1:"), std::string::npos);
  // Round two re-submits the same logs: both answered from the cache.
  EXPECT_NE(text.find("served 4 queries (2 computed, 2 from cache)"),
            std::string::npos);
}

TEST_F(CliTest, ServeWritesPrometheusMetrics) {
  ASSERT_EQ(run({"generate-trace", "--out", path("gt.csv")}), 0);
  ASSERT_EQ(run({"simulate", "--trace", path("gt.csv"), "--out",
                 path("log.csv")}),
            0);
  ASSERT_EQ(run({"serve", "--logs", path("log.csv"), "--metrics-out",
                 path("metrics.prom")}),
            0);
  EXPECT_NE(out_.str().find("wrote metrics"), std::string::npos);
  ASSERT_TRUE(fs::exists(path("metrics.prom")));
  const std::string text = slurp(path("metrics.prom"));
  EXPECT_NE(text.find("# TYPE veritas_queries_total counter"),
            std::string::npos);
  // Default serve runs 2 rounds: round two answers from the cache.
  EXPECT_NE(text.find("veritas_queries_submitted_total 2"),
            std::string::npos);
  EXPECT_NE(text.find("veritas_queries_total{outcome=\"computed\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("veritas_queries_total{outcome=\"cache_hit\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("veritas_unreconciled_queries 0"), std::string::npos);
  EXPECT_NE(text.find("veritas_build_info{kernels="), std::string::npos);
}

TEST_F(CliTest, ServeTraceOutDependsOnBuildFlavor) {
  ASSERT_EQ(run({"generate-trace", "--out", path("gt.csv")}), 0);
  ASSERT_EQ(run({"simulate", "--trace", path("gt.csv"), "--out",
                 path("log.csv")}),
            0);
  ASSERT_EQ(run({"serve", "--logs", path("log.csv"), "--trace-out",
                 path("trace.json")}),
            0);
  if (util::Tracer::kCompiledIn) {
    EXPECT_NE(out_.str().find("wrote trace"), std::string::npos);
    ASSERT_TRUE(fs::exists(path("trace.json")));
    const std::string json = slurp(path("trace.json"));
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"service.execute\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"ehmm.forward\""), std::string::npos);
    util::Tracer::clear();
  } else {
    // Compiled out: the flag warns instead of writing an empty trace.
    EXPECT_NE(out_.str().find("tracing compiled out"), std::string::npos);
    EXPECT_FALSE(fs::exists(path("trace.json")));
  }
}

TEST_F(CliTest, ServeRequiresLogs) {
  EXPECT_EQ(run({"serve"}), 1);
  EXPECT_NE(err_.str().find("--logs"), std::string::npos);
}

TEST_F(CliTest, InferReportsLikelihood) {
  ASSERT_EQ(run({"generate-trace", "--out", path("gt.csv")}), 0);
  ASSERT_EQ(run({"simulate", "--trace", path("gt.csv"), "--out",
                 path("log.csv")}),
            0);
  ASSERT_EQ(run({"infer", "--log", path("log.csv"), "--out-prefix",
                 path("i")}),
            0);
  EXPECT_NE(out_.str().find("log-likelihood"), std::string::npos);
}

}  // namespace
}  // namespace veritas::cli
