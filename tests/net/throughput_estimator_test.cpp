#include "net/throughput_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "net/tcp_model.hpp"
#include "util/expects.hpp"
#include "util/rng.hpp"

namespace veritas::net {
namespace {

constexpr double kRtt = 0.08;

TcpState steady_state(double cwnd = 100.0) {
  TcpState w;
  w.cwnd_segments = cwnd;
  w.ssthresh_segments = 50.0;
  w.rto_s = 0.2;
  w.min_rtt_s = kRtt;
  w.rtt_s = kRtt;
  w.last_send_gap_s = 0.0;
  return w;
}

TEST(Estimator, ZeroBandwidthGivesZero) {
  EXPECT_DOUBLE_EQ(estimate_throughput_mbps(0.0, steady_state(), 1e6), 0.0);
}

TEST(Estimator, LargeChunkSaturatedWindowReturnsGtbw) {
  // cwnd above BDP and data above BDP: the paper's branch 1 -> C.
  const TcpState w = steady_state(1000.0);
  EXPECT_DOUBLE_EQ(estimate_throughput_mbps(4.0, w, 10e6), 4.0);
}

TEST(Estimator, TinyChunkOneRttBound) {
  const TcpState w = steady_state(1000.0);
  const double size = 2048.0;
  EXPECT_NEAR(estimate_throughput_mbps(10.0, w, size),
              size * 8.0 / 1e6 / kRtt, 1e-9);
}

TEST(Estimator, NeverExceedsCandidate) {
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    TcpState w = steady_state(rng.uniform(2.0, 200.0));
    w.ssthresh_segments = rng.uniform(10.0, 100.0);
    w.last_send_gap_s = rng.uniform(0.0, 5.0);
    const double c = rng.uniform(0.5, 10.0);
    const double size = rng.uniform(2e3, 4e6);
    EXPECT_LE(estimate_throughput_mbps(c, w, size), c + 1e-9);
  }
}

TEST(Estimator, MonotoneInCandidateBandwidth) {
  const TcpState w = steady_state(20.0);
  double prev = 0.0;
  for (double c = 0.5; c <= 10.0; c += 0.5) {
    const double y = estimate_throughput_mbps(c, w, 500000.0);
    EXPECT_GE(y, prev - 1e-9) << "candidate " << c;
    prev = y;
  }
}

TEST(Estimator, IdleGapLowersEstimate) {
  TcpState warm = steady_state(60.0);
  TcpState idle = warm;
  idle.last_send_gap_s = 5.0;  // long idle -> SSR decay inside f
  const double y_warm = estimate_throughput_mbps(6.0, warm, 250000.0);
  const double y_idle = estimate_throughput_mbps(6.0, idle, 250000.0);
  EXPECT_LT(y_idle, y_warm);
}

TEST(Estimator, SmallerChunksSeeLowerThroughput) {
  TcpState w = steady_state(40.0);
  w.last_send_gap_s = 2.0;  // post-idle: the Fig. 2(c) regime
  double prev = 0.0;
  for (const double size : {4e3, 16e3, 64e3, 256e3, 1e6, 4e6}) {
    const double y = estimate_throughput_mbps(6.0, w, size);
    EXPECT_GE(y, prev - 1e-9) << "size " << size;
    prev = y;
  }
}

TEST(Estimator, DownloadTimeConsistentWithThroughput) {
  const TcpState w = steady_state(30.0);
  const double size = 300000.0;
  const double y = estimate_throughput_mbps(4.0, w, size);
  EXPECT_NEAR(estimate_download_time_s(4.0, w, size),
              size * 8.0 / 1e6 / y, 1e-9);
}

TEST(Estimator, DownloadTimeInfiniteAtZeroBandwidth) {
  EXPECT_EQ(estimate_download_time_s(0.0, steady_state(), 1e5),
            std::numeric_limits<double>::infinity());
}

TEST(Estimator, RejectsNonPositiveSize) {
  EXPECT_THROW(estimate_throughput_mbps(1.0, steady_state(), 0.0),
               veritas::ContractViolation);
}

TEST(EstimatorNoTcpState, IgnoresWindowState) {
  TcpState cold = steady_state(10.0);
  cold.last_send_gap_s = 10.0;
  TcpState warm = steady_state(500.0);
  const double size = 500000.0;
  EXPECT_DOUBLE_EQ(estimate_throughput_no_tcp_state_mbps(5.0, cold, size),
                   estimate_throughput_no_tcp_state_mbps(5.0, warm, size));
}

TEST(EstimatorNoTcpState, SteadyStateAssumption) {
  const TcpState w = steady_state();
  // Large object: link-limited.
  EXPECT_DOUBLE_EQ(estimate_throughput_no_tcp_state_mbps(5.0, w, 10e6), 5.0);
  // Small object: one-RTT-limited.
  EXPECT_NEAR(estimate_throughput_no_tcp_state_mbps(5.0, w, 2000.0),
              2000.0 * 8 / 1e6 / kRtt, 1e-9);
}

// The paper's Fig. 5 experiment in miniature: f's estimate vs the
// simulator's observed throughput across GTBW levels, sizes and gaps.
// f is a simplification (constant GTBW, integer rounds, no loss) so we
// assert calibration, not equality: mostly within ~1 Mbps.
class EstimatorVsSimulator : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorVsSimulator, WithinOneMbpsMostly) {
  const double gtbw = GetParam();
  const auto bw = trace::BandwidthTrace::constant(gtbw, 10000.0, 5.0);
  TcpConfig cfg;
  TcpConnection conn(cfg, kRtt);
  util::Rng rng(101);
  double t = 1.0;
  int within = 0, total = 0;
  for (int i = 0; i < 60; ++i) {
    const double size = std::pow(2.0, rng.uniform(14.0, 22.0));  // 16KB..4MB
    const double gap = rng.uniform(0.12, 4.0);
    t += gap;
    const TcpState w = conn.snapshot(t);
    const auto r = conn.download(bw, t, size);
    const double estimated = estimate_throughput_mbps(gtbw, w, size, cfg);
    within += std::abs(estimated - r.throughput_mbps()) <= 1.0;
    ++total;
    t = r.end_s;
  }
  EXPECT_GE(static_cast<double>(within) / total, 0.7) << "gtbw " << gtbw;
}

INSTANTIATE_TEST_SUITE_P(GtbwSweep, EstimatorVsSimulator,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0));

}  // namespace
}  // namespace veritas::net
