// Property tests for the closed-form TCP round count: sweeping
// (cwnd, ssthresh, bdp, data) grids — realistic coarse-grid windows,
// adversarial full-mantissa values, every congestion-control flavour —
// asserting EXACT agreement with the seed's per-round reference loop,
// plus full-estimator agreement across slow-start-restart edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "net/tcp_model.hpp"
#include "net/throughput_estimator.hpp"
#include "util/rng.hpp"

namespace veritas::net {
namespace {

std::vector<TcpConfig> sweep_configs() {
  TcpConfig cubic;  // defaults: hystart on, rwnd 20000
  TcpConfig no_hystart;
  no_hystart.enable_hystart = false;
  TcpConfig bbr;
  bbr.congestion_control = CongestionControl::kBbrLike;
  TcpConfig tiny_rwnd;
  tiny_rwnd.rwnd_segments = 64.0;
  return {cubic, no_hystart, bbr, tiny_rwnd};
}

std::vector<double> bdp_grid() {
  // Derived the way the emission model derives it (candidate Mbps x RTT),
  // so the values carry full-precision mantissas, plus a few hand-picked
  // near-integer ratios.
  std::vector<double> grid;
  TcpConfig cfg;
  for (const double mbps : {0.5, 1.0, 3.0, 10.0, 50.0, 400.0}) {
    for (const double rtt : {0.005, 0.08, 0.3}) {
      grid.push_back(bdp_segments(mbps, rtt, cfg));
    }
  }
  grid.insert(grid.end(), {1.0, 2.5, 100.0 / 3.0, 69.0, 1000.0});
  return grid;
}

TEST(RoundCount, ClosedFormMatchesIterativeOnGrids) {
  const std::vector<double> cwnds = {1.0,  2.0,   5.0,   7.5,    10.0,
                                     13.0, 20.0,  40.0,  64.0,   100.0,
                                     333.0, 1000.0, 5000.0, 19999.0, 20000.0};
  const std::vector<double> ssthreshes = {1.0,  5.0,   10.0, 25.0,
                                          64.0, 200.0, 1e9};
  const std::vector<double> datas = {1.0,   2.0,   3.0,    10.0,   64.0,
                                     100.0, 691.0, 2900.0, 10000.0, 123457.0};
  std::size_t checked = 0;
  for (const TcpConfig& cfg : sweep_configs()) {
    for (const double bdp : bdp_grid()) {
      for (const double cwnd : cwnds) {
        for (const double ssthresh : ssthreshes) {
          for (const double data : datas) {
            if (data / std::min(cwnd, bdp) > 20000.0) continue;  // slow
            const int ref = detail::count_rounds_iterative(cwnd, ssthresh,
                                                           bdp, data, cfg);
            const int fast =
                detail::count_rounds(cwnd, ssthresh, bdp, data, cfg);
            ASSERT_EQ(fast, ref)
                << "cwnd=" << cwnd << " ssthresh=" << ssthresh
                << " bdp=" << bdp << " data=" << data;
            ++checked;
          }
        }
      }
    }
  }
  EXPECT_GT(checked, 10000u);
}

TEST(RoundCount, ClosedFormMatchesIterativeDenselyWhenRwndBelowBdp) {
  // Receive-window-limited trajectories: the congestion-avoidance run
  // ends at the rwnd clamp, not the pipe, and the fast path must apply
  // grow_window's clamp when it exits the run (regression: cwnd+run
  // overshot rwnd and silently flipped round counts). Dense data sweep
  // so every flip point in range is hit, including the original
  // counterexample (cwnd=10, ssthresh=1, bdp=50, rwnd=16, data=108).
  for (const double rwnd : {12.0, 16.0, 64.0}) {
    TcpConfig cfg;
    cfg.rwnd_segments = rwnd;
    TcpConfig no_hystart = cfg;
    no_hystart.enable_hystart = false;
    for (const TcpConfig& c : {cfg, no_hystart}) {
      for (const double bdp : {20.0, 50.0, 345.303867403314917}) {
        for (const double cwnd : {2.0, 7.5, 10.0}) {
          for (const double ssthresh : {1.0, 8.0, 1e9}) {
            for (double data = 1.0; data <= 2000.0; data += 1.0) {
              const int ref = detail::count_rounds_iterative(cwnd, ssthresh,
                                                             bdp, data, c);
              const int fast =
                  detail::count_rounds(cwnd, ssthresh, bdp, data, c);
              ASSERT_EQ(fast, ref)
                  << "cwnd=" << cwnd << " ssthresh=" << ssthresh
                  << " bdp=" << bdp << " rwnd=" << rwnd << " data=" << data;
            }
          }
        }
      }
    }
  }
}

TEST(RoundCount, ClosedFormMatchesIterativeDenselyOnDefaultConfig) {
  // Dense data sweep on the default config too: every congestion-
  // avoidance and constant-tail exit boundary in range is exercised.
  const TcpConfig cfg;
  for (const double bdp : bdp_grid()) {
    for (const double cwnd : {5.0, 10.0, 20.0}) {
      for (const double ssthresh : {10.0, 64.0, 1e9}) {
        for (double data = 1.0; data <= 1500.0; data += 1.0) {
          const int ref =
              detail::count_rounds_iterative(cwnd, ssthresh, bdp, data, cfg);
          const int fast = detail::count_rounds(cwnd, ssthresh, bdp, data, cfg);
          ASSERT_EQ(fast, ref) << "cwnd=" << cwnd << " ssthresh=" << ssthresh
                               << " bdp=" << bdp << " data=" << data;
        }
      }
    }
  }
}

TEST(RoundCount, ClosedFormMatchesIterativeOnRandomFullMantissaInputs) {
  // Full-mantissa windows void the closed form's exactness argument; its
  // guards must detect that and fall back, keeping agreement exact.
  util::Rng rng(42);
  for (TcpConfig cfg : sweep_configs()) {
    for (int trial = 0; trial < 2000; ++trial) {
      // Half the trials also randomize the receive window, often below
      // the BDP, so rwnd-clamped trajectories are covered here too.
      if (trial % 2 == 1) cfg.rwnd_segments = rng.uniform(5.0, 500.0);
      const double bdp = rng.uniform(0.1, 5000.0);
      const double cwnd = rng.uniform(0.1, std::min(bdp, 25000.0));
      const double ssthresh = rng.uniform(0.5, 30000.0);
      const double data = std::ceil(rng.uniform(1.0, 1e5));
      if (data / std::min(cwnd, bdp) > 20000.0) continue;
      const int ref =
          detail::count_rounds_iterative(cwnd, ssthresh, bdp, data, cfg);
      const int fast = detail::count_rounds(cwnd, ssthresh, bdp, data, cfg);
      ASSERT_EQ(fast, ref) << "cwnd=" << cwnd << " ssthresh=" << ssthresh
                           << " bdp=" << bdp << " data=" << data;
    }
  }
}

// Replays the seed estimator (SSR + per-round loop + branch structure)
// so estimate_throughput_mbps can be checked end to end, slow-start
// restart included.
double reference_estimate(double gtbw_mbps, const TcpState& w,
                          double size_bytes, const TcpConfig& config) {
  if (gtbw_mbps == 0.0) return 0.0;
  TcpState state = w;
  apply_slow_start_restart(state, config);
  const double data = segments_for_bytes(size_bytes, config);
  const double bdp = bdp_segments(gtbw_mbps, state.min_rtt_s, config);
  if (state.cwnd_segments > bdp) {
    if (data > bdp) return gtbw_mbps;
    return size_bytes * 8.0 / 1e6 / state.min_rtt_s;
  }
  const int rounds = detail::count_rounds_iterative(
      state.cwnd_segments, state.ssthresh_segments, bdp, data, config);
  return std::min(
      size_bytes * 8.0 / 1e6 / (static_cast<double>(rounds) * state.min_rtt_s),
      gtbw_mbps);
}

TEST(RoundCount, EstimatorMatchesReferenceAcrossSlowStartRestartEdges) {
  TcpConfig cfg;
  std::size_t checked = 0;
  for (const double cwnd : {10.0, 20.0, 64.0, 100.0, 640.0, 2000.0}) {
    for (const double ssthresh : {10.0, 48.0, 1e9}) {
      // Gaps straddling the RTO decay boundaries: no decay (<= rto),
      // exactly one halving, many halvings down to the init-cwnd floor.
      for (const double gap : {0.0, 0.2, 0.2000001, 0.41, 1.3, 60.0}) {
        for (const double size : {1448.0, 4e3, 1e5, 1e6, 4e6}) {
          for (const double gtbw : {0.5, 3.0, 10.0}) {
            TcpState w;
            w.cwnd_segments = cwnd;
            w.ssthresh_segments = ssthresh;
            w.rto_s = 0.2;
            w.min_rtt_s = 0.08;
            w.rtt_s = 0.08;
            w.last_send_gap_s = gap;
            const double expected = reference_estimate(gtbw, w, size, cfg);
            const double got = estimate_throughput_mbps(gtbw, w, size, cfg);
            ASSERT_EQ(got, expected)
                << "cwnd=" << cwnd << " ssthresh=" << ssthresh
                << " gap=" << gap << " size=" << size << " gtbw=" << gtbw;
            ++checked;
          }
        }
      }
    }
  }
  EXPECT_GT(checked, 1000u);
}

}  // namespace
}  // namespace veritas::net
