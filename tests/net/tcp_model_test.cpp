#include "net/tcp_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/expects.hpp"

namespace veritas::net {
namespace {

constexpr double kRtt = 0.08;

trace::BandwidthTrace constant_bw(double mbps) {
  return trace::BandwidthTrace::constant(mbps, 10000.0, 5.0);
}

TEST(TcpHelpers, BdpSegments) {
  TcpConfig cfg;
  // 4 Mbps * 80 ms = 40 KB = ~27.6 segments of 1448 B.
  EXPECT_NEAR(bdp_segments(4.0, 0.08, cfg), 4e6 / 8 * 0.08 / 1448.0, 1e-9);
}

TEST(TcpHelpers, SegmentsForBytesCeil) {
  TcpConfig cfg;
  EXPECT_DOUBLE_EQ(segments_for_bytes(1.0, cfg), 1.0);
  EXPECT_DOUBLE_EQ(segments_for_bytes(1448.0, cfg), 1.0);
  EXPECT_DOUBLE_EQ(segments_for_bytes(1449.0, cfg), 2.0);
}

TEST(TcpHelpers, GrowWindowSlowStartDoubles) {
  TcpConfig cfg;
  cfg.enable_hystart = false;
  EXPECT_DOUBLE_EQ(grow_window(10.0, 100.0, 1000.0, cfg), 20.0);
}

TEST(TcpHelpers, GrowWindowCongestionAvoidanceAddsOne) {
  TcpConfig cfg;
  EXPECT_DOUBLE_EQ(grow_window(50.0, 30.0, 1000.0, cfg), 51.0);
}

TEST(TcpHelpers, GrowWindowHystartExitsEarly) {
  TcpConfig cfg;  // hystart at 0.25 * bdp
  // cwnd 10, ssthresh huge, bdp 20 -> 10 >= 5 -> linear growth.
  EXPECT_DOUBLE_EQ(grow_window(10.0, 1e9, 20.0, cfg), 11.0);
  // tiny window still doubles.
  EXPECT_DOUBLE_EQ(grow_window(2.0, 1e9, 100.0, cfg), 4.0);
}

TEST(TcpHelpers, GrowWindowClampedByRwnd) {
  TcpConfig cfg;
  cfg.rwnd_segments = 64.0;
  cfg.enable_hystart = false;
  EXPECT_DOUBLE_EQ(grow_window(60.0, 1e9, 1e9, cfg), 64.0);
}

TEST(SlowStartRestart, NoDecayWithinRto) {
  TcpConfig cfg;
  TcpState w;
  w.cwnd_segments = 40.0;
  w.rto_s = 0.2;
  w.last_send_gap_s = 0.1;
  apply_slow_start_restart(w, cfg);
  EXPECT_DOUBLE_EQ(w.cwnd_segments, 40.0);
}

TEST(SlowStartRestart, HalvesPerRto) {
  TcpConfig cfg;
  TcpState w;
  w.cwnd_segments = 40.0;
  w.ssthresh_segments = 100.0;
  w.rto_s = 0.2;
  w.last_send_gap_s = 0.45;  // two elapsed RTOs
  apply_slow_start_restart(w, cfg);
  EXPECT_DOUBLE_EQ(w.cwnd_segments, 10.0);
}

TEST(SlowStartRestart, FloorsAtInitCwnd) {
  TcpConfig cfg;
  TcpState w;
  w.cwnd_segments = 80.0;
  w.rto_s = 0.2;
  w.last_send_gap_s = 100.0;
  apply_slow_start_restart(w, cfg);
  EXPECT_DOUBLE_EQ(w.cwnd_segments, cfg.init_cwnd);
}

TEST(SlowStartRestart, RaisesSsthreshFromPreDecayWindow) {
  TcpConfig cfg;
  TcpState w;
  w.cwnd_segments = 40.0;
  w.ssthresh_segments = 10.0;
  w.rto_s = 0.2;
  w.last_send_gap_s = 10.0;
  apply_slow_start_restart(w, cfg);
  EXPECT_DOUBLE_EQ(w.ssthresh_segments, 30.0);  // 3/4 * 40
}

TEST(SlowStartRestart, DisabledIsNoOp) {
  TcpConfig cfg;
  cfg.enable_ssr = false;
  TcpState w;
  w.cwnd_segments = 40.0;
  w.last_send_gap_s = 100.0;
  apply_slow_start_restart(w, cfg);
  EXPECT_DOUBLE_EQ(w.cwnd_segments, 40.0);
}

TEST(TcpConnection, DownloadTakesAtLeastOneRtt) {
  TcpConnection conn(TcpConfig{}, kRtt);
  const auto result = conn.download(constant_bw(100.0), 0.0, 100.0);
  EXPECT_GE(result.duration_s(), kRtt - 1e-12);
  EXPECT_EQ(result.rounds, 1);
}

TEST(TcpConnection, ThroughputNeverExceedsLinkByMuch) {
  TcpConfig cfg;
  TcpConnection conn(cfg, kRtt);
  const auto bw = constant_bw(5.0);
  double t = 0.0;
  for (int i = 0; i < 30; ++i) {
    const auto r = conn.download(bw, t, 400000.0);
    // Per-round rate jitter allows a small excursion above nominal.
    EXPECT_LE(r.throughput_mbps(), 5.0 * (1.0 + cfg.rate_jitter) + 1e-9);
    t = r.end_s + 0.1;
  }
}

TEST(TcpConnection, JitterDisabledIsExactlyLinkBound) {
  TcpConfig cfg;
  cfg.rate_jitter = 0.0;
  TcpConnection conn(cfg, kRtt);
  const auto bw = constant_bw(5.0);
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    const auto r = conn.download(bw, t, 400000.0);
    EXPECT_LE(r.throughput_mbps(), 5.0 + 1e-9);
    t = r.end_s + 0.1;
  }
}

TEST(TcpConnection, JitterIsDeterministic) {
  TcpConfig cfg;
  TcpConnection a(cfg, kRtt), b(cfg, kRtt);
  const auto bw = constant_bw(5.0);
  const auto ra = a.download(bw, 0.0, 400000.0);
  const auto rb = b.download(bw, 0.0, 400000.0);
  EXPECT_DOUBLE_EQ(ra.end_s, rb.end_s);
}

TEST(TcpConnection, LargeTransferApproachesLinkRate) {
  TcpConnection conn(TcpConfig{}, kRtt);
  const auto r = conn.download(constant_bw(6.0), 0.0, 30e6);
  EXPECT_GT(r.throughput_mbps(), 0.9 * 6.0);
}

TEST(TcpConnection, SmallTransferRttBound) {
  TcpConnection conn(TcpConfig{}, kRtt);
  const auto r = conn.download(constant_bw(18.0), 0.0, 2048.0);
  // 2 KB in one RTT: ~0.2 Mbps regardless of an 18 Mbps link.
  EXPECT_NEAR(r.throughput_mbps(), 2048.0 * 8 / 1e6 / kRtt, 1e-6);
}

TEST(TcpConnection, DownloadTimeMonotoneInSize) {
  // Same start state: bigger object cannot finish sooner.
  double prev = 0.0;
  for (const double size : {1e4, 1e5, 1e6, 1e7}) {
    TcpConnection conn(TcpConfig{}, kRtt);
    const auto r = conn.download(constant_bw(4.0), 0.0, size);
    EXPECT_GE(r.duration_s(), prev);
    prev = r.duration_s();
  }
}

TEST(TcpConnection, IdleGapReducesNextThroughput) {
  // Warm connection, short gap -> fast; long gap -> SSR -> slower.
  auto run_with_gap = [&](double gap) {
    TcpConnection conn(TcpConfig{}, kRtt);
    const auto bw = constant_bw(8.0);
    double t = 0.0;
    for (int i = 0; i < 10; ++i) {  // warm up cwnd
      const auto r = conn.download(bw, t, 500000.0);
      t = r.end_s + 0.05;
    }
    const auto r = conn.download(bw, t + gap, 250000.0);
    return r.throughput_mbps();
  };
  EXPECT_GT(run_with_gap(0.0), run_with_gap(3.0));
}

TEST(TcpConnection, SnapshotReportsGap) {
  TcpConnection conn(TcpConfig{}, kRtt);
  const auto bw = constant_bw(5.0);
  const auto r = conn.download(bw, 0.0, 100000.0);
  const TcpState w = conn.snapshot(r.end_s + 1.5);
  EXPECT_NEAR(w.last_send_gap_s, 1.5, 1e-9);
}

TEST(TcpConnection, FirstSnapshotHasZeroGap) {
  TcpConnection conn(TcpConfig{}, kRtt);
  EXPECT_DOUBLE_EQ(conn.snapshot(100.0).last_send_gap_s, 0.0);
}

TEST(TcpConnection, StateCarriesAcrossDownloads) {
  TcpConnection conn(TcpConfig{}, kRtt);
  const auto bw = constant_bw(8.0);
  const double cwnd_before = conn.cwnd_segments();
  const auto r = conn.download(bw, 0.0, 2e6);
  EXPECT_GT(conn.cwnd_segments(), cwnd_before);
  // Back-to-back download starts from the grown window: faster.
  TcpConnection fresh(TcpConfig{}, kRtt);
  const auto r_fresh = fresh.download(bw, 0.0, 250000.0);
  const auto r_warm = conn.download(bw, r.end_s, 250000.0);
  EXPECT_LT(r_warm.duration_s(), r_fresh.duration_s());
}

TEST(TcpConnection, LossCapsWindow) {
  TcpConfig cfg;
  TcpConnection conn(cfg, kRtt);
  const auto bw = constant_bw(4.0);
  conn.download(bw, 0.0, 20e6);
  const double bdp = bdp_segments(4.0, kRtt, cfg);
  EXPECT_LE(conn.cwnd_segments(), (1.0 + cfg.queue_bdp_factor) * bdp + 1.0);
  EXPECT_LT(conn.ssthresh_segments(), 1e8);  // finite after loss
}

TEST(TcpConnection, NoLossKeepsSsthreshInfinite) {
  TcpConfig cfg;
  cfg.enable_loss = false;
  TcpConnection conn(cfg, kRtt);
  conn.download(constant_bw(4.0), 0.0, 20e6);
  EXPECT_DOUBLE_EQ(conn.ssthresh_segments(), cfg.initial_ssthresh);
}

TEST(TcpConnection, ZeroRateWindowIsSkipped) {
  // Rate 0 in the first window, 5 Mbps afterwards: the download stalls
  // until the window boundary and then proceeds.
  const trace::BandwidthTrace bw(1.0, {0.0, 5.0});
  TcpConnection conn(TcpConfig{}, kRtt);
  const auto r = conn.download(bw, 0.5, 100000.0);
  EXPECT_GE(r.end_s, 1.0);  // could not finish inside the dead window
  EXPECT_LT(r.end_s, 3.0);
}

TEST(TcpConnection, AllZeroTraceStallsEffectivelyForever) {
  const trace::BandwidthTrace bw(1.0, {0.0});
  TcpConnection conn(TcpConfig{}, kRtt);
  const auto r = conn.download(bw, 0.0, 1000.0);
  EXPECT_GT(r.end_s, 1e6);
}

TEST(TcpConnection, RejectsBadArguments) {
  TcpConnection conn(TcpConfig{}, kRtt);
  const auto bw = constant_bw(5.0);
  EXPECT_THROW(conn.download(bw, 0.0, 0.0), veritas::ContractViolation);
  const auto r = conn.download(bw, 1.0, 1000.0);
  // Cannot start a download before the previous one ended.
  EXPECT_THROW(conn.download(bw, r.end_s - 0.01, 1000.0),
               veritas::ContractViolation);
}

TEST(TcpConnection, VaryingBandwidthIsTracked) {
  // 1 Mbps then 8 Mbps: a download spanning both windows is faster than
  // all-1Mbps and slower than all-8Mbps.
  const trace::BandwidthTrace varying(5.0, {1.0, 8.0, 8.0, 8.0});
  TcpConnection c1(TcpConfig{}, kRtt);
  const auto r_var = c1.download(varying, 0.0, 4e6);
  TcpConnection c2(TcpConfig{}, kRtt);
  const auto r_slow = c2.download(constant_bw(1.0), 0.0, 4e6);
  TcpConnection c3(TcpConfig{}, kRtt);
  const auto r_fast = c3.download(constant_bw(8.0), 0.0, 4e6);
  EXPECT_LT(r_var.duration_s(), r_slow.duration_s());
  EXPECT_GT(r_var.duration_s(), r_fast.duration_s());
}

}  // namespace
}  // namespace veritas::net
