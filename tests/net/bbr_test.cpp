// Tests for the BBR-like congestion-control variant (extension).
#include <gtest/gtest.h>

#include "net/tcp_model.hpp"
#include "net/throughput_estimator.hpp"

namespace veritas::net {
namespace {

constexpr double kRtt = 0.08;

TcpConfig bbr_config() {
  TcpConfig cfg;
  cfg.congestion_control = CongestionControl::kBbrLike;
  return cfg;
}

trace::BandwidthTrace constant_bw(double mbps) {
  return trace::BandwidthTrace::constant(mbps, 10000.0, 5.0);
}

TEST(Bbr, NoSlowStartRestartDecay) {
  TcpState w;
  w.cwnd_segments = 80.0;
  w.rto_s = 0.2;
  w.last_send_gap_s = 100.0;  // would fully decay a cubic window
  apply_slow_start_restart(w, bbr_config());
  EXPECT_DOUBLE_EQ(w.cwnd_segments, 80.0);
}

TEST(Bbr, StartupDoublesUntilPipeFull) {
  const TcpConfig cfg = bbr_config();
  EXPECT_DOUBLE_EQ(grow_window(10.0, 1e9, 30.0, cfg), 20.0);
  EXPECT_DOUBLE_EQ(grow_window(20.0, 1e9, 30.0, cfg), 40.0);
  // At 2*BDP the window holds (rate-based steady state).
  EXPECT_DOUBLE_EQ(grow_window(60.0, 1e9, 30.0, cfg), 60.0);
}

TEST(Bbr, WindowTracksBdpUpward) {
  const TcpConfig cfg = bbr_config();
  // If bandwidth rises (bdp 30 -> 50), the window follows.
  EXPECT_DOUBLE_EQ(grow_window(60.0, 1e9, 50.0, cfg), 100.0);
}

TEST(Bbr, IdleGapDoesNotReduceThroughput) {
  // The cubic stack loses throughput after idle; BBR should not.
  auto run_with_gap = [&](const TcpConfig& cfg, double gap) {
    TcpConnection conn(cfg, kRtt);
    const auto bw = constant_bw(8.0);
    double t = 0.0;
    for (int i = 0; i < 10; ++i) {
      t = conn.download(bw, t, 500000.0).end_s + 0.05;
    }
    return conn.download(bw, t + gap, 250000.0).throughput_mbps();
  };
  const TcpConfig bbr = bbr_config();
  EXPECT_NEAR(run_with_gap(bbr, 3.0), run_with_gap(bbr, 0.0), 0.8);
  TcpConfig cubic;
  EXPECT_LT(run_with_gap(cubic, 3.0), run_with_gap(cubic, 0.0));
}

TEST(Bbr, LargeTransferReachesLinkRate) {
  TcpConnection conn(bbr_config(), kRtt);
  const auto r = conn.download(constant_bw(6.0), 0.0, 30e6);
  EXPECT_GT(r.throughput_mbps(), 0.9 * 6.0);
}

TEST(Bbr, EstimatorMatchesBbrSimulatorReasonably) {
  const TcpConfig cfg = bbr_config();
  const auto bw = constant_bw(5.0);
  TcpConnection conn(cfg, kRtt);
  double t = 1.0;
  int within = 0, total = 0;
  for (int i = 0; i < 40; ++i) {
    const double size = 50000.0 * (1 + i % 8);
    t += 0.5 + 0.1 * (i % 5);
    const TcpState w = conn.snapshot(t);
    const auto r = conn.download(bw, t, size);
    const double estimated = estimate_throughput_mbps(5.0, w, size, cfg);
    within += std::abs(estimated - r.throughput_mbps()) <= 1.0;
    ++total;
    t = r.end_s;
  }
  EXPECT_GE(static_cast<double>(within) / total, 0.7);
}

TEST(Bbr, ObservedThroughputLessBiasedThanCubic) {
  // The core claim of bench_ext_bbr: for mid-size chunks after idle,
  // BBR's observed throughput is closer to GTBW than cubic's.
  auto mean_observed = [&](const TcpConfig& cfg) {
    TcpConnection conn(cfg, kRtt);
    const auto bw = constant_bw(5.0);
    double t = 1.0, sum = 0.0;
    int count = 0;
    for (int i = 0; i < 20; ++i) {
      t += 2.0;  // idle gap every chunk
      const auto r = conn.download(bw, t, 250000.0);
      sum += r.throughput_mbps();
      ++count;
      t = r.end_s;
    }
    return sum / count;
  };
  EXPECT_GT(mean_observed(bbr_config()), mean_observed(TcpConfig{}));
}

}  // namespace
}  // namespace veritas::net
