// Batched candidate-vector estimator equivalence (PR 5 tentpole):
// net::estimate_throughput_batch must be *bit-identical* to k scalar
// estimate_throughput_mbps calls — for random Cubic and BBR states,
// candidate counts crossing the SIMD lane boundaries (k ∈ {1, 3, 8, 17,
// 32}), ascending state-space-like grids including the zero candidate,
// and adversarial windows that trip the closed form's guards — under
// every dispatch mode (forced scalar, forced SIMD, and the opt-in
// AVX-512 tier, which keeps this kernel FMA-free and therefore holds
// the same bitwise contract).
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "math/simd_kernels.hpp"
#include "net/throughput_estimator.hpp"

namespace sk = veritas::math::simd_kernels;

namespace {

using veritas::net::CongestionControl;
using veritas::net::TcpConfig;
using veritas::net::TcpState;
using veritas::net::estimate_throughput_batch;
using veritas::net::estimate_throughput_mbps;

bool simd_available() { return sk::simd_ops() != nullptr; }
bool avx512_available() { return sk::avx512_ops() != nullptr; }

bool mode_available(sk::Mode mode) {
  if (mode == sk::Mode::kForceSimd) return simd_available();
  if (mode == sk::Mode::kForceAvx512) return avx512_available();
  return true;
}

const char* mode_name(sk::Mode mode) {
  if (mode == sk::Mode::kForceSimd) return "simd";
  if (mode == sk::Mode::kForceAvx512) return "avx512";
  return "scalar";
}

/// Random-but-realistic TCP snapshot: mixes fresh connections, post-loss
/// states, long-idle states and coarse-grid windows (the values a real
/// stack produces) with a sprinkle of off-grid adversarial ones.
TcpState random_state(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  TcpState w;
  const double r = unit(rng);
  if (r < 0.5) {
    // Coarse-grid windows (doublings / +1 steps / halvings of 10).
    w.cwnd_segments = std::ldexp(10.0, static_cast<int>(unit(rng) * 8) - 3) +
                      static_cast<int>(unit(rng) * 40);
  } else if (r < 0.9) {
    w.cwnd_segments = 1.0 + unit(rng) * 400.0;
  } else {
    w.cwnd_segments = unit(rng) * 50.0 + 1e-3;  // off-grid adversarial
  }
  w.ssthresh_segments =
      unit(rng) < 0.3 ? 1e9 : 2.0 + unit(rng) * 200.0;
  w.min_rtt_s = 0.005 + unit(rng) * 0.3;
  w.rtt_s = w.min_rtt_s * (1.0 + unit(rng));
  w.rto_s = std::max(0.2, 2.0 * w.rtt_s);
  w.last_send_gap_s = unit(rng) < 0.5 ? unit(rng) * 0.1 : unit(rng) * 10.0;
  return w;
}

TcpConfig random_config(std::mt19937_64& rng, bool bbr) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  TcpConfig config;
  config.congestion_control =
      bbr ? CongestionControl::kBbrLike : CongestionControl::kCubicLike;
  config.enable_ssr = unit(rng) < 0.8;
  config.enable_hystart = unit(rng) < 0.8;
  config.hystart_bdp_fraction = 0.1 + unit(rng) * 0.8;
  if (unit(rng) < 0.2) config.rwnd_segments = 50.0 + unit(rng) * 200.0;
  return config;
}

std::vector<double> random_candidates(std::mt19937_64& rng, std::size_t k) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<double> c(k, 0.0);
  if (unit(rng) < 0.5) {
    // State-space-like ascending grid starting at 0 (the EHMM's shape).
    const double eps = 0.25 + unit(rng) * 0.75;
    for (std::size_t i = 0; i < k; ++i) c[i] = static_cast<double>(i) * eps;
  } else {
    for (std::size_t i = 0; i < k; ++i) c[i] = unit(rng) * 30.0;
    if (k > 2) c[k / 2] = 0.0;  // keep a zero candidate in the mix
  }
  return c;
}

class ThroughputBatch : public ::testing::TestWithParam<std::size_t> {};

/// The core property: batch == k scalar calls, bitwise, in both dispatch
/// modes. The scalar mode exercises the reference composition path (the
/// PR 4 code), the SIMD mode the lane-parallel kernel.
TEST_P(ThroughputBatch, BitIdenticalToScalarComposition) {
  const std::size_t k = GetParam();
  std::mt19937_64 rng(4242 + k);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  for (int round = 0; round < 200; ++round) {
    const bool bbr = round % 2 == 1;
    const TcpState w = random_state(rng);
    const TcpConfig config = random_config(rng, bbr);
    const double size_bytes = 1000.0 + unit(rng) * 4e6;
    const std::vector<double> candidates = random_candidates(rng, k);

    std::vector<double> expected(k, -1.0);
    for (std::size_t i = 0; i < k; ++i) {
      expected[i] =
          estimate_throughput_mbps(candidates[i], w, size_bytes, config);
    }

    // estimate_batch avoids FMA on every tier, so the AVX-512 table is
    // held to the same bitwise contract as the default vector one.
    for (const sk::Mode mode : {sk::Mode::kForceScalar, sk::Mode::kForceSimd,
                                sk::Mode::kForceAvx512}) {
      if (!mode_available(mode)) continue;
      sk::ScopedMode guard(mode);
      // Oversized output with sentinels: the batch must write exactly k.
      std::vector<double> out(k + 8, -7.0);
      estimate_throughput_batch(candidates, w, size_bytes, config,
                                std::span<double>(out.data(), out.size()));
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(expected[i], out[i])
            << "k=" << k << " i=" << i << " round=" << round
            << " mode=" << mode_name(mode) << " bbr=" << bbr
            << " cand=" << candidates[i];
      }
      for (std::size_t i = k; i < out.size(); ++i) {
        EXPECT_EQ(out[i], -7.0) << "padded tail clobbered at " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CandidateCounts, ThroughputBatch,
                         ::testing::Values(std::size_t{1}, std::size_t{3},
                                           std::size_t{8}, std::size_t{17},
                                           std::size_t{32}));

/// Adversarial grid: window / bdp collisions that sit exactly on the
/// closed form's decision boundaries (fixed points, saturation at bdp,
/// one-segment data, huge transfers triggering the ratio cap fallback).
TEST(ThroughputBatch, BoundaryStates) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD table in this build";
  const double sizes[] = {1.0, 1448.0, 1449.0, 2.5e5, 8e6};
  const double cwnds[] = {1.0, 2.0, 10.0, 64.0, 100.0, 20000.0};
  const double ssthreshes[] = {2.0, 10.0, 64.0, 1e9};
  std::vector<double> candidates;
  for (int i = 0; i <= 32; ++i) candidates.push_back(0.5 * i);

  for (const bool bbr : {false, true}) {
    TcpConfig config;
    config.congestion_control =
        bbr ? CongestionControl::kBbrLike : CongestionControl::kCubicLike;
    for (const double size : sizes) {
      for (const double cwnd : cwnds) {
        for (const double ssthresh : ssthreshes) {
          TcpState w;
          w.cwnd_segments = cwnd;
          w.ssthresh_segments = ssthresh;
          w.last_send_gap_s = 1.0;
          std::vector<double> expected(candidates.size());
          for (std::size_t i = 0; i < candidates.size(); ++i) {
            expected[i] =
                estimate_throughput_mbps(candidates[i], w, size, config);
          }
          for (const sk::Mode mode :
               {sk::Mode::kForceSimd, sk::Mode::kForceAvx512}) {
            if (!mode_available(mode)) continue;
            sk::ScopedMode guard(mode);
            std::vector<double> out(candidates.size(), -1.0);
            estimate_throughput_batch(candidates, w, size, config, out);
            for (std::size_t i = 0; i < candidates.size(); ++i) {
              EXPECT_EQ(expected[i], out[i])
                  << "size=" << size << " cwnd=" << cwnd
                  << " ssthresh=" << ssthresh << " bbr=" << bbr
                  << " mode=" << mode_name(mode) << " cand=" << candidates[i];
            }
          }
        }
      }
    }
  }
}

/// Degenerate inputs take the reference composition verbatim.
TEST(ThroughputBatch, EmptyAndZeroCandidates) {
  TcpState w;
  std::vector<double> out(4, -1.0);
  estimate_throughput_batch({}, w, 1000.0, TcpConfig{}, out);
  EXPECT_EQ(out[0], -1.0);  // untouched

  const std::vector<double> zeros(4, 0.0);
  estimate_throughput_batch(zeros, w, 1000.0, TcpConfig{}, out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], 0.0);
}

}  // namespace
